"""Scenario: explain *why* one index beats another (paper Section 4.3).

Collects per-lookup performance counters for a set of index
configurations on two datasets, then reproduces the paper's regression
analysis: lookup time as a linear function of cache misses, branch misses
and instruction count.

Run:  python examples/explain_performance.py
"""

from repro.bench.config import BenchSettings
from repro.bench.experiments.common import dataset_and_workload, sweep
from repro.bench.stats import ols


def main() -> None:
    settings = BenchSettings(n_keys=60_000, n_lookups=300, max_configs=4)
    measurements = []
    for ds_name in ("amzn", "osm"):
        ds, wl = dataset_and_workload(ds_name, settings)
        for index_name in ("RMI", "PGM", "RS", "BTree", "ART"):
            measurements.extend(sweep(ds, wl, index_name, settings))

    print(f"{len(measurements)} measurements\n")
    print(f"{'index':8s} {'dataset':6s} {'size MB':>9s} {'ns':>6s} "
          f"{'miss':>6s} {'brmiss':>7s} {'instr':>7s}")
    for m in measurements:
        c = m.counters
        print(
            f"{m.index:8s} {m.dataset:6s} {m.size_mb:9.4f} "
            f"{m.latency_ns:6.0f} {c.llc_misses:6.2f} "
            f"{c.branch_misses:7.2f} {c.instructions:7.1f}"
        )

    result = ols(
        {
            "cache_misses": [m.counters.llc_misses for m in measurements],
            "branch_misses": [m.counters.branch_misses for m in measurements],
            "instructions": [m.counters.instructions for m in measurements],
        },
        [m.latency_ns for m in measurements],
    )
    print(f"\nOLS: R^2 = {result.r_squared:.3f} (paper reports 0.955)")
    for c in result.coefficients:
        if c.name == "intercept":
            continue
        print(
            f"  {c.name:14s} std beta = {c.standardized:+.3f}  "
            f"p = {c.p_value:.2g} "
            f"{'(significant)' if c.significant() else ''}"
        )
    biggest = max(
        (c for c in result.coefficients if c.name != "intercept"),
        key=lambda c: abs(c.standardized),
    )
    print(f"\nlargest explanatory factor: {biggest.name} "
          f"(the paper's conclusion: cache misses)")


if __name__ == "__main__":
    main()
