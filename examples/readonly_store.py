"""Scenario: a read-only sorted-run store with a pluggable index.

The paper's introduction motivates learned indexes with immutable
read-only structures (LSM runs in systems like RocksDB).  This example
builds a miniature key-value "sorted run": an immutable sorted key array
with payloads, indexed by any structure in the registry, serving point
gets and range scans through the search-bound interface.

Run:  python examples/readonly_store.py
"""

from typing import Iterator, Optional, Tuple

import numpy as np

from repro import make_dataset, make_index
from repro.memsim import AddressSpace, TracedArray
from repro.search import binary_search


class SortedRun:
    """An immutable sorted key/value run indexed by a registry index."""

    def __init__(self, keys: np.ndarray, values: np.ndarray, index_name: str,
                 **index_config):
        space = AddressSpace()
        self._data = TracedArray.allocate(space, keys, name="run.keys")
        self._values = values
        self._index = make_index(index_name, **index_config).build(
            self._data, space
        )

    @property
    def index_size_mb(self) -> float:
        return self._index.size_mb()

    def get(self, key: int) -> Optional[int]:
        """Point lookup; None if the key is absent."""
        bound = self._index.lookup(key)
        pos = binary_search(self._data, key, bound)
        if pos < len(self._data) and self._data.get_untraced(pos) == key:
            return int(self._values[pos])
        return None

    def scan(self, lo: int, hi: int) -> Iterator[Tuple[int, int]]:
        """Yield (key, value) for keys in [lo, hi) -- the range queries
        hash tables cannot serve (paper Table 1)."""
        bound = self._index.lookup(lo)
        pos = binary_search(self._data, lo, bound)
        n = len(self._data)
        while pos < n:
            key = self._data.get_untraced(pos)
            if key >= hi:
                return
            yield key, int(self._values[pos])
            pos += 1


def main() -> None:
    dataset = make_dataset("wiki", 50_000, seed=4)  # edit timestamps
    values = np.arange(dataset.n, dtype=np.uint64) * 10  # fake revision ids

    for index_name, config in [
        ("RMI", {"branching": 2048}),
        ("PGM", {"epsilon": 32}),
        ("BTree", {"gap": 1}),
    ]:
        run = SortedRun(dataset.keys, values, index_name, **config)
        present = int(dataset.keys[777])
        absent = present + 1
        lo = int(dataset.keys[1000])
        hi = int(dataset.keys[1010])
        n_scanned = sum(1 for _ in run.scan(lo, hi))
        print(
            f"{index_name:6s} index {run.index_size_mb:8.4f} MB | "
            f"get(present)={run.get(present)} get(absent)={run.get(absent)} | "
            f"scan[{lo}, {hi}) -> {n_scanned} records"
        )
        assert run.get(present) == 7770
        assert run.get(absent) is None
        assert n_scanned == 10


if __name__ == "__main__":
    main()
