"""Cluster failover: serving through crashes with retries and replicas.

A single server's p99 is only half the operational story -- real lookup
services shard the key space, replicate each shard, and must keep
answering while replicas crash and recover.  This example measures a
real index per shard, assembles a 3-shard x 2-replica cluster
(repro.serve.cluster), and runs the same seeded traffic three times:

1. fault-free -- the baseline tail;
2. crash faults, replicated -- retries ride out the crashes;
3. crash faults, replication off -- the same schedule punches holes in
   availability.

Everything is deterministic: same seeds, same fault schedule, same
bytes out on every run.

Run:  python examples/cluster_failover.py
"""

from repro import make_dataset, make_workload
from repro.bench import measure_index
from repro.serve import (
    Cluster,
    FaultConfig,
    RouterPolicy,
    ShardMap,
    ServiceModel,
    poisson_arrivals,
    request_keys,
    simulate_cluster,
    throughput,
)

N_SHARDS = 3
N_REQUESTS = 1_200
SEED = 0


def main() -> None:
    dataset = make_dataset("amzn", 30_000, seed=SEED)
    shard_map = ShardMap.from_keys(dataset.keys, N_SHARDS)

    # One real index build per shard: each shard serves its contiguous
    # key range with its own (smaller) RMI, measured on the simulated
    # CPU exactly like the paper's figures.
    services = []
    measurements = []
    for shard in range(N_SHARDS):
        shard_ds = make_dataset(
            "amzn", len(dataset.keys) // N_SHARDS, seed=SEED + shard + 1
        )
        workload = make_workload(shard_ds, 400, seed=SEED + shard + 1)
        m = measure_index(
            shard_ds, workload, "RMI", {"branching": 256}, n_lookups=200
        )
        measurements.append(m)
        services.append(ServiceModel.from_measurement(m))
        print(
            f"shard {shard}: RMI branching=256  "
            f"{m.latency_ns:6.0f} ns  {m.size_mb:.4f} MB"
        )

    # Offer 50% of the weakest shard's 2-core capacity, cluster-wide.
    weakest = min(
        throughput(m, 2).lookups_per_sec for m in measurements
    )
    offered = 0.5 * weakest * N_SHARDS * 2
    arrivals = poisson_arrivals(offered, N_REQUESTS, seed=SEED)
    keys = request_keys(dataset.keys, N_REQUESTS, seed=SEED)
    span = arrivals[-1]

    # Crash roughly twice per replica over the trace; repair quickly.
    faults = FaultConfig(
        crash_mttf_ns=span / 2, crash_mttr_ns=span / 10, seed=SEED
    )
    policy = RouterPolicy(
        backoff_base_ns=span / 50, backoff_cap_ns=span / 5
    )

    print(f"\n{N_REQUESTS} requests over {span / 1e3:.0f} us\n")
    print("scenario              avail   failed  retries  crashes     p99")
    for label, n_replicas, injected in (
        ("fault-free",          2, None),
        ("crashes, 2 replicas", 2, faults),
        ("crashes, 1 replica",  1, faults),
    ):
        cluster = Cluster(
            shard_map=shard_map,
            services=services,
            n_replicas=n_replicas,
            n_cores=2,
            policy=policy,
            faults=injected,
        )
        r = simulate_cluster(
            cluster, arrivals, keys, fault_horizon_ns=1.5 * span
        )
        s = r.summary()
        print(
            f"{label:20s}  {r.availability:5.3f}  {r.failed:7d}  "
            f"{r.total_retries:7d}  {r.crashes:7d}  {s.p99_ns:6.0f} ns"
        )

    assert r.crashes > 0, "the fault schedule should inject crashes"


if __name__ == "__main__":
    main()
