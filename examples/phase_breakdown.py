"""Scenario: where does a lookup spend its time -- model or search?

SOSD (Kipf et al.) splits learned-index lookup cost into *model
evaluation* versus *last-mile search*; the paper's Section 4.3 explains
latency from the same counters.  This example reproduces that breakdown
on the simulated CPU: measure a few index configurations with phase
profiling on, print the per-phase counter table, and write the stacked
SVG -- all without changing a single measured counter.

Run:  python examples/phase_breakdown.py
"""

import os

from repro.bench.harness import build_index, measure
from repro.datasets.loader import make_dataset
from repro.datasets.workload import make_workload
from repro.obs.report import format_phase_table, phase_breakdown_svg

CONFIGS = [
    ("RMI", {"branching": 256}),
    ("PGM", {"epsilon": 64}),
    ("RS", {"epsilon": 32}),
    ("BTree", {}),
    ("IBTree", {}),
]


def main() -> None:
    ds = make_dataset("amzn", 40_000, seed=0)
    wl = make_workload(ds, 800, seed=1)

    measurements = []
    for index_name, config in CONFIGS:
        built = build_index(ds, index_name, config)
        m = measure(built, wl, n_lookups=500, warmup=200, profile=True)
        measurements.append(m)
        # The invariant the profiler is built on: per-phase integer
        # counters sum byte-exactly to the unphased per-lookup averages.
        total = None
        for c in m.phases.values():
            total = c if total is None else total + c
        assert total.per_lookup(m.n_lookups) == m.counters

    print(format_phase_table(measurements))
    print()
    for m in measurements:
        per = m.phase_per_lookup()
        model = per.get("model")
        search = per.get("search")
        if model is None or search is None:
            continue
        share = 100.0 * model.instructions / max(
            m.counters.instructions, 1e-9
        )
        print(
            f"{m.index:7s} spends {share:4.1f}% of its instructions on "
            f"model evaluation ({model.instructions:.1f} vs "
            f"{search.instructions:.1f} search instr/lookup)"
        )

    out = os.path.join("obs_out", "phase_breakdown.svg")
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as f:
        f.write(phase_breakdown_svg(measurements))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
