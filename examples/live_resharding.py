"""Live resharding: absorbing a flash crowd without stopping the world.

A flash crowd lands on a 2-shard cluster whose hot shard is already the
bottleneck.  This example measures a real index per shard, then runs the
same seeded traffic twice:

1. static -- the cluster rides out the spike as built;
2. live reconfig -- mid-spike, the hot shard splits in two (epoch-
   versioned key-range handoff, in-flight requests re-resolve against
   the new map) while a reactive autoscaler adds replicas wherever the
   queue-depth gauge says overloaded and retires them once drained.

The per-window table shows p99 and error-budget burn across the
transition: the split + autoscaler turn a sustained SLO bleed into a
one-window blip.  Everything is deterministic -- the reconfig schedule
is a pure function of (spec, topology, horizon), so both runs produce
the same bytes on every invocation (docs/reconfig.md).

Run:  python examples/live_resharding.py
"""

from repro import make_dataset, make_workload
from repro.bench import measure_index
from repro.serve import (
    AutoscaleSpec,
    Cluster,
    ReconfigSpec,
    RouterPolicy,
    ServiceModel,
    ShardMap,
    SplitSpec,
    TelemetryConfig,
    burn_rate_report,
    flash_crowd_arrivals,
    request_keys,
    simulate_cluster,
    throughput,
)

N_SHARDS = 2
N_REQUESTS = 1_000
N_WINDOWS = 10
SEED = 0


def main() -> None:
    dataset = make_dataset("amzn", 20_000, seed=SEED)
    shard_map = ShardMap.from_keys(dataset.keys, N_SHARDS)

    services, measurements = [], []
    for shard in range(N_SHARDS):
        shard_ds = make_dataset(
            "amzn", len(dataset.keys) // N_SHARDS, seed=SEED + shard + 1
        )
        workload = make_workload(shard_ds, 300, seed=SEED + shard + 1)
        m = measure_index(
            shard_ds, workload, "RMI", {"branching": 128}, n_lookups=150
        )
        measurements.append(m)
        services.append(ServiceModel.from_measurement(m))
        print(
            f"shard {shard}: RMI branching=128  "
            f"{m.latency_ns:6.0f} ns  {m.size_mb:.4f} MB"
        )

    # Offer 70% of 2-core cluster capacity as the baseline, then spike
    # the middle of the trace 8x -- well past what the cluster can take.
    weakest = min(throughput(m, 2).lookups_per_sec for m in measurements)
    offered = 0.7 * weakest * N_SHARDS * 2
    arrivals = flash_crowd_arrivals(
        offered,
        N_REQUESTS,
        seed=SEED,
        spike_factor=8.0,
        spike_start_request=N_REQUESTS // 4,
        spike_len_requests=N_REQUESTS // 2,
    )
    keys = request_keys(dataset.keys, N_REQUESTS, seed=SEED)
    span = arrivals[-1]
    window = span / N_WINDOWS
    slo_ns = 12.0 * max(s.service_ns(2) for s in services)

    # The reconfiguration plan, as pure data: cut the hot shard's range
    # at its midpoint one-fifth into the day, and let the autoscaler
    # react to queue depth every window (2..4 replicas per shard).
    bounds = shard_map.lower_bounds
    plan = ReconfigSpec(
        splits=(
            SplitSpec(
                at_ns=0.2 * span,
                shard=0,
                at_key=bounds[0] + (bounds[1] - bounds[0]) // 2,
            ),
        ),
        autoscale=AutoscaleSpec(
            interval_ns=window,
            up_depth=4,
            down_depth=0,
            min_replicas=2,
            max_replicas=4,
        ),
    )

    print(
        f"\n{N_REQUESTS} requests over {span / 1e3:.0f} us, "
        f"8x flash crowd, p99 SLO {slo_ns:.0f} ns\n"
    )
    results = {}
    for label, reconfig in (("static", None), ("live reconfig", plan)):
        cluster = Cluster(
            shard_map=shard_map,
            services=services,
            n_replicas=2,
            n_cores=2,
            policy=RouterPolicy(),
            faults=None,
            reconfig=reconfig,
        )
        results[label] = simulate_cluster(
            cluster,
            arrivals,
            keys,
            telemetry=TelemetryConfig(window_ns=window, slo_p99_ns=slo_ns),
        )

    # Per-window burn-rate table: 5% error budget against the p99 SLO.
    burns = {
        label: burn_rate_report(r.telemetry, 0.05)
        for label, r in results.items()
    }
    print("          --- static ---          --- live reconfig ---")
    print("win      p99 ns  burn  left       p99 ns  burn  left")
    n = max(len(r.telemetry.windows) for r in results.values())
    for i in range(n):
        cells = []
        for label in ("static", "live reconfig"):
            ws = results[label].telemetry.windows
            if i >= len(ws):  # this run finished earlier
                cells.append("      -     -      -")
                continue
            w, b = ws[i], burns[label].windows[i]
            p99 = f"{w.p99_ns:7.0f}" if w.p99_ns is not None else "      -"
            cells.append(f"{p99}  {b.burn_rate:4.1f}  {b.budget_left:5.2f}")
        print(f"{i:3d}   {cells[0]}      {cells[1]}")

    static, live = results["static"], results["live reconfig"]
    print(
        f"\nstatic:        p99 {static.summary().p99_ns:7.0f} ns, "
        f"budget consumed {burns['static'].consumed:.2f}x"
    )
    print(
        f"live reconfig: p99 {live.summary().p99_ns:7.0f} ns, "
        f"budget consumed {burns['live reconfig'].consumed:.2f}x  "
        f"({len(live.epochs)} epochs, final {live.final_shards} shards, "
        f"{sum(1 for _, _, d in live.scale_events if d > 0)} scale-ups)"
    )

    assert live.final_shards == N_SHARDS + 1, "the split should land"
    assert live.scale_events, "the flash crowd should trip the autoscaler"
    assert burns["live reconfig"].consumed <= burns["static"].consumed, (
        "reconfiguration should not burn more budget than standing still"
    )


if __name__ == "__main__":
    main()
