"""Scenario: a learned index under inserts (the paper's future work).

The paper's conclusion: "As more learned index structures begin to
support updates, a benchmark against traditional indexes could be
fruitful."  This example drives the DynamicPGM extension (logarithmic
method over static PGM runs) through an insert-heavy workload, tracking
how the run hierarchy and index footprint evolve, and cross-checks every
answer against a plain dict.

Run:  python examples/dynamic_inserts.py
"""

import random
import time

from repro.learned.dynamic_pgm import DynamicPGM


def main() -> None:
    rng = random.Random(42)
    store = DynamicPGM(epsilon=32, buffer_capacity=512)
    reference = {}

    n_inserts = 50_000
    start = time.perf_counter()
    for i in range(n_inserts):
        key = rng.randrange(1 << 44)
        store.insert(key, i)
        reference[key] = i
        if (i + 1) % 10_000 == 0:
            elapsed = time.perf_counter() - start
            print(
                f"{i + 1:6d} inserts | {store.n_runs} runs | "
                f"index {store.index_size_bytes() / 1024:7.1f} KB | "
                f"{(i + 1) / elapsed / 1000:.0f}k inserts/s"
            )

    # Point lookups agree with the reference.
    sample = rng.sample(list(reference), 1_000)
    assert all(store.get(k) == reference[k] for k in sample)
    print(f"\n1000 random gets verified against a dict ({len(store)} keys)")

    # Range scan agrees.
    keys_sorted = sorted(reference)
    lo, hi = keys_sorted[1_000], keys_sorted[2_000]
    scanned = list(store.range(lo, hi))
    expected = [(k, reference[k]) for k in keys_sorted[1_000:2_000]]
    assert scanned == expected
    print(f"range scan [{lo}, {hi}) verified: {len(scanned)} records")

    # Overwrites take effect immediately.
    victim = sample[0]
    store.insert(victim, 10**9)
    assert store.get(victim) == 10**9
    print("overwrite semantics verified")


if __name__ == "__main__":
    main()
