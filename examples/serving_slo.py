"""Serving under an SLO: which index should serve this traffic?

Mean lookup latency says which index is fastest in a tight loop; a
server cares about the tail under a real arrival process.  This example
measures a few index configurations, simulates Poisson traffic against a
modelled 4-core server (repro.serve), and picks the cheapest index whose
simulated p99 meets the SLO.

Run:  python examples/serving_slo.py
"""

from repro import make_dataset, make_workload
from repro.bench import measure_index
from repro.serve import (
    MachineModel,
    select_under_slo,
    throughput,
)

N_CORES = 4


def main() -> None:
    dataset = make_dataset("amzn", 50_000, seed=0)
    workload = make_workload(dataset, 600, seed=1)

    # Candidates: a few configurations per index, measured on the
    # simulated CPU exactly like the paper's figures.
    candidates = []
    for index_name, configs in (
        ("RMI", [{"branching": 256}, {"branching": 4096}]),
        ("PGM", [{"epsilon": 8}, {"epsilon": 128}]),
        ("BTree", [{"gap": 2}, {"gap": 64}]),
    ):
        for config in configs:
            m = measure_index(
                dataset, workload, index_name, config, n_lookups=300
            )
            candidates.append(m)
            print(
                f"measured {m.index:6s} {str(config):22s} "
                f"{m.latency_ns:6.0f} ns  {m.size_mb:8.4f} MB"
            )

    # Offer 60% of the fastest candidate's modelled 4-core capacity, and
    # require p99 within 3x the best uncontended latency.
    machine = MachineModel()
    capacity = max(
        throughput(m, N_CORES, machine=machine).lookups_per_sec
        for m in candidates
    )
    offered = 0.6 * capacity
    slo_ns = 3.0 * min(m.latency_ns for m in candidates)
    print(
        f"\noffered load {offered / 1e6:.1f} M lookups/s on {N_CORES} "
        f"cores, SLO: p99 <= {slo_ns:.0f} ns"
    )

    selection = select_under_slo(
        candidates,
        offered_per_sec=offered,
        p99_slo_ns=slo_ns,
        n_requests=1_500,
        seed=0,
        n_cores=N_CORES,
        machine=machine,
    )
    print("\nindex   config                     p99      meets")
    for c in selection.candidates:
        meets = "yes" if c.summary.p99_ns <= slo_ns else "no"
        print(
            f"{c.index:6s}  {str(c.config):22s}  "
            f"{c.summary.p99_ns:7.0f} ns  {meets}"
        )

    chosen = selection.chosen
    assert chosen is not None, "no candidate met the SLO"
    print(
        f"\nchosen: {chosen.index} {chosen.config} -- cheapest at "
        f"{chosen.size_mb:.4f} MB with p99 "
        f"{chosen.summary.p99_ns:.0f} ns <= {slo_ns:.0f} ns"
    )


if __name__ == "__main__":
    main()
