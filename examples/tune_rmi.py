"""Scenario: auto-tune an RMI for your own data (CDFShop, Section 4.1).

The paper tunes every RMI with the CDFShop optimizer.  This example runs
the re-implemented tuner on a dataset you pick, prints the explored
Pareto frontier of (size, log2 error), and verifies the chosen
configuration end to end.

Run:  python examples/tune_rmi.py [dataset]
"""

import sys

from repro import make_dataset, make_workload, validate_index
from repro.learned.cdfshop import tune_rmi
from repro.memsim import AddressSpace, TracedArray


def main(dataset_name: str = "osm") -> None:
    dataset = make_dataset(dataset_name, 80_000, seed=2)
    print(f"tuning RMI on {dataset_name} ({dataset.n} keys)...\n")

    configs = tune_rmi(
        dataset.keys,
        max_branching_power=14,
        min_branching_power=6,
    )
    print(f"{'stage1':10s} {'branching':>9s} {'size KB':>9s} {'log2 err':>9s}")
    for cfg in configs:
        print(
            f"{cfg.stage1:10s} {cfg.branching:9d} "
            f"{cfg.size_bytes / 1024:9.1f} {cfg.mean_log2_error:9.2f}"
        )

    # Pick the most accurate config that stays under 64 KB.
    fitting = [c for c in configs if c.size_bytes <= 64 * 1024]
    chosen = min(fitting, key=lambda c: c.mean_log2_error)
    print(f"\nchosen: {chosen.stage1} x {chosen.branching} "
          f"({chosen.size_bytes / 1024:.1f} KB)")

    space = AddressSpace()
    data = TracedArray.allocate(space, dataset.keys, name="data")
    rmi = chosen.build(data, space)
    workload = make_workload(dataset, 2_000, mode="mixed")
    failure = validate_index(rmi, workload.keys_py)
    print(f"validity over 2000 mixed lookups: {failure or 'OK'}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "osm")
