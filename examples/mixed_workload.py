"""Scenario: pick a store for a mixed read/write service.

The paper's conclusion proposes exactly this benchmark: updatable learned
indexes vs traditional update-optimized structures under mixed
read/write load.  This example sizes the contenders across three service
profiles (a read-mostly cache feeder, a balanced session store, an
ingest-heavy log) and reports wall-clock throughput plus range-scan
support.

Run:  python examples/mixed_workload.py
"""

from repro.bench.readwrite import default_stores, make_mixed_workload, run_mixed

PROFILES = {
    "read-mostly (95/5)": 0.95,
    "balanced (50/50)": 0.50,
    "ingest-heavy (5/95)": 0.05,
}


def main() -> None:
    stores = default_stores()
    workloads = {
        name: make_mixed_workload(8_000, mix, n_preload=20_000, seed=9)
        for name, mix in PROFILES.items()
    }

    print(f"{'store':12s}" + "".join(f"{p:>22s}" for p in PROFILES))
    winners = {}
    for store_name, factory in stores.items():
        row = [f"{store_name:12s}"]
        for profile in PROFILES:
            result = run_mixed(store_name, factory, workloads[profile])
            kops = result.ops_per_sec / 1000
            row.append(f"{kops:18.0f}k/s")
            best = winners.get(profile)
            if best is None or kops > best[1]:
                winners[profile] = (store_name, kops)
        print("".join(row))

    print("\nfastest per profile (hash maps win raw point ops, but only the")
    print("ordered stores can serve range scans -- the paper's Table 1 point):")
    for profile, (name, kops) in winners.items():
        print(f"  {profile:22s} {name} ({kops:.0f}k ops/s)")

    # Ordered stores answer range queries; the dict cannot.
    from repro.learned.dynamic_pgm import DynamicPGM

    d = DynamicPGM()
    for i in range(100):
        d.insert(i * 10, i)
    scanned = list(d.range(200, 300))
    print(f"\nrange scan sanity on DynamicPGM: {len(scanned)} records in [200, 300)")
    assert len(scanned) == 10


if __name__ == "__main__":
    main()
