"""A mixed-tenant day: declarative scenarios, load shedding, replay.

One cluster, three tenants, one JSON document.  This example builds a
real index per shard, declares a scenario spec -- a gold tenant with a
diurnal (sinusoidal) day and a p99 SLO, a silver tenant with bursty
traffic over the upper half of the key space, and a bronze tenant whose
flash crowd hammers a Zipfian hotspot -- and runs it twice through the
multi-tenant serving layer (repro.serve.tenancy):

1. admission control OFF -- the bronze flash crowd queues behind gold
   and destroys its p99;
2. admission control ON -- bronze is shed at a shard-backlog threshold,
   gold's p99 returns inside its SLO.

Then the record-replay half: the merged tenant day is serialized,
reloaded, and replayed byte-identically -- every run is a pure function
of (spec, trace), and the spec itself round-trips through JSON.

Run:  python examples/tenant_day.py
"""

from repro import make_dataset, make_workload
from repro.bench import measure_index
from repro.serve import (
    AdmissionSpec,
    ArrivalSpec,
    KeySpaceSpec,
    ScenarioSpec,
    ServiceModel,
    TenantSpec,
    TenantTrace,
    TopologySpec,
    replay_trace,
    simulate_scenario,
    throughput,
)

N_SHARDS = 2
N_CORES = 2
SEED = 0


def main() -> None:
    dataset = make_dataset("amzn", 20_000, seed=SEED)

    # One real index build per shard, as in examples/cluster_failover.py.
    services = []
    slowest_ns = 0.0
    capacity = 0.0
    for shard in range(N_SHARDS):
        shard_ds = make_dataset(
            "amzn", len(dataset.keys) // N_SHARDS, seed=SEED + shard + 1
        )
        workload = make_workload(shard_ds, 400, seed=SEED + shard + 1)
        m = measure_index(
            shard_ds, workload, "RMI", {"branching": 256}, n_lookups=200
        )
        service = ServiceModel.from_measurement(m)
        services.append(service)
        slowest_ns = max(slowest_ns, service.service_ns(N_CORES))
        capacity += throughput(m, N_CORES).lookups_per_sec
        print(
            f"shard {shard}: RMI branching=256  "
            f"{m.latency_ns:6.0f} ns  {m.size_mb:.4f} MB"
        )

    offered = 0.6 * capacity
    gold_slo_ns = 10.0 * slowest_ns

    def day(admission: AdmissionSpec) -> ScenarioSpec:
        return ScenarioSpec(
            name="tenant-day",
            tenants=(
                TenantSpec(
                    name="gold",
                    slo_class="gold",
                    p99_slo_ns=gold_slo_ns,
                    arrivals=ArrivalSpec(
                        rate_per_sec=0.5 * offered,
                        n_requests=800,
                        seed=SEED + 101,
                        shape="diurnal",
                    ),
                    keyspace=KeySpaceSpec(seed=SEED + 101),
                ),
                TenantSpec(
                    name="silver",
                    slo_class="silver",
                    arrivals=ArrivalSpec(
                        rate_per_sec=0.2 * offered,
                        n_requests=400,
                        seed=SEED + 202,
                        shape="bursty",
                    ),
                    keyspace=KeySpaceSpec(
                        lo_frac=0.5, hi_frac=1.0, seed=SEED + 202
                    ),
                ),
                TenantSpec(
                    name="bronze",
                    slo_class="bronze",
                    arrivals=ArrivalSpec(
                        rate_per_sec=0.3 * offered,
                        n_requests=1_200,
                        seed=SEED + 303,
                        shape="flash",
                        params=(
                            ("spike_factor", 16.0),
                            ("spike_start_request", 150),
                            ("spike_len_requests", 900),
                        ),
                    ),
                    keyspace=KeySpaceSpec(
                        hi_frac=0.5, hot_theta=0.99, seed=SEED + 303
                    ),
                ),
            ),
            topology=TopologySpec(
                n_shards=N_SHARDS, n_replicas=1, n_cores=N_CORES
            ),
            admission=admission,
        )

    print(
        f"\noffered load {offered:,.0f} lookups/s "
        f"(0.6x capacity), gold p99 SLO {gold_slo_ns:.0f} ns"
    )

    for label, admission in (
        ("admission OFF", AdmissionSpec()),
        ("admission ON (shed bronze at backlog 6)",
         AdmissionSpec(enabled=True, bronze_depth=6, silver_depth=18)),
    ):
        result = simulate_scenario(day(admission), services, dataset.keys)
        print(f"\n--- {label} ---")
        for stats in result.tenants:
            summary = stats.summary()
            p99 = f"{summary.p99_ns:8.0f}" if summary else "       -"
            verdict = ""
            if stats.p99_slo_ns is not None:
                verdict = "  SLO met" if stats.slo_met() else "  SLO MISSED"
            print(
                f"{stats.name:>6} ({stats.slo_class:>6}): "
                f"{stats.completed:4d} done, {stats.shed:4d} shed, "
                f"p99 {p99} ns{verdict}"
            )

    # Record-replay: the day is an artifact.  Serialize the spec and the
    # merged trace, reload both, and replay -- byte-identical.
    spec = day(AdmissionSpec(enabled=True, bronze_depth=6, silver_depth=18))
    spec = ScenarioSpec.from_json(spec.to_json())  # JSON round trip
    trace = TenantTrace.from_spec(spec, dataset.keys)
    reloaded = TenantTrace.from_json(trace.to_json())
    first = simulate_scenario(spec, services, dataset.keys)
    again = replay_trace(spec, reloaded, services, keys=dataset.keys)
    identical = all(
        a.finish_ns == b.finish_ns and a.shed == b.shed
        for a, b in zip(first.cluster.records, again.cluster.records)
    )
    print(
        f"\nrecord-replay: spec key {spec.content_key()[:12]}, "
        f"trace key {trace.content_key()[:12]}, "
        f"{len(trace)} requests, replay identical: "
        f"{'yes' if identical else 'NO'}"
    )


if __name__ == "__main__":
    main()
