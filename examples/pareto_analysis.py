"""Scenario: choose an index for a memory budget (the paper's Figure 7).

You're sizing the in-memory index of a read-only store and have a hard
memory budget.  This example sweeps learned and traditional indexes over
their size knobs on a dataset, computes the Pareto front, and answers:
what is the fastest index that fits?

Run:  python examples/pareto_analysis.py [dataset] [budget_mb]
"""

import sys

from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    FIG7_INDEXES,
    dataset_and_workload,
    sweep,
)
from repro.core.pareto import ParetoPoint, pareto_front


def main(dataset_name: str = "amzn", budget_mb: float = 0.05) -> None:
    settings = BenchSettings(n_keys=80_000, n_lookups=400, max_configs=5)
    ds, wl = dataset_and_workload(dataset_name, settings)
    print(f"sweeping {FIG7_INDEXES} on {dataset_name} ({ds.n} keys)...")

    measurements = []
    for index_name in FIG7_INDEXES:
        measurements.extend(sweep(ds, wl, index_name, settings))

    points = [
        ParetoPoint(m.index, m.size_bytes, m.latency_ns, m.config)
        for m in measurements
    ]
    front = pareto_front(points)

    print("\nPareto front (size ascending):")
    for p in front:
        print(
            f"  {p.index:8s} {p.size_mb:10.4f} MB  {p.latency_ns:7.0f} ns  "
            f"{p.config}"
        )

    fitting = [p for p in front if p.size_mb <= budget_mb]
    if fitting:
        best = min(fitting, key=lambda p: p.latency_ns)
        print(
            f"\nfastest index within {budget_mb} MB: {best.index} "
            f"{best.config} ({best.latency_ns:.0f} ns, {best.size_mb:.4f} MB)"
        )
    else:
        print(f"\nno configuration fits within {budget_mb} MB")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "amzn"
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    main(name, budget)
