"""Quickstart: build a learned index, look up keys, measure it.

Run:  python examples/quickstart.py
"""

from repro import make_dataset, make_index, make_workload, validate_index
from repro.bench import measure_index
from repro.memsim import AddressSpace, TracedArray
from repro.search import binary_search


def main() -> None:
    # 1. A dataset: 100k keys shaped like Amazon book-popularity data.
    dataset = make_dataset("amzn", 100_000, seed=0)
    print(f"dataset: {dataset.name}, {dataset.n} unique sorted uint64 keys")

    # 2. Build an RMI over it.  The address space ties the index and the
    #    data into one simulated memory for the cache experiments; for
    #    plain use you can just pass the key array.
    space = AddressSpace()
    data = TracedArray.allocate(space, dataset.keys, name="data")
    rmi = make_index("RMI", branching=4096).build(data, space)
    print(f"RMI: {rmi.size_mb():.3f} MB, built in {rmi.build_seconds:.3f}s")

    # 3. Look up a key: the index returns a search bound, the last-mile
    #    search pins down the exact position.
    key = int(dataset.keys[12_345])
    bound = rmi.lookup(key)
    position = binary_search(data, key, bound)
    print(f"key {key}: bound [{bound.lo}, {bound.hi}) -> position {position}")
    assert position == 12_345

    # 4. Indexes must be valid for *any* key, present or not.
    workload = make_workload(dataset, 2_000, mode="mixed")
    failure = validate_index(rmi, workload.keys_py)
    print(f"validity check over 2000 mixed keys: {failure or 'OK'}")

    # 5. Measure it on the simulated CPU: per-lookup counters + estimated
    #    nanoseconds, the way every figure of the paper is reproduced.
    m = measure_index(dataset, workload, "RMI", {"branching": 4096},
                      n_lookups=500)
    c = m.counters
    print(
        f"measured: {m.latency_ns:.0f} ns/lookup | "
        f"{c.instructions:.0f} instructions, {c.llc_misses:.2f} cache misses, "
        f"{c.branch_misses:.2f} branch misses per lookup"
    )


if __name__ == "__main__":
    main()
