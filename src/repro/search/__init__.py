"""Last-mile search functions (Section 2 / Figure 11)."""

from repro.search.last_mile import (
    SEARCH_FUNCTIONS,
    binary_search,
    interpolation_search,
    linear_search,
)

__all__ = [
    "binary_search",
    "linear_search",
    "interpolation_search",
    "SEARCH_FUNCTIONS",
]
