"""Instrumented "last mile" search within a search bound.

Given a valid :class:`~repro.core.bounds.SearchBound` for a lookup key,
these functions locate the exact lower-bound position, charging the tracer
for every comparison, branch and memory read.  They operate on the
:class:`~repro.memsim.TracedArray` holding the sorted keys.

All three return the same position; they differ only in access pattern and
cost, which is exactly what Figure 11 of the paper studies.
"""

from __future__ import annotations

from repro.core.bounds import SearchBound
from repro.memsim.memory import TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer

# Instruction charges per step (beyond the loads/branches charged
# explicitly): index arithmetic, comparisons feeding the branch, and loop
# bookkeeping.  Values are rough Cascade Lake estimates; the cost model's
# conclusions are insensitive to +-50% changes here (see the cost-model
# ablation bench).
_BINARY_STEP_INSTR = 5
_LINEAR_STEP_INSTR = 3
_INTERP_STEP_INSTR = 12  # division + multiplications + clamps


def binary_search(
    data: TracedArray,
    key: int,
    bound: SearchBound,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """Classic lower-bound binary search restricted to ``bound``."""
    lo = bound.lo
    hi = min(bound.hi, len(data))
    while lo < hi:
        mid = (lo + hi) // 2
        tracer.instr(_BINARY_STEP_INSTR)
        goes_right = data.get(mid, tracer) < key
        tracer.branch("lastmile.binary", goes_right)
        if goes_right:
            lo = mid + 1
        else:
            hi = mid
    return lo


def linear_search(
    data: TracedArray,
    key: int,
    bound: SearchBound,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """Forward scan from ``bound.lo`` until a key >= the lookup key."""
    n = len(data)
    hi = min(bound.hi, n)
    pos = bound.lo
    while pos < hi:
        tracer.instr(_LINEAR_STEP_INSTR)
        stop = data.get(pos, tracer) >= key
        tracer.branch("lastmile.linear", stop)
        if stop:
            return pos
        pos += 1
    return pos


def interpolation_search(
    data: TracedArray,
    key: int,
    bound: SearchBound,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """Interpolation search with a binary-search fallback.

    Assumes keys are roughly uniform within the bound; each probe is placed
    proportionally between the bound's endpoint keys.  When the range stops
    shrinking fast (or endpoint keys are equal) it falls back to binary
    search, guaranteeing termination and correctness on any input.
    """
    n = len(data)
    lo = bound.lo
    hi = min(bound.hi, n)
    if lo >= hi:
        return lo
    # Interpolate on the closed range [lo, hi - 1].
    right = hi - 1
    for _ in range(8):  # bounded number of interpolation probes
        if right - lo < 16:
            break
        lo_key = data.get(lo, tracer)
        right_key = data.get(right, tracer)
        tracer.instr(_INTERP_STEP_INSTR)
        if key <= lo_key:
            tracer.branch("lastmile.interp.edge", True)
            return lo
        if key > right_key:
            tracer.branch("lastmile.interp.edge", True)
            return right + 1
        tracer.branch("lastmile.interp.edge", False)
        span = right_key - lo_key
        if span <= 0:
            break
        probe = lo + int((key - lo_key) * (right - lo) / span)
        probe = min(max(probe, lo + 1), right - 1)
        goes_right = data.get(probe, tracer) < key
        tracer.branch("lastmile.interp", goes_right)
        if goes_right:
            lo = probe + 1
        else:
            right = probe
    return binary_search(data, key, SearchBound(lo, right + 1), tracer)


def exponential_search(
    data: TracedArray,
    key: int,
    bound: SearchBound,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """Exponential (galloping) search from the bound's midpoint.

    The paper suggests integrating exponential search as future work,
    noting "it is not immediately clear how to integrate a search bound"
    (Section 4.2.3).  This integration gallops outward from the center of
    the bound -- the index's best position estimate -- doubling the step
    until the key is straddled, then finishes with binary search.  Cost is
    logarithmic in the *actual* prediction error rather than in the bound
    width, so it wins when bounds are conservative.
    """
    n = len(data)
    lo = bound.lo
    hi = min(bound.hi, n)
    if lo >= hi:
        return lo
    mid = (lo + hi) // 2
    tracer.instr(3)
    if data.get(mid, tracer) < key:
        # Gallop right: find the first probe with key >= lookup key.
        step = 1
        prev = mid + 1
        while prev < hi:
            probe = min(prev + step - 1, hi - 1)
            tracer.instr(4)
            goes_on = data.get(probe, tracer) < key
            tracer.branch("lastmile.expo", goes_on)
            if not goes_on:
                return binary_search(data, key, SearchBound(prev, probe + 1), tracer)
            prev = probe + 1
            step *= 2
        return binary_search(data, key, SearchBound(prev, hi), tracer)
    # Gallop left: find the last probe with key < lookup key.
    step = 1
    prev = mid
    while prev > lo:
        probe = max(prev - step, lo)
        tracer.instr(4)
        goes_on = data.get(probe, tracer) >= key
        tracer.branch("lastmile.expo", goes_on)
        if not goes_on:
            return binary_search(data, key, SearchBound(probe + 1, prev + 1), tracer)
        prev = probe
        step *= 2
    return binary_search(data, key, SearchBound(lo, min(prev + 1, hi)), tracer)


_SIP_FIRST_INSTR = 20  # slope division + fma + clamps
_SIP_STEP_INSTR = 5  # slope-reuse fma + clamp (no division)


def sip_search(
    data: TracedArray,
    key: int,
    bound: SearchBound,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """Slope-reuse interpolation search (SIP, Van Sandt et al.).

    The paper mentions SIP as a candidate last-mile technique whose
    "precomputation steps vary depending on the search bound used"
    (Section 4.2.3).  This integration computes the slope once from the
    bound's endpoint keys, then takes division-free slope-reuse steps
    (one fused multiply-add each); a bracketing invariant guarantees
    correctness, with a binary-search finish after a fixed step budget.
    """
    n = len(data)
    lo = bound.lo
    hi = min(bound.hi, n)
    if hi - lo < 16:
        return binary_search(data, key, SearchBound(lo, bound.hi), tracer)

    k_lo = data.get(lo, tracer)
    k_hi = data.get(hi - 1, tracer)
    tracer.instr(_SIP_FIRST_INSTR)
    if key <= k_lo:
        tracer.branch("lastmile.sip.edge", True)
        return lo
    if key > k_hi:
        tracer.branch("lastmile.sip.edge", True)
        return hi
    tracer.branch("lastmile.sip.edge", False)
    span = k_hi - k_lo
    if span <= 0:
        return binary_search(data, key, SearchBound(lo, hi), tracer)
    slope = (hi - 1 - lo) / span

    # Bracket invariant: LB(key) in [b_lo, b_hi].
    b_lo, b_hi = lo + 1, hi - 1
    pos = lo + int((key - k_lo) * slope)
    for _ in range(4):
        if b_hi - b_lo < 8:
            break
        pos = min(max(pos, b_lo), b_hi - 1)
        probe_key = data.get(pos, tracer)
        tracer.instr(_SIP_STEP_INSTR)
        goes_right = probe_key < key
        tracer.branch("lastmile.sip", goes_right)
        if goes_right:
            b_lo = pos + 1
        else:
            b_hi = pos
        # Slope reuse: one FMA, no division.
        pos = pos + int((key - probe_key) * slope)
    return binary_search(data, key, SearchBound(b_lo, b_hi + 1), tracer)


#: Name -> function mapping used by the harness and Figure 11.
SEARCH_FUNCTIONS = {
    "binary": binary_search,
    "linear": linear_search,
    "interpolation": interpolation_search,
    "exponential": exponential_search,
    "sip": sip_search,
}
