"""Search bounds and the lower-bound definition from Section 2.

The lower bound ``LB(x)`` of a key ``x`` in a sorted array ``D`` is the
position of the smallest key greater than or equal to ``x``; if ``x`` is
greater than every key, ``LB(x) = len(D)`` (matching C++
``std::lower_bound``).  A bound ``(lo, hi)`` is *valid* for ``x`` if
``lo <= LB(x) < hi`` -- ``hi`` is exclusive, so the widest valid bound over
an ``n``-key array is ``(0, n + 1)``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SearchBound:
    """Half-open position range ``[lo, hi)`` that must contain ``LB(key)``."""

    lo: int
    hi: int

    def __post_init__(self):
        if self.lo < 0:
            raise ValueError(f"SearchBound.lo must be >= 0, got {self.lo}")
        if self.hi < self.lo:
            raise ValueError(f"SearchBound hi < lo: ({self.lo}, {self.hi})")

    def __len__(self) -> int:
        return self.hi - self.lo

    def contains(self, position: int) -> bool:
        return self.lo <= position < self.hi

    def clamp(self, n: int) -> "SearchBound":
        """Clamp to the positions valid for an ``n``-key array: [0, n + 1)."""
        lo = min(max(self.lo, 0), n)
        hi = min(max(self.hi, lo + 1), n + 1)
        return SearchBound(lo, hi)

    @staticmethod
    def around(estimate: int, error: int, n: int) -> "SearchBound":
        """Bound centered on a position estimate with symmetric max error."""
        return SearchBound(max(0, estimate - error), estimate + error + 1).clamp(n)

    @staticmethod
    def full(n: int) -> "SearchBound":
        """The trivial bound covering every position of an n-key array."""
        return SearchBound(0, n + 1)


def lower_bound_position(keys: Sequence[int], key: int) -> int:
    """Reference (untraced) lower bound: ground truth for validation."""
    return bisect.bisect_left(keys, key)
