"""Core formalism of the benchmark (Section 2 of the paper).

An index structure over a zero-indexed sorted array maps an integer lookup
key to a :class:`SearchBound` guaranteed to contain the key's lower bound
(the position of the smallest key >= the lookup key).  A "last mile" search
(:mod:`repro.search`) then locates the exact position within the bound.
"""

from repro.core.bounds import SearchBound, lower_bound_position
from repro.core.interface import Capabilities, SortedDataIndex
from repro.core.registry import (
    available_indexes,
    get_index_class,
    make_index,
    register_index,
)
from repro.core.pareto import ParetoPoint, pareto_front
from repro.core.validation import validate_index

__all__ = [
    "SearchBound",
    "lower_bound_position",
    "Capabilities",
    "SortedDataIndex",
    "register_index",
    "get_index_class",
    "make_index",
    "available_indexes",
    "ParetoPoint",
    "pareto_front",
    "validate_index",
]
