"""Pareto-front analysis over (size, latency) points (Section 4.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class ParetoPoint:
    """One measured index configuration."""

    index: str
    size_bytes: int
    latency_ns: float
    config: dict = field(default_factory=dict, compare=False)

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024.0 * 1024.0)


def pareto_front(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Return the Pareto-optimal subset (minimize both size and latency).

    A point is optimal if no other point is at least as good on both axes
    and strictly better on one.  Output is sorted by size ascending.
    """
    ordered = sorted(points, key=lambda p: (p.size_bytes, p.latency_ns))
    front: List[ParetoPoint] = []
    best_latency = float("inf")
    for p in ordered:
        if p.latency_ns < best_latency:
            front.append(p)
            best_latency = p.latency_ns
    return front


def dominated_by(p: ParetoPoint, q: ParetoPoint) -> bool:
    """True if ``q`` dominates ``p``."""
    no_worse = q.size_bytes <= p.size_bytes and q.latency_ns <= p.latency_ns
    better = q.size_bytes < p.size_bytes or q.latency_ns < p.latency_ns
    return no_worse and better


def front_by_index(points: Sequence[ParetoPoint]) -> Dict[str, List[ParetoPoint]]:
    """Group points by index name and compute each index's own front."""
    grouped: Dict[str, List[ParetoPoint]] = {}
    for p in points:
        grouped.setdefault(p.index, []).append(p)
    return {name: pareto_front(pts) for name, pts in grouped.items()}
