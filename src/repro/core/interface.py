"""The index interface every structure in the benchmark implements."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.bounds import SearchBound
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class Capabilities:
    """Capability row for the paper's Table 1."""

    updates: bool
    ordered: bool
    kind: str  # "Learned", "Tree", "Trie", "Hash", "Hybrid hash/trie", ...


class SortedDataIndex(abc.ABC):
    """An approximate index over a sorted integer array.

    Lifecycle: construct with hyperparameters, then :meth:`build` against a
    :class:`~repro.memsim.TracedArray` of sorted keys that lives in some
    :class:`~repro.memsim.AddressSpace`.  The index allocates its own
    internal arrays from the same space (so the cache simulator sees every
    structure at distinct addresses) and registers them for size
    accounting.

    ``lookup(key, tracer)`` must return a bound containing ``LB(key)`` for
    *every* integer key, present or absent (hash tables are the documented
    exception; see :attr:`point_only`).
    """

    #: Registry name, e.g. "RMI"; set by subclasses.
    name: str = "abstract"
    capabilities: Capabilities = Capabilities(updates=False, ordered=True, kind="?")
    #: True for structures that only support lookups of present keys.
    point_only: bool = False
    #: True for structures whose ``lookup`` mutates internal state (none
    #: today).  Such lookups are not pure functions of the key, so the
    #: harness must not reuse recorded event traces for them
    #: (``measure(..., replay=True)`` falls back to direct execution).
    mutating_lookups: bool = False

    def __init__(self) -> None:
        self._arrays: List[TracedArray] = []
        self._extra_bytes: int = 0
        self._data: Optional[TracedArray] = None
        self.build_seconds: float = 0.0

    # -- construction -----------------------------------------------------

    @abc.abstractmethod
    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        """Populate internal structures from the sorted key array."""

    def build(
        self,
        data: Union[TracedArray, Sequence, np.ndarray],
        space: Optional[AddressSpace] = None,
    ) -> "SortedDataIndex":
        """Build the index; returns self.

        ``data`` may be a raw sorted sequence for convenience, in which
        case a private address space is created.
        """
        import time

        if not isinstance(data, TracedArray):
            if space is None:
                space = AddressSpace()
            arr = np.asarray(data)
            if arr.dtype != np.uint32:  # keep 32-bit data 32-bit
                arr = arr.astype(np.uint64)
            data = TracedArray.allocate(space, arr, name="data")
        elif space is None:
            raise ValueError(
                "an AddressSpace is required when building from a TracedArray"
            )
        self._data = data
        start = time.perf_counter()
        self._build(data, space)
        self.build_seconds = time.perf_counter() - start
        return self

    # -- lookup ------------------------------------------------------------

    @abc.abstractmethod
    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        """Return a valid search bound for ``key``."""

    # -- accounting --------------------------------------------------------

    def _register(self, arr: TracedArray) -> TracedArray:
        """Record an internal array for size accounting; returns it."""
        self._arrays.append(arr)
        return arr

    def _register_bytes(self, nbytes: int) -> None:
        """Record non-array overhead (headers, scalars) for size accounting."""
        self._extra_bytes += nbytes

    def size_bytes(self) -> int:
        """In-memory footprint of the index (excluding the data array)."""
        return sum(a.nbytes for a in self._arrays) + self._extra_bytes

    def size_mb(self) -> float:
        return self.size_bytes() / (1024.0 * 1024.0)

    @property
    def data(self) -> TracedArray:
        if self._data is None:
            raise RuntimeError(f"{self.name} has not been built")
        return self._data

    @property
    def n_keys(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        built = self._data is not None
        size = f", {self.size_mb():.3f} MB" if built else " (unbuilt)"
        return f"<{type(self).__name__}{size}>"
