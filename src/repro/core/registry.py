"""Registry of index implementations, keyed by the paper's names."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.core.interface import SortedDataIndex

_REGISTRY: Dict[str, Type[SortedDataIndex]] = {}


def register_index(cls: Type[SortedDataIndex]) -> Type[SortedDataIndex]:
    """Class decorator adding an index implementation to the registry."""
    name = cls.name
    if name in ("abstract", ""):
        raise ValueError(f"{cls.__name__} must set a registry name")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(f"duplicate index registration: {name}")
    _REGISTRY[name] = cls
    return cls


def _ensure_loaded() -> None:
    """Import all implementation modules so their decorators run."""
    import repro.learned  # noqa: F401
    import repro.traditional  # noqa: F401
    import repro.hashing  # noqa: F401


def get_index_class(name: str) -> Type[SortedDataIndex]:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown index {name!r}; known: {known}") from None


def make_index(name: str, **config) -> SortedDataIndex:
    """Instantiate a registered index with hyperparameters."""
    return get_index_class(name)(**config)


def available_indexes() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)
