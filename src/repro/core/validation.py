"""Validity checking: every index must bound the true lower bound.

The paper requires an index to return a search bound containing ``LB(x)``
for every possible lookup key (Section 2).  ``validate_index`` checks an
index against arbitrary probe keys, including absent keys and keys outside
the data range, and reports the first violation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.interface import SortedDataIndex


@dataclass
class ValidationFailure:
    key: int
    true_position: int
    bound_lo: int
    bound_hi: int

    def __str__(self) -> str:
        return (
            f"key {self.key}: LB position {self.true_position} outside "
            f"bound [{self.bound_lo}, {self.bound_hi})"
        )


def validate_index(
    index: SortedDataIndex,
    probe_keys: Iterable[int],
    require_present: bool = False,
) -> Optional[ValidationFailure]:
    """Check bound validity for each probe key; return first failure or None.

    ``require_present`` restricts checking to keys present in the data
    (used for point-only structures such as hash tables).
    """
    keys = index.data._py
    key_set = set(keys) if require_present else None
    for key in probe_keys:
        key = int(key)  # accept numpy scalars without overflow surprises
        if key_set is not None and key not in key_set:
            continue
        true_pos = bisect.bisect_left(keys, key)
        bound = index.lookup(key)
        if not bound.contains(true_pos):
            return ValidationFailure(key, true_pos, bound.lo, bound.hi)
    return None
