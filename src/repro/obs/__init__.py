"""Observability layer: spans, metrics, run sinks, lookup-phase profiles.

The harness, parallel runner, memsim engines and serving simulator all
report here; see ``docs/observability.md`` for the span API, metric
naming conventions, manifest schema and how to read a phase breakdown.

Off by default.  Three independent ambient switches, all inherited by
pool workers through the environment:

* ``REPRO_OBS=1`` (or :func:`repro.obs.spans.enable`) -- record spans.
* ``REPRO_OBS_PROFILE=1`` (CLI ``--profile``) -- per-phase counter
  attribution inside measured lookups.
* ``--obs-dir DIR`` -- write ``manifest.json`` / ``spans.jsonl`` /
  ``metrics.json`` next to a run's results (implies ``REPRO_OBS=1``).

With every switch off, the instrumentation left in hot paths is a no-op
``Tracer.phase`` call and a truthiness test per coarse region; the
overhead-guard benchmark (``benchmarks/test_bench_obs.py``) holds that
to <2% of a representative fig7 cell.
"""

from repro.obs import metrics, sink, spans
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.phase import (
    PHASE_MODEL,
    PHASE_ORDER,
    PHASE_OTHER,
    PHASE_SEARCH,
    PhaseTracer,
    phase_window,
    profiling_enabled,
    set_profiling,
)
from repro.obs.sink import JsonlSink, run_manifest, write_run
from repro.obs.spans import capture, drain, enable, enabled, inject, span

__all__ = [
    "metrics",
    "sink",
    "spans",
    "MetricsRegistry",
    "get_registry",
    "PHASE_MODEL",
    "PHASE_ORDER",
    "PHASE_OTHER",
    "PHASE_SEARCH",
    "PhaseTracer",
    "phase_window",
    "profiling_enabled",
    "set_profiling",
    "JsonlSink",
    "run_manifest",
    "write_run",
    "capture",
    "drain",
    "enable",
    "enabled",
    "inject",
    "span",
]
