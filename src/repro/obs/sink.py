"""Run sinks: JSONL event streams plus a self-describing run manifest.

Every observed run writes three artifacts next to its exports, so a
results directory explains itself months later:

* ``manifest.json`` -- git SHA, settings + their content hash, memsim
  engine, seed, interpreter/numpy versions, argv, schema version.
* ``spans.jsonl`` -- one span record per line, parent-linked.
* ``metrics.json`` -- the final :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot.

The sink is append-per-line with an explicit flush per event batch, so
a crashed run still leaves a readable prefix.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys

from typing import Iterable, Optional

#: Bump when the span/metrics/manifest record layout changes meaning.
OBS_SCHEMA_VERSION = 1

SPANS_FILENAME = "spans.jsonl"
METRICS_FILENAME = "metrics.json"
MANIFEST_FILENAME = "manifest.json"
TIMESERIES_FILENAME = "timeseries.jsonl"


class JsonlSink:
    """Append-only JSON-lines writer with an event counter."""

    def __init__(self, path: str):
        self.path = path
        self.events = 0
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._file = open(path, "a")

    def emit(self, record: dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True))
        self._file.write("\n")
        self.events += 1

    def emit_many(self, records: Iterable[dict]) -> int:
        n = 0
        for record in records:
            self.emit(record)
            n += 1
        self._file.flush()
        return n

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_jsonl(path: str) -> list:
    """Load a JSONL file, skipping a trailing partial line if present."""
    records = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                break  # torn tail of a crashed run
    return records


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def config_hash(config: dict) -> str:
    """Stable short hash of a JSON-able configuration dict."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def run_manifest(
    settings=None, argv: Optional[list] = None, extra: Optional[dict] = None
) -> dict:
    """Everything needed to say *what produced these numbers*.

    ``settings`` is a :class:`~repro.bench.config.BenchSettings` (or any
    object with ``__dict__``); the manifest embeds both the raw values
    and their content hash so two result directories can be compared at
    a glance.
    """
    from repro.memsim.engine import default_engine_name

    manifest = {
        "schema": OBS_SCHEMA_VERSION,
        "git_sha": _git_sha(),
        "memsim_engine": default_engine_name(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": list(sys.argv) if argv is None else list(argv),
    }
    try:
        import numpy

        manifest["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        manifest["numpy"] = None
    if settings is not None:
        config = {
            k: v for k, v in vars(settings).items() if not k.startswith("_")
        }
        manifest["settings"] = config
        manifest["config_hash"] = config_hash(config)
        manifest["seed"] = config.get("seed")
    if extra:
        manifest.update(extra)
    return manifest


def write_run(
    obs_dir: str,
    spans: Optional[list] = None,
    metrics_snapshot: Optional[dict] = None,
    manifest: Optional[dict] = None,
    timeseries: Optional[list] = None,
) -> dict:
    """Write the run artifacts into ``obs_dir``; returns their paths.

    ``timeseries`` is a list of labelled serving-telemetry records
    (``{"label", "content_key", "series"}``, see
    :func:`repro.serve.telemetry.publish`) written as
    ``timeseries.jsonl`` -- the stream ``python -m repro.obs timeline``
    renders.
    """
    os.makedirs(obs_dir, exist_ok=True)
    paths = {}
    if manifest is not None:
        path = os.path.join(obs_dir, MANIFEST_FILENAME)
        with open(path, "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
            f.write("\n")
        paths["manifest"] = path
    if spans is not None:
        path = os.path.join(obs_dir, SPANS_FILENAME)
        with JsonlSink(path) as sink:
            sink.emit_many(spans)
        paths["spans"] = path
    if metrics_snapshot is not None:
        path = os.path.join(obs_dir, METRICS_FILENAME)
        with open(path, "w") as f:
            json.dump(metrics_snapshot, f, indent=2, sort_keys=True)
            f.write("\n")
        paths["metrics"] = path
    if timeseries is not None:
        path = os.path.join(obs_dir, TIMESERIES_FILENAME)
        with JsonlSink(path) as sink:
            sink.emit_many(timeseries)
        paths["timeseries"] = path
    return paths
