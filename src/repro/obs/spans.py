"""Zero-dependency span tracer: nested, timed regions of a run.

A span is one named region of execution (``build``, ``measure``, one
grid ``cell``...) with monotonic wall-clock timing, arbitrary scalar
attributes, and optional attachment of memsim counter deltas.  Spans
nest through a :mod:`contextvars` stack, so they stay correct across
generators and (hypothetically) async callers, and every finished span
is appended to a process-local buffer as a plain JSON-able dict.

Observability is **off by default**: :func:`span` then returns a shared
inert context manager and records nothing, so instrumented code pays
one truthiness test per region.  Enablement is ambient via the
``REPRO_OBS`` environment variable (inherited by pool workers, exactly
like ``REPRO_MEMSIM_ENGINE``) or explicit via :func:`enable`.

Multiprocess use follows a record-and-ship model: each worker captures
into its own buffer (:func:`capture` swaps in a fresh one, which also
isolates fork-inherited parent spans), returns the finished records
with its result, and the parent merges them in deterministic task
order -- span *content* is then identical between a serial run and a
``--jobs N`` run modulo pids (``tests/test_obs_merge.py``).
"""

from __future__ import annotations

import os
import time

from contextvars import ContextVar
from typing import Dict, List, Optional

_ENV_VAR = "REPRO_OBS"

_enabled: Optional[bool] = None  # None -> consult the environment

#: (span_id, name) tuples of the open spans enclosing the current frame.
_STACK: ContextVar[tuple] = ContextVar("repro_obs_span_stack", default=())

#: Finished spans of this process, as JSON-able dicts, completion order.
_BUFFER: List[dict] = []

_seq = 0


def enabled() -> bool:
    """Span recording on?  Explicit :func:`enable` beats ``REPRO_OBS``."""
    if _enabled is not None:
        return _enabled
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


def enable(on: bool = True) -> None:
    """Force span recording on/off for this process (overrides the env)."""
    global _enabled
    _enabled = bool(on)


def reset() -> None:
    """Drop all buffered spans and return to environment-driven gating."""
    global _enabled, _seq
    _enabled = None
    _seq = 0
    _BUFFER.clear()


def _next_id() -> str:
    global _seq
    _seq += 1
    return f"{os.getpid()}:{_seq}"


class _NullSpan:
    """Shared inert context manager returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; finishes (and buffers its record) on ``__exit__``."""

    __slots__ = ("sid", "name", "attrs", "tracer", "_t0", "_base", "_token")

    def __init__(self, name: str, tracer, attrs: Dict[str, object]):
        self.sid = _next_id()
        self.name = name
        self.attrs = attrs
        self.tracer = tracer
        self._t0 = 0
        self._base = None
        self._token = None

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        stack = _STACK.get()
        self._token = _STACK.set(stack + ((self.sid, self.name),))
        if self.tracer is not None:
            self._base = self.tracer.snapshot()
        self._t0 = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.monotonic_ns()
        _STACK.reset(self._token)
        stack = _STACK.get()
        record = {
            "sid": self.sid,
            "parent": stack[-1][0] if stack else None,
            "path": "/".join(name for _, name in stack + ((None, self.name),)),
            "name": self.name,
            "pid": os.getpid(),
            "start_ns": self._t0,
            "wall_ns": t1 - self._t0,
            "status": "error" if exc_type is not None else "ok",
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self._base is not None:
            delta = self.tracer.snapshot() - self._base
            record["counters"] = {
                "instructions": delta.instructions,
                "branches": delta.branches,
                "branch_misses": delta.branch_misses,
                "reads": delta.reads,
                "llc_misses": delta.llc_misses,
                "tlb_misses": delta.tlb_misses,
            }
        _BUFFER.append(record)
        return False  # never swallow the exception


def span(name: str, tracer=None, **attrs):
    """Open a span named ``name``; use as a context manager.

    ``tracer`` may be any object with a ``snapshot()`` returning
    :class:`~repro.memsim.counters.PerfCounters`; the span then carries
    the counter delta accrued while it was open.  Extra keyword
    arguments become span attributes (keep them JSON scalars).
    Returns an inert shared instance when observability is off.
    """
    if not enabled():
        return _NULL_SPAN
    return _Span(name, tracer, attrs)


def record(name: str, start_ns: int, wall_ns: int, **attrs) -> None:
    """Append a synthetic completed-span record at the current stack depth.

    For regions timed outside the span machinery (e.g. the runner's
    cache-hit path, which only knows it was a hit after the fact).
    No-op while observability is off.
    """
    if not enabled():
        return
    stack = _STACK.get()
    rec = {
        "sid": _next_id(),
        "parent": stack[-1][0] if stack else None,
        "path": "/".join([n for _, n in stack] + [name]),
        "name": name,
        "pid": os.getpid(),
        "start_ns": start_ns,
        "wall_ns": wall_ns,
        "status": "ok",
    }
    if attrs:
        rec["attrs"] = attrs
    _BUFFER.append(rec)


def current_span_path() -> str:
    """Slash-joined names of the open spans (empty string at top level)."""
    return "/".join(name for _, name in _STACK.get())


def drain() -> List[dict]:
    """Return all buffered span records and clear the buffer."""
    records = list(_BUFFER)
    _BUFFER.clear()
    return records


def inject(records: List[dict]) -> None:
    """Merge externally produced records (e.g. from a pool worker)."""
    _BUFFER.extend(records)


def peek() -> List[dict]:
    """The buffered records, without clearing (tests, summaries)."""
    return list(_BUFFER)


class _Capture:
    """Context manager that redirects the buffer into a private list."""

    __slots__ = ("records", "_saved")

    def __init__(self) -> None:
        self.records: List[dict] = []
        self._saved: List[dict] = []

    def __enter__(self) -> "_Capture":
        # Swap the buffer contents aside; restore on exit.  This both
        # collects only the spans of the captured region and isolates a
        # fork-spawned worker from records inherited from its parent.
        self._saved = list(_BUFFER)
        _BUFFER.clear()
        return self

    def __exit__(self, *exc) -> bool:
        self.records.extend(_BUFFER)
        _BUFFER.clear()
        _BUFFER.extend(self._saved)
        return False


def capture() -> _Capture:
    """Capture the spans of a region into ``capture().records``."""
    return _Capture()
