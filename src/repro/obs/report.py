"""Render observability data: phase tables, span flame tables, load views.

Everything here consumes plain data (span dicts, measurements, runner
stats) and returns strings/SVG -- no global state, so the same
formatters serve the live CLI (``--profile``) and the offline
``python -m repro.obs summary`` reader.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.report import format_table
from repro.obs.phase import PHASE_ORDER

# --------------------------------------------------------------------
# Phase breakdown (the paper-style model vs last-mile table)
# --------------------------------------------------------------------


def _phase_sort_key(name: str) -> Tuple[int, str]:
    try:
        return (PHASE_ORDER.index(name), name)
    except ValueError:
        return (len(PHASE_ORDER), name)


def format_phase_table(measurements: Iterable) -> str:
    """Per-phase counter split for every profiled measurement.

    Skips measurements without phase data (e.g. resolved from an old
    cache).  Counters are shown per lookup; ``instr%`` is the phase's
    share of total instructions, the paper's first-order latency proxy.
    """
    rows = []
    for m in measurements:
        phases = getattr(m, "phases", None)
        if not phases:
            continue
        n = max(m.n_lookups, 1)
        total_instr = sum(c.instructions for c in phases.values())
        cfg = ",".join(f"{k}={v}" for k, v in sorted(m.config.items()))
        for name in sorted(phases, key=_phase_sort_key):
            c = phases[name]
            rows.append(
                (
                    m.index,
                    m.dataset,
                    cfg or "-",
                    name,
                    c.instructions / n,
                    c.branches / n,
                    c.branch_misses / n,
                    c.llc_misses / n,
                    100.0 * c.instructions / total_instr if total_instr else 0.0,
                )
            )
    if not rows:
        return "no phase data (run with --profile)"
    return format_table(
        [
            "index",
            "dataset",
            "config",
            "phase",
            "instr/op",
            "branch/op",
            "brmiss/op",
            "llcmiss/op",
            "instr%",
        ],
        rows,
    )


def phase_breakdown_svg(measurements: Iterable, title: str = "") -> str:
    """Stacked horizontal bars: per-lookup instructions by phase.

    Dependency-free SVG in the style of :mod:`repro.bench.svgplot`; one
    bar per profiled measurement, segments in canonical phase order.
    """
    palette = {"model": "#0072B2", "search": "#D55E00", "other": "#999999"}
    fallback = ("#009E73", "#CC79A7", "#E69F00")
    bars = []
    for m in measurements:
        phases = getattr(m, "phases", None)
        if not phases:
            continue
        n = max(m.n_lookups, 1)
        cfg = ",".join(f"{k}={v}" for k, v in sorted(m.config.items()))
        label = f"{m.index}/{m.dataset}" + (f" ({cfg})" if cfg else "")
        segments = [
            (name, phases[name].instructions / n)
            for name in sorted(phases, key=_phase_sort_key)
        ]
        bars.append((label, segments))
    if not bars:
        return "<svg xmlns='http://www.w3.org/2000/svg'/>"

    bar_h, gap, left, top = 22, 8, 260, 46
    width = 900
    plot_w = width - left - 30
    height = top + len(bars) * (bar_h + gap) + 40
    max_total = max(sum(v for _, v in segs) for _, segs in bars) or 1.0
    out = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' font-family='sans-serif' font-size='12'>",
        f"<text x='{left}' y='20' font-size='15'>"
        f"{title or 'Lookup-phase instruction breakdown (per lookup)'}</text>",
    ]
    seen_phases: List[str] = []
    for i, (label, segments) in enumerate(bars):
        y = top + i * (bar_h + gap)
        out.append(
            f"<text x='{left - 8}' y='{y + bar_h - 6}' "
            f"text-anchor='end'>{label}</text>"
        )
        x = float(left)
        for name, value in segments:
            if name not in seen_phases:
                seen_phases.append(name)
            w = plot_w * value / max_total
            color = palette.get(
                name, fallback[seen_phases.index(name) % len(fallback)]
            )
            out.append(
                f"<rect x='{x:.1f}' y='{y}' width='{max(w, 0.5):.1f}' "
                f"height='{bar_h}' fill='{color}'><title>{name}: "
                f"{value:.1f} instr/lookup</title></rect>"
            )
            x += w
        out.append(
            f"<text x='{x + 6:.1f}' y='{y + bar_h - 6}'>"
            f"{sum(v for _, v in segments):.0f}</text>"
        )
    legend_x = left
    legend_y = height - 14
    for name in seen_phases:
        color = palette.get(name, fallback[seen_phases.index(name) % len(fallback)])
        out.append(
            f"<rect x='{legend_x}' y='{legend_y - 10}' width='12' "
            f"height='12' fill='{color}'/>"
        )
        out.append(f"<text x='{legend_x + 16}' y='{legend_y}'>{name}</text>")
        legend_x += 16 + 8 * len(name) + 24
    out.append("</svg>")
    return "\n".join(out)


# --------------------------------------------------------------------
# Span views (flame table, slowest cells, worker balance)
# --------------------------------------------------------------------


def format_span_flame(spans: Sequence[dict], limit: int = 20) -> str:
    """Aggregate spans by path: count, total/self wall time, errors.

    ``self`` subtracts the time of *direct* children, so the table reads
    like a collapsed flame graph sorted by total time.
    """
    if not spans:
        return "no spans recorded"
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    errors: Dict[str, int] = {}
    child_totals: Dict[str, float] = {}
    for s in spans:
        path = s.get("path", s.get("name", "?"))
        wall = s.get("wall_ns", 0)
        totals[path] = totals.get(path, 0.0) + wall
        counts[path] = counts.get(path, 0) + 1
        if s.get("status") == "error":
            errors[path] = errors.get(path, 0) + 1
        parent_path = path.rsplit("/", 1)[0] if "/" in path else None
        if parent_path is not None:
            child_totals[parent_path] = child_totals.get(parent_path, 0.0) + wall
    rows = []
    for path in sorted(totals, key=lambda p: -totals[p])[:limit]:
        total_ms = totals[path] / 1e6
        self_ms = (totals[path] - child_totals.get(path, 0.0)) / 1e6
        rows.append(
            (
                path,
                counts[path],
                f"{total_ms:.1f}",
                f"{max(self_ms, 0.0):.1f}",
                f"{total_ms / counts[path]:.2f}",
                errors.get(path, 0) or "",
            )
        )
    return format_table(
        ["span", "count", "total ms", "self ms", "mean ms", "errors"], rows
    )


def format_slowest_cells(spans: Sequence[dict], limit: int = 10) -> str:
    """The slowest grid cells of a run (``cell`` spans by wall time)."""
    cells = [s for s in spans if s.get("name") == "cell"]
    if not cells:
        return "no cell spans recorded"
    cells.sort(key=lambda s: -s.get("wall_ns", 0))
    rows = [
        (
            (s.get("attrs") or {}).get("label", "?"),
            s.get("pid", "?"),
            f"{s.get('wall_ns', 0) / 1e6:.1f}",
            s.get("status", "?"),
        )
        for s in cells[:limit]
    ]
    return format_table(["cell", "pid", "wall ms", "status"], rows)


def format_worker_balance(
    worker_cells: Sequence[Tuple[int, str, int, bool]]
) -> str:
    """Per-worker load from ``(pid, label, wall_ns, cache_hit)`` tuples.

    Shows executed cells and wall time per worker pid, the direct view
    of pool load imbalance; cache hits are listed separately (they cost
    parent-side time only).
    """
    if not worker_cells:
        return "no worker records"
    executed: Dict[int, List[int]] = {}
    hits: Dict[int, int] = {}
    for pid, _label, wall_ns, cache_hit in worker_cells:
        if cache_hit:
            hits[pid] = hits.get(pid, 0) + 1
        else:
            executed.setdefault(pid, []).append(wall_ns)
    total_wall = sum(sum(v) for v in executed.values()) or 1
    rows = []
    for pid in sorted(set(executed) | set(hits)):
        walls = executed.get(pid, [])
        wall = sum(walls)
        rows.append(
            (
                pid,
                len(walls),
                f"{wall / 1e6:.1f}",
                f"{100.0 * wall / total_wall:.1f}",
                f"{max(walls) / 1e6:.1f}" if walls else "-",
                hits.get(pid, 0),
            )
        )
    return format_table(
        ["pid", "cells", "wall ms", "share%", "max ms", "cache hits"], rows
    )


def worker_cells_from_spans(
    spans: Sequence[dict],
) -> List[Tuple[int, str, int, bool]]:
    """Reconstruct worker-load tuples from a run's ``cell`` spans."""
    out = []
    for s in spans:
        if s.get("name") != "cell":
            continue
        attrs = s.get("attrs") or {}
        out.append(
            (
                s.get("pid", 0),
                attrs.get("label", "?"),
                s.get("wall_ns", 0),
                bool(attrs.get("cache_hit", False)),
            )
        )
    return out


# --------------------------------------------------------------------
# Serving-telemetry timelines (timeseries.jsonl from repro.serve.telemetry)
# --------------------------------------------------------------------


def format_timeline(series: dict, label: str = "") -> str:
    """Windowed table of one serving :class:`~repro.serve.telemetry.
    TimeSeries` in its ``to_dict`` form (as read from
    ``timeseries.jsonl``).

    One row per tumbling window: outcome counts, retry/hedge activity,
    SLO violations, max queue depth at dispatch instants, and exact
    windowed p50/p99 in microseconds; ``avail`` is the worst per-shard
    availability of the window.
    """
    windows = series.get("windows", [])
    if not windows:
        return "no telemetry windows recorded"
    window_ns = float(series.get("window_ns", 0.0))
    rows = []
    for w in windows:
        completed = w["completed"]
        avail = min(
            (
                c / (c + f) if (c + f) else 1.0
                for c, f in zip(w["shard_completed"], w["shard_failed"])
            ),
            default=1.0,
        )
        rows.append(
            (
                w["index"],
                f"{w['index'] * window_ns / 1e6:.2f}",
                completed,
                w["failed"],
                w["shed"],
                w["retries"],
                w["hedges"],
                w["violations"],
                w["max_queue_depth"],
                f"{w['p50_ns'] / 1e3:.1f}" if w["p50_ns"] is not None else "-",
                f"{w['p99_ns'] / 1e3:.1f}" if w["p99_ns"] is not None else "-",
                f"{avail:.3f}",
            )
        )
    table = format_table(
        [
            "win",
            "t0 ms",
            "done",
            "fail",
            "shed",
            "retry",
            "hedge",
            "viol",
            "maxq",
            "p50 us",
            "p99 us",
            "avail",
        ],
        rows,
    )
    if label:
        return f"{label} (window={window_ns / 1e6:.2f} ms)\n{table}"
    return table


def timeline_svg(series: dict, title: str = "") -> str:
    """Per-window stacked outcome bars with a p99 latency line.

    Dependency-free SVG in the :func:`phase_breakdown_svg` style: one
    vertical bar per tumbling window (completed / failed / shed,
    Okabe-Ito palette), the windowed p99 as a polyline on its own scale,
    hover titles with the exact values.
    """
    windows = series.get("windows", [])
    if not windows:
        return "<svg xmlns='http://www.w3.org/2000/svg'/>"
    colors = {
        "completed": "#0072B2",
        "failed": "#D55E00",
        "shed": "#E69F00",
    }
    p99_color = "#009E73"
    left, top, width, plot_h = 50, 46, 900, 180
    plot_w = width - left - 30
    height = top + plot_h + 60
    bar_w = plot_w / len(windows)
    max_count = max(
        (w["completed"] + w["failed"] + w["shed"] for w in windows)
    ) or 1
    p99s = [w["p99_ns"] for w in windows if w["p99_ns"] is not None]
    max_p99 = max(p99s) if p99s else 0.0
    out = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' font-family='sans-serif' font-size='12'>",
        f"<text x='{left}' y='20' font-size='15'>"
        f"{title or 'Serving telemetry timeline'}</text>",
    ]
    for i, w in enumerate(windows):
        x = left + i * bar_w
        y = float(top + plot_h)
        for kind in ("completed", "failed", "shed"):
            value = w[kind]
            if not value:
                continue
            h = plot_h * value / max_count
            y -= h
            out.append(
                f"<rect x='{x:.1f}' y='{y:.1f}' "
                f"width='{max(bar_w - 1.0, 0.5):.1f}' height='{h:.1f}' "
                f"fill='{colors[kind]}'><title>window {w['index']}: "
                f"{kind}={value}</title></rect>"
            )
    if max_p99 > 0.0:
        points = []
        for i, w in enumerate(windows):
            if w["p99_ns"] is None:
                continue
            x = left + (i + 0.5) * bar_w
            y = top + plot_h * (1.0 - w["p99_ns"] / max_p99)
            points.append(f"{x:.1f},{y:.1f}")
        if len(points) > 1:
            out.append(
                f"<polyline points='{' '.join(points)}' fill='none' "
                f"stroke='{p99_color}' stroke-width='2'/>"
            )
    legend_x = left
    legend_y = height - 14
    for name, color in [*colors.items(), ("p99", p99_color)]:
        out.append(
            f"<rect x='{legend_x}' y='{legend_y - 10}' width='12' "
            f"height='12' fill='{color}'/>"
        )
        out.append(f"<text x='{legend_x + 16}' y='{legend_y}'>{name}</text>")
        legend_x += 16 + 8 * len(name) + 24
    out.append("</svg>")
    return "\n".join(out)


def format_metrics(snapshot: dict, limit: Optional[int] = None) -> str:
    """Flat name/value listing of a metrics snapshot."""
    rows: List[Tuple[str, object]] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append((name, value))
    for name, value in snapshot.get("gauges", {}).items():
        rows.append((name, value))
    for name, h in snapshot.get("histograms", {}).items():
        rows.append(
            (
                name,
                f"count={h['count']} mean={h['mean']:.1f} "
                f"min={h['min']} max={h['max']}",
            )
        )
    rows.sort(key=lambda r: r[0])
    if limit is not None:
        rows = rows[:limit]
    if not rows:
        return "no metrics recorded"
    return format_table(["metric", "value"], rows)
