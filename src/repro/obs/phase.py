"""Lookup-phase attribution: split perf counters into model vs. search.

Section 4.3 of the paper explains lookup latency almost entirely from
cache misses, branch misses and instruction count; SOSD (Kipf et al.)
goes one step further and splits those costs into *model evaluation*
versus *last-mile search*.  This module reproduces that split on the
simulated CPU.

Index ``lookup`` implementations (and the harness) mark phases through
the tracer interface -- ``tracer.phase("model")`` / ``tracer.phase("search")``
-- which is a no-op on every stock tracer.  Under ``--profile`` the
harness wraps its engine tracer in a :class:`PhaseTracer`, which keeps
``read``/``instr``/``branch`` bound straight to the engine (zero
per-event overhead) and, on each phase *transition*, attributes the
engine counter delta since the previous transition to the phase just
left.  Attribution is a telescoping sum of integer snapshots, so the
per-phase counters sum **byte-exactly** to the unphased totals
(``tests/test_obs_phase.py`` holds both engines to that).

The phase vocabulary is deliberately small:

* ``model`` -- arithmetic structure evaluation: RMI root+leaf models,
  PGM level predictions, RadixSpline table + interpolation, B-Tree
  descent bookkeeping.
* ``search`` -- comparison-loop searches: in-structure binary searches
  (PGM segments, RS spline, B-Tree nodes) and the last-mile search.
* ``other`` -- harness loop bookkeeping and the payload read.
"""

from __future__ import annotations

import os

from typing import Dict, Optional

from repro.memsim.counters import PerfCounters
from repro.memsim.tracer import Tracer

PHASE_MODEL = "model"
PHASE_SEARCH = "search"
PHASE_OTHER = "other"

#: Canonical display order for reports.
PHASE_ORDER = (PHASE_MODEL, PHASE_SEARCH, PHASE_OTHER)

_ENV_VAR = "REPRO_OBS_PROFILE"


def profiling_enabled() -> bool:
    """Ambient profile switch (``--profile`` exports ``REPRO_OBS_PROFILE``).

    Environment-driven so pool workers inherit the choice, exactly like
    ``REPRO_MEMSIM_ENGINE``; deliberately *not* part of measurement-cache
    keys -- profiling never changes a measurement's counters, it only
    adds the per-phase split.
    """
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


def set_profiling(on: bool) -> None:
    """Flip the ambient profile switch (and what workers will inherit)."""
    if on:
        os.environ[_ENV_VAR] = "1"
    else:
        os.environ.pop(_ENV_VAR, None)


class PhaseTracer(Tracer):
    """Tracer wrapper attributing counter deltas to the active phase.

    Wraps an engine-backed :class:`~repro.memsim.tracer.PerfTracer`.
    The three hot methods are re-bound from the engine, so instrumented
    code pays nothing per event; only :meth:`phase` transitions cost an
    engine snapshot.  Events before the first marker land in ``other``.
    """

    __slots__ = ("inner", "read", "instr", "branch", "_current", "_last", "_totals")

    def __init__(self, inner):
        self.inner = inner
        self.read = inner.read
        self.instr = inner.instr
        self.branch = inner.branch
        self._current = PHASE_OTHER
        self._last = inner.snapshot()
        self._totals: Dict[str, PerfCounters] = {}

    def phase(self, name: str) -> None:
        if name == self._current:
            return
        snap = self.inner.snapshot()
        delta = snap - self._last
        total = self._totals.get(self._current)
        self._totals[self._current] = delta if total is None else total + delta
        self._last = snap
        self._current = name

    def checkpoint(self) -> Dict[str, PerfCounters]:
        """Attribute the pending delta, then return per-phase totals.

        The returned dict is a copy; taking an engine ``snapshot()``
        immediately after yields counters whose sum over phases equals
        it exactly (no events can interleave).
        """
        snap = self.inner.snapshot()
        delta = snap - self._last
        total = self._totals.get(self._current)
        self._totals[self._current] = delta if total is None else total + delta
        self._last = snap
        return {name: c.copy() for name, c in self._totals.items()}

    # -- delegation to the engine-backed tracer ---------------------------

    def snapshot(self) -> PerfCounters:
        return self.inner.snapshot()

    def flush_caches(self) -> None:
        self.inner.flush_caches()

    def replay(self, trace) -> None:  # pragma: no cover - profile disables replay
        self.inner.replay(trace)


def phase_window(
    end: Dict[str, PerfCounters],
    base: Optional[Dict[str, PerfCounters]],
) -> Dict[str, PerfCounters]:
    """Per-phase counters accrued between two checkpoints.

    Phases absent from ``base`` start from zero; phases whose counters
    did not move inside the window are dropped (they carry no signal).
    """
    zero = PerfCounters()
    out: Dict[str, PerfCounters] = {}
    for name, counters in end.items():
        delta = counters - base[name] if base and name in base else counters.copy()
        if delta != zero:
            out[name] = delta
    return out
