"""Process-local metrics registry: named counters, gauges, histograms.

One flat registry per process collects the operational numbers that are
not per-lookup measurements: measurement-cache hits, trace-store
rejections, replay ratios, pool queue depth, serving SLO stats.
Everything is a plain Python scalar update -- cheap enough to leave on
unconditionally at cell/run granularity (never called per simulated
event) -- and :meth:`MetricsRegistry.snapshot` serializes the whole
registry to JSON-able dicts for the run sink.

Naming convention: dotted lowercase paths, ``<subsystem>.<object>.<what>``
(``bench.cache.hits``, ``memsim.trace_store.rejects``,
``serve.slo.violations``).  Units go in the name suffix where ambiguous
(``_ns``, ``_bytes``).  See ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value, with convenience high/low-water helpers."""

    __slots__ = ("value", "_written")

    def __init__(self) -> None:
        self.value: float = 0.0
        self._written = False

    def set(self, value: float) -> None:
        self.value = value
        self._written = True

    def set_max(self, value: float) -> None:
        if not self._written or value > self.value:
            self.set(value)

    def set_min(self, value: float) -> None:
        """Low-water mark (e.g. worst availability over a sweep)."""
        if not self._written or value < self.value:
            self.set(value)


class Histogram:
    """Power-of-two bucketed distribution of non-negative observations.

    Tracks count/sum/min/max exactly plus a coarse shape: bucket ``i``
    counts observations in ``[2**(i-1), 2**i)`` (bucket 0 is ``[0, 1)``).
    Enough to see load imbalance and tail behaviour without reservoirs.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = max(int(value), 0).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Flat name -> instrument mapping; instruments create on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def names(self) -> List[str]:
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
        )

    def snapshot(self) -> dict:
        """JSON-able view of every instrument (stable key order)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                    "buckets": {str(k): v for k, v in sorted(h.buckets.items())},
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another process's snapshot into this registry.

        Counters add; gauges keep the maximum (the interesting direction
        for queue depths and high-water marks) except low-water gauges --
        the ``.min`` name suffix convention -- which keep the minimum;
        histograms merge count/sum/min/max/buckets exactly.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            if name.endswith(".min"):
                self.gauge(name).set_min(value)
            else:
                self.gauge(name).set_max(value)
        for name, h in snap.get("histograms", {}).items():
            mine = self.histogram(name)
            mine.count += h["count"]
            mine.total += h["sum"]
            for bound in ("min", "max"):
                theirs = h.get(bound)
                if theirs is None:
                    continue
                ours = getattr(mine, bound)
                better = (
                    theirs
                    if ours is None
                    else (min(ours, theirs) if bound == "min" else max(ours, theirs))
                )
                setattr(mine, bound, better)
            for bucket, count in h.get("buckets", {}).items():
                key = int(bucket)
                mine.buckets[key] = mine.buckets.get(key, 0) + count

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide registry every subsystem reports into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
