"""CLI: summarize a run's observability artifacts.

::

    python -m repro.obs summary RUN_DIR [--top N]

reads ``spans.jsonl`` / ``metrics.json`` / ``manifest.json`` from a
directory written by ``python -m repro.bench --obs-dir RUN_DIR`` and
renders the span flame table, the top-N slowest grid cells, per-worker
load balance, and the metrics snapshot.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.obs.report import (
    format_metrics,
    format_slowest_cells,
    format_span_flame,
    format_worker_balance,
    worker_cells_from_spans,
)
from repro.obs.sink import (
    MANIFEST_FILENAME,
    METRICS_FILENAME,
    SPANS_FILENAME,
    read_jsonl,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect observability artifacts of a benchmark run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summary = sub.add_parser(
        "summary", help="span flame table, slowest cells, worker balance"
    )
    summary.add_argument("run_dir", help="directory written by --obs-dir")
    summary.add_argument(
        "--top", type=int, default=10, help="rows in the slowest-cell table"
    )
    return parser


def summarize(run_dir: str, top: int = 10) -> str:
    parts = []
    manifest_path = os.path.join(run_dir, MANIFEST_FILENAME)
    if os.path.exists(manifest_path):
        with open(manifest_path) as f:
            manifest = json.load(f)
        parts.append(
            "run: git={git} engine={engine} seed={seed} config={cfg}".format(
                git=(manifest.get("git_sha") or "?")[:12],
                engine=manifest.get("memsim_engine", "?"),
                seed=manifest.get("seed", "?"),
                cfg=manifest.get("config_hash", "?"),
            )
        )
    spans_path = os.path.join(run_dir, SPANS_FILENAME)
    spans = read_jsonl(spans_path) if os.path.exists(spans_path) else []
    parts.append(f"\n== span flame table ({len(spans)} spans) ==")
    parts.append(format_span_flame(spans))
    parts.append(f"\n== slowest cells (top {top}) ==")
    parts.append(format_slowest_cells(spans, limit=top))
    parts.append("\n== worker load balance ==")
    parts.append(format_worker_balance(worker_cells_from_spans(spans)))
    metrics_path = os.path.join(run_dir, METRICS_FILENAME)
    if os.path.exists(metrics_path):
        with open(metrics_path) as f:
            snapshot = json.load(f)
        parts.append("\n== metrics ==")
        parts.append(format_metrics(snapshot))
    return "\n".join(parts)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not os.path.isdir(args.run_dir):
        print(f"not a directory: {args.run_dir}", file=sys.stderr)
        return 2
    print(summarize(args.run_dir, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
