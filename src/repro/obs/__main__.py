"""CLI: summarize a run's observability artifacts.

::

    python -m repro.obs summary RUN_DIR [--top N]
    python -m repro.obs timeline RUN_DIR [--label SUBSTR] [--svg-dir DIR]

``summary`` reads ``spans.jsonl`` / ``metrics.json`` / ``manifest.json``
from a directory written by ``python -m repro.bench --obs-dir RUN_DIR``
and renders the span flame table, the top-N slowest grid cells,
per-worker load balance, and the metrics snapshot.  ``timeline`` reads
``timeseries.jsonl`` (the serving-telemetry stream, see
:mod:`repro.serve.telemetry`) and renders one windowed table per
recorded series -- plus one SVG per series with ``--svg-dir``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.obs.report import (
    format_metrics,
    format_slowest_cells,
    format_span_flame,
    format_timeline,
    format_worker_balance,
    timeline_svg,
    worker_cells_from_spans,
)
from repro.obs.sink import (
    MANIFEST_FILENAME,
    METRICS_FILENAME,
    SPANS_FILENAME,
    TIMESERIES_FILENAME,
    read_jsonl,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect observability artifacts of a benchmark run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summary = sub.add_parser(
        "summary", help="span flame table, slowest cells, worker balance"
    )
    summary.add_argument("run_dir", help="directory written by --obs-dir")
    summary.add_argument(
        "--top", type=int, default=10, help="rows in the slowest-cell table"
    )
    timeline = sub.add_parser(
        "timeline", help="windowed serving-telemetry tables (and SVGs)"
    )
    timeline.add_argument("run_dir", help="directory written by --obs-dir")
    timeline.add_argument(
        "--label",
        default=None,
        help="only series whose label contains this substring",
    )
    timeline.add_argument(
        "--svg-dir",
        default=None,
        help="also write one timeline SVG per series into this directory",
    )
    return parser


def render_timelines(
    run_dir: str, label: str = None, svg_dir: str = None
) -> str:
    """Tables (and optional SVG files) for every recorded time-series."""
    path = os.path.join(run_dir, TIMESERIES_FILENAME)
    records = read_jsonl(path) if os.path.exists(path) else []
    if label is not None:
        records = [r for r in records if label in r.get("label", "")]
    if not records:
        return "no timeseries recorded" + (
            f" matching {label!r}" if label is not None else ""
        )
    parts = []
    for record in records:
        name = record.get("label", "?")
        key = record.get("content_key", "?")
        parts.append(f"== {name} [{key[:12]}] ==")
        parts.append(format_timeline(record.get("series", {})))
        if svg_dir is not None:
            os.makedirs(svg_dir, exist_ok=True)
            fname = name.replace("/", "_").replace(" ", "_") + ".svg"
            svg_path = os.path.join(svg_dir, fname)
            with open(svg_path, "w") as f:
                f.write(timeline_svg(record.get("series", {}), title=name))
                f.write("\n")
            parts.append(f"wrote {svg_path}")
        parts.append("")
    return "\n".join(parts).rstrip()


def summarize(run_dir: str, top: int = 10) -> str:
    parts = []
    manifest_path = os.path.join(run_dir, MANIFEST_FILENAME)
    if os.path.exists(manifest_path):
        with open(manifest_path) as f:
            manifest = json.load(f)
        parts.append(
            "run: git={git} engine={engine} seed={seed} config={cfg}".format(
                git=(manifest.get("git_sha") or "?")[:12],
                engine=manifest.get("memsim_engine", "?"),
                seed=manifest.get("seed", "?"),
                cfg=manifest.get("config_hash", "?"),
            )
        )
    spans_path = os.path.join(run_dir, SPANS_FILENAME)
    spans = read_jsonl(spans_path) if os.path.exists(spans_path) else []
    parts.append(f"\n== span flame table ({len(spans)} spans) ==")
    parts.append(format_span_flame(spans))
    parts.append(f"\n== slowest cells (top {top}) ==")
    parts.append(format_slowest_cells(spans, limit=top))
    parts.append("\n== worker load balance ==")
    parts.append(format_worker_balance(worker_cells_from_spans(spans)))
    metrics_path = os.path.join(run_dir, METRICS_FILENAME)
    if os.path.exists(metrics_path):
        with open(metrics_path) as f:
            snapshot = json.load(f)
        parts.append("\n== metrics ==")
        parts.append(format_metrics(snapshot))
    return "\n".join(parts)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not os.path.isdir(args.run_dir):
        print(f"not a directory: {args.run_dir}", file=sys.stderr)
        return 2
    if args.command == "timeline":
        print(
            render_timelines(
                args.run_dir, label=args.label, svg_dir=args.svg_dir
            )
        )
        return 0
    print(summarize(args.run_dir, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
