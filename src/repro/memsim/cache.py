"""Set-associative LRU cache simulation.

A :class:`CacheHierarchy` models an inclusive three-level hierarchy with
64-byte lines, roughly shaped like the paper's Xeon Gold 6230 (32 KiB L1d,
1 MiB L2, and a large shared L3).  The L3 default here is scaled down to
match the scaled-down datasets (see DESIGN.md): the paper indexes 200M keys
(1.6 GB) against a 27.5 MB L3, a ratio of ~58:1; with the default 400K-key
datasets (3.2 MB) we default to a 1 MiB L3 plus a 256 KiB L2 to preserve the
"index mostly fits, data mostly doesn't" regime that drives the paper's
results.
"""

from __future__ import annotations

from typing import List, Optional

LINE_SIZE = 64


class Cache:
    """One set-associative cache level with LRU replacement.

    Parameters
    ----------
    size_bytes:
        Total capacity; must be a multiple of ``assoc * LINE_SIZE``.
    assoc:
        Number of ways per set.
    name:
        Label used in reprs and error messages.
    """

    __slots__ = ("name", "size_bytes", "assoc", "n_sets", "_sets")

    def __init__(self, size_bytes: int, assoc: int, name: str = "cache"):
        if size_bytes % (assoc * LINE_SIZE) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not a multiple of assoc*line "
                f"({assoc}*{LINE_SIZE})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.n_sets = size_bytes // (assoc * LINE_SIZE)
        # Each set is a python list of line tags in LRU order (MRU first).
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]

    def access(self, line: int) -> bool:
        """Access a cache line (already shifted by log2(LINE_SIZE)).

        Returns True on hit.  On miss the line is installed, evicting the
        LRU way if the set is full.
        """
        ways = self._sets[line % self.n_sets]
        if ways and ways[0] == line:
            return True
        try:
            # Move-to-front by index: one scan, where the old
            # `in` + `remove` pair scanned the set twice on a hit.
            i = ways.index(line)
        except ValueError:
            ways.insert(0, line)
            if len(ways) > self.assoc:
                ways.pop()
            return False
        del ways[i]
        ways.insert(0, line)
        return True

    def contains(self, line: int) -> bool:
        """Check residency without updating LRU state."""
        return line in self._sets[line % self.n_sets]

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Cache({self.name}, {self.size_bytes // 1024} KiB, "
            f"{self.assoc}-way, {self.n_sets} sets)"
        )


class CacheHierarchy:
    """Inclusive L1/L2/L3 hierarchy.

    ``access`` returns the level that served the read: 1, 2, 3 for cache
    hits and 4 for DRAM.  Missing lines are installed into every level.
    """

    __slots__ = ("l1", "l2", "l3")

    def __init__(
        self,
        l1: Optional[Cache] = None,
        l2: Optional[Cache] = None,
        l3: Optional[Cache] = None,
    ):
        self.l1 = l1 if l1 is not None else Cache(32 * 1024, 8, "L1d")
        self.l2 = l2 if l2 is not None else Cache(256 * 1024, 8, "L2")
        self.l3 = l3 if l3 is not None else Cache(1024 * 1024, 16, "L3")

    def access_addr(self, addr: int) -> int:
        return self.access_line(addr // LINE_SIZE)

    def access_line(self, line: int) -> int:
        if self.l1.access(line):
            return 1
        if self.l2.access(line):
            return 2
        if self.l3.access(line):
            return 3
        return 4

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
        self.l3.flush()
