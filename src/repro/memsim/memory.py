"""Simulated byte-addressed memory: address allocation and traced arrays.

Indexes allocate their internal arrays from an :class:`AddressSpace` so
that the cache simulator sees realistic addresses: adjacent array elements
share cache lines, distinct structures do not alias each other, and the
in-memory footprint of a structure is exactly the sum of its allocations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

_ALIGN = 64


class AddressSpace:
    """Bump allocator over a simulated byte address space."""

    def __init__(self, base: int = 1 << 20):
        self._next = base
        self.allocations: List[tuple] = []  # (name, base, nbytes)

    def alloc(self, nbytes: int, name: str = "anon", align: int = _ALIGN) -> int:
        """Reserve ``nbytes`` (aligned) and return the base address."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        base = -(-self._next // align) * align
        self._next = base + nbytes
        self.allocations.append((name, base, nbytes))
        return base

    def total_allocated(self) -> int:
        return sum(nbytes for _, _, nbytes in self.allocations)


class TracedArray:
    """A numpy-backed array living at a simulated address.

    ``get(i, tracer)`` charges the tracer for the load and returns the
    element as a native Python scalar (a plain list mirror is kept because
    Python-level comparisons on native ints are several times faster than
    on numpy scalars, and traced lookups are executed element-at-a-time).

    ``values`` exposes the raw numpy array for vectorized, untraced use
    (e.g. building other structures, or batch validity checks).
    """

    __slots__ = ("values", "base", "itemsize", "name", "_py")

    def __init__(self, values: np.ndarray, base: int, name: str = "array"):
        if values.ndim != 1:
            raise ValueError("TracedArray is one-dimensional")
        self.values = values
        self.base = base
        self.itemsize = values.dtype.itemsize
        self.name = name
        self._py = values.tolist()

    @classmethod
    def allocate(
        cls,
        space: AddressSpace,
        values: Union[np.ndarray, Sequence],
        name: str = "array",
        dtype: Optional[np.dtype] = None,
    ) -> "TracedArray":
        arr = np.asarray(values, dtype=dtype)
        base = space.alloc(arr.nbytes, name=name)
        return cls(arr, base, name=name)

    def __len__(self) -> int:
        return len(self._py)

    @property
    def nbytes(self) -> int:
        return self.values.nbytes

    def addr(self, i: int) -> int:
        return self.base + i * self.itemsize

    def get(self, i: int, tracer) -> Union[int, float]:
        """Read element ``i``, charging ``tracer`` for the load."""
        tracer.read(self.base + i * self.itemsize, self.itemsize)
        return self._py[i]

    def get_untraced(self, i: int) -> Union[int, float]:
        return self._py[i]

    def touch(self, i: int, tracer) -> None:
        """Charge a load of element ``i`` without returning it."""
        tracer.read(self.base + i * self.itemsize, self.itemsize)

    def get_block(self, start: int, count: int, tracer) -> list:
        """Read ``count`` consecutive elements as one contiguous access.

        Used for multi-field records (e.g. an RMI leaf's slope/intercept/
        error) that occupy adjacent bytes: the tracer sees a single read
        spanning the record, touching one or two cache lines.
        """
        tracer.read(self.base + start * self.itemsize, count * self.itemsize)
        return self._py[start : start + count]
