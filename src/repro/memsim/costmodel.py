"""Latency cost model: performance counters -> estimated nanoseconds.

The paper's own regression analysis (Section 4.3) finds that a linear
function of cache misses, branch misses and instruction count explains 95%
of lookup-time variance (R^2 = 0.955).  This model applies that mechanism
directly: per-lookup counters measured by the simulator are combined with
per-event latencies shaped like the paper's Xeon Gold 6230 (Cascade Lake).

Two effects beyond the plain linear combination are modelled because the
paper dedicates experiments to them:

* **Memory-level parallelism / reordering (Fig. 15).**  Without a memory
  fence, the CPU overlaps the tail of one lookup with the head of the next.
  The paper observes the benefit is strongly correlated with instruction
  count (peephole reordering windows are instruction-limited): RMI and RS,
  which execute few instructions, gain ~50%, while BTree/FAST/PGM gain
  little.  We model this as a discount on serialized memory stall cycles
  that shrinks as per-lookup instruction count grows.
* **Memory fences** disable that discount and add a small pipeline-drain
  cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.counters import PerfCountersF


@dataclass(frozen=True)
class CostModel:
    """Per-event latencies and pipeline parameters.

    All cycle counts are in core cycles at ``freq_ghz``.
    """

    freq_ghz: float = 2.1
    issue_width: float = 4.0
    l1_cycles: float = 4.0
    l2_cycles: float = 14.0
    l3_cycles: float = 44.0
    dram_ns: float = 85.0
    branch_miss_cycles: float = 16.0
    fence_cycles: float = 25.0
    tlb_walk_cycles: float = 7.0  # walk overhead beyond the charged PTE read
    #: Fraction of memory stall cycles that cannot be hidden even with
    #: perfect reordering (dependent pointer chases).
    mlp_floor: float = 0.60
    #: Instruction count at which reordering gains vanish entirely.
    mlp_saturation_instr: float = 280.0

    @property
    def dram_cycles(self) -> float:
        return self.dram_ns * self.freq_ghz

    def memory_stall_cycles(self, c: PerfCountersF) -> float:
        return (
            c.l1_hits * self.l1_cycles
            + c.l2_hits * self.l2_cycles
            + c.l3_hits * self.l3_cycles
            + c.llc_misses * self.dram_cycles
        )

    def overlap_factor(self, c: PerfCountersF, fence: bool) -> float:
        """Fraction of memory stalls actually paid (1.0 = fully serialized)."""
        if fence:
            return 1.0
        gain_span = 1.0 - self.mlp_floor
        progress = min(1.0, c.instructions / self.mlp_saturation_instr)
        return self.mlp_floor + gain_span * progress

    def cycles(self, c: PerfCountersF, fence: bool = False) -> float:
        """Estimated cycles for one lookup with per-lookup counters ``c``."""
        compute = c.instructions / self.issue_width
        branches = c.branch_misses * self.branch_miss_cycles
        memory = self.memory_stall_cycles(c) * self.overlap_factor(c, fence)
        total = compute + branches + memory + c.tlb_misses * self.tlb_walk_cycles
        if fence:
            total += self.fence_cycles
        return total

    def latency_ns(self, c: PerfCountersF, fence: bool = False) -> float:
        """Estimated nanoseconds for one lookup."""
        return self.cycles(c, fence) / self.freq_ghz


#: Default model shaped like the paper's test machine.
XEON_GOLD_6230 = CostModel()
