"""Simulated CPU and memory-hierarchy substrate.

The paper measures index structures with hardware performance counters
(last-level cache misses, branch mispredictions, instruction counts) and
nanosecond-scale wall-clock latencies on an Intel Xeon Gold 6230.  Pure
Python cannot observe those quantities directly, so this subpackage
provides a software stand-in:

* :class:`AddressSpace` / :class:`TracedArray` -- a byte-addressed space in
  which every index allocates its internal arrays, so that memory accesses
  have realistic addresses and spatial locality.
* :class:`CacheHierarchy` -- set-associative LRU L1/L2/L3 caches with 64-byte
  lines.
* :class:`BranchPredictor` -- per-site two-bit saturating counters.
* :class:`PerfTracer` -- the tracer indexes call into during a lookup; it
  accumulates a :class:`PerfCounters`.
* :class:`CostModel` -- maps counters to estimated nanoseconds, including
  memory-fence and memory-level-parallelism effects.

Index lookup code is written once against the tracer interface; passing
:data:`NULL_TRACER` turns all instrumentation into no-ops for wall-clock
benchmarking.
"""

from repro.memsim.counters import PerfCounters
from repro.memsim.tracer import NULL_TRACER, NullTracer, PerfTracer, Tracer
from repro.memsim.cache import Cache, CacheHierarchy
from repro.memsim.branch import BranchPredictor
from repro.memsim.engine import (
    ENGINE_NAMES,
    FastEngine,
    ReferenceEngine,
    SiteInterner,
    default_engine_name,
    make_engine,
)
from repro.memsim.trace import Trace, TraceRecorder, TraceStore
from repro.memsim.vector import VectorEngine
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.costmodel import CostModel, XEON_GOLD_6230

__all__ = [
    "PerfCounters",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "PerfTracer",
    "Cache",
    "CacheHierarchy",
    "BranchPredictor",
    "ENGINE_NAMES",
    "FastEngine",
    "ReferenceEngine",
    "VectorEngine",
    "SiteInterner",
    "default_engine_name",
    "make_engine",
    "Trace",
    "TraceRecorder",
    "TraceStore",
    "AddressSpace",
    "TracedArray",
    "CostModel",
    "XEON_GOLD_6230",
]
