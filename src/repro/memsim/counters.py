"""Performance counters accumulated by a :class:`~repro.memsim.PerfTracer`.

These mirror the hardware counters the paper reports in Section 4.3:
instruction count, branches and branch mispredictions, and cache behaviour
(per-level hits plus last-level misses, i.e. DRAM accesses).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Raw event counts for one or more simulated lookups.

    Attributes
    ----------
    instructions:
        Retired (simulated) instructions.
    branches:
        Conditional branches executed.
    branch_misses:
        Branches the two-bit predictor mispredicted.
    reads:
        Memory reads issued (one per ``Tracer.read`` call).
    l1_hits / l2_hits / l3_hits:
        Reads served by each cache level.
    llc_misses:
        Reads that missed every cache level (served by DRAM).  This is the
        paper's "cache misses" metric.
    """

    instructions: int = 0
    branches: int = 0
    branch_misses: int = 0
    reads: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    llc_misses: int = 0
    tlb_misses: int = 0

    def copy(self) -> "PerfCounters":
        return PerfCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __sub__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "PerfCountersF":
        """Return per-lookup averages (floats) given a lookup count."""
        return PerfCountersF(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def per_lookup(self, n_lookups: int) -> "PerfCountersF":
        if n_lookups <= 0:
            raise ValueError("n_lookups must be positive")
        return self.scaled(1.0 / n_lookups)


@dataclass
class PerfCountersF:
    """Float-valued counters (e.g. per-lookup averages)."""

    instructions: float = 0.0
    branches: float = 0.0
    branch_misses: float = 0.0
    reads: float = 0.0
    l1_hits: float = 0.0
    l2_hits: float = 0.0
    l3_hits: float = 0.0
    llc_misses: float = 0.0
    tlb_misses: float = 0.0
