"""Trace record-replay: capture one lookup's event stream, re-run it cheaply.

A measured lookup is a sequence of ``read``/``instr``/``branch`` calls
into the tracer.  All three return ``None``, so index code cannot
observe simulator state -- the event stream for a given (index, key,
search function) is a pure function of the index contents, independent
of cache/TLB/predictor state.  That makes replay sound: re-running a
recorded stream through an engine produces byte-identical counters to
re-executing the index Python, without paying for the index Python.

Repeated-execution experiments exploit this: ``measure_repeated`` runs
overlapping warmup windows over the same keys, fig14-style cold-cache
passes re-run the exact warm-pass keys with flushes in between, and
serving calibration replays per-request service lookups.  The harness
keeps a :class:`TraceStore` on each ``BuiltIndex`` keyed by
``(search, key)`` and replays on hit (``bench/harness.py``).

Events are stored as three parallel typed arrays (kind: uint8;
two int64 operands), compact enough to keep thousands of lookup traces
resident; :meth:`Trace.lists` materializes plain-int lists once for the
engines' batch loops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memsim.cache import LINE_SIZE
from repro.memsim.engine import SiteInterner
from repro.memsim.tlb import PAGE_SHIFT
from repro.memsim.tracer import NULL_TRACER, Tracer

# The recorder's repeat-detection shifts (>> 6, >> 12) assume these
# geometry constants, exactly like the fast engine does.
assert LINE_SIZE == 1 << 6 and PAGE_SHIFT == 12

#: Event kinds in a :class:`Trace` (the ``kinds`` array).
K_READ, K_INSTR, K_BRANCH, K_REPEAT = 0, 1, 2, 3


class Trace:
    """One recorded event stream as parallel typed arrays.

    ``kinds[i]`` selects the event; ``a[i]``/``b[i]`` are its operands:
    read -> (addr, size); instr -> (n, 0); branch -> (site id, taken);
    repeat -> (addr, count).  Site ids resolve through the
    :class:`SiteInterner` the recorder was given -- replaying engines
    must share it.

    A *repeat* event stands for ``count`` single-line reads of a line
    the recorder proved were pure L1 hits (see
    :meth:`TraceRecorder.read`); engines may replay it as three counter
    increments per read with zero state changes, or literally as
    ``count`` one-byte reads of ``addr`` -- both are exact.
    """

    __slots__ = ("kinds", "a", "b", "_lists", "_plan")

    def __init__(self, kinds, a, b):
        self.kinds = np.asarray(kinds, dtype=np.uint8)
        self.a = np.asarray(a, dtype=np.int64)
        self.b = np.asarray(b, dtype=np.int64)
        self._lists: Optional[Tuple[list, list, list]] = None
        #: Compiled form for the vector engine (repro.memsim.vector),
        #: built lazily on first vectorized replay.  A trace is
        #: immutable, so the plan never invalidates.
        self._plan = None

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def nbytes(self) -> int:
        return self.kinds.nbytes + self.a.nbytes + self.b.nbytes

    def lists(self) -> Tuple[list, list, list]:
        """(kinds, a, b) as plain-int lists, materialized once."""
        if self._lists is None:
            self._lists = (
                self.kinds.tolist(),
                self.a.tolist(),
                self.b.tolist(),
            )
        return self._lists

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Trace({len(self)} events, {self.nbytes} bytes)"


class TraceRecorder(Tracer):
    """Tee tracer: forwards every event to ``inner`` while recording it.

    Wrap the measuring tracer during a lookup's first execution, then
    :meth:`finish` yields the :class:`Trace`; later executions replay it
    through any engine instead of re-walking the index code.

    The recorder run-length-compresses repeated same-line reads into
    ``K_REPEAT`` events.  A read qualifies when it touches exactly the
    single line the previous read left MRU in L1, on the page the
    previous read left MRU in the TLB -- a purely address-based test, so
    the guarantee holds for any engine state at replay time: each such
    read is exactly ``reads+1, instructions+1, l1_hits+1`` and changes
    no simulator state.  (Interleaved ``instr``/``branch`` events touch
    neither caches nor TLB, so repeats merge across them; counter sums
    and final state are unaffected by the reordering.)
    """

    __slots__ = ("inner", "sites", "_k", "_a", "_b", "_ultra_line", "_rep")

    def __init__(
        self, inner: Tracer = NULL_TRACER, sites: Optional[SiteInterner] = None
    ):
        self.inner = inner
        self.sites = sites if sites is not None else SiteInterner()
        self._k: List[int] = []
        self._a: List[int] = []
        self._b: List[int] = []
        self._ultra_line = -1  # line a repeat read would qualify against
        self._rep = -1  # index of the open K_REPEAT event, or -1

    def read(self, addr: int, size: int = 8) -> None:
        line = addr >> 6
        if line == self._ultra_line and (addr + size - 1) >> 6 == line:
            i = self._rep
            if i >= 0:
                self._b[i] += 1
            else:
                self._rep = len(self._k)
                self._k.append(K_REPEAT)
                self._a.append(addr)
                self._b.append(1)
        else:
            self._k.append(K_READ)
            self._a.append(addr)
            self._b.append(size)
            last = (addr + size - 1) >> 6
            # The page the engine translates is addr's; the line left
            # MRU is `last`.  Only when they coincide is a repeat of
            # `last` provably a pure L1 + TLB hit.
            self._ultra_line = last if last >> 6 == addr >> 12 else -1
            self._rep = -1
        self.inner.read(addr, size)

    def instr(self, n: int = 1) -> None:
        self._k.append(K_INSTR)
        self._a.append(n)
        self._b.append(0)
        self.inner.instr(n)

    def branch(self, site: str, taken: bool) -> None:
        self._k.append(K_BRANCH)
        self._a.append(self.sites.intern(site))
        self._b.append(1 if taken else 0)
        self.inner.branch(site, taken)

    def __len__(self) -> int:
        return len(self._k)

    def finish(self) -> Trace:
        return Trace(self._k, self._a, self._b)


class TraceStore:
    """Keyed trace cache with a shared interner and an event budget.

    The budget caps resident trace memory (~17 bytes/event).  Two
    full-budget policies, both of which keep ``events <= max_events`` at
    all times:

    * ``evict=False`` (default): :meth:`put` declines and the harness
      simply keeps executing those lookups directly -- replay is an
      optimization, never a requirement.
    * ``evict=True``: :meth:`put` deterministically evicts the oldest
      resident traces (FIFO in insertion order) until the newcomer fits.
      A trace larger than the whole budget is still declined -- eviction
      never helps it fit, so emptying the store for it would be pure
      loss.
    """

    #: ~4M events is ~70 MB of typed arrays -- far beyond any default
    #: grid cell (a 1000-lookup measurement records ~20k events).
    DEFAULT_MAX_EVENTS = 4_000_000

    __slots__ = (
        "sites",
        "max_events",
        "evict",
        "events",
        "hits",
        "misses",
        "rejects",
        "evictions",
        "_traces",
    )

    def __init__(
        self,
        sites: Optional[SiteInterner] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        evict: bool = False,
    ):
        self.sites = sites if sites is not None else SiteInterner()
        self.max_events = max_events
        self.evict = evict
        self.events = 0
        self.hits = 0
        self.misses = 0
        #: Traces declined by :meth:`put` because the budget was full.
        self.rejects = 0
        #: Traces evicted to make room (``evict=True`` only).
        self.evictions = 0
        self._traces: Dict[object, Tuple[Trace, object]] = {}

    def get(self, key) -> Optional[Tuple[Trace, object]]:
        entry = self._traces.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key, trace: Trace, meta=None) -> bool:
        """Store a trace; False (and drop it) if it cannot be admitted."""
        if key in self._traces:
            return True
        if self.events + len(trace) > self.max_events:
            if not self.evict or len(trace) > self.max_events:
                self.rejects += 1
                return False
            # Dicts iterate in insertion order, so dropping from the
            # front is FIFO -- fully determined by the put sequence.
            while self.events + len(trace) > self.max_events:
                old_key = next(iter(self._traces))
                old_trace, _ = self._traces.pop(old_key)
                self.events -= len(old_trace)
                self.evictions += 1
        self._traces[key] = (trace, meta)
        self.events += len(trace)
        return True

    def __len__(self) -> int:
        return len(self._traces)
