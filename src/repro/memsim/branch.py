"""Branch predictor simulation.

Each static branch site (identified by a short string the index code
passes, e.g. ``"btree.descend"`` or ``"bs.cmp"``) gets a two-bit saturating
counter, the classic bimodal predictor.  Data-dependent branches such as
binary-search comparisons therefore mispredict ~50% of the time, while
strongly-biased branches (loop back-edges, "key found" checks) predict
well -- matching the qualitative behaviour the paper discusses in
Section 4.3.
"""

from __future__ import annotations

from typing import Dict

# Two-bit saturating counter states: 0,1 predict not-taken; 2,3 predict taken.
_WEAK_TAKEN = 2


class BranchPredictor:
    """Bimodal (per-site two-bit counter) branch predictor."""

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: Dict[str, int] = {}

    def predict_and_update(self, site: str, taken: bool) -> bool:
        """Record a branch outcome; return True if it was predicted correctly."""
        state = self._table.get(site, _WEAK_TAKEN)
        predicted_taken = state >= _WEAK_TAKEN
        # Write unconditionally: a site whose counter sits at a
        # saturation boundary must still materialize a table entry, or
        # n_sites() would undercount static always-taken/never-taken
        # branches.
        if taken:
            self._table[site] = state + 1 if state < 3 else 3
        else:
            self._table[site] = state - 1 if state > 0 else 0
        return predicted_taken == taken

    def reset(self) -> None:
        self._table.clear()

    def n_sites(self) -> int:
        return len(self._table)
