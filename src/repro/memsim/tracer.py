"""Tracer interface: the single instrumentation hook used by all indexes.

Every index's ``lookup`` is written once against this interface.  During
wall-clock benchmarking the no-op :data:`NULL_TRACER` is passed; during
paper-shape experiments a :class:`PerfTracer` (cache hierarchy + branch
predictor + instruction counter) is passed.  There are deliberately no
separate "fast" and "measured" code paths that could diverge.
"""

from __future__ import annotations

from typing import Optional

from repro.memsim.branch import BranchPredictor
from repro.memsim.cache import LINE_SIZE, CacheHierarchy
from repro.memsim.counters import PerfCounters
from repro.memsim.tlb import TLB


class Tracer:
    """Abstract instrumentation sink.

    Methods
    -------
    read(addr, size):
        A data-dependent memory read of ``size`` bytes at byte address
        ``addr``.  Reads crossing a cache-line boundary count as two line
        accesses.
    instr(n):
        ``n`` retired arithmetic/logic instructions.
    branch(site, taken):
        A conditional branch at static site ``site`` with outcome ``taken``.
    """

    def read(self, addr: int, size: int = 8) -> None:
        raise NotImplementedError

    def instr(self, n: int = 1) -> None:
        raise NotImplementedError

    def branch(self, site: str, taken: bool) -> None:
        raise NotImplementedError


class NullTracer(Tracer):
    """No-op tracer for wall-clock runs."""

    __slots__ = ()

    def read(self, addr: int, size: int = 8) -> None:
        pass

    def instr(self, n: int = 1) -> None:
        pass

    def branch(self, site: str, taken: bool) -> None:
        pass


#: Shared no-op tracer instance (stateless, safe to share).
NULL_TRACER = NullTracer()


class PerfTracer(Tracer):
    """Counting tracer backed by a cache hierarchy and branch predictor."""

    __slots__ = ("counters", "caches", "predictor", "tlb")

    def __init__(
        self,
        caches: Optional[CacheHierarchy] = None,
        predictor: Optional[BranchPredictor] = None,
        tlb: Optional[TLB] = None,
    ):
        self.counters = PerfCounters()
        self.caches = caches if caches is not None else CacheHierarchy()
        self.predictor = predictor if predictor is not None else BranchPredictor()
        self.tlb = tlb if tlb is not None else TLB()

    def read(self, addr: int, size: int = 8) -> None:
        c = self.counters
        c.reads += 1
        c.instructions += 1  # the load instruction itself
        if not self.tlb.access_addr(addr):
            # Page walk: one PTE read through the data caches.
            c.tlb_misses += 1
            walk_line = TLB.walk_addr(addr) // LINE_SIZE
            level = self.caches.access_line(walk_line)
            if level == 1:
                c.l1_hits += 1
            elif level == 2:
                c.l2_hits += 1
            elif level == 3:
                c.l3_hits += 1
            else:
                c.llc_misses += 1
        first_line = addr // LINE_SIZE
        last_line = (addr + size - 1) // LINE_SIZE
        for line in range(first_line, last_line + 1):
            level = self.caches.access_line(line)
            if level == 1:
                c.l1_hits += 1
            elif level == 2:
                c.l2_hits += 1
            elif level == 3:
                c.l3_hits += 1
            else:
                c.llc_misses += 1

    def instr(self, n: int = 1) -> None:
        self.counters.instructions += n

    def branch(self, site: str, taken: bool) -> None:
        c = self.counters
        c.branches += 1
        c.instructions += 1
        if not self.predictor.predict_and_update(site, taken):
            c.branch_misses += 1

    def snapshot(self) -> PerfCounters:
        return self.counters.copy()

    def flush_caches(self) -> None:
        self.caches.flush()
        self.tlb.flush()
