"""Tracer interface: the single instrumentation hook used by all indexes.

Every index's ``lookup`` is written once against this interface.  During
wall-clock benchmarking the no-op :data:`NULL_TRACER` is passed; during
paper-shape experiments a :class:`PerfTracer` (cache hierarchy + branch
predictor + instruction counter) is passed.  There are deliberately no
separate "fast" and "measured" code paths that could diverge.

:class:`PerfTracer` delegates the actual simulation to a pluggable
engine (``repro.memsim.engine``): the pure-Python reference engine is
the executable spec, and the flat-structure fast engine is its
counter-identical optimization.  ``read``/``instr``/``branch`` are
bound straight off the engine in ``__init__`` so the hot path pays no
per-event delegation.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.memsim.branch import BranchPredictor
from repro.memsim.cache import CacheHierarchy
from repro.memsim.counters import PerfCounters
from repro.memsim.engine import SiteInterner, default_engine_name, make_engine
from repro.memsim.tlb import TLB


class Tracer:
    """Abstract instrumentation sink.

    Methods
    -------
    read(addr, size):
        A data-dependent memory read of ``size`` bytes at byte address
        ``addr``.  Reads crossing a cache-line boundary count as two line
        accesses.
    instr(n):
        ``n`` retired arithmetic/logic instructions.
    branch(site, taken):
        A conditional branch at static site ``site`` with outcome ``taken``.
    phase(name):
        Marker: subsequent events belong to lookup phase ``name``
        ("model", "search", ...).  A no-op on every stock tracer; the
        profiling :class:`~repro.obs.phase.PhaseTracer` overrides it to
        attribute counter deltas per phase.  Markers are advisory and
        never recorded into traces, so they cannot change counters.

    The event methods return ``None`` -- lookup code cannot observe
    simulator state, which is what makes recorded event streams
    replayable (``repro.memsim.trace``).
    """

    def read(self, addr: int, size: int = 8) -> None:
        raise NotImplementedError

    def instr(self, n: int = 1) -> None:
        raise NotImplementedError

    def branch(self, site: str, taken: bool) -> None:
        raise NotImplementedError

    def phase(self, name: str) -> None:
        pass


class NullTracer(Tracer):
    """No-op tracer for wall-clock runs."""

    __slots__ = ()

    def read(self, addr: int, size: int = 8) -> None:
        pass

    def instr(self, n: int = 1) -> None:
        pass

    def branch(self, site: str, taken: bool) -> None:
        pass


#: Shared no-op tracer instance (stateless, safe to share).
NULL_TRACER = NullTracer()


class PerfTracer(Tracer):
    """Counting tracer backed by a pluggable memsim engine.

    ``engine`` may be an engine name (``"reference"`` / ``"fast"``), a
    prebuilt engine instance, or ``None`` for the ambient default
    (``REPRO_MEMSIM_ENGINE``, else reference).  Passing custom
    ``caches``/``predictor``/``tlb`` component objects implies the
    reference engine, which is built around them exactly as before.

    ``counters``/``caches``/``predictor``/``tlb`` delegate to the
    engine; the fast engine raises ``AttributeError`` for the component
    objects it does not have.
    """

    __slots__ = ("engine", "read", "instr", "branch")

    def __init__(
        self,
        caches: Optional[CacheHierarchy] = None,
        predictor: Optional[BranchPredictor] = None,
        tlb: Optional[TLB] = None,
        engine: Union[str, object, None] = None,
        sites: Optional[SiteInterner] = None,
    ):
        if engine is None or isinstance(engine, str):
            name = engine
            if name is None:
                has_components = (
                    caches is not None
                    or predictor is not None
                    or tlb is not None
                )
                name = "reference" if has_components else default_engine_name()
            eng = make_engine(
                name, caches=caches, predictor=predictor, tlb=tlb, sites=sites
            )
        else:
            if caches is not None or predictor is not None or tlb is not None:
                raise ValueError(
                    "pass components when naming an engine, not alongside a "
                    "prebuilt engine instance"
                )
            eng = engine
        self.engine = eng
        self.read = eng.read
        self.instr = eng.instr
        self.branch = eng.branch

    @property
    def counters(self) -> PerfCounters:
        return self.engine.counters

    @property
    def caches(self) -> CacheHierarchy:
        return self.engine.caches

    @property
    def predictor(self) -> BranchPredictor:
        return self.engine.predictor

    @property
    def tlb(self) -> TLB:
        return self.engine.tlb

    @property
    def sites(self) -> SiteInterner:
        return self.engine.sites

    def snapshot(self) -> PerfCounters:
        return self.engine.snapshot()

    def flush_caches(self) -> None:
        self.engine.flush_caches()

    def replay(self, trace) -> None:
        """Re-run a recorded event stream (see ``repro.memsim.trace``)."""
        self.engine.replay(trace)
