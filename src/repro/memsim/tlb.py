"""Two-level TLB simulation.

Structures with working sets far beyond the second-level TLB's coverage
(the paper's 6 GB RobinHood table is the extreme case) pay a page-walk
memory access on top of the data cache miss for nearly every lookup.
Capacities follow the scaled-down philosophy of the cache hierarchy
(DESIGN.md): 64-entry L1 dTLB and 1536-entry STLB over 4 KiB pages, giving
~6 MiB of STLB coverage against the default ~3 MiB datasets.
"""

from __future__ import annotations

from collections import OrderedDict

PAGE_SHIFT = 12  # 4 KiB pages


class _LruSet:
    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()

    def access(self, page: int) -> bool:
        entries = self._entries
        if page in entries:
            entries.move_to_end(page)
            return True
        entries[page] = True
        if len(entries) > self.capacity:
            entries.popitem(last=False)
        return False

    def flush(self) -> None:
        self._entries.clear()


class TLB:
    """L1 dTLB + shared second-level TLB, both fully-associative LRU."""

    __slots__ = ("l1", "l2")

    def __init__(self, l1_entries: int = 64, l2_entries: int = 1536):
        self.l1 = _LruSet(l1_entries)
        self.l2 = _LruSet(l2_entries)

    def access_addr(self, addr: int) -> bool:
        """True on TLB hit (either level); installs on miss."""
        page = addr >> PAGE_SHIFT
        if self.l1.access(page):
            return True
        return self.l2.access(page)

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()

    @staticmethod
    def walk_addr(addr: int) -> int:
        """Pseudo-address of the page-table entry for a page walk read.

        Page-table entries are 8 bytes and live in their own region of the
        simulated address space (high addresses), so walks have realistic
        cache behaviour: dense walks hit cached PTE lines, sparse ones
        miss.
        """
        page = addr >> PAGE_SHIFT
        return (1 << 44) + page * 8
