"""Pluggable memsim engines: reference (executable spec) and fast.

Every number the benchmark produces flows through the simulated CPU, and
Section 4.3 of the paper argues lookup latency is a linear function of
*counters* (cache misses, branch misses, instructions) -- so only the
counters must be exact, not the per-access object protocol.  That
freedom is what this module exploits:

* :class:`ReferenceEngine` wraps the pure-Python component classes
  (:class:`~repro.memsim.cache.CacheHierarchy`,
  :class:`~repro.memsim.branch.BranchPredictor`,
  :class:`~repro.memsim.tlb.TLB`) exactly as ``PerfTracer`` always has.
  It is the executable specification.
* :class:`FastEngine` re-implements the same state machines as flat
  per-set structures behind closure-bound functions, with interned
  branch sites (integer ids into a flat 2-bit-counter table), the TLB
  folded into the same machinery, and a batch :meth:`~FastEngine.replay`
  loop for recorded event streams.  It must produce byte-identical
  :class:`~repro.memsim.counters.PerfCounters` for any event stream;
  ``tests/test_memsim_differential.py`` enforces that with hypothesis,
  and the committed golden grids must pass under it unchanged.

Engine selection is ambient by design: the measurement-cache key does
*not* include the engine (both engines are the same measurement), so the
choice travels via ``PerfTracer(engine=...)``, the ``--memsim-engine``
CLI flag, or the ``REPRO_MEMSIM_ENGINE`` environment variable -- the
last of which is what parallel workers inherit.  See ``docs/memsim.md``.
"""

from __future__ import annotations

import os

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.memsim.branch import BranchPredictor
from repro.memsim.cache import LINE_SIZE, CacheHierarchy
from repro.memsim.counters import PerfCounters
from repro.memsim.tlb import PAGE_SHIFT, TLB

#: Engine names accepted by :func:`make_engine` and ``REPRO_MEMSIM_ENGINE``.
ENGINE_NAMES = ("reference", "fast", "vector")

_ENV_VAR = "REPRO_MEMSIM_ENGINE"


def default_engine_name() -> str:
    """Ambient engine choice: ``REPRO_MEMSIM_ENGINE`` or ``reference``."""
    name = os.environ.get(_ENV_VAR, "").strip().lower()
    if not name:
        return "reference"
    if name not in ENGINE_NAMES:
        raise ValueError(
            f"{_ENV_VAR}={name!r}: expected one of {ENGINE_NAMES}"
        )
    return name


class SiteInterner:
    """Bijective branch-site-string <-> small-integer-id mapping.

    Shared between a :class:`~repro.memsim.trace.TraceRecorder` and the
    engines that replay its traces, so a site id recorded in a trace
    resolves to the same site everywhere.  Append-only; ids are dense
    from zero.
    """

    __slots__ = ("ids", "names")

    def __init__(self) -> None:
        self.ids: Dict[str, int] = {}
        self.names: List[str] = []

    def intern(self, site: str) -> int:
        sid = self.ids.get(site)
        if sid is None:
            sid = len(self.names)
            self.ids[site] = sid
            self.names.append(site)
        return sid

    def name(self, sid: int) -> str:
        return self.names[sid]

    def __len__(self) -> int:
        return len(self.names)


class ReferenceEngine:
    """The original ``PerfTracer`` logic behind the engine interface.

    Composed from the pure-Python component classes so tests (and
    curious readers) can poke at ``caches`` / ``predictor`` / ``tlb``
    directly.  Every behaviour of :class:`FastEngine` is defined as
    "whatever this class does".
    """

    name = "reference"

    __slots__ = ("counters", "caches", "predictor", "tlb", "sites")

    def __init__(
        self,
        caches: Optional[CacheHierarchy] = None,
        predictor: Optional[BranchPredictor] = None,
        tlb: Optional[TLB] = None,
        sites: Optional[SiteInterner] = None,
    ):
        self.counters = PerfCounters()
        self.caches = caches if caches is not None else CacheHierarchy()
        self.predictor = predictor if predictor is not None else BranchPredictor()
        self.tlb = tlb if tlb is not None else TLB()
        self.sites = sites if sites is not None else SiteInterner()

    def read(self, addr: int, size: int = 8) -> None:
        c = self.counters
        c.reads += 1
        c.instructions += 1  # the load instruction itself
        if not self.tlb.access_addr(addr):
            # Page walk: one PTE read through the data caches.
            c.tlb_misses += 1
            walk_line = TLB.walk_addr(addr) // LINE_SIZE
            level = self.caches.access_line(walk_line)
            if level == 1:
                c.l1_hits += 1
            elif level == 2:
                c.l2_hits += 1
            elif level == 3:
                c.l3_hits += 1
            else:
                c.llc_misses += 1
        first_line = addr // LINE_SIZE
        last_line = (addr + size - 1) // LINE_SIZE
        for line in range(first_line, last_line + 1):
            level = self.caches.access_line(line)
            if level == 1:
                c.l1_hits += 1
            elif level == 2:
                c.l2_hits += 1
            elif level == 3:
                c.l3_hits += 1
            else:
                c.llc_misses += 1

    def instr(self, n: int = 1) -> None:
        self.counters.instructions += n

    def branch(self, site: str, taken: bool) -> None:
        c = self.counters
        c.branches += 1
        c.instructions += 1
        if not self.predictor.predict_and_update(site, taken):
            c.branch_misses += 1

    def snapshot(self) -> PerfCounters:
        return self.counters.copy()

    def flush_caches(self) -> None:
        self.caches.flush()
        self.tlb.flush()

    def n_branch_sites(self) -> int:
        return self.predictor.n_sites()

    def replay(self, trace) -> None:
        """Re-run a recorded event stream (see ``repro.memsim.trace``)."""
        read = self.read
        instr = self.instr
        branch = self.branch
        names = self.sites.names
        for kind, a, b in zip(*trace.lists()):
            if kind == 0:
                read(a, b)
            elif kind == 1:
                instr(a)
            elif kind == 2:
                branch(names[a], b == 1)
            else:
                # K_REPEAT: b single-line re-reads of the MRU line; a
                # 1-byte read reproduces each exactly (same line, page).
                for _ in range(b):
                    read(a, 1)


class FastEngine:
    """Flat-structure engine, counter-identical to the reference.

    Each cache level is a list of per-set way lists prefilled with
    negative sentinel tags, so a set always holds exactly ``assoc``
    entries: a fill is ``insert(0) + pop()`` with no length bookkeeping,
    and the MRU way is always ``ways[0]``.  (The LRU scan/move work thus
    stays in C-speed list primitives -- in CPython that beats the NumPy
    stamp-array layout, whose per-element scalar accesses cost ~100ns
    each; ``docs/memsim.md`` records the measurement.)  Branch sites are
    interned to dense ids indexing a flat 2-bit state list where ``-1``
    stands for the never-seen weak-taken state.  The TLB folds into the
    same machinery as two OrderedDicts plus an MRU-page shortcut.

    Two exact fast paths make warm loops cheap: a repeated
    single-line read of the MRU line on the MRU page is a pure
    ``l1_hits += 1`` (the previous access provably left both MRU, so
    no state can change), and the MRU-page test skips the TLB dicts
    entirely.

    ``read``/``instr``/``branch``/``replay`` are closures over shared
    ``nonlocal`` state, bound as instance attributes -- no ``self``
    in the hot path.  ``replay`` additionally mirrors the counters into
    loop locals for batch speed.
    """

    name = "fast"

    __slots__ = (
        "sites",
        "read",
        "instr",
        "branch",
        "snapshot",
        "flush_caches",
        "replay",
        "n_branch_sites",
    )

    def __init__(
        self,
        l1: Tuple[int, int] = (32 * 1024, 8),
        l2: Tuple[int, int] = (256 * 1024, 8),
        l3: Tuple[int, int] = (1024 * 1024, 16),
        tlb_entries: Tuple[int, int] = (64, 1536),
        sites: Optional[SiteInterner] = None,
    ):
        self.sites = sites if sites is not None else SiteInterner()
        ns = _build_fast_engine(l1, l2, l3, tlb_entries, self.sites)
        self.read = ns["read"]
        self.instr = ns["instr"]
        self.branch = ns["branch"]
        self.snapshot = ns["snapshot"]
        self.flush_caches = ns["flush_caches"]
        self.replay = ns["replay"]
        self.n_branch_sites = ns["n_branch_sites"]

    @property
    def counters(self) -> PerfCounters:
        """Materialized counter snapshot (the fast state is scalars)."""
        return self.snapshot()

    def _no_components(self) -> None:
        raise AttributeError(
            "the fast engine has no reference component objects; construct "
            "PerfTracer(engine='reference') to inspect caches/predictor/tlb"
        )

    @property
    def caches(self):
        self._no_components()

    @property
    def predictor(self):
        self._no_components()

    @property
    def tlb(self):
        self._no_components()


def _sets_for(size_bytes: int, assoc: int, name: str) -> List[List[int]]:
    if size_bytes % (assoc * LINE_SIZE) != 0:
        raise ValueError(
            f"{name}: size {size_bytes} not a multiple of assoc*line "
            f"({assoc}*{LINE_SIZE})"
        )
    n_sets = size_bytes // (assoc * LINE_SIZE)
    # Distinct negative sentinels: never equal to a real (non-negative)
    # line tag, so membership tests and fills behave exactly like the
    # reference's grow-then-evict lists.
    return [list(range(-1, -assoc - 1, -1)) for _ in range(n_sets)]


def _build_fast_engine(l1, l2, l3, tlb_entries, interner):
    """Construct the closure namespace holding all fast-engine state."""
    # The literal shifts below (>> 6, >> 12) assume these geometry
    # constants; fail loudly if someone changes them in one place only.
    assert LINE_SIZE == 1 << 6 and PAGE_SHIFT == 12
    l1_sets = _sets_for(l1[0], l1[1], "L1d")
    l2_sets = _sets_for(l2[0], l2[1], "L2")
    l3_sets = _sets_for(l3[0], l3[1], "L3")
    n1 = len(l1_sets)
    n2 = len(l2_sets)
    n3 = len(l3_sets)
    a1 = l1[1]
    a2 = l2[1]
    a3 = l3[1]
    tlb1_cap, tlb2_cap = tlb_entries
    tlb1: OrderedDict = OrderedDict()
    tlb2: OrderedDict = OrderedDict()
    site_ids = interner.ids
    intern = interner.intern
    bst: List[int] = []  # per-site 2-bit state; -1 == never-seen weak-taken

    walk_base = 1 << 44  # must match TLB.walk_addr

    instr_c = 0
    br_c = 0
    brm_c = 0
    reads_c = 0
    l1h = 0
    l2h = 0
    l3h = 0
    llc = 0
    tlbm = 0
    # Line for which a repeat single-line read is provably a pure L1 hit:
    # the last read left it MRU in its L1 set AND its page (== the read's
    # first page, which is the one the TLB translated) MRU in the L1 TLB.
    # -1 when the last read's MRU line sits outside the translated page.
    ultra_line = -1
    mru_page = -1  # MRU page (guaranteed MRU in the L1 TLB)

    def _fill(ln, s1):
        # L1 missed `ln`; probe L2/L3 and install into every missing level.
        nonlocal l2h, l3h, llc
        s2 = l2_sets[ln % n2]
        if s2[0] == ln:
            l2h += 1
        elif ln in s2:
            s2.remove(ln)
            s2.insert(0, ln)
            l2h += 1
        else:
            s3 = l3_sets[ln % n3]
            if s3[0] == ln:
                l3h += 1
            elif ln in s3:
                s3.remove(ln)
                s3.insert(0, ln)
                l3h += 1
            else:
                llc += 1
                s3.insert(0, ln)
                s3.pop()
            s2.insert(0, ln)
            s2.pop()
        s1.insert(0, ln)
        s1.pop()

    def read(addr, size=8):
        nonlocal reads_c, instr_c, l1h, tlbm, ultra_line, mru_page
        first = addr >> 6
        last = (addr + size - 1) >> 6
        if first == ultra_line and last == first:
            # Previous read left `first` MRU in its L1 set and its page
            # MRU in the TLB: a repeat is a pure L1 hit, zero state
            # change.
            reads_c += 1
            instr_c += 1
            l1h += 1
            return
        reads_c += 1
        instr_c += 1
        page = addr >> 12
        if page != mru_page:
            if page in tlb1:
                tlb1.move_to_end(page)
            elif page in tlb2:
                tlb2.move_to_end(page)
                tlb1[page] = True
                if len(tlb1) > tlb1_cap:
                    tlb1.popitem(False)
            else:
                tlbm += 1
                tlb1[page] = True
                if len(tlb1) > tlb1_cap:
                    tlb1.popitem(False)
                tlb2[page] = True
                if len(tlb2) > tlb2_cap:
                    tlb2.popitem(False)
                # Page walk: one PTE read through the data caches.
                wl = (walk_base + page * 8) >> 6
                s = l1_sets[wl % n1]
                if s[0] == wl:
                    l1h += 1
                elif wl in s:
                    s.remove(wl)
                    s.insert(0, wl)
                    l1h += 1
                else:
                    _fill(wl, s)
            mru_page = page
        ln = first
        while True:
            s = l1_sets[ln % n1]
            if s[0] == ln:
                l1h += 1
            elif ln in s:
                s.remove(ln)
                s.insert(0, ln)
                l1h += 1
            else:
                _fill(ln, s)
            if ln == last:
                break
            ln += 1
        ultra_line = last if last >> 6 == mru_page else -1

    def instr(n=1):
        nonlocal instr_c
        instr_c += n

    def branch(site, taken):
        nonlocal instr_c, br_c, brm_c
        br_c += 1
        instr_c += 1
        sid = site_ids.get(site)
        if sid is None:
            sid = intern(site)
        if sid >= len(bst):
            bst.extend([-1] * (sid + 1 - len(bst)))
        s = bst[sid]
        if s < 0:
            s = 2
        if taken:
            if s < 2:
                brm_c += 1
            bst[sid] = s + 1 if s < 3 else 3
        else:
            if s >= 2:
                brm_c += 1
            bst[sid] = s - 1 if s > 0 else 0

    def snapshot():
        return PerfCounters(
            instr_c, br_c, brm_c, reads_c, l1h, l2h, l3h, llc, tlbm
        )

    def flush_caches():
        nonlocal ultra_line, mru_page
        for i in range(n1):
            l1_sets[i] = list(range(-1, -a1 - 1, -1))
        for i in range(n2):
            l2_sets[i] = list(range(-1, -a2 - 1, -1))
        for i in range(n3):
            l3_sets[i] = list(range(-1, -a3 - 1, -1))
        tlb1.clear()
        tlb2.clear()
        ultra_line = -1
        mru_page = -1

    def n_branch_sites():
        return sum(1 for s in bst if s >= 0)

    # -- state hooks for the vector engine --------------------------------
    #
    # The vector replay path (repro.memsim.vector) reuses this namespace's
    # mutable structures directly and runs its own batch loop over them.
    # Lists/dicts are shared by reference; the scalar counters and the
    # MRU shortcuts travel through the getter/setter pair because they
    # are closure nonlocals.

    def _structs():
        return (
            l1_sets, n1, l2_sets, n2, l3_sets, n3,
            tlb1, tlb1_cap, tlb2, tlb2_cap, bst,
        )

    def _get_hot():
        return (
            instr_c, br_c, brm_c, reads_c,
            l1h, l2h, l3h, llc, tlbm, ultra_line, mru_page,
        )

    def _set_hot(values):
        nonlocal instr_c, br_c, brm_c, reads_c
        nonlocal l1h, l2h, l3h, llc, tlbm, ultra_line, mru_page
        (
            instr_c, br_c, brm_c, reads_c,
            l1h, l2h, l3h, llc, tlbm, ultra_line, mru_page,
        ) = values

    def replay(trace):
        # Fully inlined batch loop over a recorded event stream.  The
        # counters are mirrored into locals and written back in
        # `finally` so a mid-stream error cannot lose events.
        nonlocal reads_c, instr_c, br_c, brm_c
        nonlocal l1h, l2h, l3h, llc, tlbm, ultra_line, mru_page
        kinds, aa, bb = trace.lists()
        rd = reads_c
        ins = instr_c
        br = br_c
        brm = brm_c
        h1 = l1h
        h2 = l2h
        h3 = l3h
        ll = llc
        tm = tlbm
        ul = ultra_line
        mp = mru_page
        try:
            for k, a, b in zip(kinds, aa, bb):
                if k == 0:
                    # read(a, size=b)
                    first = a >> 6
                    last = (a + b - 1) >> 6
                    if first == ul and last == first:
                        rd += 1
                        ins += 1
                        h1 += 1
                        continue
                    rd += 1
                    ins += 1
                    page = a >> 12
                    if page != mp:
                        if page in tlb1:
                            tlb1.move_to_end(page)
                        elif page in tlb2:
                            tlb2.move_to_end(page)
                            tlb1[page] = True
                            if len(tlb1) > tlb1_cap:
                                tlb1.popitem(False)
                        else:
                            tm += 1
                            tlb1[page] = True
                            if len(tlb1) > tlb1_cap:
                                tlb1.popitem(False)
                            tlb2[page] = True
                            if len(tlb2) > tlb2_cap:
                                tlb2.popitem(False)
                            wl = (walk_base + page * 8) >> 6
                            s = l1_sets[wl % n1]
                            if s[0] == wl:
                                h1 += 1
                            elif wl in s:
                                s.remove(wl)
                                s.insert(0, wl)
                                h1 += 1
                            else:
                                s2 = l2_sets[wl % n2]
                                if s2[0] == wl:
                                    h2 += 1
                                elif wl in s2:
                                    s2.remove(wl)
                                    s2.insert(0, wl)
                                    h2 += 1
                                else:
                                    s3 = l3_sets[wl % n3]
                                    if s3[0] == wl:
                                        h3 += 1
                                    elif wl in s3:
                                        s3.remove(wl)
                                        s3.insert(0, wl)
                                        h3 += 1
                                    else:
                                        ll += 1
                                        s3.insert(0, wl)
                                        s3.pop()
                                    s2.insert(0, wl)
                                    s2.pop()
                                s.insert(0, wl)
                                s.pop()
                        mp = page
                    ln = first
                    while True:
                        s = l1_sets[ln % n1]
                        if s[0] == ln:
                            h1 += 1
                        elif ln in s:
                            s.remove(ln)
                            s.insert(0, ln)
                            h1 += 1
                        else:
                            s2 = l2_sets[ln % n2]
                            if s2[0] == ln:
                                h2 += 1
                            elif ln in s2:
                                s2.remove(ln)
                                s2.insert(0, ln)
                                h2 += 1
                            else:
                                s3 = l3_sets[ln % n3]
                                if s3[0] == ln:
                                    h3 += 1
                                elif ln in s3:
                                    s3.remove(ln)
                                    s3.insert(0, ln)
                                    h3 += 1
                                else:
                                    ll += 1
                                    s3.insert(0, ln)
                                    s3.pop()
                                s2.insert(0, ln)
                                s2.pop()
                            s.insert(0, ln)
                            s.pop()
                        if ln == last:
                            break
                        ln += 1
                    ul = last if last >> 6 == mp else -1
                elif k == 3:
                    # K_REPEAT: b pure-L1-hit re-reads (recorder-verified).
                    rd += b
                    ins += b
                    h1 += b
                elif k == 1:
                    ins += a
                else:
                    # branch(site=a, taken=b)
                    br += 1
                    ins += 1
                    if a >= len(bst):
                        bst.extend([-1] * (a + 1 - len(bst)))
                    s = bst[a]
                    if s < 0:
                        s = 2
                    if b:
                        if s < 2:
                            brm += 1
                        bst[a] = s + 1 if s < 3 else 3
                    else:
                        if s >= 2:
                            brm += 1
                        bst[a] = s - 1 if s > 0 else 0
        finally:
            reads_c = rd
            instr_c = ins
            br_c = br
            brm_c = brm
            l1h = h1
            l2h = h2
            l3h = h3
            llc = ll
            tlbm = tm
            ultra_line = ul
            mru_page = mp

    return {
        "read": read,
        "instr": instr,
        "branch": branch,
        "snapshot": snapshot,
        "flush_caches": flush_caches,
        "replay": replay,
        "n_branch_sites": n_branch_sites,
        "_structs": _structs,
        "_get_hot": _get_hot,
        "_set_hot": _set_hot,
    }


def make_engine(
    name: Optional[str] = None,
    caches: Optional[CacheHierarchy] = None,
    predictor: Optional[BranchPredictor] = None,
    tlb: Optional[TLB] = None,
    sites: Optional[SiteInterner] = None,
):
    """Build an engine by name (``None`` -> :func:`default_engine_name`).

    Custom component objects imply the reference engine: they carry
    their own state, which the flat fast structures cannot adopt.
    """
    if name is None:
        name = default_engine_name()
    if name == "reference":
        return ReferenceEngine(
            caches=caches, predictor=predictor, tlb=tlb, sites=sites
        )
    if name in ("fast", "vector"):
        if caches is not None or predictor is not None or tlb is not None:
            raise ValueError(
                "custom cache/predictor/TLB objects require "
                "engine='reference' (the fast and vector engines only "
                "support geometry parameters)"
            )
        if name == "fast":
            return FastEngine(sites=sites)
        # Imported lazily: vector.py imports this module for the fast
        # namespace it builds on.
        from repro.memsim.vector import VectorEngine

        return VectorEngine(sites=sites)
    raise ValueError(f"unknown memsim engine {name!r}: expected {ENGINE_NAMES}")
