"""Array-level memsim engine: trace replay as vectorized numpy passes.

:class:`FastEngine` replays a recorded :class:`~repro.memsim.trace.Trace`
one event at a time.  :class:`VectorEngine` instead *compiles* the trace
once into a :class:`_TracePlan` -- a bundle of numpy-derived aggregates
and compact Python lists -- and replays the plan.  The compilation
exploits three exact order-independence properties of the simulator:

* ``instr``/``K_REPEAT`` events and the per-event counter increments of
  reads and branches are pure sums: one ``np.sum`` per kind replaces the
  per-event loop entirely.
* Branch-predictor state is per-site: grouping branch events by site
  (``np.add.at``-style grouped accumulation) and pre-computing, for each
  site, the misprediction count and final 2-bit state *for every
  possible initial state* turns replay into one table lookup per site.
  For long traces the per-site automaton is evaluated with a segmented
  prefix scan over clamp-function compositions (``min(B, max(A, x+T))``
  triples, log-depth doubling) instead of a Python loop.
* Cache and TLB state change only on reads, and the recorder's MRU
  invariant identifies reads that are *provably* pure L1 hits with zero
  state change (the fast engine's ``ultra_line`` shortcut).  Vectorized
  address decomposition (``>> 6``/``>> 12`` over the whole event array)
  classifies those up front, so the only per-event Python left is a lean
  loop over the genuinely state-changing reads, driven by precomputed
  line/page/same-page arrays.

The sequential core (LRU set updates, two-level TLB recency) is
reproduced exactly, not approximated: the loop body is the fast
engine's, minus all the work the plan already did.  Counters are
byte-identical to :class:`ReferenceEngine` for any recorder-produced
trace; ``tests/test_memsim_differential.py`` enforces it.

Plans are cached on the trace (``Trace._plan``), so the steady-state
cost of replaying a hot trace is the hard-read loop plus a handful of
scalar adds.  Per-call ``read``/``instr``/``branch`` are the fast
engine's closures -- direct (non-replay) execution *is* the documented
FastEngine fallback (``docs/vectorized.md``).

On top of the plan sits *replay memoization*: a recorded trace is a
fixed input, and the simulator is deterministic, so replaying the same
trace from the same engine state always produces the same counter
deltas and the same final state.  The engine therefore tracks a *state
token* -- ``("fresh", geometry)`` at construction, ``("flushed",
geometry, branch-state)`` after a flush, an opaque object minted after
each real replay, and ``None`` after any per-call ``read``/``branch``
(which mutate state outside the replay path; ``instr`` only counts, so
it keeps the token).  A plan memoizes, per entry token, the counter
deltas plus copies of exactly the state the replay can touch: the
cache sets of the plan's line superset, both TLB dicts, and the
plan's branch sites.  A token hit applies the deltas and restores the
copies instead of re-walking the loop; byte-identical by determinism,
and enforced -- like everything else here -- by the differential suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memsim.counters import PerfCounters
from repro.memsim.engine import SiteInterner, _build_fast_engine
from repro.memsim.trace import K_BRANCH, K_INSTR, K_READ, K_REPEAT

#: Must match ``TLB.walk_addr`` (asserted against the geometry constants
#: in ``repro.memsim.engine``).
_WALK_BASE = 1 << 44

#: Below this many branch events the 4-state Python simulation beats the
#: numpy segmented scan's fixed overhead.
_SCAN_MIN_EVENTS = 256

#: Sentinels standing in for -inf/+inf clamp parameters (states are 0..3,
#: walks are bounded by the event count, so +-2^40 is unreachable).
_NEG = -(1 << 40)
_POS = 1 << 40

#: Memo entries kept per plan.  Each well-known token chain (fresh ->
#: warmup -> measured, or flushed -> one row) contributes one entry per
#: trace; the cap only guards against pathological churn.
_MEMO_MAX = 16


class _TracePlan:
    """One trace compiled for vector replay (pure function of the trace)."""

    __slots__ = (
        "n_read",
        "rep_total",
        "instr_total",
        "n_branch",
        "n_ultra",
        "site_tables",
        "max_sid",
        "hard_first",
        "hard_last",
        "hard_page",
        "hard_same_page",
        "read0_single",
        "read0_first",
        "last_cand",
        "last_page",
        "touched_lines",
        "setidx",
        "memo",
    )


def _site_tables_python(sids: List[int], takens: List[int]):
    """Per-site (misses, final-state) tables via direct 4-state simulation."""
    groups: Dict[int, List[int]] = {}
    for sid, taken in zip(sids, takens):
        groups.setdefault(sid, []).append(taken)
    tables = []
    for sid, outs in groups.items():
        states = [0, 1, 2, 3]
        miss = [0, 0, 0, 0]
        for o in outs:
            for j in range(4):
                s = states[j]
                if o:
                    if s < 2:
                        miss[j] += 1
                    states[j] = s + 1 if s < 3 else 3
                else:
                    if s >= 2:
                        miss[j] += 1
                    states[j] = s - 1 if s > 0 else 0
        tables.append((sid, tuple(miss), tuple(states)))
    return tables


def _site_tables_scan(sids: np.ndarray, takens: np.ndarray):
    """Per-site tables via a segmented prefix scan of clamp compositions.

    A branch outcome ``d`` (+1 taken / -1 not-taken) acts on the 2-bit
    state as ``x -> min(3, max(0, x + d))``.  Compositions of such maps
    stay in the 3-parameter family ``x -> min(B, max(A, x + T))`` with

        compose(earlier=(t1,a1,b1), later=(t2,a2,b2)) =
            (t1 + t2, max(a2, a1 + t2), min(b2, max(a2, b1 + t2)))

    so the prefix composition over each site's outcome subsequence is a
    Hillis-Steele doubling scan (log-depth, all numpy).  Evaluating the
    scan at every position for each of the four initial states yields the
    per-event predictor state, hence exact misprediction counts.
    """
    order = np.argsort(sids, kind="stable")
    s_sorted = sids[order]
    t_sorted = takens[order] != 0
    m = len(s_sorted)
    # Segment ids: one segment per site, events in original order.
    seg_start = np.empty(m, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = s_sorted[1:] != s_sorted[:-1]
    seg = np.cumsum(seg_start) - 1

    d = np.where(t_sorted, 1, -1).astype(np.int64)
    T = d.copy()
    A = np.zeros(m, dtype=np.int64)
    B = np.full(m, 3, dtype=np.int64)
    shift = 1
    while shift < m:
        ok = np.zeros(m, dtype=bool)
        ok[shift:] = seg[shift:] == seg[:-shift]
        t1 = T[:-shift][ok[shift:]]
        a1 = A[:-shift][ok[shift:]]
        b1 = B[:-shift][ok[shift:]]
        t2 = T[shift:][ok[shift:]]
        a2 = A[shift:][ok[shift:]]
        b2 = B[shift:][ok[shift:]]
        T[shift:][ok[shift:]] = t1 + t2
        A[shift:][ok[shift:]] = np.maximum(a2, a1 + t2)
        B[shift:][ok[shift:]] = np.minimum(b2, np.maximum(a2, b1 + t2))
        shift *= 2

    n_seg = int(seg[-1]) + 1
    ends = np.nonzero(np.append(seg_start[1:], True))[0]
    site_of_seg = s_sorted[ends]
    miss_mat = np.empty((4, n_seg), dtype=np.int64)
    final_mat = np.empty((4, n_seg), dtype=np.int64)
    for s0 in range(4):
        after = np.minimum(B, np.maximum(A, s0 + T))
        pre = np.empty(m, dtype=np.int64)
        pre[0] = s0
        pre[1:] = np.where(seg_start[1:], s0, after[:-1])
        miss = (pre >= 2) != t_sorted
        miss_mat[s0] = np.bincount(seg, weights=miss, minlength=n_seg).astype(
            np.int64
        )
        final_mat[s0] = after[ends]
    return [
        (int(site_of_seg[k]), tuple(int(x) for x in miss_mat[:, k]),
         tuple(int(x) for x in final_mat[:, k]))
        for k in range(n_seg)
    ]


def _build_plan(trace) -> _TracePlan:
    """Compile a trace: vectorized decomposition + per-site branch tables."""
    kinds = trace.kinds
    a = trace.a
    b = trace.b
    p = _TracePlan()
    m_rep = kinds == K_REPEAT
    m_ins = kinds == K_INSTR
    m_br = kinds == K_BRANCH
    m_rd = kinds == K_READ
    p.rep_total = int(b[m_rep].sum())
    p.instr_total = int(a[m_ins].sum())
    p.n_branch = int(np.count_nonzero(m_br))

    addr = a[m_rd]
    size = b[m_rd]
    n_read = p.n_read = int(addr.shape[0])
    if n_read:
        first = addr >> 6
        last = (addr + size - 1) >> 6
        page = addr >> 12
        single = first == last
        cross = (last >> 6) != page
        # The line a follow-up single-line read may repeat as a pure L1
        # hit: the read's own MRU line, when it lies in the translated
        # page (the fast engine's `ultra_line` rule, vectorized).
        cand = np.where(single, first, np.where(~cross, last, -1))
        iu = np.zeros(n_read, dtype=bool)
        sp = np.zeros(n_read, dtype=bool)
        if n_read > 1:
            iu[1:] = single[1:] & (cand[:-1] >= 0) & (first[1:] == cand[:-1])
            sp[1:] = page[1:] == page[:-1]
        p.n_ultra = int(np.count_nonzero(iu))
        hard = ~iu
        p.hard_first = first[hard].tolist()
        p.hard_last = last[hard].tolist()
        p.hard_page = page[hard].tolist()
        p.hard_same_page = sp[hard].tolist()
        p.read0_single = bool(single[0])
        p.read0_first = int(first[0])
        p.last_cand = int(cand[-1])
        p.last_page = int(page[-1])
        # Superset of cache lines whose sets this replay can mutate:
        # every line of every hard read plus each distinct page's PTE
        # walk line (ultra/repeat reads are state-change-free by
        # construction).  Geometry-free here; memoization derives the
        # per-engine set indices from it (see `_store_memo`).
        lines = set()
        for f, l in zip(p.hard_first, p.hard_last):
            if f == l:
                lines.add(f)
            else:
                lines.update(range(f, l + 1))
        for pg in set(p.hard_page):
            lines.add((_WALK_BASE + pg * 8) >> 6)
        p.touched_lines = lines
    else:
        p.n_ultra = 0
        p.hard_first = []
        p.hard_last = []
        p.hard_page = []
        p.hard_same_page = []
        p.read0_single = False
        p.read0_first = -1
        p.last_cand = -1
        p.last_page = -1
        p.touched_lines = set()
    p.setidx = {}
    p.memo = {}

    sids = a[m_br]
    takens = b[m_br]
    if p.n_branch == 0:
        p.site_tables = []
        p.max_sid = -1
    else:
        p.max_sid = int(sids.max())
        if p.n_branch < _SCAN_MIN_EVENTS:
            p.site_tables = _site_tables_python(sids.tolist(), takens.tolist())
        else:
            p.site_tables = _site_tables_scan(sids, takens)
    return p


def _apply_memo(ns: dict, entry) -> None:
    """Re-apply a memoized replay: counter deltas + state-copy restore."""
    (
        delta, ul_f, mp_f, sets1, sets2, sets3,
        tlb1_keys, tlb2_keys, bst_len, bst_vals, token_out,
    ) = entry
    (
        l1_sets, _n1, l2_sets, _n2, l3_sets, _n3,
        tlb1, _c1, tlb2, _c2, bst,
    ) = ns["_structs"]()
    hot = ns["_get_hot"]()
    ns["_set_hot"](
        tuple(h + d for h, d in zip(hot[:9], delta)) + (ul_f, mp_f)
    )
    for i, ways in sets1:
        l1_sets[i] = ways[:]
    for i, ways in sets2:
        l2_sets[i] = ways[:]
    for i, ways in sets3:
        l3_sets[i] = ways[:]
    tlb1.clear()
    for k in tlb1_keys:
        tlb1[k] = True
    tlb2.clear()
    for k in tlb2_keys:
        tlb2[k] = True
    if bst_len > len(bst):
        bst.extend([-1] * (bst_len - len(bst)))
    for sid, v in bst_vals:
        bst[sid] = v
    ns["_vtoken"] = token_out


def _store_memo(ns: dict, plan: _TracePlan, tok, hot0) -> None:
    """Record the just-finished replay's effect under entry token ``tok``.

    The stored state is exactly what the replay may have touched: the
    sets of ``plan.touched_lines`` (a proven superset), both TLB dicts
    wholesale, and the plan's branch sites.  Token identity guarantees
    everything else already matches at apply time.
    """
    if len(plan.memo) >= _MEMO_MAX:
        ns["_vtoken"] = None
        return
    (
        l1_sets, n1, l2_sets, n2, l3_sets, n3,
        tlb1, _c1, tlb2, _c2, bst,
    ) = ns["_structs"]()
    idx = plan.setidx.get((n1, n2, n3))
    if idx is None:
        lines = plan.touched_lines
        idx = (
            list({ln % n1 for ln in lines}),
            list({ln % n2 for ln in lines}),
            list({ln % n3 for ln in lines}),
        )
        plan.setidx[(n1, n2, n3)] = idx
    t1, t2, t3 = idx
    hot = ns["_get_hot"]()
    entry = (
        tuple(h - h0 for h, h0 in zip(hot[:9], hot0)),
        hot[9],
        hot[10],
        [(i, l1_sets[i][:]) for i in t1],
        [(i, l2_sets[i][:]) for i in t2],
        [(i, l3_sets[i][:]) for i in t3],
        list(tlb1),
        list(tlb2),
        len(bst),
        [(sid, bst[sid]) for sid, _m, _f in plan.site_tables],
        object(),
    )
    plan.memo[tok] = entry
    ns["_vtoken"] = entry[-1]


def _vector_replay(ns: dict, trace) -> None:
    """Replay a compiled trace against a fast-engine namespace."""
    plan = trace._plan
    if plan is None:
        plan = _build_plan(trace)
        trace._plan = plan
    tok = ns.get("_vtoken")
    if tok is not None:
        entry = plan.memo.get(tok)
        if entry is not None:
            _apply_memo(ns, entry)
            return
        # Unknown until the replay below completes; a mid-replay error
        # must not leave a stale token describing pre-replay state.
        ns["_vtoken"] = None
    (
        l1_sets, n1, l2_sets, n2, l3_sets, n3,
        tlb1, tlb1_cap, tlb2, tlb2_cap, bst,
    ) = ns["_structs"]()
    hot0 = ns["_get_hot"]()
    (ins, br, brm, rd, h1, h2, h3, ll, tm, ul, mp) = hot0

    # Order-independent aggregates (each read/branch charges one
    # instruction; repeats and recorder-proven repeat-like reads are pure
    # L1 hits).
    rd += plan.n_read + plan.rep_total
    ins += plan.instr_total + plan.n_read + plan.rep_total + plan.n_branch
    br += plan.n_branch
    h1 += plan.rep_total + plan.n_ultra

    # Branch-table updates: one precomputed (misses, final) lookup per
    # site, indexed by the engine's current 2-bit state for that site.
    if plan.max_sid >= len(bst):
        bst.extend([-1] * (plan.max_sid + 1 - len(bst)))
    for sid, miss, fin in plan.site_tables:
        s = bst[sid]
        j = 2 if s < 0 else s
        brm += miss[j]
        bst[sid] = fin[j]

    if plan.n_read == 0:
        ns["_set_hot"]((ins, br, brm, rd, h1, h2, h3, ll, tm, ul, mp))
        if tok is not None:
            _store_memo(ns, plan, tok, hot0[:9])
        return

    hf = plan.hard_first
    hl = plan.hard_last
    hp = plan.hard_page
    hsp = plan.hard_same_page
    start = 0
    if plan.read0_single and plan.read0_first == ul:
        # The trace's first read repeats the line the engine's previous
        # read left MRU (line in L1, page in TLB): pure L1 hit.
        h1 += 1
        start = 1
    try:
        for i in range(start, len(hf)):
            ln = hf[i]
            last = hl[i]
            page = hp[i]
            if (page == mp) if i == 0 else hsp[i]:
                pass
            else:
                if page in tlb1:
                    tlb1.move_to_end(page)
                elif page in tlb2:
                    tlb2.move_to_end(page)
                    tlb1[page] = True
                    if len(tlb1) > tlb1_cap:
                        tlb1.popitem(False)
                else:
                    tm += 1
                    tlb1[page] = True
                    if len(tlb1) > tlb1_cap:
                        tlb1.popitem(False)
                    tlb2[page] = True
                    if len(tlb2) > tlb2_cap:
                        tlb2.popitem(False)
                    # Page walk: one PTE read through the data caches.
                    wl = (_WALK_BASE + page * 8) >> 6
                    s = l1_sets[wl % n1]
                    if s[0] == wl:
                        h1 += 1
                    elif wl in s:
                        s.remove(wl)
                        s.insert(0, wl)
                        h1 += 1
                    else:
                        s2 = l2_sets[wl % n2]
                        if s2[0] == wl:
                            h2 += 1
                        elif wl in s2:
                            s2.remove(wl)
                            s2.insert(0, wl)
                            h2 += 1
                        else:
                            s3 = l3_sets[wl % n3]
                            if s3[0] == wl:
                                h3 += 1
                            elif wl in s3:
                                s3.remove(wl)
                                s3.insert(0, wl)
                                h3 += 1
                            else:
                                ll += 1
                                s3.insert(0, wl)
                                s3.pop()
                            s2.insert(0, wl)
                            s2.pop()
                        s.insert(0, wl)
                        s.pop()
            while True:
                s = l1_sets[ln % n1]
                if s[0] == ln:
                    h1 += 1
                elif ln in s:
                    s.remove(ln)
                    s.insert(0, ln)
                    h1 += 1
                else:
                    s2 = l2_sets[ln % n2]
                    if s2[0] == ln:
                        h2 += 1
                    elif ln in s2:
                        s2.remove(ln)
                        s2.insert(0, ln)
                        h2 += 1
                    else:
                        s3 = l3_sets[ln % n3]
                        if s3[0] == ln:
                            h3 += 1
                        elif ln in s3:
                            s3.remove(ln)
                            s3.insert(0, ln)
                            h3 += 1
                        else:
                            ll += 1
                            s3.insert(0, ln)
                            s3.pop()
                        s2.insert(0, ln)
                        s2.pop()
                    s.insert(0, ln)
                    s.pop()
                if ln == last:
                    break
                ln += 1
    finally:
        # After any read the MRU shortcuts are that read's candidates.
        ns["_set_hot"](
            (ins, br, brm, rd, h1, h2, h3, ll, tm,
             plan.last_cand, plan.last_page)
        )
    if tok is not None:
        _store_memo(ns, plan, tok, hot0[:9])


class VectorEngine:
    """Fast-engine state behind a compiled (array-level) replay path.

    Per-call ``read``/``instr``/``branch`` are the fast engine's closures
    (the FastEngine fallback); ``replay`` is the vectorized batch path.
    Counter-identical to :class:`ReferenceEngine` either way.
    """

    name = "vector"

    __slots__ = (
        "sites",
        "read",
        "instr",
        "branch",
        "snapshot",
        "flush_caches",
        "replay",
        "n_branch_sites",
        "_ns",
    )

    def __init__(
        self,
        l1: Tuple[int, int] = (32 * 1024, 8),
        l2: Tuple[int, int] = (256 * 1024, 8),
        l3: Tuple[int, int] = (1024 * 1024, 16),
        tlb_entries: Tuple[int, int] = (64, 1536),
        sites: Optional[SiteInterner] = None,
    ):
        self.sites = sites if sites is not None else SiteInterner()
        ns = _build_fast_engine(l1, l2, l3, tlb_entries, self.sites)
        self._ns = ns
        # Replay-memoization state token.  Any two engines with equal
        # geometry start in identical state, so the fresh token is a
        # value (tuple); tokens minted after real replays are identity
        # objects reachable only by repeating the same replay chain.
        geom = (l1, l2, l3, tlb_entries)
        ns["_vtoken"] = ("fresh", geom)
        raw_read = ns["read"]
        raw_branch = ns["branch"]
        raw_flush = ns["flush_caches"]
        bst = ns["_structs"]()[10]

        def read(addr, size=8):
            # Per-call reads mutate state outside the replay path.
            ns["_vtoken"] = None
            raw_read(addr, size)

        def branch(site, taken):
            ns["_vtoken"] = None
            raw_branch(site, taken)

        def flush_caches():
            # A flush resets caches/TLB/MRU but keeps predictor state,
            # so the post-flush state is fully named by the branch
            # table (counters are excluded: memo entries store deltas).
            raw_flush()
            ns["_vtoken"] = ("flushed", geom, tuple(bst))

        self.read = read
        self.instr = ns["instr"]
        self.branch = branch
        self.snapshot = ns["snapshot"]
        self.flush_caches = flush_caches
        self.n_branch_sites = ns["n_branch_sites"]
        self.replay = lambda trace, _ns=ns: _vector_replay(_ns, trace)

    @property
    def counters(self) -> PerfCounters:
        """Materialized counter snapshot (the hot state is scalars)."""
        return self.snapshot()

    def _no_components(self) -> None:
        raise AttributeError(
            "the vector engine has no reference component objects; construct "
            "PerfTracer(engine='reference') to inspect caches/predictor/tlb"
        )

    @property
    def caches(self):
        self._no_components()

    @property
    def predictor(self):
        self._no_components()

    @property
    def tlb(self):
        self._no_components()
