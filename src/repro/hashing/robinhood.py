"""Robin Hood hash table (the paper's RobinHash baseline).

Open addressing with linear probing and Robin Hood displacement: on
insert, the entry farther from its home slot wins the slot.  Lookups can
stop as soon as the probed entry's displacement is smaller than the
lookup's, which keeps probe sequences short even at high load -- though
the paper (and this implementation) runs it at a load factor of 0.25,
which they found maximized lookup performance.

Hash tables index *every* key (sampling would break point lookups) and
support only present-key lookups; an absent key returns the trivial full
bound.  This is the documented ``point_only`` exception of the benchmark.
"""

from __future__ import annotations

from typing import List

from repro.core.bounds import SearchBound
from repro.core.interface import Capabilities, SortedDataIndex
from repro.core.registry import register_index
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer

_SLOT_BYTES = 16  # key + position
_HASH_INSTR = 6
_PROBE_INSTR = 4
_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


@register_index
class RobinHashIndex(SortedDataIndex):
    """Robin Hood hash map from key to position."""

    name = "RobinHash"
    capabilities = Capabilities(updates=True, ordered=False, kind="Hash")
    point_only = True

    def __init__(self, load_factor: float = 0.25):
        super().__init__()
        if not 0.05 <= load_factor <= 0.97:
            raise ValueError("load_factor must be in [0.05, 0.97]")
        self.load_factor = load_factor
        self._shift = 64
        self._keys: List[int] = []
        self._pos: List[int] = []
        self._base = 0
        self._capacity = 0

    def _hash(self, key: int) -> int:
        return ((key * _MULT) & _MASK64) >> self._shift

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        n = len(data)
        capacity = 4
        while capacity * self.load_factor < n:
            capacity *= 2
        self._capacity = capacity
        self._shift = 64 - capacity.bit_length() + 1
        self._keys = [-1] * capacity
        self._pos = [0] * capacity

        keys = self._keys
        pos_arr = self._pos
        mask = capacity - 1
        for position, key in enumerate(data._py):
            slot = self._hash(key)
            dist = 0
            cur_key, cur_pos = key, position
            while True:
                existing = keys[slot]
                if existing == -1:
                    keys[slot] = cur_key
                    pos_arr[slot] = cur_pos
                    break
                their_dist = (slot - self._hash(existing)) & mask
                if their_dist < dist:
                    # Robin Hood: displace the richer entry.
                    keys[slot], cur_key = cur_key, keys[slot]
                    pos_arr[slot], cur_pos = cur_pos, pos_arr[slot]
                    dist = their_dist
                slot = (slot + 1) & mask
                dist += 1

        self._base = space.alloc(capacity * _SLOT_BYTES, name="robinhash.slots")
        self._register_bytes(capacity * _SLOT_BYTES)

    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        key = int(key)
        tracer.instr(_HASH_INSTR)
        mask = self._capacity - 1
        slot = self._hash(key)
        dist = 0
        keys = self._keys
        while True:
            tracer.read(self._base + slot * _SLOT_BYTES, _SLOT_BYTES)
            tracer.instr(_PROBE_INSTR)
            existing = keys[slot]
            found = existing == key
            tracer.branch("robinhash.hit", found)
            if found:
                p = self._pos[slot]
                return SearchBound(p, p + 1)
            if existing == -1:
                return SearchBound(0, self.n_keys + 1)
            their_dist = (slot - self._hash(existing)) & mask
            early_out = their_dist < dist
            tracer.branch("robinhash.early", early_out)
            if early_out:
                return SearchBound(0, self.n_keys + 1)
            slot = (slot + 1) & mask
            dist += 1

    @classmethod
    def size_sweep_configs(cls, n_keys: int) -> List[dict]:
        return [{}]
