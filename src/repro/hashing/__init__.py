"""Hash tables: unordered point-lookup baselines (paper Section 4.2, Table 2)."""

from repro.hashing.cuckoo import CuckooMapIndex
from repro.hashing.robinhood import RobinHashIndex

__all__ = ["CuckooMapIndex", "RobinHashIndex"]
