"""Bucketized cuckoo hash map (the paper's SIMD CuckooMap baseline).

Two hash functions, four slots per bucket: a lookup reads at most two
buckets and compares each bucket's keys with one SIMD operation.  Matching
the paper's implementation, keys must fit in 32 bits (Section 4.2, Table
2: "The SIMD Cuckoo implementation only supports 32-bit keys") and the
table runs at a load factor of 0.99.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bounds import SearchBound
from repro.core.interface import Capabilities, SortedDataIndex
from repro.core.registry import register_index
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer

_SLOTS = 4
_BUCKET_KEY_BYTES = _SLOTS * 4
_BUCKET_BYTES = _SLOTS * 8  # 4-byte key + 4-byte position per slot
_HASH_INSTR = 8
_SIMD_CMP_INSTR = 3
_MASK64 = (1 << 64) - 1
_EMPTY = -1


@register_index
class CuckooMapIndex(SortedDataIndex):
    """Two-choice, four-slot cuckoo hash map for 32-bit keys."""

    name = "CuckooMap"
    capabilities = Capabilities(updates=True, ordered=False, kind="Hash")
    point_only = True

    def __init__(self, load_factor: float = 0.99, max_kicks: int = 2000):
        super().__init__()
        if not 0.05 <= load_factor <= 0.995:
            raise ValueError("load_factor must be in [0.05, 0.995]")
        self.load_factor = load_factor
        self.max_kicks = max_kicks
        self._keys: List[List[int]] = []
        self._pos: List[List[int]] = []
        self._n_buckets = 0
        self._base = 0

    def _h1(self, key: int) -> int:
        return ((key * 0x9E3779B97F4A7C15) & _MASK64) % self._n_buckets

    def _h2(self, key: int) -> int:
        return ((key * 0xC2B2AE3D27D4EB4F + 0x165667B1) & _MASK64) % self._n_buckets

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        if int(data.values.max()) >= (1 << 32):
            raise ValueError("CuckooMap supports only 32-bit keys (as the paper's)")
        n = len(data)
        n_buckets = max(int(np.ceil(n / (self.load_factor * _SLOTS))), 2)
        rng = np.random.default_rng(7)
        while not self._try_build(data._py, n_buckets, rng):
            n_buckets = int(n_buckets * 1.05) + 1
        self._base = space.alloc(self._n_buckets * _BUCKET_BYTES, name="cuckoo")
        self._register_bytes(self._n_buckets * _BUCKET_BYTES)

    def _try_build(self, keys, n_buckets: int, rng) -> bool:
        self._n_buckets = n_buckets
        self._keys = [[_EMPTY] * _SLOTS for _ in range(n_buckets)]
        self._pos = [[0] * _SLOTS for _ in range(n_buckets)]
        for position, key in enumerate(keys):
            if not self._insert(key, position, rng):
                return False
        return True

    def _insert(self, key: int, position: int, rng) -> bool:
        cur_key, cur_pos = key, position
        for _ in range(self.max_kicks):
            b1, b2 = self._h1(cur_key), self._h2(cur_key)
            for b in (b1, b2):
                slots = self._keys[b]
                for s in range(_SLOTS):
                    if slots[s] == _EMPTY:
                        slots[s] = cur_key
                        self._pos[b][s] = cur_pos
                        return True
            # Random-walk eviction from a randomly chosen candidate bucket
            # (alternating choices reach higher load factors than always
            # evicting from the same side).
            b = b2 if rng.integers(0, 2) else b1
            victim = int(rng.integers(0, _SLOTS))
            self._keys[b][victim], cur_key = cur_key, self._keys[b][victim]
            self._pos[b][victim], cur_pos = cur_pos, self._pos[b][victim]
        return False

    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        key = int(key)
        tracer.instr(_HASH_INSTR)
        b1 = self._h1(key)
        tracer.read(self._base + b1 * _BUCKET_BYTES, _BUCKET_KEY_BYTES)
        tracer.instr(_SIMD_CMP_INSTR)
        slots = self._keys[b1]
        hit = key in slots
        tracer.branch("cuckoo.b1", hit)
        if hit:
            s = slots.index(key)
            tracer.read(self._base + b1 * _BUCKET_BYTES + _BUCKET_KEY_BYTES + s * 4, 4)
            p = self._pos[b1][s]
            return SearchBound(p, p + 1)
        b2 = self._h2(key)
        tracer.read(self._base + b2 * _BUCKET_BYTES, _BUCKET_KEY_BYTES)
        tracer.instr(_SIMD_CMP_INSTR)
        slots = self._keys[b2]
        hit = key in slots
        tracer.branch("cuckoo.b2", hit)
        if hit:
            s = slots.index(key)
            tracer.read(self._base + b2 * _BUCKET_BYTES + _BUCKET_KEY_BYTES + s * 4, 4)
            p = self._pos[b2][s]
            return SearchBound(p, p + 1)
        return SearchBound(0, self.n_keys + 1)

    @classmethod
    def size_sweep_configs(cls, n_keys: int) -> List[dict]:
        return [{}]
