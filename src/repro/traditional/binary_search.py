"""Binary search (BS) baseline: the zero-size index.

BS returns the trivial full bound; all work happens in the last-mile
search over the data array.  It is the paper's horizontal reference line
in Figure 7.
"""

from __future__ import annotations

from typing import List

from repro.core.bounds import SearchBound
from repro.core.interface import Capabilities, SortedDataIndex
from repro.core.registry import register_index
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer


@register_index
class BinarySearchIndex(SortedDataIndex):
    """The no-index baseline: bound = the whole array."""

    name = "BS"
    capabilities = Capabilities(updates=False, ordered=True, kind="Binary search")

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        pass

    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        return SearchBound(0, self.n_keys + 1)

    def size_bytes(self) -> int:
        return 0

    @classmethod
    def size_sweep_configs(cls, n_keys: int) -> List[dict]:
        return [{}]
