"""Adaptive radix tree (ART), Leis et al. / ICDE'13.

A byte-wise radix trie over the sampled keys with the four adaptive node
kinds of the paper (Node4 / Node16 / Node48 / Node256), path compression,
and lazy expansion (single-key subtrees become leaves immediately).  Keys
are indexed big-endian, one byte per level; 32-bit data gives a 4-level
trie (the tree-structure gain in the paper's Figure 10).

Lookups are *predecessor* searches (largest sampled key <= lookup key):
the descent tracks the byte-wise comparison exactly, and on divergence
either finishes at the current subtree's rightmost leaf (when the lookup
key exceeds the whole subtree) or at the rightmost leaf of the largest
smaller sibling recorded on the way down.  Every node visit charges the
tracer for the header/prefix read, the child-array search and the child
pointer read, with node memory footprints from the ART paper.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.interface import Capabilities
from repro.core.registry import register_index
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import Tracer
from repro.traditional.base import SampledIndex, sample_keys

_HEADER = 16  # type/prefix-length/prefix bytes

# (max children, bytes) per node kind, following the ART paper's layouts.
_KINDS = (
    (4, _HEADER + 4 + 4 * 8),
    (16, _HEADER + 16 + 16 * 8),
    (48, _HEADER + 256 + 48 * 8),
    (256, _HEADER + 256 * 8),
)
_LEAF_BYTES = 16  # full key + sampled index


class _Node:
    __slots__ = (
        "prefix",
        "child_bytes",
        "children",
        "addr",
        "is_leaf",
        "leaf_idx",
        "leaf_key",
        "kind_cap",
    )

    def __init__(self):
        self.prefix: bytes = b""
        self.child_bytes: List[int] = []
        self.children: List["_Node"] = []
        self.addr = 0
        self.is_leaf = False
        self.leaf_idx = -1
        self.leaf_key = 0
        self.kind_cap = 4


def _kind_for(n_children: int):
    for cap, size in _KINDS:
        if n_children <= cap:
            return cap, size
    raise AssertionError("more than 256 children is impossible")


@register_index
class ARTIndex(SampledIndex):
    """ART over a subset of the keys.

    ``sampling="uniform"`` inserts every ``gap``-th key (the paper's
    universal technique).  ``sampling="adaptive"`` implements the paper's
    suggested structure-specific alternative ("ART may admit a smarter
    method in which keys are retained or discarded based on the fill
    level of a node", Section 4.1.1): it retains the first key of every
    distinct high-bit prefix, choosing the prefix width so that roughly
    ``n / gap`` keys survive.  Retained keys then differ in their top
    radix bytes, which flattens the trie; the price is that search-bound
    widths follow the key density instead of being a constant ``gap``.
    """

    name = "ART"
    capabilities = Capabilities(updates=True, ordered=True, kind="Trie")

    def __init__(self, gap: int = 1, sampling: str = "uniform"):
        super().__init__(gap)
        if sampling not in ("uniform", "adaptive"):
            raise ValueError("sampling must be 'uniform' or 'adaptive'")
        self.sampling = sampling
        self._root: Optional[_Node] = None
        self._width = 8
        #: Data position of each sample (adaptive mode; uniform derives
        #: positions as j * gap).
        self._sample_pos: Optional[List[int]] = None

    # -- construction -----------------------------------------------------

    def _adaptive_samples(self, data: TracedArray):
        """First key of each distinct prefix, targeting ~n/gap samples."""
        keys = data.values
        n = len(keys)
        target = max(n // self.gap, 1)
        bits = 8 * keys.dtype.itemsize
        for shift in range(bits - 1, -1, -1):
            prefixes = keys >> np.uint64(shift) if shift else keys
            # Sorted input: distinct prefixes are run starts.
            starts = np.nonzero(
                np.concatenate(([True], prefixes[1:] != prefixes[:-1]))
            )[0]
            if len(starts) >= target or shift == 0:
                return keys[starts], starts
        raise AssertionError("unreachable")

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        if self.sampling == "adaptive" and self.gap > 1:
            samples, positions = self._adaptive_samples(data)
            self._sample_pos = [int(p) for p in positions]
        else:
            samples = sample_keys(data, self.gap)
            self._sample_pos = None
        self._n_samples = len(samples)
        self._width = samples.dtype.itemsize
        # Big-endian byte matrix: column d is the d-th most significant byte.
        key_bytes = (
            samples.astype(f">u{self._width}")
            .view(np.uint8)
            .reshape(len(samples), self._width)
        )
        keys_py = [int(k) for k in samples]
        self._root = self._build_node(key_bytes, keys_py, 0, len(keys_py), 0, space)

    def lookup(self, key, tracer=None):
        from repro.core.bounds import SearchBound
        from repro.memsim.tracer import NULL_TRACER

        if tracer is None:
            tracer = NULL_TRACER
        if self._sample_pos is None:
            return super().lookup(key, tracer)
        n = self.n_keys
        j = self._predecessor(int(key), tracer)
        if j < 0:
            return SearchBound(0, 1)
        lo = self._sample_pos[j]
        hi = (
            self._sample_pos[j + 1]
            if j + 1 < len(self._sample_pos)
            else n
        )
        return SearchBound(lo, min(hi, n) + 1)

    def _build_node(
        self,
        kb: np.ndarray,
        keys: List[int],
        lo: int,
        hi: int,
        depth: int,
        space: AddressSpace,
    ) -> _Node:
        node = _Node()
        if hi - lo == 1:
            node.is_leaf = True
            node.leaf_idx = lo
            node.leaf_key = keys[lo]
            node.addr = space.alloc(_LEAF_BYTES, name="art.leaf")
            self._register_bytes(_LEAF_BYTES)
            return node

        # Path compression: the group's common prefix beyond `depth` (the
        # group is sorted, so comparing first and last suffices).
        first, last = kb[lo], kb[hi - 1]
        d = depth
        while d < self._width and first[d] == last[d]:
            d += 1
        node.prefix = bytes(first[depth:d])

        # Split children by the byte at position d (sorted within group).
        col = kb[lo:hi, d]
        split_bytes, starts = np.unique(col, return_index=True)
        bounds = list(starts) + [hi - lo]
        for i, byte in enumerate(split_bytes):
            child = self._build_node(
                kb, keys, lo + bounds[i], lo + bounds[i + 1], d + 1, space
            )
            node.child_bytes.append(int(byte))
            node.children.append(child)

        cap, size = _kind_for(len(node.children))
        node.kind_cap = cap
        node.addr = space.alloc(size, name=f"art.node{cap}")
        self._register_bytes(size)
        return node

    # -- lookup ------------------------------------------------------------

    def _visit_cost(self, node: _Node, tracer: Tracer) -> None:
        """Charge header + prefix read and the child-array search."""
        tracer.read(node.addr, _HEADER)
        tracer.instr(3 + len(node.prefix))
        if node.is_leaf:
            return
        cap = node.kind_cap
        if cap == 4:
            tracer.read(node.addr + _HEADER, 4)
            tracer.instr(4)
        elif cap == 16:
            tracer.read(node.addr + _HEADER, 16)
            tracer.instr(3)  # SIMD compare + movemask + ctz
        elif cap == 48:
            tracer.read(node.addr + _HEADER, 1)
            tracer.instr(2)
        else:
            tracer.instr(1)

    def _child_read(self, node: _Node, slot: int, tracer: Tracer) -> None:
        offset = _HEADER + (0 if node.kind_cap == 256 else node.kind_cap)
        tracer.read(node.addr + offset + slot * 8, 8)

    def _rightmost_leaf(self, node: _Node, tracer: Tracer) -> int:
        """Sampled index of the subtree's largest key (walks right spine)."""
        while not node.is_leaf:
            self._visit_cost(node, tracer)
            slot = len(node.children) - 1
            self._child_read(node, slot, tracer)
            node = node.children[slot]
        tracer.read(node.addr, _LEAF_BYTES)
        return node.leaf_idx

    def _predecessor(self, key: int, tracer: Tracer) -> int:
        if key < 0:
            return -1
        kb = int(key).to_bytes(self._width, "big") if key < (1 << (8 * self._width)) else None
        if kb is None:
            # Larger than any storable key: predecessor is the global max.
            return self._rightmost_leaf(self._root, tracer)
        node = self._root
        depth = 0
        best: Optional[_Node] = None  # largest smaller sibling passed
        while True:
            self._visit_cost(node, tracer)
            # Prefix comparison (path compression).
            prefix = node.prefix if not node.is_leaf else b""
            for i, pb in enumerate(prefix):
                cb = kb[depth + i]
                if cb == pb:
                    continue
                tracer.branch("art.prefix", True)
                if cb > pb:
                    return self._rightmost_leaf(node, tracer)
                return self._rightmost_leaf(best, tracer) if best else -1
            depth += len(prefix)

            if node.is_leaf:
                tracer.read(node.addr, _LEAF_BYTES)
                tracer.branch("art.leafcmp", key >= node.leaf_key)
                if key >= node.leaf_key:
                    return node.leaf_idx
                return self._rightmost_leaf(best, tracer) if best else -1

            b = kb[depth]
            # Child slot search (cost charged in _visit_cost).
            slot = -1
            smaller = -1
            for i, cb in enumerate(node.child_bytes):
                if cb == b:
                    slot = i
                elif cb < b:
                    smaller = i
                else:
                    break
            if smaller >= 0:
                best = node.children[smaller]
            tracer.branch("art.childhit", slot >= 0)
            if slot < 0:
                if smaller >= 0:
                    self._child_read(node, smaller, tracer)
                    return self._rightmost_leaf(node.children[smaller], tracer)
                return self._rightmost_leaf(best, tracer) if best else -1
            self._child_read(node, slot, tracer)
            node = node.children[slot]
            depth += 1
