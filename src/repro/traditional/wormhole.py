"""Wormhole (Wu et al., EuroSys'19): ordered index via prefix hashing.

Wormhole stores sorted leaf nodes and locates the leaf responsible for a
key with a *MetaTrieHash*: a hash table over every prefix of every leaf
anchor key, searched by binary search on prefix *length* -- O(log L) hash
probes instead of O(log n) comparisons.  We reproduce that structure over
the sampled keys: fixed-size leaves, anchors = each leaf's first key, and
a prefix hash mapping each byte-prefix to the contiguous range of leaves
whose anchors share it.

A lookup binary-searches the prefix length for the longest prefix of the
key present in the hash (3-4 probes for 8-byte keys), then resolves the
exact leaf with a short anchor search and finishes inside the leaf.
"""

from __future__ import annotations

from typing import Dict, Tuple



from repro.core.interface import Capabilities
from repro.core.registry import register_index
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import Tracer
from repro.traditional.base import SampledIndex, sample_keys

_HASH_INSTR = 10  # multiply-shift hash + compare
_ENTRY_BYTES = 16
_SEARCH_STEP_INSTR = 5


@register_index
class WormholeIndex(SampledIndex):
    """Wormhole over every ``gap``-th key."""

    name = "Wormhole"
    capabilities = Capabilities(
        updates=True, ordered=True, kind="Hybrid hash/trie"
    )

    def __init__(self, gap: int = 1, leaf_size: int = 64):
        super().__init__(gap)
        if leaf_size < 2:
            raise ValueError("leaf_size must be >= 2")
        self.leaf_size = int(leaf_size)
        self._width = 8
        self._map: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._anchors: TracedArray = None
        self._samples: TracedArray = None
        self._hash_base = 0
        self._n_buckets = 1

    # -- construction -----------------------------------------------------

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        samples = sample_keys(data, self.gap)
        self._n_samples = len(samples)
        self._width = samples.dtype.itemsize
        anchors = samples[:: self.leaf_size]

        self._samples = self._register(
            TracedArray.allocate(space, samples, name="wormhole.samples")
        )
        self._anchors = self._register(
            TracedArray.allocate(space, anchors, name="wormhole.anchors")
        )

        # MetaTrieHash: (prefix_len, prefix) -> [min_leaf, max_leaf].
        self._map = {}
        for leaf, anchor in enumerate(self._anchors._py):
            for length in range(self._width + 1):
                prefix = anchor >> (8 * (self._width - length))
                entry = self._map.get((length, prefix))
                if entry is None:
                    self._map[(length, prefix)] = (leaf, leaf)
                else:
                    self._map[(length, prefix)] = (entry[0], leaf)

        # Simulated open-addressed table at load factor ~0.75.
        self._n_buckets = max(int(len(self._map) / 0.75), 4)
        self._hash_base = space.alloc(
            self._n_buckets * _ENTRY_BYTES, name="wormhole.hash"
        )
        self._register_bytes(self._n_buckets * _ENTRY_BYTES)

    # -- lookup ------------------------------------------------------------

    def _probe(self, length: int, key: int, tracer: Tracer) -> Tuple[int, int]:
        """One charged hash probe; returns the leaf range or None."""
        prefix = key >> (8 * (self._width - length))
        slot = ((prefix * 0x9E3779B97F4A7C15 + length) & ((1 << 61) - 1)) % (
            self._n_buckets
        )
        tracer.instr(_HASH_INSTR)
        tracer.read(self._hash_base + slot * _ENTRY_BYTES, _ENTRY_BYTES)
        return self._map.get((length, prefix))

    def _predecessor(self, key: int, tracer: Tracer) -> int:
        if key >= (1 << (8 * self._width)):
            key = (1 << (8 * self._width)) - 1
        # Binary search on prefix length for the longest present prefix.
        lo_len, hi_len = 0, self._width
        best_range = self._map[(0, 0)]
        while lo_len < hi_len:
            mid = (lo_len + hi_len + 1) // 2
            entry = self._probe(mid, key, tracer)
            tracer.branch("wormhole.len", entry is not None)
            if entry is not None:
                best_range = entry
                lo_len = mid
            else:
                hi_len = mid - 1

        min_leaf, max_leaf = best_range
        # The predecessor anchor is within [min_leaf - 1, max_leaf]:
        # anchors before min_leaf have strictly smaller prefixes, anchors
        # after max_leaf strictly larger ones.
        anchors = self._anchors
        left = max(min_leaf - 1, 0)
        right = min(max_leaf + 1, len(anchors))
        while left < right:
            mid = (left + right) // 2
            tracer.instr(_SEARCH_STEP_INSTR)
            goes_right = anchors.get(mid, tracer) <= key
            tracer.branch("wormhole.anchor", goes_right)
            if goes_right:
                left = mid + 1
            else:
                right = mid
        leaf = left - 1
        if leaf < 0:
            return -1

        # In-leaf predecessor search over the sampled keys.
        samples = self._samples
        s_lo = leaf * self.leaf_size
        s_hi = min(s_lo + self.leaf_size, len(samples))
        left, right = s_lo, s_hi
        while left < right:
            mid = (left + right) // 2
            tracer.instr(_SEARCH_STEP_INSTR)
            goes_right = samples.get(mid, tracer) <= key
            tracer.branch("wormhole.leaf", goes_right)
            if goes_right:
                left = mid + 1
            else:
                right = mid
        return left - 1
