"""FAST: architecture-sensitive tree (Kim et al., SIGMOD'10).

FAST lays a search tree out in cache-line- and SIMD-friendly blocks and
replaces per-key branches with SIMD comparisons against a whole block of
keys at once.  We model it as the same implicit bulk-loaded k-ary tree as
the B-Tree baseline, but each node visit is *branch-free*: one blocked
read of the node's keys plus a constant few "SIMD" instructions that
compute the child index directly (no data-dependent branch, hence almost
no branch misses -- matching the paper's Figure 12/16 profile for FAST).

With 32-bit keys a 16-key node is a single cache line and each SIMD
comparison covers twice the keys, which is why FAST gains the most from
the paper's key-size experiment (Figure 10).
"""

from __future__ import annotations

from typing import List



from repro.core.interface import Capabilities
from repro.core.registry import register_index
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import Tracer
from repro.traditional.base import SampledIndex, key_dtype, sample_keys

#: AVX-512 lanes available per comparison, by key width in bytes.
_LANES = {4: 16, 8: 8}


@register_index
class FASTIndex(SampledIndex):
    """SIMD-blocked implicit k-ary tree over the sampled keys."""

    name = "FAST"
    capabilities = Capabilities(updates=False, ordered=True, kind="Tree")

    def __init__(self, gap: int = 1, fanout: int = 16):
        super().__init__(gap)
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.fanout = int(fanout)
        self._levels: List[TracedArray] = []
        self._simd_ops_per_node = 1

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        dtype = key_dtype(data)
        samples = sample_keys(data, self.gap).astype(dtype)
        self._n_samples = len(samples)
        lanes = _LANES.get(dtype.itemsize, 8)
        self._simd_ops_per_node = max(1, -(-self.fanout // lanes))
        levels = [samples]
        while len(levels[-1]) > self.fanout:
            levels.append(levels[-1][:: self.fanout])
        self._levels = [
            self._register(TracedArray.allocate(space, arr, name=f"fast.level{d}"))
            for d, arr in enumerate(levels)
        ]

    def _node_predecessor(
        self, level: TracedArray, lo: int, hi: int, key: int, tracer: Tracer
    ) -> int:
        """Branch-free SIMD count of node keys <= the lookup key."""
        # One blocked read of the node keys plus the SIMD sequence: loads,
        # compares, movemask/popcount, and FAST's page/cacheline/SIMD-block
        # index arithmetic (the structure's defining overhead -- it trades
        # instructions for branch-free, cache-friendly traversal, which is
        # why the paper measures it as compute-heavy but fence-insensitive).
        node = level.get_block(lo, hi - lo, tracer)
        tracer.instr(12 * self._simd_ops_per_node + 10)
        count = 0
        for k in node:
            if k <= key:
                count += 1
        return lo + count - 1

    def _predecessor(self, key: int, tracer: Tracer) -> int:
        levels = self._levels
        root = levels[-1]
        pos = self._node_predecessor(root, 0, len(root), key, tracer)
        if pos < 0:
            return -1
        for depth in range(len(levels) - 2, -1, -1):
            level = levels[depth]
            tracer.instr(2)
            lo = pos * self.fanout
            hi = min(lo + self.fanout, len(level))
            pos = self._node_predecessor(level, lo, hi, key, tracer)
        return pos
