"""Array-packed B+-tree (the STX B-Tree baseline) and interpolating variant.

Bulk-loaded over the sampled keys: the leaf level is the sampled key array
itself; each upper level stores the first key of every node below, so a
node's children occupy a contiguous slice of the next level (the classic
implicit layout of a bulk-loaded, fully-packed B+-tree).  Nodes hold
``fanout`` keys (default 16 -> 128 bytes, two cache lines of 64-bit keys;
one line of 32-bit keys, which is why trees gain from 32-bit keys in the
paper's Figure 10).

Descent performs a within-node predecessor search per level; the IBTree
(Graefe) replaces that with interpolation probes inside the node, cutting
comparisons on smoothly-distributed keys.
"""

from __future__ import annotations

from typing import List



from repro.core.interface import Capabilities
from repro.core.registry import register_index
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import Tracer
from repro.traditional.base import SampledIndex, key_dtype, sample_keys

_NODE_SEARCH_STEP_INSTR = 5
_DESCEND_INSTR = 3
_INTERP_PROBE_INSTR = 10


class _BTreeBase(SampledIndex):
    """Shared bulk-loaded structure; subclasses choose the node search."""

    def __init__(self, gap: int = 1, fanout: int = 16):
        super().__init__(gap)
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.fanout = int(fanout)
        #: Levels from leaf (index 0, the sampled keys) to root (last).
        self._levels: List[TracedArray] = []

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        samples = sample_keys(data, self.gap).astype(key_dtype(data))
        self._n_samples = len(samples)
        levels = [samples]
        while len(levels[-1]) > self.fanout:
            levels.append(levels[-1][:: self.fanout])
        self._levels = [
            self._register(
                TracedArray.allocate(space, arr, name=f"btree.level{d}")
            )
            for d, arr in enumerate(levels)
        ]

    def _node_predecessor(
        self, level: TracedArray, lo: int, hi: int, key: int, tracer: Tracer
    ) -> int:
        """Largest index in [lo, hi) whose key is <= the lookup key.

        Returns lo - 1 if every key in the window exceeds the lookup key.
        """
        raise NotImplementedError

    def _predecessor(self, key: int, tracer: Tracer) -> int:
        # Phase attribution: descent arithmetic (child-slice computation)
        # is the tree's "model" analogue; within-node predecessor probes
        # are its in-structure "search".
        tracer.phase("model")
        levels = self._levels
        root = levels[-1]
        pos = self._node_predecessor(root, 0, len(root), key, tracer)
        if pos < 0:
            return -1
        for depth in range(len(levels) - 2, -1, -1):
            level = levels[depth]
            tracer.phase("model")
            tracer.instr(_DESCEND_INSTR)
            lo = pos * self.fanout
            hi = min(lo + self.fanout, len(level))
            pos = self._node_predecessor(level, lo, hi, key, tracer)
            # level[lo] equals the parent separator, which was <= key.
        return pos


@register_index
class BTreeIndex(_BTreeBase):
    """STX-style B+-tree: binary search within each node."""

    name = "BTree"
    capabilities = Capabilities(updates=True, ordered=True, kind="Tree")

    def _node_predecessor(
        self, level: TracedArray, lo: int, hi: int, key: int, tracer: Tracer
    ) -> int:
        # Find the first slot whose key exceeds the lookup key, then step
        # back one.
        tracer.phase("search")
        left, right = lo, hi
        while left < right:
            mid = (left + right) // 2
            tracer.instr(_NODE_SEARCH_STEP_INSTR)
            goes_right = level.get(mid, tracer) <= key
            tracer.branch("btree.node", goes_right)
            if goes_right:
                left = mid + 1
            else:
                right = mid
        return left - 1


@register_index
class IBTreeIndex(_BTreeBase):
    """Interpolating B-Tree: interpolation probes within each node."""

    name = "IBTree"
    capabilities = Capabilities(updates=True, ordered=True, kind="Tree")

    def _node_predecessor(
        self, level: TracedArray, lo: int, hi: int, key: int, tracer: Tracer
    ) -> int:
        tracer.phase("search")
        first = level.get(lo, tracer)
        tracer.branch("ibtree.low", key < first)
        if key < first:
            return lo - 1
        last = level.get(hi - 1, tracer)
        tracer.branch("ibtree.high", key >= last)
        if key >= last:
            return hi - 1
        # Interpolate, then fix up with a short sequential scan.
        tracer.instr(_INTERP_PROBE_INSTR)
        span = last - first
        probe = lo + int((hi - 1 - lo) * (key - first) / span) if span else lo
        probe = min(max(probe, lo), hi - 2)
        if level.get(probe, tracer) <= key:
            pos = probe
            while pos + 1 < hi:
                tracer.instr(2)
                step = level.get(pos + 1, tracer) <= key
                tracer.branch("ibtree.scan", step)
                if not step:
                    break
                pos += 1
            return pos
        pos = probe - 1
        while pos > lo:
            tracer.instr(2)
            stop = level.get(pos, tracer) <= key
            tracer.branch("ibtree.scan", stop)
            if stop:
                break
            pos -= 1
        return pos if level.get_untraced(pos) <= key else lo - 1
