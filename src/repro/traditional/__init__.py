"""Traditional baselines: trees, tries, hybrid and naive search structures."""

from repro.traditional.binary_search import BinarySearchIndex
from repro.traditional.radix_binary_search import RadixBinarySearchIndex
from repro.traditional.btree import BTreeIndex, IBTreeIndex
from repro.traditional.fast import FASTIndex
from repro.traditional.art import ARTIndex
from repro.traditional.fst import FSTIndex
from repro.traditional.wormhole import WormholeIndex
from repro.traditional.base import SampledIndex

__all__ = [
    "BinarySearchIndex",
    "RadixBinarySearchIndex",
    "BTreeIndex",
    "IBTreeIndex",
    "FASTIndex",
    "ARTIndex",
    "FSTIndex",
    "WormholeIndex",
    "SampledIndex",
]
