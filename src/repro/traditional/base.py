"""Shared machinery for "traditional" structures built over sampled keys.

The paper tunes every tree structure's size/accuracy tradeoff by inserting
every ``gap``-th key (Section 4.1.1): a tree holding every second key can
be half the size but any returned location may be off by one.  A structure
that finds the *predecessor sampled key* of a lookup key can bound the
lower bound position to a window of ``gap + 1`` positions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bounds import SearchBound
from repro.core.interface import SortedDataIndex
from repro.memsim.memory import TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer


def sample_keys(data: TracedArray, gap: int) -> np.ndarray:
    """Every ``gap``-th key (always including the first)."""
    if gap < 1:
        raise ValueError("gap must be >= 1")
    return data.values[::gap]


def key_dtype(data: TracedArray) -> np.dtype:
    """Storage dtype for keys: uint32 when the data is 32-bit.

    This is how the paper's key-size experiment (Figure 10) manifests for
    tree structures: 32-bit keys pack twice as many entries per cache
    line.
    """
    return data.values.dtype


class SampledIndex(SortedDataIndex):
    """Base class: maps a predecessor *sampled* index to a search bound.

    Subclasses implement ``_predecessor(key, tracer) -> int`` returning the
    largest sampled index ``j`` with ``sample[j] <= key``, or ``-1`` when
    the key precedes every sampled key.
    """

    def __init__(self, gap: int = 1):
        super().__init__()
        if gap < 1:
            raise ValueError("gap must be >= 1")
        self.gap = int(gap)
        self._n_samples = 0

    def _predecessor(self, key: int, tracer: Tracer) -> int:
        raise NotImplementedError

    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        n = self.n_keys
        j = self._predecessor(int(key), tracer)
        if j < 0:
            return SearchBound(0, 1)
        lo = j * self.gap
        hi = min((j + 1) * self.gap, n) + 1
        return SearchBound(lo, hi)

    @classmethod
    def size_sweep_configs(cls, n_keys: int) -> List[dict]:
        """Size sweep by sampling interval (Figure 7)."""
        gaps = [512, 256, 128, 64, 32, 16, 8, 4, 2, 1]
        return [{"gap": g} for g in gaps if n_keys // g >= 4]
