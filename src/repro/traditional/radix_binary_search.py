"""Radix binary search (RBS): a radix lookup table over key prefixes.

RBS stores, for each ``radix_bits``-bit prefix ``p`` of the key space, the
first data position whose key prefix is >= ``p`` (exactly the radix table
the RS index builds over its spline points, but over the data directly;
Section 4.1.1).  A lookup is a shift plus two adjacent table reads.

Like the paper, this structure collapses on the ``face`` dataset: ~100
outliers near 2**64 stretch the prefix space so nearly every key shares
the prefix 0.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bounds import SearchBound
from repro.core.interface import Capabilities, SortedDataIndex
from repro.core.registry import register_index
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer

_LOOKUP_INSTR = 4  # shift, clamp, bound arithmetic


@register_index
class RadixBinarySearchIndex(SortedDataIndex):
    """Radix table of ``2**radix_bits + 1`` position offsets."""

    name = "RBS"
    capabilities = Capabilities(updates=False, ordered=True, kind="Lookup table")

    def __init__(self, radix_bits: int = 16):
        super().__init__()
        if not 1 <= radix_bits <= 28:
            raise ValueError("radix_bits must be in [1, 28]")
        self.radix_bits = int(radix_bits)
        self._shift = 0
        self._table: TracedArray = None

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        max_key = int(data._py[-1])
        self._shift = max(max_key.bit_length() - self.radix_bits, 0)
        prefixes = data.values >> np.uint64(self._shift)
        size = (1 << self.radix_bits) + 1
        table = np.searchsorted(prefixes, np.arange(size, dtype=np.uint64))
        self._table = self._register(
            TracedArray.allocate(space, table.astype(np.uint32), name="rbs.table")
        )

    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        n = self.n_keys
        tracer.instr(_LOOKUP_INSTR)
        prefix = int(key) >> self._shift
        max_prefix = (1 << self.radix_bits) - 1
        if prefix < 0:
            prefix = 0
        elif prefix > max_prefix:
            prefix = max_prefix
        lo = self._table.get(prefix, tracer)
        hi = self._table.get(prefix + 1, tracer)
        # Keys with a smaller prefix are < key; keys with a larger prefix
        # are > key, so LB(key) lies in [lo, hi].
        return SearchBound(lo, min(hi, n) + 1)

    @classmethod
    def size_sweep_configs(cls, n_keys: int) -> List[dict]:
        """Table widths from tiny to ~n entries, scaled with the dataset
        (the paper's largest RBS tables hold about one entry per 8 keys)."""
        import math

        log_n = max(int(math.log2(max(n_keys, 16))), 8)
        bits = range(max(log_n - 12, 4), log_n - 1)
        return [{"radix_bits": b} for b in bits]
