"""Fast succinct trie (FST), the index core of SuRF (Zhang et al.).

A byte-trie over the sampled keys in the LOUDS-sparse encoding: one label
byte per edge in breadth-first order, a ``has_child`` bitvector marking
internal edges, a ``louds`` bitvector marking each node's first edge, and
a value per leaf edge.  Child navigation is
``select1(louds, rank1(has_child, pos) + 1)``; leaf edges map to value
slot ``pos - rank1(has_child, pos)``.  Rank uses a per-word directory,
select a sampled hint plus scan -- and lookups charge the tracer for the
directory/word/bitmap reads those operations perform.

Unlike the approximate SuRF filter, this is an exact index: each leaf
stores its full key (SuRF-Real with complete suffix), so predecessor
searches are precise.  As the paper observes (Figure 8), the byte-per
-level navigation that makes FST shine on long string keys is pure
overhead on 64-bit integers.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import numpy as np

from repro.core.interface import Capabilities
from repro.core.registry import register_index
from repro.memsim.memory import AddressSpace
from repro.memsim.tracer import Tracer
from repro.traditional.base import SampledIndex, sample_keys

_RANK_INSTR = 4  # shift, mask, popcount, add
_SELECT_INSTR = 5


@register_index
class FSTIndex(SampledIndex):
    """LOUDS-sparse succinct byte-trie over every ``gap``-th key."""

    name = "FST"
    capabilities = Capabilities(updates=True, ordered=True, kind="Trie")

    def __init__(self, gap: int = 1):
        super().__init__(gap)
        self._width = 8
        # Per-edge arrays (breadth-first order).
        self._labels: List[int] = []
        self._has_child: List[int] = []
        self._louds: List[int] = []
        # Shadow navigation arrays (semantically derived from rank/select;
        # lookups still charge the succinct operations' reads).
        self._child_start: List[int] = []
        self._child_end: List[int] = []
        self._value_idx: List[int] = []
        self._values: List[int] = []  # sampled index per leaf edge
        self._leaf_keys: List[int] = []  # full key per leaf edge
        # Simulated base addresses.
        self._addr = {}

    # -- construction -----------------------------------------------------

    def _build(self, data: np.ndarray, space: AddressSpace) -> None:
        samples = sample_keys(data, self.gap)
        self._n_samples = len(samples)
        self._width = samples.dtype.itemsize
        kb = (
            samples.astype(f">u{self._width}")
            .view(np.uint8)
            .reshape(len(samples), self._width)
        )
        keys_py = [int(k) for k in samples]

        labels: List[int] = []
        has_child: List[int] = []
        louds: List[int] = []
        child_node_of_edge: List[int] = []  # node id an internal edge leads to
        values: List[int] = []
        leaf_keys: List[int] = []
        value_idx: List[int] = []
        node_edge_range: List[Tuple[int, int]] = []

        queue = deque()
        queue.append((0, len(keys_py), 0))
        while queue:
            lo, hi, depth = queue.popleft()
            node_start = len(labels)
            col = kb[lo:hi, depth]
            split_bytes, starts = np.unique(col, return_index=True)
            bounds = list(starts) + [hi - lo]
            for i, byte in enumerate(split_bytes):
                s, e = lo + bounds[i], lo + bounds[i + 1]
                labels.append(int(byte))
                louds.append(1 if i == 0 else 0)
                if e - s == 1:
                    has_child.append(0)
                    value_idx.append(len(values))
                    values.append(s)
                    leaf_keys.append(keys_py[s])
                    child_node_of_edge.append(-1)
                else:
                    has_child.append(1)
                    value_idx.append(-1)
                    # Child node id assigned in BFS order.
                    child_node_of_edge.append(
                        len(node_edge_range) + len(queue) + 1
                    )
                    queue.append((s, e, depth + 1))
            node_edge_range.append((node_start, len(labels)))

        # node_edge_range was appended in BFS pop order == node id order.
        n_edges = len(labels)
        self._labels = labels
        self._has_child = has_child
        self._louds = louds
        self._values = values
        self._leaf_keys = leaf_keys
        self._value_idx = value_idx
        self._child_start = [0] * n_edges
        self._child_end = [0] * n_edges
        self._node_range = node_edge_range
        for pos in range(n_edges):
            child = child_node_of_edge[pos]
            if child >= 0:
                self._child_start[pos], self._child_end[pos] = node_edge_range[
                    child
                ]

        # Simulated memory layout of the succinct structure.
        n_words = -(-n_edges // 64)
        n_leaves = len(values)
        self._addr = {
            "labels": space.alloc(n_edges, name="fst.labels"),
            "hc_bits": space.alloc(n_words * 8, name="fst.has_child"),
            "louds_bits": space.alloc(n_words * 8, name="fst.louds"),
            "hc_rank": space.alloc(n_words * 4, name="fst.has_child.rank"),
            "louds_sel": space.alloc(n_words * 4, name="fst.louds.select"),
            "values": space.alloc(n_leaves * 4, name="fst.values"),
            "leaf_keys": space.alloc(n_leaves * self._width, name="fst.leaf_keys"),
        }
        self._register_bytes(
            n_edges + 2 * n_words * 8 + 2 * n_words * 4 + n_leaves * (4 + self._width)
        )

    # -- charged succinct operations ----------------------------------------

    def _charge_label_scan(self, lo: int, hi: int, tracer: Tracer) -> None:
        span = hi - lo
        tracer.read(self._addr["labels"] + lo, span)
        tracer.instr(2 + -(-span // 16))  # SIMD compare per 16 labels

    def _charge_rank(self, base_key: str, pos: int, tracer: Tracer) -> None:
        word = pos // 64
        tracer.read(self._addr["hc_rank"] + word * 4, 4)
        tracer.read(self._addr[base_key] + word * 8, 8)
        tracer.instr(_RANK_INSTR)

    def _charge_select(self, pos_hint: int, tracer: Tracer) -> None:
        word = pos_hint // 64
        tracer.read(self._addr["louds_sel"] + word * 4, 4)
        tracer.read(self._addr["louds_bits"] + word * 8, 8)
        tracer.instr(_SELECT_INSTR)

    def _charge_leaf(self, vidx: int, tracer: Tracer) -> None:
        tracer.read(self._addr["values"] + vidx * 4, 4)
        tracer.read(self._addr["leaf_keys"] + vidx * self._width, self._width)
        tracer.instr(2)

    # -- lookup ------------------------------------------------------------

    def _descend(self, pos: int, tracer: Tracer) -> Tuple[int, int]:
        """Child node edge range of internal edge ``pos`` (charged)."""
        self._charge_rank("hc_bits", pos, tracer)
        self._charge_select(self._child_start[pos], tracer)
        return self._child_start[pos], self._child_end[pos]

    def _subtree_max(self, pos: int, tracer: Tracer) -> int:
        """Sampled index of the largest key under edge ``pos``."""
        while self._has_child[pos]:
            tracer.branch("fst.max.internal", True)
            lo, hi = self._descend(pos, tracer)
            pos = hi - 1
            self._charge_label_scan(hi - 1, hi, tracer)
        tracer.branch("fst.max.internal", False)
        self._charge_rank("hc_bits", pos, tracer)
        vidx = self._value_idx[pos]
        self._charge_leaf(vidx, tracer)
        return self._values[vidx]

    def _predecessor(self, key: int, tracer: Tracer) -> int:
        if key >= (1 << (8 * self._width)):
            return self._subtree_max_of_root(tracer)
        kb = int(key).to_bytes(self._width, "big")
        lo, hi = self._node_range[0]
        best = -1  # edge position of largest smaller sibling passed
        for depth in range(self._width):
            b = kb[depth]
            self._charge_label_scan(lo, hi, tracer)
            slot = -1
            smaller = -1
            for pos in range(lo, hi):
                lab = self._labels[pos]
                if lab == b:
                    slot = pos
                elif lab < b:
                    smaller = pos
                else:
                    break
            if smaller >= 0:
                best = smaller
            tracer.branch("fst.childhit", slot >= 0)
            if slot < 0:
                if smaller >= 0:
                    return self._subtree_max(smaller, tracer)
                return self._subtree_max(best, tracer) if best >= 0 else -1
            self._charge_rank("hc_bits", slot, tracer)
            if not self._has_child[slot]:
                vidx = self._value_idx[slot]
                self._charge_leaf(vidx, tracer)
                leaf_key = self._leaf_keys[vidx]
                tracer.branch("fst.leafcmp", key >= leaf_key)
                if key >= leaf_key:
                    return self._values[vidx]
                return self._subtree_max(best, tracer) if best >= 0 else -1
            self._charge_select(self._child_start[slot], tracer)
            lo, hi = self._child_start[slot], self._child_end[slot]
        raise AssertionError("trie deeper than key width")

    def _subtree_max_of_root(self, tracer: Tracer) -> int:
        lo, hi = self._node_range[0]
        return self._subtree_max(hi - 1, tracer)
