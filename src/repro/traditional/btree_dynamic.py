"""A classic updatable in-memory B+-tree.

The paper's conclusion: "As more learned index structures begin to
support updates, a benchmark against traditional indexes (which are often
optimized for updates) could be fruitful."  The mixed read/write harness
(:mod:`repro.bench.readwrite`) needs exactly that traditional opponent;
this is a textbook B+-tree -- sorted keys per node, split-on-overflow,
values only at the leaves, leaf chaining for range scans.

Unlike the read-only benchmark structures this owns its key/value data
(compare :class:`repro.learned.dynamic_pgm.DynamicPGM` and
:class:`repro.learned.alex.AlexIndex`).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: List[int] = []
        self.values: List[int] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self):
        #: children[i] holds keys < keys[i]; children[-1] the rest.
        self.keys: List[int] = []
        self.children: List[object] = []


class DynamicBTree:
    """Updatable B+-tree mapping int keys to int values.

    Parameters
    ----------
    fanout:
        Maximum keys per node (minimum 4); nodes split at overflow.
    """

    def __init__(self, fanout: int = 32):
        if fanout < 4:
            raise ValueError("fanout must be >= 4")
        self.fanout = fanout
        self._root: object = _Leaf()
        self._n = 0
        self._height = 1

    # -- construction -----------------------------------------------------

    @classmethod
    def bulk_load(cls, keys, values, fanout: int = 32) -> "DynamicBTree":
        tree = cls(fanout)
        prev = None
        for key, value in zip(keys, values):
            if prev is not None and int(key) <= prev:
                raise ValueError("bulk_load expects strictly increasing keys")
            prev = int(key)
            tree.insert(prev, int(value))
        return tree

    # -- queries -------------------------------------------------------------

    def _find_leaf(self, key: int) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            slot = bisect.bisect_right(node.keys, key)
            node = node.children[slot]
        return node

    def get(self, key: int) -> Optional[int]:
        key = int(key)
        leaf = self._find_leaf(key)
        slot = bisect.bisect_left(leaf.keys, key)
        if slot < len(leaf.keys) and leaf.keys[slot] == key:
            return leaf.values[slot]
        return None

    def range(self, lo: int, hi: int) -> Iterator[Tuple[int, int]]:
        """(key, value) for lo <= key < hi, ascending (leaf chaining)."""
        leaf = self._find_leaf(int(lo))
        slot = bisect.bisect_left(leaf.keys, int(lo))
        while leaf is not None:
            while slot < len(leaf.keys):
                key = leaf.keys[slot]
                if key >= hi:
                    return
                yield key, leaf.values[slot]
                slot += 1
            leaf = leaf.next
            slot = 0

    def __len__(self) -> int:
        return self._n

    @property
    def height(self) -> int:
        return self._height

    # -- mutation --------------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        key = int(key)
        split = self._insert_into(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert_into(self, node, key: int, value: int):
        """Insert under ``node``; return (separator, new right sibling) on split."""
        if isinstance(node, _Leaf):
            slot = bisect.bisect_left(node.keys, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                node.values[slot] = value
                return None
            node.keys.insert(slot, key)
            node.values.insert(slot, value)
            self._n += 1
            if len(node.keys) <= self.fanout:
                return None
            mid = len(node.keys) // 2
            right = _Leaf()
            right.keys = node.keys[mid:]
            right.values = node.values[mid:]
            right.next = node.next
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            node.next = right
            return right.keys[0], right

        slot = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[slot], key, value)
        if split is None:
            return None
        sep, right_child = split
        node.keys.insert(slot, sep)
        node.children.insert(slot + 1, right_child)
        if len(node.keys) <= self.fanout:
            return None
        mid = len(node.keys) // 2
        right = _Internal()
        sep_up = node.keys[mid]
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_up, right

    def items(self) -> Iterator[Tuple[int, int]]:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next
