"""Dataset objects: keys + payloads, 32/64-bit variants, caching.

The paper's setup (Section 4.1.2): each dataset is a sorted array of
unique unsigned integer keys with a random 8-byte payload per key; lookups
sum the payloads of the looked-up keys to verify correctness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.generators import ALL_GENERATORS, GENERATORS

#: The paper's four evaluation datasets (synthetic extras such as
#: ``uniform`` and ``lognormal`` are also loadable by name, but stay out
#: of the experiment defaults, as in the paper).
DATASET_NAMES = tuple(sorted(GENERATORS))
ALL_DATASET_NAMES = tuple(sorted(ALL_GENERATORS))

#: In-process memo so experiments that share a dataset build it once.
_CACHE: Dict[Tuple, "Dataset"] = {}


@dataclass
class Dataset:
    """A sorted unique key array with payloads."""

    name: str
    keys: np.ndarray
    payloads: np.ndarray
    key_bits: int = 64
    seed: int = 0

    @property
    def n(self) -> int:
        return len(self.keys)

    def cdf(self, sample: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """(keys, relative positions) pairs for CDF plots (Figure 6)."""
        n = self.n
        positions = np.arange(n, dtype=np.float64) / n
        if sample is not None and sample < n:
            idx = np.linspace(0, n - 1, sample).astype(np.int64)
            return self.keys[idx], positions[idx]
        return self.keys, positions

    def checksum(self, positions: np.ndarray) -> int:
        """Sum of payloads at the given positions (lookup verification)."""
        return int(np.sum(self.payloads[np.asarray(positions, dtype=np.int64)]))

    def stats(self) -> dict:
        """Descriptive statistics used by the fig6 experiment."""
        gaps = np.diff(self.keys.astype(np.float64))
        return {
            "n": self.n,
            "min": int(self.keys[0]),
            "max": int(self.keys[-1]),
            "mean_gap": float(gaps.mean()),
            "gap_cv": float(gaps.std() / gaps.mean()) if gaps.mean() else 0.0,
            "max_gap": float(gaps.max()),
        }


def _to_32bit(keys: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Scale 64-bit keys into 32 bits preserving the CDF shape.

    The paper "scales down the amzn dataset from 64 to 32 bits"
    (Section 4.2.2).  We map keys affinely onto [1, 2**32 - 1] and
    deduplicate; the resulting array keeps the same normalized CDF.
    """
    lo = float(keys[0])
    hi = float(keys[-1])
    span = max(hi - lo, 1.0)
    scaled = (keys.astype(np.float64) - lo) / span
    out = (scaled * float((1 << 32) - 2)).astype(np.uint64) + 1
    return np.unique(out)


def make_dataset(
    name: str,
    n_keys: int,
    seed: int = 0,
    key_bits: int = 64,
    cache_dir: Optional[str] = None,
) -> Dataset:
    """Build (or fetch from cache) one of the four benchmark datasets.

    Parameters
    ----------
    name:
        One of ``amzn``, ``face``, ``osm``, ``wiki``.
    n_keys:
        Number of unique keys (the paper uses 200M; defaults downstream
        are scaled to interpreter speed -- see DESIGN.md).
    key_bits:
        64 (default) or 32.  The 32-bit variant affinely rescales the
        64-bit keys, as the paper does for amzn, so the CDF shape is
        identical; note deduplication may drop a few keys.
    cache_dir:
        Optional directory for ``.npz`` disk caching across processes.
    """
    if name not in ALL_GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; known: {ALL_DATASET_NAMES}")
    if key_bits not in (32, 64):
        raise ValueError("key_bits must be 32 or 64")
    if n_keys < 2:
        raise ValueError("n_keys must be >= 2")

    memo_key = (name, n_keys, seed, key_bits)
    if memo_key in _CACHE:
        return _CACHE[memo_key]

    cache_path = None
    if cache_dir is not None:
        cache_path = os.path.join(
            cache_dir, f"{name}_{n_keys}_{seed}_{key_bits}.npz"
        )
        if os.path.exists(cache_path):
            with np.load(cache_path) as f:
                ds = Dataset(name, f["keys"], f["payloads"], key_bits, seed)
            _CACHE[memo_key] = ds
            return ds

    rng = np.random.default_rng(seed + 0xD5)
    keys = ALL_GENERATORS[name](n_keys, seed=seed)
    if key_bits == 32:
        keys = _to_32bit(keys, rng)
    # 8-byte payload slots holding values < 2**32 so that checksums of
    # realistic workload sizes never overflow 64-bit accumulation.
    payloads = rng.integers(0, 1 << 32, size=len(keys), dtype=np.int64).astype(
        np.uint64
    )
    ds = Dataset(name, keys, payloads, key_bits, seed)

    if cache_path is not None:
        os.makedirs(cache_dir, exist_ok=True)
        np.savez_compressed(cache_path, keys=keys, payloads=payloads)
    _CACHE[memo_key] = ds
    return ds
