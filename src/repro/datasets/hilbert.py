"""Vectorized 2-D Hilbert curve encoder.

Used by the ``osm`` dataset generator: OpenStreetMap cell IDs are positions
along a space-filling curve over the Earth's surface, and the paper
attributes the dataset's difficulty to exactly this projection ("an
artifact of the technique used to project the Earth into one-dimensional
space (a Hilbert curve)").  We therefore generate clustered 2-D points and
encode them with a real Hilbert curve rather than sampling some arbitrary
rough distribution.
"""

from __future__ import annotations

import numpy as np


def hilbert_d_from_xy(order: int, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Map integer grid coordinates to Hilbert-curve distance.

    Parameters
    ----------
    order:
        Curve order; the grid is ``2**order`` on a side and distances fit
        in ``2 * order`` bits.  Must satisfy ``1 <= order <= 31``.
    x, y:
        Integer arrays in ``[0, 2**order)``.

    Returns
    -------
    np.ndarray of uint64 distances along the curve.

    This is the classic iterative rotate-and-accumulate algorithm
    vectorized over numpy arrays.
    """
    if not 1 <= order <= 31:
        raise ValueError(f"order must be in [1, 31], got {order}")
    x = np.asarray(x, dtype=np.int64).copy()
    y = np.asarray(y, dtype=np.int64).copy()
    side = np.int64(1) << order
    if x.min(initial=0) < 0 or y.min(initial=0) < 0:
        raise ValueError("coordinates must be non-negative")
    if x.max(initial=0) >= side or y.max(initial=0) >= side:
        raise ValueError(f"coordinates must be < 2**order = {side}")

    d = np.zeros(x.shape, dtype=np.uint64)
    s = side >> 1
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += (np.uint64(s) * np.uint64(s)) * ((3 * rx) ^ ry).astype(np.uint64)

        # Rotate the quadrant so the sub-curve is in canonical orientation.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = x[flip]
        y_f = y[flip]
        x[flip] = s - 1 - x_f
        y[flip] = s - 1 - y_f
        x_s = x[swap]
        x[swap] = y[swap]
        y[swap] = x_s
        s >>= 1
    return d


def hilbert_xy_from_d(order: int, d: np.ndarray) -> tuple:
    """Inverse mapping (distance -> grid coordinates); used for testing."""
    if not 1 <= order <= 31:
        raise ValueError(f"order must be in [1, 31], got {order}")
    t = np.asarray(d, dtype=np.int64).copy()
    x = np.zeros(t.shape, dtype=np.int64)
    y = np.zeros(t.shape, dtype=np.int64)
    s = np.int64(1)
    side = np.int64(1) << order
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)

        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = x[flip]
        y_f = y[flip]
        x[flip] = s - 1 - x_f
        y[flip] = s - 1 - y_f
        x_s = x[swap]
        x[swap] = y[swap]
        y[swap] = x_s

        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y
