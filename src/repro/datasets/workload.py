"""Lookup workloads.

The paper generates 10M random lookup keys per dataset and requires
indexes to return valid bounds for each; lookups sum an 8-byte payload to
verify correctness (Section 4.1.2).  SOSD draws lookup keys from the data;
we additionally support absent-key workloads for validity testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.datasets.loader import Dataset


@dataclass
class Workload:
    """A sequence of lookup keys with ground-truth lower-bound positions."""

    dataset: Dataset
    keys: np.ndarray
    true_positions: np.ndarray
    mode: str = "present"

    def __post_init__(self):
        # Python-native mirrors: traced lookups run key-at-a-time and native
        # ints are much faster (and safer for arithmetic) than numpy scalars.
        self.keys_py: List[int] = [int(k) for k in self.keys]
        self.positions_py: List[int] = [int(p) for p in self.true_positions]

    @property
    def n(self) -> int:
        return len(self.keys)

    def expected_checksum(self) -> int:
        """Payload sum ground truth (only meaningful for present keys)."""
        return self.dataset.checksum(self.true_positions)


def make_workload(
    dataset: Dataset,
    n_lookups: int,
    seed: int = 1,
    mode: str = "present",
    zipf_theta: float = 0.99,
) -> Workload:
    """Sample a lookup workload.

    Modes
    -----
    ``present``:
        Keys drawn uniformly from the dataset (the paper / SOSD default).
    ``uniform``:
        Keys drawn uniformly from the full key range; mostly absent.
    ``mixed``:
        Half present, half uniform.
    ``zipf``:
        Present keys with Zipfian popularity (YCSB-style, parameter
        ``zipf_theta``), key ranks shuffled over the array.  Skewed
        workloads concentrate lookups on few cache lines -- an extension
        probing the caching effects of the paper's Section 4.4.
    """
    rng = np.random.default_rng(seed + 0x517)
    keys_arr = dataset.keys
    n = len(keys_arr)

    if mode == "present":
        idx = rng.integers(0, n, size=n_lookups)
        lookup_keys = keys_arr[idx]
    elif mode == "zipf":
        ranks = _zipf_ranks(rng, n, n_lookups, zipf_theta)
        # Shuffle rank -> position so hot keys are spread over the array.
        perm = rng.permutation(n)
        lookup_keys = keys_arr[perm[ranks]]
    elif mode == "uniform":
        lo, hi = int(keys_arr[0]), int(keys_arr[-1])
        lookup_keys = np.array(
            [lo + int(rng.random() * (hi - lo + 1)) for _ in range(n_lookups)],
            dtype=np.uint64,
        )
    elif mode == "mixed":
        half = n_lookups // 2
        present = make_workload(dataset, half, seed, "present")
        uniform = make_workload(dataset, n_lookups - half, seed + 1, "uniform")
        lookup_keys = np.concatenate([present.keys, uniform.keys])
        order = rng.permutation(n_lookups)
        lookup_keys = lookup_keys[order]
    else:
        raise ValueError(f"unknown workload mode {mode!r}")

    true_positions = np.searchsorted(keys_arr, lookup_keys, side="left")
    return Workload(dataset, lookup_keys, true_positions, mode)


def _zipf_ranks(
    rng: np.random.Generator, n: int, size: int, theta: float
) -> np.ndarray:
    """Zipfian ranks in [0, n) via inverse-CDF sampling.

    P(rank = r) proportional to 1 / (r + 1)**theta, the YCSB skew model.
    """
    if not 0.0 < theta < 10.0:
        raise ValueError("zipf_theta must be in (0, 10)")
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(size))
