"""Synthetic key generators matching the four SOSD dataset distributions.

Each generator returns a sorted array of *unique* uint64 keys (SOSD also
deduplicates).  The generators oversample and then subsample to hit the
requested count exactly, so every dataset has precisely ``n`` keys.

Distribution design notes (see DESIGN.md Section 3):

* ``amzn`` -- cumulative sums of heavy-tailed gaps: a globally smooth CDF
  with local noise, the regime where learned structures shine.
* ``face`` -- uniform IDs plus ~100 enormous outliers near 2**64, which
  ruin the top radix bits (the paper's explanation for RBS's collapse).
* ``osm`` -- Hilbert-encoded clustered 2-D points: locally erratic CDF
  that is hard for every learned structure.
* ``wiki`` -- bursty timestamps with diurnal/weekly seasonality: smooth
  with steps.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.datasets.hilbert import hilbert_d_from_xy

#: Number of extreme outlier keys injected into ``face`` (paper: ~100).
FACE_N_OUTLIERS = 100


def _finalize(raw: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    """Deduplicate, subsample to exactly n, sort, cast to uint64."""
    unique = np.unique(raw.astype(np.uint64))
    if len(unique) < n:
        raise ValueError(
            f"generator produced only {len(unique)} unique keys, need {n}; "
            "increase the oversampling factor"
        )
    if len(unique) > n:
        chosen = rng.choice(len(unique), size=n, replace=False)
        unique = unique[np.sort(chosen)]
    return unique


def generate_amzn(n: int, seed: int = 0) -> np.ndarray:
    """Book-popularity-like keys: cumulative heavy-tailed gaps.

    Gaps are drawn from a lognormal whose scale slowly drifts (mixture of
    regimes), yielding a CDF that is smooth at zoom-out but has locally
    varying density -- piecewise learnable, like the real amzn data.
    """
    rng = np.random.default_rng(seed)
    m = int(n * 1.05) + 16
    # Regime-switching gap scale: a few hundred segments of differing density.
    n_segments = max(8, m // 2000)
    seg_scales = rng.lognormal(mean=0.0, sigma=1.1, size=n_segments)
    seg_lengths = rng.multinomial(m, np.ones(n_segments) / n_segments)
    scales = np.repeat(seg_scales, seg_lengths)[:m]
    gaps = rng.lognormal(mean=2.0, sigma=0.6, size=m) * scales
    keys = np.cumsum(gaps)
    # Scale into a 40-bit-ish range so 32-bit downscaling stays faithful.
    keys = keys / keys[-1] * float(1 << 40)
    return _finalize(keys + 1.0, n, rng)


def generate_face(n: int, seed: int = 0) -> np.ndarray:
    """User-ID-like keys: uniform over ~2**50 plus ~100 outliers near 2**64."""
    rng = np.random.default_rng(seed)
    m = int(n * 1.05) + FACE_N_OUTLIERS + 16
    body = rng.integers(1, 1 << 50, size=m, dtype=np.int64).astype(np.uint64)
    out_lo, out_hi = 1 << 59, (1 << 64) - 1024
    outliers = rng.integers(out_lo, out_hi, size=FACE_N_OUTLIERS, dtype=np.uint64)
    body = _finalize(body, n - FACE_N_OUTLIERS, rng)
    keys = np.unique(np.concatenate([body, outliers]))
    # Outlier collisions with each other are astronomically unlikely, but
    # keep the contract exact regardless.
    while len(keys) < n:
        extra = rng.integers(out_lo, out_hi, size=n - len(keys), dtype=np.uint64)
        keys = np.unique(np.concatenate([keys, extra]))
    return keys[:n]


def generate_osm(n: int, seed: int = 0, order: int = 21) -> np.ndarray:
    """Hilbert cell IDs of clustered 2-D points.

    Points are a mixture of Gaussian "cities" (80%), elongated "roads"
    (10%) and uniform background (10%), embedded on a 2**order grid and
    encoded with a real Hilbert curve.  The projection produces a CDF with
    erratic local structure, the property the paper identifies as what
    makes osm hard to learn.
    """
    rng = np.random.default_rng(seed)
    m = int(n * 1.3) + 64
    n_clusters = 48
    centers = rng.random((n_clusters, 2))
    widths = rng.lognormal(mean=-4.2, sigma=0.8, size=n_clusters)
    weights = rng.dirichlet(np.ones(n_clusters) * 0.5)

    n_city = int(m * 0.8)
    n_road = int(m * 0.1)
    n_bg = m - n_city - n_road

    assignment = rng.choice(n_clusters, size=n_city, p=weights)
    pts_city = centers[assignment] + rng.normal(
        scale=widths[assignment][:, None], size=(n_city, 2)
    )

    # "Roads": points along segments between random cluster pairs.
    a = centers[rng.choice(n_clusters, size=n_road)]
    b = centers[rng.choice(n_clusters, size=n_road)]
    t = rng.random((n_road, 1))
    pts_road = a + t * (b - a) + rng.normal(scale=2e-4, size=(n_road, 2))

    pts_bg = rng.random((n_bg, 2))

    pts = np.clip(np.vstack([pts_city, pts_road, pts_bg]), 0.0, 1.0 - 1e-12)
    side = 1 << order
    grid = (pts * side).astype(np.int64)
    keys = hilbert_d_from_xy(order, grid[:, 0], grid[:, 1])
    return _finalize(keys, n, rng)


def generate_wiki(n: int, seed: int = 0) -> np.ndarray:
    """Edit-timestamp-like keys: bursty, seasonal arrival process.

    Seconds-resolution timestamps over ~15 simulated years whose arrival
    rate carries diurnal and weekly cycles plus random burst events; the
    CDF is smooth with steps, like the real wiki edit log.
    """
    rng = np.random.default_rng(seed)
    m = int(n * 1.4) + 16
    # Piecewise-constant rate over hourly buckets for ~15 years.
    n_hours = 15 * 365 * 24
    hours = np.arange(n_hours)
    diurnal = 1.0 + 0.6 * np.sin(2 * np.pi * (hours % 24) / 24.0)
    weekly = 1.0 + 0.25 * np.sin(2 * np.pi * (hours % (24 * 7)) / (24.0 * 7))
    rate = diurnal * weekly
    # Bursts: a few hundred events with geometric decay over hours.
    n_bursts = 300
    burst_starts = rng.choice(n_hours - 48, size=n_bursts)
    burst_heights = rng.pareto(1.5, size=n_bursts) * 2.0
    for start, height in zip(burst_starts, burst_heights):
        rate[start : start + 24] += height * np.exp(-np.arange(24) / 6.0)
    cdf = np.cumsum(rate)
    cdf /= cdf[-1]
    # Inverse-CDF sample arrival hours, then spread uniformly within hour.
    u = rng.random(m)
    idx = np.searchsorted(cdf, u)
    base_epoch = 1_040_000_000  # arbitrary epoch offset (late 2002)
    seconds = base_epoch + idx * 3600 + (rng.random(m) * 3600.0).astype(np.int64)
    return _finalize(seconds, n, rng)


def generate_uniform(n: int, seed: int = 0) -> np.ndarray:
    """Uniform random keys over the full 64-bit space.

    The paper excludes synthetic data from its evaluation ("entirely
    random, in which case there is no possibility of learning an
    effective model") but the SOSD suite ships it; it is provided here
    for exactly that discussion -- e.g. showing RBS/linear models excel
    while there is nothing to learn.
    """
    rng = np.random.default_rng(seed)
    m = int(n * 1.05) + 16
    keys = rng.integers(1, (1 << 64) - 1, size=m, dtype=np.uint64)
    return _finalize(keys, n, rng)


def generate_lognormal(n: int, seed: int = 0) -> np.ndarray:
    """Lognormally distributed keys (SOSD's classic synthetic dataset).

    Drawn from a known closed-form distribution, so "learning the
    distribution is trivial" (paper Section 4.1.2) -- the easy case for
    learned structures.
    """
    rng = np.random.default_rng(seed)
    m = int(n * 1.05) + 16
    raw = rng.lognormal(mean=0.0, sigma=2.0, size=m)
    keys = (raw / raw.max() * float(1 << 56)).astype(np.uint64) + 1
    return _finalize(keys, n, rng)


#: The paper's four real-world dataset distributions.
GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "amzn": generate_amzn,
    "face": generate_face,
    "osm": generate_osm,
    "wiki": generate_wiki,
}

#: Extra synthetic distributions (SOSD ships these; the paper's Section
#: 4.1.2 explains why they are excluded from the headline evaluation).
SYNTHETIC_GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "uniform": generate_uniform,
    "lognormal": generate_lognormal,
}

ALL_GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    **GENERATORS,
    **SYNTHETIC_GENERATORS,
}
