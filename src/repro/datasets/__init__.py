"""Datasets: synthetic equivalents of the paper's four real-world datasets.

The paper evaluates on proprietary/external data (amzn, face, osm, wiki).
Each generator here reproduces the distributional property the paper
identifies as the one that matters for index behaviour -- see DESIGN.md
Section 3 for the substitution rationale.
"""

from repro.datasets.loader import DATASET_NAMES, Dataset, make_dataset
from repro.datasets.workload import Workload, make_workload
from repro.datasets.hilbert import hilbert_d_from_xy

__all__ = [
    "Dataset",
    "make_dataset",
    "DATASET_NAMES",
    "Workload",
    "make_workload",
    "hilbert_d_from_xy",
]
