"""Two-stage recursive model index (RMI), Kraska et al. / Section 3.1.

Structure: a stage-one model routes a key to one of ``branching`` leaf
buckets; the leaf's linear model predicts the key's absolute position.
Per-leaf maximum training errors give the search bound.

Validity for absent keys relies on two properties enforced here:

* the stage-one model is monotone non-decreasing (non-monotone fits fall
  back to monotone alternatives in :mod:`repro.learned.models`), so the
  set of keys routed to a leaf is a contiguous key interval; and
* each leaf record stores the position range ``[min_pos, max_pos + 1]`` of
  its routed keys, to which the (monotone) leaf prediction is clamped, so
  extrapolation beyond the leaf's training keys cannot escape the range
  that must contain the lower bound.

Leaf records are stored as contiguous 5-float64 blocks (slope, intercept,
error, min_pos, max_pos_plus1): one lookup touches the stage-one
parameters and exactly one leaf record -- the "at most two cache misses
for inference" property the paper highlights for two-layer RMIs.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.bounds import SearchBound
from repro.core.interface import Capabilities, SortedDataIndex
from repro.core.registry import register_index
from repro.learned.models import make_model
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer

_REC = 5  # floats per leaf record
_ROUTE_INSTR = 3  # scale, floor, clamp
_BOUND_INSTR = 6  # leaf fma, clamp, bound arithmetic


@register_index
class RMIIndex(SortedDataIndex):
    """Recursive model index with one root model and ``branching`` leaves.

    Parameters
    ----------
    branching:
        Number of second-stage models (the paper's ``B``).
    stage1 / stage2:
        Model type names (see :data:`repro.learned.models.MODEL_TYPES`).
        Stage-two models must be linear ("linear" or "linear_spline").
    """

    name = "RMI"
    capabilities = Capabilities(updates=False, ordered=True, kind="Learned")

    def __init__(
        self,
        branching: int = 1024,
        stage1: str = "cubic",
        stage2: str = "linear",
    ):
        super().__init__()
        if branching < 1:
            raise ValueError("branching must be >= 1")
        if stage2 not in ("linear", "linear_spline"):
            raise ValueError("stage-two models must be linear")
        self.branching = branching
        self.stage1_type = stage1
        self.stage2_type = stage2
        self.root = None
        self._records: TracedArray = None
        self._root_params: TracedArray = None
        self._route_scale = 0.0

    # -- construction -----------------------------------------------------

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        keys = data.values.astype(np.float64)
        n = len(keys)
        positions = np.arange(n, dtype=np.float64)
        b = self.branching

        self.root = make_model(self.stage1_type).fit(keys, positions)
        self._route_scale = b / float(n)

        root_pred = self.root.predict_batch(keys)
        buckets = np.clip(
            np.floor(root_pred * self._route_scale), 0, b - 1
        ).astype(np.int64)
        if np.any(np.diff(buckets) < 0):
            # Monotone routing is required for validity; the model types
            # guard against this, but refit with the always-monotone
            # endpoint spline if a fit slipped through.
            self.root = make_model("linear_spline").fit(keys, positions)
            root_pred = self.root.predict_batch(keys)
            buckets = np.clip(
                np.floor(root_pred * self._route_scale), 0, b - 1
            ).astype(np.int64)

        # Bucket boundaries: starts[j] = first data index routed to j.
        starts = np.searchsorted(buckets, np.arange(b), side="left")
        ends = np.searchsorted(buckets, np.arange(b), side="right")

        records = np.zeros(b * _REC, dtype=np.float64)
        boundary = 0  # position just past the last key routed so far
        leaf = make_model(self.stage2_type)
        for j in range(b):
            lo, hi = int(starts[j]), int(ends[j])
            base = j * _REC
            if lo == hi:  # empty bucket: predict the carried boundary
                records[base + 1] = float(boundary)  # intercept
                records[base + 2] = 1.0  # error margin
                records[base + 3] = float(boundary)  # min_pos
                records[base + 4] = float(boundary)  # max_pos_plus1
                continue
            model = leaf.fit(keys[lo:hi], positions[lo:hi])
            pred = model.predict_batch(keys[lo:hi])
            err = float(np.max(np.abs(pred - positions[lo:hi])))
            records[base + 0] = model.slope
            records[base + 1] = model.intercept
            records[base + 2] = math.ceil(err) + 1.0
            records[base + 3] = float(lo)
            records[base + 4] = float(hi)
            boundary = hi

        # Validity relies on the records holding each bucket's *own*
        # position range: the clamp bounds leaf-model extrapolation for
        # keys routed to the bucket but outside its training keys.  Scalar
        # and batch routing are bit-identical (same IEEE operations in the
        # same order; see models.py), so a key always hits the record it
        # was assigned to at build time.
        self._bucket_counts = (ends - starts).astype(np.float64)
        self._records = self._register(
            TracedArray.allocate(space, records, name="rmi.leaves")
        )
        self._root_params = self._register(
            TracedArray.allocate(
                space,
                np.asarray(list(self.root.params()) or [0.0], dtype=np.float64),
                name="rmi.root",
            )
        )

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        tracer.phase("model")  # whole RMI lookup is model evaluation
        n = self.n_keys
        kf = float(int(key))
        self._root_params.get_block(0, len(self._root_params), tracer)
        tracer.instr(self.root.eval_instr + _ROUTE_INSTR)
        bucket = int(self.root.predict(kf) * self._route_scale)
        if bucket < 0:
            bucket = 0
        elif bucket >= self.branching:
            bucket = self.branching - 1

        slope, intercept, err, min_pos, max_pos_plus1 = self._records.get_block(
            bucket * _REC, _REC, tracer
        )
        tracer.instr(_BOUND_INSTR)
        pred = slope * kf + intercept
        if pred < min_pos:
            pred = min_pos
        elif pred > max_pos_plus1:
            pred = max_pos_plus1

        e = int(err)
        lo = int(pred) - e
        hi = int(pred) + e + 2
        range_lo = int(min_pos)
        range_hi = int(max_pos_plus1) + 1
        lo = max(lo, range_lo)
        hi = min(hi, range_hi)
        if hi <= lo:
            # Prediction interval and position range disagree (can only
            # happen on a one-off routing discrepancy); the position range
            # alone is guaranteed to contain the lower bound.
            lo, hi = range_lo, range_hi
        lo = max(lo, 0)
        hi = min(hi, n + 1)
        if hi <= lo:
            hi = lo + 1
        return SearchBound(lo, hi)

    # -- diagnostics ---------------------------------------------------------

    def mean_log2_error(self) -> float:
        """Average log2 of the leaf search interval (paper's "log2 error")."""
        errs = self._records.values.reshape(-1, _REC)[:, 2]
        counts = self._bucket_counts
        total = counts.sum()
        if total <= 0:
            return 0.0
        weights = counts / total
        return float(np.sum(weights * np.log2(2.0 * errs + 2.0)))

    @classmethod
    def size_sweep_configs(cls, n_keys: int) -> List[dict]:
        """~10 configurations from minimum to maximum size (Figure 7).

        Branching factors go up to ~n/8 leaves (CDFShop's exploration
        range; more leaves than keys is pure waste).
        """
        max_pow = max(int(math.log2(max(n_keys, 64))) - 3, 6)
        powers = range(4, max_pow + 1)
        return [{"branching": 1 << p, "stage1": "cubic"} for p in powers]
