"""FITing-Tree (Galakatos et al., SIGMOD'19) -- extension.

The paper cites FITing-Tree as prior work it could not benchmark ("tuned
implementations could not be made publicly available", Section 3) and
describes RS's spline fitting as "similar to the shrinking cone algorithm
of FITing-Tree".  Structurally, a FITing-Tree is the shrinking-cone
error-bounded segmentation (exactly :func:`repro.learned.pla.fit_pla`)
with a *B-tree* over the segment boundary keys instead of PGM's recursive
regressions -- so its lookup profile sits between BTree (tree descent)
and PGM (linear prediction + epsilon bound).
"""

from __future__ import annotations

from typing import List



from repro.core.bounds import SearchBound
from repro.core.interface import Capabilities, SortedDataIndex
from repro.core.registry import register_index
from repro.learned.pgm import _REC, _segments_to_arrays

from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer

_NODE_SEARCH_STEP_INSTR = 5
_DESCEND_INSTR = 3
_PRED_INSTR = 6


@register_index
class FITingTreeIndex(SortedDataIndex):
    """Shrinking-cone segments indexed by an implicit B-tree.

    Parameters
    ----------
    epsilon:
        Error bound of each segment's linear model.
    fanout:
        Keys per B-tree node over the segment boundaries.
    """

    name = "FITing"
    capabilities = Capabilities(updates=True, ordered=True, kind="Learned")

    def __init__(self, epsilon: int = 64, fanout: int = 16):
        super().__init__()
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.epsilon = int(epsilon)
        self.fanout = int(fanout)
        self._seg_keys: TracedArray = None
        self._seg_params: TracedArray = None
        self._levels: List[TracedArray] = []

    # -- construction -----------------------------------------------------

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        from repro.learned.fitting_fast import fit_pla_fast

        segments = fit_pla_fast(data.values, float(self.epsilon))
        keys, params = _segments_to_arrays(segments)
        self._seg_keys = self._register(
            TracedArray.allocate(space, keys, name="fitting.seg_keys")
        )
        self._seg_params = self._register(
            TracedArray.allocate(space, params, name="fitting.seg_params")
        )
        # Implicit B-tree levels over the segment first-keys.
        levels = [keys]
        while len(levels[-1]) > self.fanout:
            levels.append(levels[-1][:: self.fanout])
        # Leaf level is the segment key array itself (already registered).
        self._levels = [self._seg_keys] + [
            self._register(
                TracedArray.allocate(space, arr, name=f"fitting.level{d}")
            )
            for d, arr in enumerate(levels[1:], start=1)
        ]

    # -- lookup ------------------------------------------------------------

    def _node_predecessor(
        self, level: TracedArray, lo: int, hi: int, key: int, tracer: Tracer
    ) -> int:
        left, right = lo, hi
        while left < right:
            mid = (left + right) // 2
            tracer.instr(_NODE_SEARCH_STEP_INSTR)
            goes_right = level.get(mid, tracer) <= key
            tracer.branch("fitting.node", goes_right)
            if goes_right:
                left = mid + 1
            else:
                right = mid
        return left - 1

    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        key = int(key)
        n = self.n_keys
        levels = self._levels
        root = levels[-1]
        pos = self._node_predecessor(root, 0, len(root), key, tracer)
        if pos < 0:
            pos = 0  # key below the first segment: segment 0 handles it
        for depth in range(len(levels) - 2, -1, -1):
            level = levels[depth]
            tracer.instr(_DESCEND_INSTR)
            lo = pos * self.fanout
            hi = min(lo + self.fanout, len(level))
            pos = max(self._node_predecessor(level, lo, hi, key, tracer), 0)

        first_key = self._seg_keys.get(pos, tracer)
        slope, intercept, last_pos_plus1 = self._seg_params.get_block(
            pos * _REC, _REC, tracer
        )
        tracer.instr(_PRED_INSTR)
        pred = intercept + slope * float(key - first_key)
        if pred < intercept:
            pred = intercept
        elif pred > last_pos_plus1:
            pred = last_pos_plus1
        lo_b = max(int(pred) - self.epsilon - 1, 0)
        hi_b = min(int(pred) + self.epsilon + 2, n + 1)
        if hi_b <= lo_b:
            hi_b = lo_b + 1
        return SearchBound(lo_b, hi_b)

    # -- diagnostics ---------------------------------------------------------

    @property
    def n_segments(self) -> int:
        return len(self._seg_keys)

    def mean_log2_error(self) -> float:
        import math

        return math.log2(2.0 * self.epsilon + 2.0)

    @classmethod
    def size_sweep_configs(cls, n_keys: int) -> List[dict]:
        eps_values = [2048, 1024, 512, 256, 128, 64, 32, 16, 8, 4]
        return [
            {"epsilon": e} for e in eps_values if e < max(n_keys // 4, 8)
        ]
