"""Learned index structures: RMI, PGM and RadixSpline (paper Section 3),
plus extensions (three-stage RMI, FITing-Tree, dynamic PGM, ALEX)."""

from repro.learned.rmi import RMIIndex
from repro.learned.rmi3 import RMI3Index
from repro.learned.pgm import PGMIndex
from repro.learned.fitting_tree import FITingTreeIndex
from repro.learned.dynamic_pgm import DynamicPGM
from repro.learned.alex import AlexIndex
from repro.learned.radix_spline import RadixSplineIndex
from repro.learned.cdfshop import TunedConfig, tune_rmi
from repro.learned.pla import Segment, fit_pla
from repro.learned.spline import fit_spline

__all__ = [
    "RMIIndex",
    "RMI3Index",
    "PGMIndex",
    "FITingTreeIndex",
    "DynamicPGM",
    "AlexIndex",
    "RadixSplineIndex",
    "tune_rmi",
    "TunedConfig",
    "fit_pla",
    "Segment",
    "fit_spline",
]
