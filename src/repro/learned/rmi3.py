"""Three-stage RMI (extension).

The paper's Section 3.1 explains two-stage RMIs and notes that deeper
RMIs are "almost never required" when data fits in memory -- but Section
4.3 also reports the authors experimented with multi-stage RMIs to chase
higher accuracy.  This extension implements the three-stage variant so
that tradeoff can be measured here too.

Monotone routing through *two* model stages is what makes validity
subtle: a middle model's extrapolation could overtake its right
neighbour.  We restore global monotonicity by clamping every middle
model's prediction to its bucket's position range; ranges are contiguous
and ordered (stage-one routing is monotone), so the composed routing is
monotone and the leaf-record machinery of the two-stage RMI applies
unchanged.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.bounds import SearchBound
from repro.core.interface import Capabilities, SortedDataIndex
from repro.core.registry import register_index
from repro.learned.models import make_model
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer

_MID_REC = 4  # slope, intercept, clamp_lo, clamp_hi
_LEAF_REC = 5  # slope, intercept, err, min_pos, max_pos_plus1


@register_index
class RMI3Index(SortedDataIndex):
    """Three-stage recursive model index.

    Stage one (a root model) routes to one of ``mid_branching`` clamped
    linear models; their prediction routes to one of ``branching`` leaf
    records identical to the two-stage RMI's.
    """

    name = "RMI3"
    capabilities = Capabilities(updates=False, ordered=True, kind="Learned")

    def __init__(
        self,
        branching: int = 4096,
        mid_branching: int = 64,
        stage1: str = "cubic",
    ):
        super().__init__()
        if branching < 1 or mid_branching < 1:
            raise ValueError("branching factors must be >= 1")
        self.branching = branching
        self.mid_branching = mid_branching
        self.stage1_type = stage1
        self.root = None
        self._mid: TracedArray = None
        self._leaves: TracedArray = None
        self._root_params: TracedArray = None
        self._mid_scale = 0.0
        self._leaf_scale = 0.0

    # -- construction -----------------------------------------------------

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        keys = data.values.astype(np.float64)
        n = len(keys)
        positions = np.arange(n, dtype=np.float64)
        b_mid = self.mid_branching
        b_leaf = self.branching

        self.root = make_model(self.stage1_type).fit(keys, positions)
        self._mid_scale = b_mid / float(n)
        self._leaf_scale = b_leaf / float(n)

        root_pred = self.root.predict_batch(keys)
        mid_ids = np.clip(
            np.floor(root_pred * self._mid_scale), 0, b_mid - 1
        ).astype(np.int64)
        if np.any(np.diff(mid_ids) < 0):
            self.root = make_model("linear_spline").fit(keys, positions)
            root_pred = self.root.predict_batch(keys)
            mid_ids = np.clip(
                np.floor(root_pred * self._mid_scale), 0, b_mid - 1
            ).astype(np.int64)

        starts = np.searchsorted(mid_ids, np.arange(b_mid), side="left")
        ends = np.searchsorted(mid_ids, np.arange(b_mid), side="right")

        mid_records = np.zeros(b_mid * _MID_REC, dtype=np.float64)
        boundary = 0
        mid_model = make_model("linear")
        for j in range(b_mid):
            lo, hi = int(starts[j]), int(ends[j])
            base = j * _MID_REC
            if lo == hi:
                mid_records[base + 1] = float(boundary)
                mid_records[base + 2] = float(boundary)
                mid_records[base + 3] = float(boundary)
                continue
            model = mid_model.fit(keys[lo:hi], positions[lo:hi])
            mid_records[base + 0] = model.slope
            mid_records[base + 1] = model.intercept
            mid_records[base + 2] = float(lo)
            mid_records[base + 3] = float(hi)
            boundary = hi

        # Clamped middle predictions for every key (monotone overall).
        slopes = mid_records[0::_MID_REC][mid_ids]
        intercepts = mid_records[1::_MID_REC][mid_ids]
        clamp_lo = mid_records[2::_MID_REC][mid_ids]
        clamp_hi = mid_records[3::_MID_REC][mid_ids]
        mid_pred = np.clip(slopes * keys + intercepts, clamp_lo, clamp_hi)
        leaf_ids = np.clip(
            np.floor(mid_pred * self._leaf_scale), 0, b_leaf - 1
        ).astype(np.int64)
        if np.any(np.diff(leaf_ids) < 0):
            raise AssertionError(
                "three-stage routing became non-monotone; this indicates a "
                "model clamping bug"
            )

        lstarts = np.searchsorted(leaf_ids, np.arange(b_leaf), side="left")
        lends = np.searchsorted(leaf_ids, np.arange(b_leaf), side="right")
        leaf_records = np.zeros(b_leaf * _LEAF_REC, dtype=np.float64)
        boundary = 0
        leaf_model = make_model("linear")
        for j in range(b_leaf):
            lo, hi = int(lstarts[j]), int(lends[j])
            base = j * _LEAF_REC
            if lo == hi:
                leaf_records[base + 1] = float(boundary)
                leaf_records[base + 2] = 1.0
                leaf_records[base + 3] = float(boundary)
                leaf_records[base + 4] = float(boundary)
                continue
            model = leaf_model.fit(keys[lo:hi], positions[lo:hi])
            pred = model.predict_batch(keys[lo:hi])
            err = float(np.max(np.abs(pred - positions[lo:hi])))
            leaf_records[base + 0] = model.slope
            leaf_records[base + 1] = model.intercept
            leaf_records[base + 2] = math.ceil(err) + 1.0
            leaf_records[base + 3] = float(lo)
            leaf_records[base + 4] = float(hi)
            boundary = hi

        self._mid = self._register(
            TracedArray.allocate(space, mid_records, name="rmi3.mid")
        )
        self._leaves = self._register(
            TracedArray.allocate(space, leaf_records, name="rmi3.leaves")
        )
        self._root_params = self._register(
            TracedArray.allocate(
                space,
                np.asarray(list(self.root.params()) or [0.0], dtype=np.float64),
                name="rmi3.root",
            )
        )

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        n = self.n_keys
        kf = float(int(key))
        self._root_params.get_block(0, len(self._root_params), tracer)
        tracer.instr(self.root.eval_instr + 3)
        mid_id = int(self.root.predict(kf) * self._mid_scale)
        if mid_id < 0:
            mid_id = 0
        elif mid_id >= self.mid_branching:
            mid_id = self.mid_branching - 1

        m_slope, m_intercept, m_lo, m_hi = self._mid.get_block(
            mid_id * _MID_REC, _MID_REC, tracer
        )
        tracer.instr(5)
        mid_pred = m_slope * kf + m_intercept
        if mid_pred < m_lo:
            mid_pred = m_lo
        elif mid_pred > m_hi:
            mid_pred = m_hi
        leaf_id = int(mid_pred * self._leaf_scale)
        if leaf_id < 0:
            leaf_id = 0
        elif leaf_id >= self.branching:
            leaf_id = self.branching - 1

        slope, intercept, err, min_pos, max_pos_plus1 = self._leaves.get_block(
            leaf_id * _LEAF_REC, _LEAF_REC, tracer
        )
        tracer.instr(6)
        pred = slope * kf + intercept
        if pred < min_pos:
            pred = min_pos
        elif pred > max_pos_plus1:
            pred = max_pos_plus1

        e = int(err)
        lo = max(int(pred) - e, int(min_pos))
        hi = min(int(pred) + e + 2, int(max_pos_plus1) + 1)
        if hi <= lo:
            lo, hi = int(min_pos), int(max_pos_plus1) + 1
        lo = max(lo, 0)
        hi = min(hi, n + 1)
        if hi <= lo:
            hi = lo + 1
        return SearchBound(lo, hi)

    @classmethod
    def size_sweep_configs(cls, n_keys: int) -> List[dict]:
        max_pow = max(int(math.log2(max(n_keys, 64))) - 3, 6)
        return [
            {"branching": 1 << p, "mid_branching": 1 << max(p - 5, 2)}
            for p in range(6, max_pow + 1, 2)
        ]
