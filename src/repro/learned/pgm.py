"""Piecewise geometric model (PGM) index, Ferragina & Vinciguerra / Sec 3.3.

Built bottom-up: an error-bounded PLA over the data forms the bottom
level; the segment boundary keys are treated as a new dataset and the
process repeats until a level fits in ``root_limit`` entries.  Lookups
descend the levels, using each level's linear prediction to narrow the
(binary) search for the responsible segment on the next level -- the
inter-level searches whose cost the paper identifies as PGM's handicap
versus RMI (Section 3.4).

Per level, segment keys live in one contiguous array (binary-searched)
and per-segment parameters in a parallel array of contiguous
3-float64 records (slope, intercept, last_pos_plus1).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.bounds import SearchBound
from repro.core.interface import Capabilities, SortedDataIndex
from repro.core.registry import register_index
from repro.learned.pla import Segment
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer

_REC = 3  # floats per segment record
_PRED_INSTR = 6  # subtract, fma, clamp, bound arithmetic
_SEARCH_STEP_INSTR = 5


class _Level:
    """One PGM level: segment first-keys plus parameter records."""

    __slots__ = ("keys", "params", "n_segments")

    def __init__(self, keys: TracedArray, params: TracedArray):
        self.keys = keys
        self.params = params
        self.n_segments = len(keys)


def _segments_to_arrays(segments: List[Segment]):
    keys = np.array([s.first_key for s in segments], dtype=np.uint64)
    params = np.zeros(len(segments) * _REC, dtype=np.float64)
    for i, s in enumerate(segments):
        params[i * _REC + 0] = s.slope
        params[i * _REC + 1] = s.intercept
        params[i * _REC + 2] = float(s.last_pos + 1)
    return keys, params


@register_index
class PGMIndex(SortedDataIndex):
    """PGM index with uniform error bound ``epsilon`` per level.

    Parameters
    ----------
    epsilon:
        Max prediction error of the bottom level (the size/performance
        knob the paper tunes).
    epsilon_internal:
        Error bound for the upper levels (the reference implementation
        defaults to a small constant).
    root_limit:
        A level with at most this many segments becomes the root and is
        binary-searched directly.
    """

    name = "PGM"
    capabilities = Capabilities(updates=True, ordered=True, kind="Learned")

    def __init__(
        self,
        epsilon: int = 64,
        epsilon_internal: int = 4,
        root_limit: int = 16,
    ):
        super().__init__()
        if epsilon < 1 or epsilon_internal < 1:
            raise ValueError("epsilon bounds must be >= 1")
        self.epsilon = int(epsilon)
        self.epsilon_internal = int(epsilon_internal)
        self.root_limit = int(root_limit)
        #: Levels from root (smallest) to bottom (over the data).
        self._levels: List[_Level] = []

    # -- construction -----------------------------------------------------

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        from repro.learned.fitting_fast import fit_pla_fast

        levels_bottom_up: List[List[Segment]] = []
        segs = fit_pla_fast(data.values, float(self.epsilon))
        levels_bottom_up.append(segs)
        while len(levels_bottom_up[-1]) > self.root_limit:
            upper_keys = np.array(
                [s.first_key for s in levels_bottom_up[-1]], dtype=np.uint64
            )
            segs = fit_pla_fast(upper_keys, float(self.epsilon_internal))
            levels_bottom_up.append(segs)

        self._levels = []
        for depth, segs in enumerate(reversed(levels_bottom_up)):
            keys, params = _segments_to_arrays(segs)
            level = _Level(
                self._register(
                    TracedArray.allocate(space, keys, name=f"pgm.keys{depth}")
                ),
                self._register(
                    TracedArray.allocate(space, params, name=f"pgm.params{depth}")
                ),
            )
            self._levels.append(level)

    # -- lookup ------------------------------------------------------------

    def _segment_search(
        self,
        level: _Level,
        key: int,
        lo: int,
        hi: int,
        tracer: Tracer,
    ) -> int:
        """Index of the last segment in [lo, hi) with first_key <= key."""
        tracer.phase("search")  # inter-level segment search
        keys = level.keys
        lo = max(lo, 0)
        hi = min(hi, level.n_segments)
        while lo < hi:
            mid = (lo + hi) // 2
            tracer.instr(_SEARCH_STEP_INSTR)
            goes_right = keys.get(mid, tracer) <= key
            tracer.branch("pgm.search", goes_right)
            if goes_right:
                lo = mid + 1
            else:
                hi = mid
        return max(lo - 1, 0)

    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        key = int(key)
        n = self.n_keys
        root = self._levels[0]
        seg = self._segment_search(root, key, 0, root.n_segments, tracer)

        for depth in range(len(self._levels)):
            level = self._levels[depth]
            tracer.phase("model")  # per-level linear prediction
            first_key = level.keys.get(seg, tracer)
            slope, intercept, last_pos_plus1 = level.params.get_block(
                seg * _REC, _REC, tracer
            )
            tracer.instr(_PRED_INSTR)
            pred = intercept + slope * float(key - first_key)
            if pred < intercept:
                pred = intercept
            elif pred > last_pos_plus1:
                pred = last_pos_plus1

            is_bottom = depth == len(self._levels) - 1
            if is_bottom:
                lo = max(int(pred) - self.epsilon - 1, 0)
                hi = min(int(pred) + self.epsilon + 2, n + 1)
                if hi <= lo:
                    hi = lo + 1
                return SearchBound(lo, hi)
            # Find the responsible segment on the next level within the
            # predicted window.  The window covers the lower-bound estimate
            # +-eps plus one extra slot below, because the responsible
            # segment is the lower bound's *predecessor*.
            eps = self.epsilon_internal
            nxt = self._levels[depth + 1]
            seg = self._segment_search(
                nxt, key, int(pred) - eps - 2, int(pred) + eps + 2, tracer
            )
        raise AssertionError("unreachable")

    # -- diagnostics ---------------------------------------------------------

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    def mean_log2_error(self) -> float:
        """log2 of the bottom-level search interval size."""
        return math.log2(2.0 * self.epsilon + 2.0)

    @classmethod
    def size_sweep_configs(cls, n_keys: int) -> List[dict]:
        """~10 configurations from minimum to maximum size (Figure 7)."""
        eps_values = [2048, 1024, 512, 256, 128, 64, 32, 16, 8, 4]
        return [{"epsilon": e} for e in eps_values if e < max(n_keys // 4, 8)]
