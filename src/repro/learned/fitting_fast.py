"""Vectorized PLA and spline fitting.

The reference implementations in :mod:`repro.learned.pla` and
:mod:`repro.learned.spline` process one point per Python-interpreter
iteration; at paper-adjacent scales (millions of keys) that dominates
build time.  These versions process candidate points in numpy windows --
prefix max/min accumulations locate the first cone/corridor violation --
while making *bit-identical greedy decisions*: the same IEEE operations in
the same order (integer deltas taken exactly, then converted to float64,
then the identical divisions and comparisons).  The test suite asserts
exact segment-for-segment equality against the reference on random and
adversarial inputs.

PGM, RadixSpline and FITing-Tree builds use these; the reference
implementations remain the executable specification.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.learned.pla import Segment, _make_segment

_INF = float("inf")


def _as_key_array(keys) -> np.ndarray:
    arr = np.asarray(keys, dtype=np.uint64)
    if arr.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if len(arr) > 1 and not np.all(arr[1:] > arr[:-1]):
        raise ValueError("keys must be strictly increasing")
    return arr


def fit_pla_fast(
    keys,
    epsilon: float,
    positions: Optional[np.ndarray] = None,
) -> List[Segment]:
    """Vectorized shrinking-cone PLA; equivalent to :func:`fit_pla`."""
    arr = _as_key_array(keys)
    n = len(arr)
    if n == 0:
        return []
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if positions is None:
        pos = np.arange(n, dtype=np.int64)
    else:
        pos = np.asarray(positions, dtype=np.int64)

    segments: List[Segment] = []
    start = 0
    while start < n:
        end, slope_lo, slope_hi = _pla_segment_end(arr, pos, start, n, epsilon)
        segments.append(
            _make_segment(
                int(arr[start]),
                int(pos[start]),
                slope_lo,
                slope_hi,
                int(pos[start]),
                int(pos[end - 1]),
            )
        )
        start = end
    return segments


def _pla_segment_end(
    arr: np.ndarray,
    pos: np.ndarray,
    start: int,
    n: int,
    epsilon: float,
) -> Tuple[int, float, float]:
    """(exclusive end, slope_lo, slope_hi) of the cone starting at start."""
    if start == n - 1:
        return n, 0.0, _INF
    window = 256
    while True:
        stop = min(start + 1 + window, n)
        dx = (arr[start + 1 : stop] - arr[start]).astype(np.float64)
        dy = (pos[start + 1 : stop] - pos[start]).astype(np.float64)
        need_lo = (dy - epsilon) / dx
        need_hi = (dy + epsilon) / dx
        acc_lo = np.maximum.accumulate(np.maximum(need_lo, 0.0))
        acc_hi = np.minimum.accumulate(need_hi)
        violations = np.nonzero(acc_lo > acc_hi)[0]
        if len(violations):
            v = int(violations[0])  # first infeasible point
            if v == 0:
                # Segment holds only the anchor.
                return start + 1, 0.0, _INF
            return start + 1 + v, float(acc_lo[v - 1]), float(acc_hi[v - 1])
        if stop == n:
            last = len(dx) - 1
            return n, float(acc_lo[last]), float(acc_hi[last])
        window *= 4


def fit_spline_fast(keys, epsilon: float) -> List[Tuple[int, int]]:
    """Vectorized greedy spline corridor; equivalent to :func:`fit_spline`."""
    arr = _as_key_array(keys)
    n = len(arr)
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if n == 0:
        return []
    if n == 1:
        return [(int(arr[0]), 0)]

    knots: List[Tuple[int, int]] = [(int(arr[0]), 0)]
    base = 0
    while True:
        cut = _spline_corridor_cut(arr, base, n, epsilon)
        if cut is None:
            break
        knots.append((int(arr[cut]), cut))
        base = cut
    if knots[-1][1] != n - 1:
        knots.append((int(arr[n - 1]), n - 1))
    return knots


def _spline_corridor_cut(
    arr: np.ndarray, base: int, n: int, epsilon: float
) -> Optional[int]:
    """Index of the knot ending the corridor from ``base`` (None = done)."""
    if base >= n - 1:
        return None
    window = 256
    while True:
        stop = min(base + 1 + window, n)
        idx = np.arange(base + 1, stop, dtype=np.int64)
        dx = (arr[base + 1 : stop] - arr[base]).astype(np.float64)
        dy = (idx - base).astype(np.float64)
        slopes = dy / dx
        his = (dy + epsilon) / dx
        los = np.maximum((dy - epsilon) / dx, 0.0)
        # Corridor state *before* each point: shifted accumulations.
        acc_hi = np.empty(len(his))
        acc_hi[0] = _INF
        np.minimum.accumulate(his[:-1], out=acc_hi[1:])
        acc_lo = np.empty(len(los))
        acc_lo[0] = 0.0
        np.maximum.accumulate(los[:-1], out=acc_lo[1:])
        violations = np.nonzero((slopes > acc_hi) | (slopes < acc_lo))[0]
        if len(violations):
            v = int(violations[0])
            # The previous point becomes the knot.
            return base + v  # = (base + 1 + v) - 1
        if stop == n:
            return None
        window *= 4
