"""CDFShop-style RMI auto-tuner (Marcus et al., SIGMOD'20 demo).

The paper tunes every RMI with CDFShop, which explores configurations
(model types x branching factors) and keeps the Pareto frontier of
(index size, average log2 error).  This is a faithful, scaled-down
re-implementation of that search: log2 error is a cheap build-time proxy
for lookup latency (the paper's Figure 12 second column), so the tuner
needs no traced measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.learned.rmi import RMIIndex
from repro.memsim.memory import AddressSpace, TracedArray


@dataclass(frozen=True)
class TunedConfig:
    """One explored RMI configuration with its quality metrics."""

    stage1: str
    stage2: str
    branching: int
    size_bytes: int
    mean_log2_error: float

    def build(self, data, space: Optional[AddressSpace] = None) -> RMIIndex:
        rmi = RMIIndex(
            branching=self.branching, stage1=self.stage1, stage2=self.stage2
        )
        return rmi.build(data, space)


DEFAULT_STAGE1_TYPES = ("linear", "cubic", "loglinear", "radix")


def tune_rmi(
    keys: Sequence[int],
    stage1_types: Sequence[str] = DEFAULT_STAGE1_TYPES,
    max_branching_power: int = 18,
    min_branching_power: int = 6,
    branching_step: int = 2,
) -> List[TunedConfig]:
    """Explore RMI configurations; return the Pareto set sorted by size.

    A configuration is kept if no other explored configuration has both a
    smaller footprint and a lower average log2 error.
    """
    arr = np.asarray(keys, dtype=np.uint64)
    max_power = min(max_branching_power, max(int(np.log2(len(arr))), 4))
    explored: List[TunedConfig] = []
    for stage1 in stage1_types:
        for power in range(min_branching_power, max_power + 1, branching_step):
            space = AddressSpace()
            data = TracedArray.allocate(space, arr, name="data")
            rmi = RMIIndex(branching=1 << power, stage1=stage1).build(data, space)
            explored.append(
                TunedConfig(
                    stage1=stage1,
                    stage2=rmi.stage2_type,
                    branching=rmi.branching,
                    size_bytes=rmi.size_bytes(),
                    mean_log2_error=rmi.mean_log2_error(),
                )
            )

    explored.sort(key=lambda c: (c.size_bytes, c.mean_log2_error))
    pareto: List[TunedConfig] = []
    best = float("inf")
    for cfg in explored:
        if cfg.mean_log2_error < best:
            pareto.append(cfg)
            best = cfg.mean_log2_error
    return pareto
