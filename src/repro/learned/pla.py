"""Error-bounded piecewise linear approximation (PLA).

This is the fitting core of the PGM index (Section 3.3): partition a
monotone point set ``(key_i, i)`` into the fewest segments such that every
segment's linear model predicts each covered point's position to within a
preset error bound ``epsilon``.

We implement the streaming *shrinking-cone* algorithm (the FITing-Tree
construction the paper cites as "similar" to the spline fitting of RS):
anchor a segment at its first point and maintain the interval of slopes
that keeps all points within +-epsilon; when the interval becomes empty,
close the segment and start a new one.  The cone algorithm processes each
point in O(1) (the "constant amortized cost per element" property the
paper attributes to PGM) and produces at most ~2x the optimal number of
segments; the PGM's recursive structure and lookup guarantees are
unaffected by this constant factor (DESIGN.md records the substitution).

Segments store non-negative slopes (positions are non-decreasing), so the
prediction is monotone within a segment -- the property the index layers
rely on for absent-key validity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Segment:
    """One linear piece: predicts ``intercept + slope * (key - first_key)``.

    ``first_pos`` / ``last_pos`` delimit the positions of the points the
    segment was fit on (inclusive), used to clamp extrapolation.
    """

    first_key: int
    slope: float
    intercept: float
    first_pos: int
    last_pos: int

    def predict(self, key: int) -> float:
        return self.intercept + self.slope * float(key - self.first_key)


def fit_pla(
    keys: Sequence[int],
    epsilon: float,
    positions: Sequence[int] = None,
) -> List[Segment]:
    """Fit an error-bounded PLA over ``(keys[i], positions[i])``.

    Guarantees ``|segment.predict(keys[i]) - positions[i]| <= epsilon`` for
    every point, with the segment chosen by predecessor search on
    ``first_key``.  Keys must be strictly increasing.
    """
    n = len(keys)
    if n == 0:
        return []
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if positions is None:
        positions = range(n)

    segments: List[Segment] = []
    # Current segment state.
    anchor_key = keys[0]
    anchor_pos = positions[0]
    start_idx = 0
    slope_lo = 0.0
    slope_hi = float("inf")

    for i in range(1, n):
        key = keys[i]
        pos = positions[i]
        dx = float(key - anchor_key)
        if dx <= 0:
            raise ValueError("keys must be strictly increasing")
        dy = float(pos - anchor_pos)
        need_lo = (dy - epsilon) / dx
        need_hi = (dy + epsilon) / dx
        new_lo = max(slope_lo, need_lo)
        new_hi = min(slope_hi, need_hi)
        if new_lo <= new_hi:
            slope_lo, slope_hi = new_lo, new_hi
            continue
        # Cone collapsed: close the segment over [start_idx, i).
        segments.append(
            _make_segment(
                anchor_key,
                anchor_pos,
                slope_lo,
                slope_hi,
                positions[start_idx],
                positions[i - 1],
            )
        )
        anchor_key = key
        anchor_pos = pos
        start_idx = i
        slope_lo = 0.0
        slope_hi = float("inf")

    segments.append(
        _make_segment(
            anchor_key,
            anchor_pos,
            slope_lo,
            slope_hi,
            positions[start_idx],
            positions[n - 1],
        )
    )
    return segments


def _make_segment(
    anchor_key: int,
    anchor_pos: int,
    slope_lo: float,
    slope_hi: float,
    first_pos: int,
    last_pos: int,
) -> Segment:
    if slope_hi == float("inf"):  # single-point segment
        slope = 0.0 if slope_lo == 0.0 else slope_lo
    else:
        slope = (slope_lo + slope_hi) / 2.0
    slope = max(slope, 0.0)
    return Segment(
        first_key=anchor_key,
        slope=slope,
        intercept=float(anchor_pos),
        first_pos=first_pos,
        last_pos=last_pos,
    )


def max_pla_error(keys: Sequence[int], segments: List[Segment]) -> float:
    """Measure the actual max |prediction - position| (testing helper)."""
    if not segments:
        return 0.0
    worst = 0.0
    seg_idx = 0
    for i, key in enumerate(keys):
        while (
            seg_idx + 1 < len(segments)
            and segments[seg_idx + 1].first_key <= key
        ):
            seg_idx += 1
        worst = max(worst, abs(segments[seg_idx].predict(key) - i))
    return worst
