"""Dynamic PGM: insert support via the logarithmic method (extension).

The paper evaluates read-only structures but points at updatable learned
indexes as the next step ("As more learned index structures begin to
support updates [11, 13, 14], a benchmark against traditional indexes
could be fruitful") and notes PGM itself "can also handle inserts"
(Section 3.3).  The PGM paper's dynamization is the classic logarithmic
method: a small sorted buffer plus a collection of static PGM-indexed
runs of geometrically increasing size; inserts amortize O(log n) merge
work, lookups query the buffer and each run.

This is a standalone key-value structure (not a ``SortedDataIndex``): it
owns its data rather than indexing an external sorted array.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.learned.pgm import PGMIndex
from repro.memsim.memory import AddressSpace, TracedArray
from repro.search.last_mile import binary_search


@dataclass
class _Run:
    """One immutable sorted run with its static PGM index."""

    keys: np.ndarray
    values: np.ndarray
    data: TracedArray
    index: PGMIndex

    @property
    def n(self) -> int:
        return len(self.keys)


def _build_run(keys: np.ndarray, values: np.ndarray, epsilon: int) -> _Run:
    space = AddressSpace()
    data = TracedArray.allocate(space, keys, name="dynpgm.run")
    index = PGMIndex(epsilon=epsilon).build(data, space)
    return _Run(keys, values, data, index)


class DynamicPGM:
    """Insertable key-value map backed by static PGM runs.

    Parameters
    ----------
    epsilon:
        Error bound of each run's PGM index.
    buffer_capacity:
        Inserts collect in a sorted in-memory buffer of this size before
        being merged into the run hierarchy.

    Later inserts of an existing key overwrite its value.
    """

    def __init__(self, epsilon: int = 32, buffer_capacity: int = 256):
        if buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        self.epsilon = int(epsilon)
        self.buffer_capacity = int(buffer_capacity)
        self._buffer_keys: List[int] = []
        self._buffer_values: List[int] = []
        #: Runs ordered oldest (largest) to newest (smallest).
        self._runs: List[_Run] = []

    # -- mutation -----------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        keys = self._buffer_keys
        pos = bisect.bisect_left(keys, key)
        if pos < len(keys) and keys[pos] == key:
            self._buffer_values[pos] = value
        else:
            keys.insert(pos, key)
            self._buffer_values.insert(pos, value)
        if len(keys) >= self.buffer_capacity:
            self._flush_buffer()

    def _flush_buffer(self) -> None:
        new_keys = np.array(self._buffer_keys, dtype=np.uint64)
        new_values = np.array(self._buffer_values, dtype=np.uint64)
        self._buffer_keys = []
        self._buffer_values = []
        # Logarithmic method: merge with trailing runs while the merged
        # size would reach the next run's size class.
        while self._runs and self._runs[-1].n <= len(new_keys):
            run = self._runs.pop()
            new_keys, new_values = _merge(
                run.keys, run.values, new_keys, new_values
            )
        self._runs.append(_build_run(new_keys, new_values, self.epsilon))
        self._runs.sort(key=lambda r: -r.n)

    # -- queries --------------------------------------------------------------

    def get(self, key: int) -> Optional[int]:
        """Value for ``key``, or None."""
        pos = bisect.bisect_left(self._buffer_keys, key)
        if pos < len(self._buffer_keys) and self._buffer_keys[pos] == key:
            return int(self._buffer_values[pos])
        # Newest runs shadow older ones.
        for run in reversed(self._runs):
            bound = run.index.lookup(key)
            p = binary_search(run.data, key, bound)
            if p < run.n and int(run.keys[p]) == key:
                return int(run.values[p])
        return None

    def range(self, lo: int, hi: int) -> Iterator[Tuple[int, int]]:
        """Yield (key, value) for keys in [lo, hi), ascending, newest wins."""
        import heapq

        streams = []
        # Priority: lower number = newer (wins on ties).
        buf_lo = bisect.bisect_left(self._buffer_keys, lo)
        streams.append(
            (
                0,
                iter(
                    (self._buffer_keys[i], self._buffer_values[i])
                    for i in range(buf_lo, len(self._buffer_keys))
                ),
            )
        )
        def run_stream(run: _Run, start: int) -> Iterator[Tuple[int, int]]:
            for i in range(start, run.n):
                yield int(run.keys[i]), int(run.values[i])

        for age, run in enumerate(reversed(self._runs), start=1):
            bound = run.index.lookup(lo)
            start = binary_search(run.data, lo, bound)
            streams.append((age, run_stream(run, start)))

        heap = []
        for age, stream in streams:
            first = next(stream, None)
            if first is not None:
                heapq.heappush(heap, (first[0], age, first[1], stream))
        last_key = None
        while heap:
            key, age, value, stream = heapq.heappop(heap)
            if key >= hi:
                return
            if key != last_key:  # newest (smallest age) surfaces first
                yield int(key), int(value)
                last_key = key
            nxt = next(stream, None)
            if nxt is not None:
                heapq.heappush(heap, (nxt[0], age, nxt[1], stream))

    # -- stats ------------------------------------------------------------------

    def __len__(self) -> int:
        seen = len(self._buffer_keys)
        # Runs may shadow keys; count distinct via merge of key arrays.
        if not self._runs:
            return seen
        all_keys = np.concatenate(
            [r.keys for r in self._runs]
            + [np.array(self._buffer_keys, dtype=np.uint64)]
        )
        return int(len(np.unique(all_keys)))

    @property
    def n_runs(self) -> int:
        return len(self._runs)

    def index_size_bytes(self) -> int:
        return sum(r.index.size_bytes() for r in self._runs)


def _merge(
    keys_a: np.ndarray,
    values_a: np.ndarray,
    keys_b: np.ndarray,
    values_b: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two sorted runs; ``b`` (newer) wins on duplicate keys."""
    keys = np.concatenate([keys_a, keys_b])
    values = np.concatenate([values_a, values_b])
    # Stable sort keeps a-then-b order for equal keys; keep the LAST
    # occurrence (the newer b entry).
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    values = values[order]
    keep = np.ones(len(keys), dtype=bool)
    keep[:-1] = keys[:-1] != keys[1:]
    return keys[keep], values[keep]
