"""RadixSpline (RS) index, Kipf et al. / Section 3.2.

A greedy linear spline approximates the CDF; a radix table over the top
``radix_bits`` of the key space narrows the binary search for the spline
segment containing a lookup key.  Lookup: one radix-table read, a short
binary search on the spline keys, one interpolation -- and the error bound
is the spline fitting epsilon.

The radix table indexes *prefixes of the full key range*, so the ~100
enormous outliers in the ``face`` dataset render it nearly useless there,
exactly as the paper reports for the related RBS baseline.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bounds import SearchBound
from repro.core.interface import Capabilities, SortedDataIndex
from repro.core.registry import register_index

from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, Tracer

_PREFIX_INSTR = 3  # shift + clamp
_INTERP_INSTR = 8  # two subtracts, divide, fma, bound arithmetic
_SEARCH_STEP_INSTR = 5


@register_index
class RadixSplineIndex(SortedDataIndex):
    """RS index with spline error ``epsilon`` and ``radix_bits`` prefix bits."""

    name = "RS"
    capabilities = Capabilities(updates=False, ordered=True, kind="Learned")

    def __init__(self, epsilon: int = 32, radix_bits: int = 18):
        super().__init__()
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        if not 1 <= radix_bits <= 30:
            raise ValueError("radix_bits must be in [1, 30]")
        self.epsilon = int(epsilon)
        self.radix_bits = int(radix_bits)
        self._shift = 0
        self._n_knots = 0
        #: Interleaved (key, position) records, one knot per 16 bytes, as
        #: in the RS paper ("spline points themselves are represented as
        #: key / index pairs"): searching and interpolating touch adjacent
        #: bytes, not two separate arrays.
        self._spline: TracedArray = None
        self._radix_table: TracedArray = None

    # -- construction -----------------------------------------------------

    def _build(self, data: TracedArray, space: AddressSpace) -> None:
        from repro.learned.fitting_fast import fit_spline_fast

        knots = fit_spline_fast(data.values, float(self.epsilon))
        self._n_knots = len(knots)
        keys = np.array([k for k, _ in knots], dtype=np.uint64)
        records = np.empty(2 * len(knots), dtype=np.uint64)
        records[0::2] = keys
        records[1::2] = np.array([p for _, p in knots], dtype=np.uint64)

        # Shift so that the largest key's prefix fills radix_bits.
        max_key = int(data._py[-1])
        self._shift = max(max_key.bit_length() - self.radix_bits, 0)
        prefixes = keys >> np.uint64(self._shift)
        table_size = (1 << self.radix_bits) + 1
        # table[p] = first spline index with prefix >= p.
        table = np.searchsorted(prefixes, np.arange(table_size, dtype=np.uint64))
        self._spline = self._register(
            TracedArray.allocate(space, records, name="rs.spline")
        )
        self._radix_table = self._register(
            TracedArray.allocate(
                space, table.astype(np.uint32), name="rs.radix_table"
            )
        )

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: int, tracer: Tracer = NULL_TRACER) -> SearchBound:
        tracer.phase("model")  # radix-table probe + interpolation
        key = int(key)
        n = self.n_keys
        spline = self._spline
        n_knots = self._n_knots

        tracer.instr(_PREFIX_INSTR)
        prefix = key >> self._shift
        max_prefix = (1 << self.radix_bits) - 1
        if prefix < 0:
            prefix = 0
        elif prefix > max_prefix:
            prefix = max_prefix

        lo = self._radix_table.get(prefix, tracer)
        hi = self._radix_table.get(prefix + 1, tracer)
        # Binary search in [lo, hi] for the first spline key >= lookup key:
        # RS's in-structure search, distinct from its model arithmetic.
        tracer.phase("search")
        hi = min(hi + 1, n_knots)
        while lo < hi:
            mid = (lo + hi) // 2
            tracer.instr(_SEARCH_STEP_INSTR)
            goes_right = spline.get(2 * mid, tracer) < key
            tracer.branch("rs.search", goes_right)
            if goes_right:
                lo = mid + 1
            else:
                hi = mid

        tracer.phase("model")
        if lo == 0:
            # Key at or below the first knot: position 0 is the answer.
            return SearchBound(0, min(2, n + 1))
        if lo >= n_knots:
            # Key above the last knot: lower bound is past the last key.
            return SearchBound(max(n - 1, 0), n + 1)

        k0, p0, k1, p1 = spline.get_block(2 * (lo - 1), 4, tracer)
        tracer.instr(_INTERP_INSTR)
        if k1 == k0:
            pred = p0
        else:
            pred = p0 + (p1 - p0) * (float(key - k0) / float(k1 - k0))

        b_lo = max(int(pred) - self.epsilon - 1, 0)
        b_hi = min(int(pred) + self.epsilon + 2, n + 1)
        if b_hi <= b_lo:
            b_hi = b_lo + 1
        return SearchBound(b_lo, b_hi)

    # -- diagnostics ---------------------------------------------------------

    @property
    def n_spline_points(self) -> int:
        return self._n_knots

    def mean_log2_error(self) -> float:
        import math

        return math.log2(2.0 * self.epsilon + 2.0)

    @classmethod
    def size_sweep_configs(cls, n_keys: int) -> List[dict]:
        """~10 configurations from minimum to maximum size (Figure 7).

        Radix-table widths scale with the dataset (the RS paper pairs a
        ~2**25 table with 200M keys, i.e. log2(n) - 3); pairing small
        epsilon with wide tables mirrors its recommended tuning.
        """
        import math

        log_n = max(int(math.log2(max(n_keys, 16))), 8)
        pairs = [
            (4096, log_n - 10),
            (2048, log_n - 9),
            (1024, log_n - 8),
            (512, log_n - 7),
            (256, log_n - 6),
            (128, log_n - 5),
            (64, log_n - 4),
            (32, log_n - 3),
            (16, log_n - 3),
            (8, log_n - 2),
        ]
        return [
            {"epsilon": eps, "radix_bits": max(bits, 4)}
            for eps, bits in pairs
            if eps < max(n_keys // 4, 8)
        ]
