"""ALEX-style updatable adaptive learned index (extension).

The paper cites ALEX (Ding et al., reference [11]) among the learned
structures that "begin to support writes" and motivates benchmarking them
as future work.  This is a from-scratch implementation of ALEX's core
mechanisms, simplified to a two-level structure:

* a **root model** routes keys to one of ``n_buckets`` child pointers;
  several adjacent pointers may share one data node (ALEX's pointer
  duplication), so skewed regions get more nodes;
* **gapped data nodes**: each node stores keys in a sparse array with
  gaps; a per-node linear model predicts a key's slot, and an exponential
  search around the prediction finds it exactly;
* **model-based inserts**: an insert shifts entries only as far as the
  nearest gap;
* **node splits and expansions**: a node over its density limit either
  splits its pointer range in half (when it owns several root pointers)
  or doubles its capacity and retrains.

Unlike the read-only benchmark indexes this owns its key/value data
(compare :class:`repro.learned.dynamic_pgm.DynamicPGM`, the
logarithmic-method alternative).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.learned.models import LinearModel

_EMPTY = None


class _DataNode:
    """A gapped array of (key, value) with a linear placement model.

    Invariant: occupied slots hold strictly increasing keys in slot
    order.  All navigation reduces to :meth:`_predecessor_slot`, which is
    correct regardless of model error (the model only sets the search's
    starting point).
    """

    __slots__ = ("capacity", "keys", "values", "n", "model", "max_density")

    def __init__(self, capacity: int, max_density: float):
        self.capacity = max(capacity, 4)
        self.keys: List[Optional[int]] = [_EMPTY] * self.capacity
        self.values: List[int] = [0] * self.capacity
        self.n = 0
        self.model = LinearModel()
        self.max_density = max_density

    @classmethod
    def bulk_load(
        cls,
        keys: List[int],
        values: List[int],
        density: float,
        max_density: float,
    ) -> "_DataNode":
        n = len(keys)
        capacity = max(int(n / density) + 1, 8)
        node = cls(capacity, max_density)
        node.n = n
        slots = [i * node.capacity // max(n, 1) for i in range(n)]
        for slot, key, value in zip(slots, keys, values):
            node.keys[slot] = key
            node.values[slot] = value
        # Fit the placement model to the *actual* layout.
        if n >= 2:
            node.model.fit(
                np.asarray(keys, dtype=np.float64),
                np.asarray(slots, dtype=np.float64),
            )
        return node

    # -- navigation ---------------------------------------------------------

    def _predict_slot(self, key: int) -> int:
        slot = int(self.model.predict(float(key)))
        if slot < 0:
            return 0
        if slot >= self.capacity:
            return self.capacity - 1
        return slot

    def _prev_occupied(self, slot: int) -> Optional[int]:
        for i in range(min(slot, self.capacity - 1), -1, -1):
            if self.keys[i] is not _EMPTY:
                return i
        return None

    def _next_occupied(self, slot: int) -> Optional[int]:
        for i in range(max(slot, 0), self.capacity):
            if self.keys[i] is not _EMPTY:
                return i
        return None

    def _predecessor_slot(self, key: int) -> Optional[int]:
        """Largest occupied slot whose key is <= ``key`` (None if none)."""
        start = self._predict_slot(key)
        candidate = self._prev_occupied(start)
        if candidate is None:
            candidate = self._next_occupied(start + 1)
            if candidate is None or self.keys[candidate] > key:
                return None
        if self.keys[candidate] <= key:
            while True:
                nxt = self._next_occupied(candidate + 1)
                if nxt is None or self.keys[nxt] > key:
                    return candidate
                candidate = nxt
        while candidate is not None and self.keys[candidate] > key:
            candidate = self._prev_occupied(candidate - 1)
        return candidate

    # -- queries -------------------------------------------------------------

    def find(self, key: int) -> Optional[int]:
        slot = self._predecessor_slot(key)
        if slot is not None and self.keys[slot] == key:
            return self.values[slot]
        return None

    # -- mutation ---------------------------------------------------------------

    def insert(self, key: int, value: int) -> bool:
        """Insert or overwrite; returns False when the node must split."""
        pred = self._predecessor_slot(key)
        if pred is not None and self.keys[pred] == key:
            self.values[pred] = value
            return True
        if (self.n + 1) / self.capacity > self.max_density:
            return False
        nxt = self._next_occupied((pred + 1) if pred is not None else 0)
        lo = (pred + 1) if pred is not None else 0
        hi = nxt if nxt is not None else self.capacity
        if lo < hi:
            # A gap already exists between predecessor and successor.
            slot = min(max(self._predict_slot(key), lo), hi - 1)
            self.keys[slot] = key
            self.values[slot] = value
            self.n += 1
            return True
        # No gap in between: shift towards the nearest gap.
        gap_right = self._first_gap_right(hi)
        gap_left = self._first_gap_left(pred) if pred is not None else None
        if gap_right is None and gap_left is None:
            return False
        use_right = gap_left is None or (
            gap_right is not None and (gap_right - hi) <= (pred - gap_left)
        )
        if use_right:
            for i in range(gap_right, hi, -1):
                self.keys[i] = self.keys[i - 1]
                self.values[i] = self.values[i - 1]
            target = hi
        else:
            for i in range(gap_left, pred):
                self.keys[i] = self.keys[i + 1]
                self.values[i] = self.values[i + 1]
            target = pred
        self.keys[target] = key
        self.values[target] = value
        self.n += 1
        return True

    def _first_gap_right(self, slot: int) -> Optional[int]:
        for i in range(max(slot, 0), self.capacity):
            if self.keys[i] is _EMPTY:
                return i
        return None

    def _first_gap_left(self, slot: int) -> Optional[int]:
        for i in range(min(slot, self.capacity - 1), -1, -1):
            if self.keys[i] is _EMPTY:
                return i
        return None

    # -- iteration ------------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, int]]:
        for slot in range(self.capacity):
            key = self.keys[slot]
            if key is not _EMPTY:
                yield key, self.values[slot]

    def sorted_items(self) -> Tuple[List[int], List[int]]:
        keys, values = [], []
        for key, value in self.items():
            keys.append(key)
            values.append(value)
        return keys, values


class AlexIndex:
    """Two-level ALEX: root pointer array over gapped data nodes.

    Parameters
    ----------
    n_buckets:
        Root fan-out (pointer array size).
    target_node_keys:
        Bulk-load target keys per data node.
    density / max_density:
        Initial and maximum fill of data nodes.
    """

    def __init__(
        self,
        n_buckets: int = 256,
        target_node_keys: int = 256,
        density: float = 0.7,
        max_density: float = 0.85,
    ):
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        if not 0.1 <= density < max_density <= 0.95:
            raise ValueError("need 0.1 <= density < max_density <= 0.95")
        self.n_buckets = n_buckets
        self.target_node_keys = target_node_keys
        self.density = density
        self.max_density = max_density
        self.root_model = LinearModel()
        empty = _DataNode.bulk_load([], [], density, max_density)
        #: bucket id -> data node (adjacent buckets may share a node).
        self._children: List[_DataNode] = [empty] * n_buckets
        self._n = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def bulk_load(cls, keys, values, n_buckets: int = 256, **kwargs) -> "AlexIndex":
        keys = [int(k) for k in keys]
        values = [int(v) for v in values]
        if any(b <= a for a, b in zip(keys, keys[1:])):
            raise ValueError("bulk_load expects strictly increasing keys")
        index = cls(n_buckets=n_buckets, **kwargs)
        index._bulk(keys, values)
        return index

    def _bulk(self, keys: List[int], values: List[int]) -> None:
        n = len(keys)
        self._n = n
        if n == 0:
            return
        self.root_model.fit(
            np.asarray(keys, dtype=np.float64),
            np.arange(n, dtype=np.float64) * (self.n_buckets / n),
        )
        buckets = [self._route(k) for k in keys]
        self._children = [None] * self.n_buckets
        start = 0
        while start < n:
            end = min(start + self.target_node_keys, n)
            # Never let one bucket straddle two nodes.
            while end < n and buckets[end] == buckets[end - 1]:
                end += 1
            node = _DataNode.bulk_load(
                keys[start:end], values[start:end], self.density, self.max_density
            )
            for b in range(buckets[start], buckets[end - 1] + 1):
                self._children[b] = node
            start = end
        self._fill_pointer_gaps()

    def _fill_pointer_gaps(self) -> None:
        """Point unassigned buckets at the node on their left (or first)."""
        last = None
        for b in range(self.n_buckets):
            if self._children[b] is None:
                self._children[b] = last
            else:
                last = self._children[b]
        first = next((c for c in self._children if c is not None), None)
        if first is None:
            first = _DataNode.bulk_load([], [], self.density, self.max_density)
        for b in range(self.n_buckets):
            if self._children[b] is None:
                self._children[b] = first

    def _route(self, key: int) -> int:
        bucket = int(self.root_model.predict(float(key)))
        if bucket < 0:
            return 0
        if bucket >= self.n_buckets:
            return self.n_buckets - 1
        return bucket

    # -- queries ---------------------------------------------------------------

    def get(self, key: int) -> Optional[int]:
        key = int(key)
        return self._children[self._route(key)].find(key)

    def __len__(self) -> int:
        return self._n

    def items(self) -> Iterator[Tuple[int, int]]:
        """All items in key order."""
        seen = set()
        for node in self._children:
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield from node.items()

    def range(self, lo: int, hi: int) -> Iterator[Tuple[int, int]]:
        """(key, value) pairs with lo <= key < hi, ascending."""
        for key, value in self.items():
            if key < lo:
                continue
            if key >= hi:
                return
            yield key, value

    @property
    def n_data_nodes(self) -> int:
        return len({id(c) for c in self._children})

    # -- mutation --------------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        key = int(key)
        bucket = self._route(key)
        node = self._children[bucket]
        had = node.find(key) is not None
        if node.insert(key, value):
            if not had:
                self._n += 1
            return
        self._split_or_expand(bucket, node)
        self.insert(key, value)

    def _node_buckets(self, node: _DataNode) -> Tuple[int, int]:
        ids = [b for b, c in enumerate(self._children) if c is node]
        return ids[0], ids[-1]

    def _split_or_expand(self, bucket: int, node: _DataNode) -> None:
        lo, hi = self._node_buckets(node)
        keys, values = node.sorted_items()
        if hi > lo:
            # Split the pointer range in half (ALEX pointer split).
            mid_bucket = (lo + hi + 1) // 2
            routes = [self._route(k) for k in keys]
            split_at = 0
            while split_at < len(keys) and routes[split_at] < mid_bucket:
                split_at += 1
            left = _DataNode.bulk_load(
                keys[:split_at], values[:split_at], self.density, self.max_density
            )
            right = _DataNode.bulk_load(
                keys[split_at:], values[split_at:], self.density, self.max_density
            )
            for b in range(lo, mid_bucket):
                self._children[b] = left
            for b in range(mid_bucket, hi + 1):
                self._children[b] = right
        else:
            # Single pointer: expand the node (halve density, retrain).
            expanded = _DataNode.bulk_load(
                keys, values, self.density / 2.0, self.max_density
            )
            self._children[bucket] = expanded
