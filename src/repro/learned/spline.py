"""Greedy spline corridor fitting (Neumann & Michel), used by RadixSpline.

Selects a subset of the data points as spline knots such that linear
interpolation between consecutive knots approximates every data point's
position to within ``epsilon``.  Single pass, O(1) per element -- the
"constant worst-case cost per element" build property the paper highlights
for RS (Section 4.6).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def fit_spline(
    keys: Sequence[int],
    epsilon: float,
) -> List[Tuple[int, int]]:
    """Return spline knots as (key, position) pairs.

    The first and last data points are always knots.  For every data point
    ``(keys[i], i)`` the linear interpolation between its surrounding knots
    is within ``epsilon`` of ``i``.  Keys must be strictly increasing.
    """
    n = len(keys)
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if n == 0:
        return []
    if n == 1:
        return [(keys[0], 0)]

    knots: List[Tuple[int, int]] = [(keys[0], 0)]
    base_key = keys[0]
    base_pos = 0.0
    # Corridor of feasible slopes for the segment leaving the base knot.
    slope_lo = 0.0
    slope_hi = float("inf")
    prev_key = keys[0]
    prev_pos = 0

    for i in range(1, n):
        key = keys[i]
        dx = float(key - base_key)
        if key <= prev_key:
            raise ValueError("keys must be strictly increasing")
        dy = float(i) - base_pos
        slope = dy / dx
        if slope_lo <= slope <= slope_hi:
            # Point reachable: tighten the corridor and continue.
            slope_hi = min(slope_hi, (dy + epsilon) / dx)
            slope_lo = max(slope_lo, (dy - epsilon) / dx)
            prev_key, prev_pos = key, i
            continue
        # Previous point becomes a knot; restart the corridor from it.
        knots.append((prev_key, prev_pos))
        base_key, base_pos = prev_key, float(prev_pos)
        dx = float(key - base_key)
        dy = float(i) - base_pos
        slope_hi = (dy + epsilon) / dx
        slope_lo = max((dy - epsilon) / dx, 0.0)
        prev_key, prev_pos = key, i

    if knots[-1][0] != keys[n - 1]:
        knots.append((keys[n - 1], n - 1))
    return knots


def interpolate(knots: List[Tuple[int, int]], seg: int, key: int) -> float:
    """Position estimate for ``key`` within knot segment ``seg``."""
    k0, p0 = knots[seg]
    k1, p1 = knots[seg + 1]
    if k1 == k0:
        return float(p0)
    t = float(key - k0) / float(k1 - k0)
    return p0 + t * (p1 - p0)


def max_spline_error(keys: Sequence[int], knots: List[Tuple[int, int]]) -> float:
    """Measure actual max interpolation error over the data (testing helper)."""
    worst = 0.0
    seg = 0
    for i, key in enumerate(keys):
        while seg + 1 < len(knots) - 1 and knots[seg + 1][0] <= key:
            seg += 1
        worst = max(worst, abs(interpolate(knots, seg, key) - i))
    return worst
