"""Submodels for the recursive model index (RMI).

The reference RMI implementation supports a zoo of model types; we provide
the ones the paper's discussion relies on: linear regression, linear
spline (endpoint interpolation), cubic, log-linear and radix.  Stage-one
models must be *monotone non-decreasing* in the key -- RMI validity for
absent keys relies on monotone routing (see rmi.py) -- so fitted models
that come out non-monotone fall back to a monotone alternative, mirroring
the guard rails in the reference implementation.

All models map float64 key space to float64 position space.  ``predict``
is the scalar path used (instrumented) at lookup time; ``predict_batch``
is the vectorized path used during training and tuning.
"""

from __future__ import annotations

import abc

from typing import Sequence

import numpy as np


# numpy moved RankWarning in 2.0.
_RANK_WARNING = getattr(
    getattr(np, "exceptions", np), "RankWarning", Warning
)


class Model(abc.ABC):
    """A CDF submodel: key -> estimated position."""

    #: Number of float64 parameters (for size accounting).
    param_count: int = 0
    #: Instruction cost of one scalar evaluation (for the cost model).
    eval_instr: int = 4

    @abc.abstractmethod
    def fit(self, keys: np.ndarray, positions: np.ndarray) -> "Model":
        """Train on float64 key/position arrays; returns self."""

    @abc.abstractmethod
    def predict(self, key: float) -> float:
        ...

    @abc.abstractmethod
    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        ...

    def is_monotone(self, lo: float, hi: float) -> bool:
        """Whether the model is non-decreasing over [lo, hi]."""
        return True

    @abc.abstractmethod
    def params(self) -> Sequence[float]:
        """Flat parameter vector (used to store leaf models in arrays)."""


class LinearModel(Model):
    """Least-squares line ``slope * key + intercept``."""

    param_count = 2
    eval_instr = 4  # fma + rounding/clamp

    def __init__(self, slope: float = 0.0, intercept: float = 0.0):
        self.slope = slope
        self.intercept = intercept

    def fit(self, keys: np.ndarray, positions: np.ndarray) -> "LinearModel":
        n = len(keys)
        if n == 0:
            self.slope, self.intercept = 0.0, 0.0
            return self
        if n == 1:
            self.slope, self.intercept = 0.0, float(positions[0])
            return self
        kx = keys.astype(np.float64)
        ky = positions.astype(np.float64)
        mean_x = kx.mean()
        mean_y = ky.mean()
        var_x = float(((kx - mean_x) ** 2).sum())
        if var_x <= 0.0:
            self.slope, self.intercept = 0.0, float(mean_y)
            return self
        cov = float(((kx - mean_x) * (ky - mean_y)).sum())
        self.slope = cov / var_x
        if self.slope < 0.0:
            # Degenerate fit on pathological bucket contents; fall back to
            # the (monotone) endpoint spline.
            spline = LinearSplineModel().fit(kx, ky)
            self.slope, self.intercept = spline.slope, spline.intercept
            return self
        self.intercept = mean_y - self.slope * mean_x
        return self

    def predict(self, key: float) -> float:
        return self.slope * key + self.intercept

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        return self.slope * keys.astype(np.float64) + self.intercept

    def params(self) -> Sequence[float]:
        return (self.slope, self.intercept)


class LinearSplineModel(LinearModel):
    """Line through the first and last training points (always monotone)."""

    def fit(self, keys: np.ndarray, positions: np.ndarray) -> "LinearSplineModel":
        n = len(keys)
        if n == 0:
            self.slope, self.intercept = 0.0, 0.0
            return self
        x0, x1 = float(keys[0]), float(keys[-1])
        y0, y1 = float(positions[0]), float(positions[-1])
        if x1 <= x0:
            self.slope, self.intercept = 0.0, y0
            return self
        self.slope = max((y1 - y0) / (x1 - x0), 0.0)
        self.intercept = y0 - self.slope * x0
        return self


class CubicModel(Model):
    """Least-squares cubic; falls back to linear if non-monotone."""

    param_count = 4
    eval_instr = 9  # three fmas (Horner) + clamp

    def __init__(self):
        self.coeffs = np.zeros(4)  # highest power first
        self._fallback: LinearModel = None
        # Normalization keeps the Vandermonde system well-conditioned.
        self._shift = 0.0
        self._scale = 1.0

    def fit(self, keys: np.ndarray, positions: np.ndarray) -> "CubicModel":
        n = len(keys)
        if n < 8:
            self._fallback = LinearModel().fit(keys, positions)
            return self
        kx = keys.astype(np.float64)
        ky = positions.astype(np.float64)
        self._shift = float(kx[0])
        self._scale = max(float(kx[-1]) - self._shift, 1.0)
        t = (kx - self._shift) / self._scale
        import warnings

        try:
            with warnings.catch_warnings():
                # Near-degenerate buckets (e.g. few distinct normalized
                # keys) are expected; the monotonicity check below rejects
                # bad fits.
                warnings.simplefilter("ignore", _RANK_WARNING)
                self.coeffs = np.polyfit(t, ky, 3)
        except np.linalg.LinAlgError:
            self._fallback = LinearModel().fit(keys, positions)
            return self
        if not self._poly_monotone():
            self._fallback = LinearModel().fit(keys, positions)
        return self

    def _poly_monotone(self) -> bool:
        """Exact check that d/dt >= 0 on [0, 1].

        The derivative 3a t^2 + 2b t + c is quadratic: its minimum over
        the interval is at an endpoint or at the interior vertex.
        """
        a, b, c, _ = self.coeffs

        def deriv(t: float) -> float:
            return 3.0 * a * t * t + 2.0 * b * t + c

        candidates = [0.0, 1.0]
        if a != 0.0:
            vertex = -b / (3.0 * a)
            if 0.0 < vertex < 1.0:
                candidates.append(vertex)
        return all(deriv(t) >= -1e-9 for t in candidates)

    def predict(self, key: float) -> float:
        if self._fallback is not None:
            return self._fallback.predict(key)
        t = (key - self._shift) / self._scale
        # Monotonicity is only guaranteed on the fitted range; clamp so
        # extrapolation (keys outside the data) stays monotone too.
        if t < 0.0:
            t = 0.0
        elif t > 1.0:
            t = 1.0
        a, b, c, d = self.coeffs
        return ((a * t + b) * t + c) * t + d

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        if self._fallback is not None:
            return self._fallback.predict_batch(keys)
        t = (keys.astype(np.float64) - self._shift) / self._scale
        t = np.clip(t, 0.0, 1.0)
        a, b, c, d = self.coeffs
        return ((a * t + b) * t + c) * t + d

    def params(self) -> Sequence[float]:
        if self._fallback is not None:
            return tuple(self._fallback.params()) + (0.0, 0.0)
        return tuple(self.coeffs)


class LogLinearModel(Model):
    """Linear model in log2(key - min + 1) space; good for skewed keys."""

    param_count = 3
    eval_instr = 14  # log + fma + clamp

    def __init__(self):
        self.slope = 0.0
        self.intercept = 0.0
        self.shift = 0.0

    def fit(self, keys: np.ndarray, positions: np.ndarray) -> "LogLinearModel":
        if len(keys) == 0:
            return self
        kx = keys.astype(np.float64)
        self.shift = float(kx[0])
        logk = np.log2(kx - self.shift + 1.0)
        inner = LinearModel().fit(logk, positions.astype(np.float64))
        self.slope = max(inner.slope, 0.0)
        self.intercept = inner.intercept
        return self

    def predict(self, key: float) -> float:
        x = key - self.shift + 1.0
        if x < 1.0:
            x = 1.0
        # np.log2, not math.log2: the scalar path must be bit-identical to
        # predict_batch so RMI routing never disagrees between build time
        # and lookup time.
        return float(self.slope * np.log2(x) + self.intercept)

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        x = np.maximum(keys.astype(np.float64) - self.shift + 1.0, 1.0)
        return self.slope * np.log2(x) + self.intercept

    def params(self) -> Sequence[float]:
        return (self.slope, self.intercept, self.shift)


class RadixModel(Model):
    """Top-bits model: position proportional to (key - min) >> shift.

    Equivalent to the radix-table top layer of RBS/RS; perfectly monotone
    and needs only a subtract and a shift to evaluate.
    """

    param_count = 3
    eval_instr = 3

    def __init__(self):
        self.min_key = 0.0
        self.span = 1.0
        self.out_scale = 1.0
        self.out_base = 0.0

    def fit(self, keys: np.ndarray, positions: np.ndarray) -> "RadixModel":
        if len(keys) == 0:
            return self
        self.min_key = float(keys[0])
        self.span = max(float(keys[-1]) - self.min_key, 1.0)
        self.out_scale = float(positions[-1]) - float(positions[0])
        self.out_base = float(positions[0])
        return self

    def predict(self, key: float) -> float:
        t = (key - self.min_key) / self.span
        if t < 0.0:
            t = 0.0
        elif t > 1.0:
            t = 1.0
        return self.out_base + t * self.out_scale

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        t = np.clip((keys.astype(np.float64) - self.min_key) / self.span, 0, 1)
        return self.out_base + t * self.out_scale

    def params(self) -> Sequence[float]:
        return (self.min_key, self.span, self.out_scale)


MODEL_TYPES = {
    "linear": LinearModel,
    "linear_spline": LinearSplineModel,
    "cubic": CubicModel,
    "loglinear": LogLinearModel,
    "radix": RadixModel,
}


def make_model(name: str) -> Model:
    try:
        return MODEL_TYPES[name]()
    except KeyError:
        known = ", ".join(sorted(MODEL_TYPES))
        raise KeyError(f"unknown model type {name!r}; known: {known}") from None
