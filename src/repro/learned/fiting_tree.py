"""Deprecated alias for :mod:`repro.learned.fitting_tree`.

The module originally shipped under this misspelled name; it was renamed
in favour of the correct spelling.  Importing this shim keeps old code
working (same class object, no re-registration) but emits a
``DeprecationWarning``.  The shim will be removed in release 2.0; new
in-repo imports of it are rejected by ``tests/test_lint_denylist.py``.
"""

from __future__ import annotations

import warnings

from repro.learned.fitting_tree import FITingTreeIndex

warnings.warn(
    "repro.learned.fiting_tree is deprecated (misspelling) and will be "
    "removed in release 2.0; import repro.learned.fitting_tree instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["FITingTreeIndex"]
