"""Vectorized batch-predict kernels for the learned index families.

The scalar ``lookup`` methods of RMI, PGM and RadixSpline are pure
arithmetic over a handful of array reads -- exactly the shape numpy
vectorizes.  Each kernel here maps a batch of lookup keys to the same
``(lo, hi)`` search-bound arrays the scalar path produces, *bit for
bit*: every float operation is performed in the same order on the same
IEEE-754 doubles (``models.py`` already guarantees scalar/batch parity
for the model evaluations themselves), integer truncation uses
``astype(int64)`` whose truncate-toward-zero matches Python ``int()``,
and unsigned key differences reproduce Python's exact big-int-to-float
rounding via uint64 wrap arithmetic.

Alongside the bounds, a kernel can synthesize the *event stream* of each
lookup into an :class:`EventSink` -- the same reads/instrs/branches the
scalar lookup would emit, in the same per-key order.  That is sound for
the same reason trace record-replay is sound (tracer calls return
``None``; see ``repro.memsim.trace``): the stream is a pure function of
the index contents and the key.  The harness's batched measure path
(``bench/harness.py``) turns those streams into
:class:`~repro.memsim.trace.Trace` objects and replays them through the
vector engine, so a measured cell is one kernel call plus vectorized
replays instead of N Python lookups.

Event columns: keys proceed through the synthesized control flow in
lockstep, one column per step; keys not executing a step (shorter binary
searches, early returns) are simply inactive in that column.  A key's
chronological event order is its active columns in column order, so the
per-key stream equals the scalar stream exactly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.learned.pgm import PGMIndex, _REC as _PGM_REC
from repro.learned.pgm import _PRED_INSTR, _SEARCH_STEP_INSTR
from repro.learned.radix_spline import RadixSplineIndex
from repro.learned.radix_spline import _INTERP_INSTR, _PREFIX_INSTR
from repro.learned.rmi import RMIIndex, _REC as _RMI_REC
from repro.learned.rmi import _BOUND_INSTR, _ROUTE_INSTR
from repro.memsim.engine import SiteInterner
from repro.memsim.trace import K_BRANCH, K_INSTR, K_READ, Trace

#: Last-mile searches the batched path can synthesize.
BATCH_SEARCHES = ("binary",)

_BINARY_STEP_INSTR = 5  # must match search/last_mile.py
_LOOP_INSTR = 4  # must match bench/harness.py

#: Guard against int64 overflow in float->int truncation.  Scalar
#: ``int()`` handles any finite float; predictions here are clamped to
#: position ranges (<= n), so +-2^62 is unreachable and the clip is
#: behavior-preserving.
_I64_LO, _I64_HI = float(-(1 << 62)), float(1 << 62)


def _trunc(x: np.ndarray) -> np.ndarray:
    """``int(x)`` per element: truncate toward zero, like C casts do."""
    return np.clip(x, _I64_LO, _I64_HI).astype(np.int64)


class EventSink:
    """Column-wise accumulator for per-key synthesized event streams."""

    __slots__ = ("n", "_cols")

    def __init__(self, n: int):
        self.n = n
        #: (kind, a, b, mask) per column; a/b scalar or (n,) array,
        #: mask None meaning all-active.
        self._cols: List[tuple] = []

    def emit(self, kind, a, b, mask=None) -> None:
        self._cols.append((kind, a, b, mask))

    def matrices(self):
        """Stack columns into (n, steps) kinds/a/b/valid matrices."""
        n, s = self.n, len(self._cols)
        kinds = np.empty((n, s), dtype=np.uint8)
        a = np.empty((n, s), dtype=np.int64)
        b = np.empty((n, s), dtype=np.int64)
        valid = np.empty((n, s), dtype=bool)
        for j, (kind, ca, cb, mask) in enumerate(self._cols):
            kinds[:, j] = kind
            a[:, j] = ca
            b[:, j] = cb
            valid[:, j] = True if mask is None else mask
        return kinds, a, b, valid


class _NullSink:
    """Sink for bounds-only kernel calls (no event synthesis)."""

    __slots__ = ()

    def emit(self, kind, a, b, mask=None) -> None:
        pass


NULL_SINK = _NullSink()


def _vec_search_loop(
    sink,
    keys_u64: np.ndarray,
    values: np.ndarray,
    base: int,
    itemsize: int,
    lo: np.ndarray,
    hi: np.ndarray,
    site_id: int,
    le: bool,
    stride: int = 1,
    step_instr: int = _SEARCH_STEP_INSTR,
) -> np.ndarray:
    """Lockstep lower-bound binary search; returns the final ``lo``.

    Replicates the scalar loop's per-step events (instr, probe read,
    branch) for every key still active.  ``le`` selects the comparison
    (``values[mid] <= key`` for PGM's segment search, ``< key`` for
    last-mile/RS lower bound); ``stride`` addresses interleaved records
    (RS spline (key, pos) pairs).
    """
    lo = lo.astype(np.int64, copy=True)
    hi = hi.astype(np.int64, copy=True)
    active = lo < hi
    while active.any():
        mid = (lo + hi) >> 1
        probe = stride * np.where(active, mid, 0)
        v = values[probe]
        right = (v <= keys_u64) if le else (v < keys_u64)
        sink.emit(K_INSTR, step_instr, 0, mask=active)
        sink.emit(K_READ, base + (stride * mid) * itemsize, itemsize, mask=active)
        sink.emit(K_BRANCH, site_id, right, mask=active)
        go = active & right
        lo = np.where(go, mid + 1, lo)
        hi = np.where(active & ~right, mid, hi)
        active = lo < hi
    return lo


# -- per-family bound kernels -------------------------------------------------


def _rmi_bounds(index: RMIIndex, keys: np.ndarray, sink, sites) -> Tuple:
    n = index.n_keys
    kf = keys.astype(np.float64)
    rp = index._root_params
    sink.emit(K_READ, rp.base, len(rp) * rp.itemsize)
    sink.emit(K_INSTR, index.root.eval_instr + _ROUTE_INSTR, 0)
    raw = index.root.predict_batch(keys) * index._route_scale
    if np.isnan(raw).any():
        raise ValueError("RMI root prediction is NaN")  # scalar int() raises too
    b = index.branching
    bucket = np.clip(_trunc(np.clip(raw, -1.0, float(b))), 0, b - 1)

    recs = index._records
    sink.emit(
        K_READ, recs.base + bucket * (_RMI_REC * recs.itemsize),
        _RMI_REC * recs.itemsize,
    )
    sink.emit(K_INSTR, _BOUND_INSTR, 0)
    r = recs.values.reshape(-1, _RMI_REC)[bucket]
    slope, intercept = r[:, 0], r[:, 1]
    err, min_pos, max_pos_plus1 = r[:, 2], r[:, 3], r[:, 4]
    pred = slope * kf + intercept
    pred = np.where(
        pred < min_pos, min_pos, np.where(pred > max_pos_plus1, max_pos_plus1, pred)
    )
    e = _trunc(err)
    ip = _trunc(pred)
    lo = ip - e
    hi = ip + e + 2
    range_lo = _trunc(min_pos)
    range_hi = _trunc(max_pos_plus1) + 1
    lo = np.maximum(lo, range_lo)
    hi = np.minimum(hi, range_hi)
    bad = hi <= lo
    lo = np.where(bad, range_lo, lo)
    hi = np.where(bad, range_hi, hi)
    lo = np.maximum(lo, 0)
    hi = np.minimum(hi, n + 1)
    hi = np.where(hi <= lo, lo + 1, hi)
    return lo, hi


def _signed_diff_f64(keys_u64: np.ndarray, ref_u64: np.ndarray) -> np.ndarray:
    """Exact float64 of the signed int difference ``key - ref``.

    Python's ``float(key - ref)`` rounds the exact big-int difference to
    nearest; uint64->float64 conversion rounds identically, and negation
    is sign-flip-exact, so taking the non-wrapped direction matches bit
    for bit.
    """
    ge = keys_u64 >= ref_u64
    fwd = (keys_u64 - ref_u64).astype(np.float64)
    bwd = (ref_u64 - keys_u64).astype(np.float64)
    return np.where(ge, fwd, -bwd)


def _pgm_bounds(index: PGMIndex, keys: np.ndarray, sink, sites) -> Tuple:
    n = index.n_keys
    site = sites.intern("pgm.search")
    levels = index._levels
    root = levels[0]
    zeros = np.zeros(len(keys), dtype=np.int64)
    seg = _vec_search_loop(
        sink, keys, root.keys.values, root.keys.base, root.keys.itemsize,
        zeros, zeros + root.n_segments, site, le=True,
    )
    seg = np.maximum(seg - 1, 0)

    eps_i = index.epsilon_internal
    for depth, level in enumerate(levels):
        lk, lp = level.keys, level.params
        sink.emit(K_READ, lk.base + seg * lk.itemsize, lk.itemsize)
        sink.emit(
            K_READ, lp.base + seg * (_PGM_REC * lp.itemsize),
            _PGM_REC * lp.itemsize,
        )
        sink.emit(K_INSTR, _PRED_INSTR, 0)
        r = lp.values.reshape(-1, _PGM_REC)[seg]
        slope, intercept, last_pos_plus1 = r[:, 0], r[:, 1], r[:, 2]
        first_key = lk.values[seg]
        pred = intercept + slope * _signed_diff_f64(keys, first_key)
        pred = np.where(
            pred < intercept,
            intercept,
            np.where(pred > last_pos_plus1, last_pos_plus1, pred),
        )
        ip = _trunc(pred)
        if depth == len(levels) - 1:
            lo = np.maximum(ip - index.epsilon - 1, 0)
            hi = np.minimum(ip + index.epsilon + 2, n + 1)
            hi = np.where(hi <= lo, lo + 1, hi)
            return lo, hi
        nxt = levels[depth + 1]
        seg = _vec_search_loop(
            sink, keys, nxt.keys.values, nxt.keys.base, nxt.keys.itemsize,
            np.maximum(ip - eps_i - 2, 0),
            np.minimum(ip + eps_i + 2, nxt.n_segments),
            site, le=True,
        )
        seg = np.maximum(seg - 1, 0)
    raise AssertionError("unreachable")


def _rs_bounds(index: RadixSplineIndex, keys: np.ndarray, sink, sites) -> Tuple:
    n = index.n_keys
    site = sites.intern("rs.search")
    spline = index._spline
    table = index._radix_table
    n_knots = index._n_knots

    sink.emit(K_INSTR, _PREFIX_INSTR, 0)
    max_prefix = (1 << index.radix_bits) - 1
    # Clamp in uint64 *before* the signed cast: an unshifted 64-bit key
    # would overflow int64.
    prefix = np.minimum(
        keys >> np.uint64(index._shift), np.uint64(max_prefix)
    ).astype(np.int64)
    sink.emit(K_READ, table.base + prefix * table.itemsize, table.itemsize)
    sink.emit(K_READ, table.base + (prefix + 1) * table.itemsize, table.itemsize)
    lo = table.values[prefix].astype(np.int64)
    hi = table.values[prefix + 1].astype(np.int64)
    hi = np.minimum(hi + 1, n_knots)
    lo = _vec_search_loop(
        sink, keys, spline.values, spline.base, spline.itemsize,
        lo, hi, site, le=False, stride=2,
    )

    early0 = lo == 0
    early_hi = lo >= n_knots
    normal = ~early0 & ~early_hi
    lo_c = np.maximum(lo, 1)
    sink.emit(
        K_READ, spline.base + 2 * (lo - 1) * spline.itemsize,
        4 * spline.itemsize, mask=normal,
    )
    sink.emit(K_INSTR, _INTERP_INSTR, 0, mask=normal)
    sp = spline.values
    # Gather indices are clamped into range for the masked-out early
    # rows; their values never feed a live lane.
    lo_g = np.minimum(lo_c, n_knots - 1)
    k0 = sp[2 * (lo_c - 1)]
    p0 = sp[2 * (lo_c - 1) + 1]
    k1 = sp[2 * lo_g]
    p1 = sp[2 * lo_g + 1]
    same = k1 == k0
    # For normal rows key > k0 and k1 >= key, so both differences are
    # non-negative; the conversions round exactly like Python float().
    num = (keys - k0).astype(np.float64)
    den = np.where(same, 1.0, (k1 - k0).astype(np.float64))
    p0f = p0.astype(np.float64)
    interp = p0f + (p1 - p0).astype(np.float64) * (num / den)
    pred = np.where(same, p0f, interp)
    ip = _trunc(pred)
    b_lo = np.maximum(ip - index.epsilon - 1, 0)
    b_hi = np.minimum(ip + index.epsilon + 2, n + 1)
    b_hi = np.where(b_hi <= b_lo, b_lo + 1, b_hi)
    out_lo = np.where(early0, 0, np.where(early_hi, max(n - 1, 0), b_lo))
    out_hi = np.where(early0, min(2, n + 1), np.where(early_hi, n + 1, b_hi))
    return out_lo, out_hi


_KERNELS = {
    RMIIndex: _rmi_bounds,
    PGMIndex: _pgm_bounds,
    RadixSplineIndex: _rs_bounds,
}


def supports(index) -> bool:
    """Whether a batch kernel exists for this index (exact class match)."""
    return type(index) in _KERNELS


def batch_bounds(
    index,
    keys: np.ndarray,
    sink=NULL_SINK,
    sites: Optional[SiteInterner] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch of ``index.lookup`` bounds: ``(lo, hi)`` int64 arrays.

    Bit-identical to calling ``index.lookup(key)`` per key.  When a real
    :class:`EventSink` is passed, the model-phase event stream of every
    key is synthesized into it (site names are interned into ``sites``).
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    if sites is None:
        sites = SiteInterner()
    try:
        kernel = _KERNELS[type(index)]
    except KeyError:
        raise TypeError(f"no batch kernel for {type(index).__name__}") from None
    return kernel(index, keys, sink, sites)


class BatchLookups:
    """Synthesized full-lookup event streams for a batch of keys.

    Covers the harness's entire per-lookup sequence: index model phase,
    last-mile search, loop-body instructions, payload touch.  Rows are
    the key batch; :meth:`mega_trace` concatenates per-row streams into
    one replayable :class:`Trace` (row order = lookup order), and
    :meth:`trace_for` gives a single row's trace (cached, so its replay
    plan is built once).
    """

    __slots__ = ("pos", "lo", "hi", "lg", "_kinds", "_a", "_b", "_valid",
                 "_row_traces")

    def __init__(self, pos, lo, hi, lg, kinds, a, b, valid):
        self.pos = pos
        self.lo = lo
        self.hi = hi
        #: Per-row ``log2(len(bound))`` as Python floats (the harness
        #: accumulates these in lookup order, like the scalar loop).
        self.lg = lg
        self._kinds = kinds
        self._a = a
        self._b = b
        self._valid = valid
        self._row_traces: Dict[int, Trace] = {}

    def mega_trace(self, rows) -> Trace:
        """One Trace for a sequence of row lookups, in order."""
        idx = np.asarray(rows, dtype=np.int64)
        mask = self._valid[idx]
        return Trace(
            self._kinds[idx][mask], self._a[idx][mask], self._b[idx][mask]
        )

    def trace_for(self, row: int) -> Trace:
        t = self._row_traces.get(row)
        if t is None:
            mask = self._valid[row]
            t = Trace(
                self._kinds[row][mask], self._a[row][mask], self._b[row][mask]
            )
            self._row_traces[row] = t
        return t


def batch_lookups(
    index,
    data,
    payloads,
    keys: np.ndarray,
    search: str,
    sites: SiteInterner,
) -> BatchLookups:
    """Synthesize complete lookup event streams + results for ``keys``.

    ``search`` must be in :data:`BATCH_SEARCHES`.  The per-key stream is
    exactly what ``bench.harness.measure``'s ``one_lookup`` feeds the
    tracer (phase markers are never recorded), so replaying it is
    counter-identical to executing the lookup.
    """
    if search not in BATCH_SEARCHES:
        raise ValueError(f"no batched synthesis for search {search!r}")
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    n = len(data)
    sink = EventSink(len(keys))
    lo, hi = batch_bounds(index, keys, sink, sites)

    # Last-mile binary search over the data array (last_mile.binary_search).
    site = sites.intern("lastmile.binary")
    pos = _vec_search_loop(
        sink, keys, data.values, data.base, data.itemsize,
        lo, np.minimum(hi, n), site, le=False,
        step_instr=_BINARY_STEP_INSTR,
    )

    # Harness loop tail: bookkeeping instructions + payload read.
    sink.emit(K_INSTR, _LOOP_INSTR, 0)
    sink.emit(
        K_READ, payloads.base + pos * payloads.itemsize, payloads.itemsize,
        mask=pos < n,
    )

    width = (hi - lo).tolist()
    lg = [math.log2(w) if w > 0 else 0.0 for w in width]
    kinds, a, b, valid = sink.matrices()
    return BatchLookups(pos, lo, hi, lg, kinds, a, b, valid)
