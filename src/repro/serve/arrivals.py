"""Seeded arrival processes for the serving simulator.

Open-loop processes generate absolute arrival timestamps up front, so a
run is a pure function of ``(process, seed)``: Poisson traffic is a
scaled cumulative sum of unit-exponential gaps, and bursty traffic is an
on/off modulated Poisson (high rate inside bursts, low rate between
them).  The unit-exponential gap sequence depends only on ``(seed, n)``,
never on the rate, so sweeping the offered load rescales one fixed gap
sequence -- which makes FIFO waiting times (and hence every latency
percentile) weakly increasing in the rate, the property `ext_serving`'s
monotone throughput-latency curve rests on.

Closed-loop arrivals depend on completions, so they are generated inside
the event loop (see :class:`repro.serve.core.ClosedLoopSource`); this
module only provides the think-time sampler.
"""

from __future__ import annotations

from typing import List

import numpy as np


def _unit_gaps(n: int, seed: int) -> np.ndarray:
    """Unit-mean exponential gaps, a function of (seed, n) only."""
    if n < 1:
        raise ValueError(f"need at least one arrival, got {n}")
    rng = np.random.default_rng(seed + 0x5E21)
    return rng.exponential(1.0, size=n)


def poisson_arrivals(rate_per_sec: float, n: int, seed: int) -> List[float]:
    """``n`` Poisson arrival times (nanoseconds), rate ``rate_per_sec``.

    The same seed at a higher rate yields the same gap sequence scaled
    down, so every arrival moves earlier -- loads are comparable across a
    rate sweep instead of being resampled.
    """
    if rate_per_sec <= 0.0:
        raise ValueError(f"rate must be positive, got {rate_per_sec}")
    mean_gap_ns = 1e9 / rate_per_sec
    times = np.cumsum(_unit_gaps(n, seed)) * mean_gap_ns
    return [float(t) for t in times]


def bursty_arrivals(
    rate_per_sec: float,
    n: int,
    seed: int,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.2,
    period_requests: int = 50,
) -> List[float]:
    """On/off modulated Poisson arrivals (nanoseconds) with mean ``rate``.

    Time alternates between bursts (rate ``burst_factor`` times the
    on/off-balanced base rate, ``burst_fraction`` of each period's
    requests... measured in requests: the first
    ``burst_fraction * period_requests`` arrivals of every period are
    generated at the burst rate, the rest at the complementary low rate)
    so that the long-run average rate stays ``rate_per_sec``.  The same
    fixed unit-gap sequence is reused across rates, as for
    :func:`poisson_arrivals`.
    """
    if rate_per_sec <= 0.0:
        raise ValueError(f"rate must be positive, got {rate_per_sec}")
    if burst_factor <= 1.0:
        raise ValueError(f"burst_factor must exceed 1, got {burst_factor}")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError(
            f"burst_fraction must be in (0, 1), got {burst_fraction}"
        )
    # Low rate chosen so the request-weighted harmonic mean of the two
    # rates equals the requested mean rate.
    hi = burst_factor * rate_per_sec
    lo_share = 1.0 - burst_fraction / burst_factor
    lo = (1.0 - burst_fraction) / lo_share * rate_per_sec
    gaps = _unit_gaps(n, seed)
    burst_len = max(1, int(round(burst_fraction * period_requests)))
    times: List[float] = []
    t = 0.0
    for i in range(n):
        in_burst = (i % period_requests) < burst_len
        rate = hi if in_burst else lo
        t += gaps[i] * 1e9 / rate
        times.append(t)
    return times


def diurnal_arrivals(
    rate_per_sec: float,
    n: int,
    seed: int,
    peak_to_trough: float = 3.0,
    period_requests: int = 200,
) -> List[float]:
    """Sinusoidally modulated Poisson arrivals (nanoseconds) -- a "day".

    The instantaneous rate of request ``i`` follows one sine cycle every
    ``period_requests`` requests, swinging between a peak and a trough
    whose ratio is ``peak_to_trough``; the discrete request-weighted
    harmonic mean of the per-request rates is normalized so the long-run
    average rate is exactly ``rate_per_sec`` over whole periods.

    Like every open-loop shape here, the same ``(seed, n)`` unit-gap
    sequence is reused across rates (a rate sweep rescales gaps, it
    never re-draws them), and the modulation depends only on the request
    index -- so the process is *horizon-pure*: the first ``k`` arrivals
    of an ``n``-request trace equal the ``k``-request trace exactly.
    """
    if rate_per_sec <= 0.0:
        raise ValueError(f"rate must be positive, got {rate_per_sec}")
    if peak_to_trough <= 1.0:
        raise ValueError(
            f"peak_to_trough must exceed 1, got {peak_to_trough}"
        )
    if period_requests < 2:
        raise ValueError(
            f"period_requests must be >= 2, got {period_requests}"
        )
    # Amplitude giving the requested peak/trough ratio: (1+A)/(1-A) = r.
    amp = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    phase = 2.0 * np.pi * np.arange(period_requests) / period_requests
    modulation = 1.0 + amp * np.sin(phase)
    # Exact discrete normalization: with rate_i = rate * modulation_i *
    # correction, the mean gap over one full period is exactly 1/rate.
    correction = float(np.mean(1.0 / modulation))
    gaps = _unit_gaps(n, seed)
    times: List[float] = []
    t = 0.0
    for i in range(n):
        rate = rate_per_sec * float(modulation[i % period_requests]) * correction
        t += gaps[i] * 1e9 / rate
        times.append(t)
    return times


def flash_crowd_arrivals(
    rate_per_sec: float,
    n: int,
    seed: int,
    spike_factor: float = 8.0,
    spike_start_request: int = 100,
    spike_len_requests: int = 100,
) -> List[float]:
    """Baseline Poisson with a flash crowd (nanoseconds).

    Requests ``spike_start_request <= i < spike_start_request +
    spike_len_requests`` arrive at ``spike_factor`` times the baseline
    rate; everything else is plain Poisson at ``rate_per_sec``.  The
    spike is *extra* load on top of the baseline (the long-run rate
    exceeds nominal while it lasts) -- that is the point of a flash
    crowd, and what admission control is tested against.

    The spike window is defined in absolute request indices, not
    fractions of ``n``, so the process is horizon-pure (see
    :func:`diurnal_arrivals`); the fixed unit-gap sequence is reused
    across rates, as for every other shape.
    """
    if rate_per_sec <= 0.0:
        raise ValueError(f"rate must be positive, got {rate_per_sec}")
    if spike_factor <= 1.0:
        raise ValueError(f"spike_factor must exceed 1, got {spike_factor}")
    if spike_start_request < 0:
        raise ValueError(
            f"spike_start_request must be >= 0, got {spike_start_request}"
        )
    if spike_len_requests < 1:
        raise ValueError(
            f"spike_len_requests must be >= 1, got {spike_len_requests}"
        )
    gaps = _unit_gaps(n, seed)
    spike_end = spike_start_request + spike_len_requests
    times: List[float] = []
    t = 0.0
    for i in range(n):
        in_spike = spike_start_request <= i < spike_end
        rate = rate_per_sec * (spike_factor if in_spike else 1.0)
        t += gaps[i] * 1e9 / rate
        times.append(t)
    return times


def think_times_ns(
    mean_think_ns: float, n: int, seed: int
) -> List[float]:
    """Exponential think times for closed-loop clients (nanoseconds)."""
    if mean_think_ns < 0.0:
        raise ValueError(f"mean think time must be >= 0, got {mean_think_ns}")
    if mean_think_ns == 0.0:
        return [0.0] * n
    return [float(g * mean_think_ns) for g in _unit_gaps(n, seed + 1)]
