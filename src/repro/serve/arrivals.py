"""Seeded arrival processes for the serving simulator.

Open-loop processes generate absolute arrival timestamps up front, so a
run is a pure function of ``(process, seed)``: Poisson traffic is a
scaled cumulative sum of unit-exponential gaps, and bursty traffic is an
on/off modulated Poisson (high rate inside bursts, low rate between
them).  The unit-exponential gap sequence depends only on ``(seed, n)``,
never on the rate, so sweeping the offered load rescales one fixed gap
sequence -- which makes FIFO waiting times (and hence every latency
percentile) weakly increasing in the rate, the property `ext_serving`'s
monotone throughput-latency curve rests on.

Closed-loop arrivals depend on completions, so they are generated inside
the event loop (see :class:`repro.serve.core.ClosedLoopSource`); this
module only provides the think-time sampler.
"""

from __future__ import annotations

from typing import List

import numpy as np


def _unit_gaps(n: int, seed: int) -> np.ndarray:
    """Unit-mean exponential gaps, a function of (seed, n) only."""
    if n < 1:
        raise ValueError(f"need at least one arrival, got {n}")
    rng = np.random.default_rng(seed + 0x5E21)
    return rng.exponential(1.0, size=n)


def poisson_arrivals(rate_per_sec: float, n: int, seed: int) -> List[float]:
    """``n`` Poisson arrival times (nanoseconds), rate ``rate_per_sec``.

    The same seed at a higher rate yields the same gap sequence scaled
    down, so every arrival moves earlier -- loads are comparable across a
    rate sweep instead of being resampled.
    """
    if rate_per_sec <= 0.0:
        raise ValueError(f"rate must be positive, got {rate_per_sec}")
    mean_gap_ns = 1e9 / rate_per_sec
    times = np.cumsum(_unit_gaps(n, seed)) * mean_gap_ns
    return [float(t) for t in times]


def bursty_arrivals(
    rate_per_sec: float,
    n: int,
    seed: int,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.2,
    period_requests: int = 50,
) -> List[float]:
    """On/off modulated Poisson arrivals (nanoseconds) with mean ``rate``.

    Time alternates between bursts (rate ``burst_factor`` times the
    on/off-balanced base rate, ``burst_fraction`` of each period's
    requests... measured in requests: the first
    ``burst_fraction * period_requests`` arrivals of every period are
    generated at the burst rate, the rest at the complementary low rate)
    so that the long-run average rate stays ``rate_per_sec``.  The same
    fixed unit-gap sequence is reused across rates, as for
    :func:`poisson_arrivals`.
    """
    if rate_per_sec <= 0.0:
        raise ValueError(f"rate must be positive, got {rate_per_sec}")
    if burst_factor <= 1.0:
        raise ValueError(f"burst_factor must exceed 1, got {burst_factor}")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError(
            f"burst_fraction must be in (0, 1), got {burst_fraction}"
        )
    # Low rate chosen so the request-weighted harmonic mean of the two
    # rates equals the requested mean rate.
    hi = burst_factor * rate_per_sec
    lo_share = 1.0 - burst_fraction / burst_factor
    lo = (1.0 - burst_fraction) / lo_share * rate_per_sec
    gaps = _unit_gaps(n, seed)
    burst_len = max(1, int(round(burst_fraction * period_requests)))
    times: List[float] = []
    t = 0.0
    for i in range(n):
        in_burst = (i % period_requests) < burst_len
        rate = hi if in_burst else lo
        t += gaps[i] * 1e9 / rate
        times.append(t)
    return times


def think_times_ns(
    mean_think_ns: float, n: int, seed: int
) -> List[float]:
    """Exponential think times for closed-loop clients (nanoseconds)."""
    if mean_think_ns < 0.0:
        raise ValueError(f"mean think time must be >= 0, got {mean_think_ns}")
    if mean_think_ns == 0.0:
        return [0.0] * n
    return [float(g * mean_think_ns) for g in _unit_gaps(n, seed + 1)]
