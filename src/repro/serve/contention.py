"""Memory-contention model shared by Figure 16 and the serving simulator.

This is the machine model that used to live in ``repro.bench.multithread``
(which now re-exports it unchanged): cores scale linearly, hyperthreads
contribute a fraction each, and concurrent lookups contend for DRAM
bandwidth.  Each lookup moves ``llc_misses`` cache lines through memory;
under load the effective memory latency inflates linearly with consumed
bandwidth, giving the self-consistent throughput equation
``thr = eff(T) / (lat + m^2 * D * line / BW * thr)`` -- a quadratic with
one positive root.  High-miss structures (RobinHash) self-throttle,
low-miss ones (FAST, PGM) scale nearly linearly.

Two views of the same quadratic:

* :func:`throughput` -- the closed-loop steady state at ``T`` saturated
  threads (Figure 16's axis: lookups/second).
* :func:`service_time_ns` -- the per-request view the discrete-event
  simulator needs: the expected service time of one lookup while ``k``
  cores are busy.  Substituting ``thr = k / s`` into the throughput
  equation yields ``s^2 - lat*s - b*k = 0``, so at full occupancy the
  simulator's service times reproduce Figure 16's steady state exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.memsim.cache import LINE_SIZE
from repro.memsim.costmodel import XEON_GOLD_6230, CostModel


@dataclass(frozen=True)
class MachineModel:
    """Core/memory parameters of the modelled machine."""

    cores: int = 20
    threads: int = 40
    ht_gain: float = 0.6
    dram_bandwidth_bytes: float = 8.0e10  # ~80 GB/s, 6-channel DDR4-2933

    def effective_parallelism(self, n_threads: int) -> float:
        if n_threads <= self.cores:
            return float(n_threads)
        extra = min(n_threads, self.threads) - self.cores
        return self.cores + extra * self.ht_gain


@dataclass
class ThroughputPoint:
    index: str
    threads: int
    fence: bool
    lookups_per_sec: float
    cache_misses_per_sec: float
    speedup: float


def bandwidth_coefficient(
    counters,
    machine: MachineModel = MachineModel(),
    cost_model: CostModel = XEON_GOLD_6230,
) -> float:
    """The quadratic's ``b`` term (seconds^2): per-lookup bandwidth drag.

    ``b * thr`` is the extra seconds each lookup spends waiting for DRAM
    when the machine sustains ``thr`` lookups/second.
    """
    m = max(counters.llc_misses, 0.0)
    return (m * m) * (cost_model.dram_ns * 1e-9) * LINE_SIZE / (
        machine.dram_bandwidth_bytes
    )


def throughput(
    measurement,
    n_threads: int,
    fence: bool = False,
    machine: MachineModel = MachineModel(),
    cost_model: CostModel = XEON_GOLD_6230,
) -> ThroughputPoint:
    """Modelled lookups/second at ``n_threads`` concurrent threads."""
    c = measurement.counters
    lat_s = cost_model.latency_ns(c, fence=fence) * 1e-9
    eff = machine.effective_parallelism(n_threads)
    m = max(c.llc_misses, 0.0)
    # Quadratic: b*thr^2 + lat*thr - eff = 0.
    b = bandwidth_coefficient(c, machine, cost_model)
    if b <= 0.0:
        thr = eff / lat_s
    else:
        thr = (-lat_s + math.sqrt(lat_s * lat_s + 4.0 * b * eff)) / (2.0 * b)
    single = 1.0 / lat_s
    return ThroughputPoint(
        index=measurement.index,
        threads=n_threads,
        fence=fence,
        lookups_per_sec=thr,
        cache_misses_per_sec=thr * m,
        speedup=thr / single,
    )


def thread_sweep(
    measurement,
    thread_counts: Sequence[int],
    fence: bool = False,
    machine: MachineModel = MachineModel(),
    cost_model: CostModel = XEON_GOLD_6230,
) -> List[ThroughputPoint]:
    return [
        throughput(measurement, t, fence, machine, cost_model)
        for t in thread_counts
    ]


def service_time_ns(
    counters,
    busy_cores: int,
    fence: bool = False,
    machine: MachineModel = MachineModel(),
    cost_model: CostModel = XEON_GOLD_6230,
) -> float:
    """Contention-inflated service time of one lookup, in nanoseconds.

    ``busy_cores`` counts the cores concurrently executing lookups
    (including the one being served).  Solving ``s^2 - lat*s - b*k = 0``
    for its positive root gives the per-request service time whose
    steady state matches :func:`throughput` at ``k`` saturated cores.
    """
    if busy_cores < 1:
        raise ValueError(f"busy_cores must be >= 1, got {busy_cores}")
    lat_s = cost_model.latency_ns(counters, fence=fence) * 1e-9
    b = bandwidth_coefficient(counters, machine, cost_model)
    if b <= 0.0:
        return lat_s * 1e9
    s = (lat_s + math.sqrt(lat_s * lat_s + 4.0 * b * busy_cores)) / 2.0
    return s * 1e9


def saturation_throughput(
    measurement,
    machine: MachineModel = MachineModel(),
    fence: bool = False,
    cost_model: CostModel = XEON_GOLD_6230,
) -> float:
    """Lookups/second with every physical core saturated (no HT)."""
    return throughput(
        measurement, machine.cores, fence=fence, machine=machine,
        cost_model=cost_model,
    ).lookups_per_sec
