"""Fast serving engine: exact vectorized queueing kernels.

The discrete-event loop in :mod:`repro.serve.core` is the semantic
reference, but it pays per-event Python prices: two heap operations and
a handful of closures per request.  This module is a second *engine*
behind the same simulator entry points, selected the way memsim engines
are (:data:`SERVE_ENGINE_NAMES`, ``--serve-engine``,
``$REPRO_SERVE_ENGINE``), and held to the same bar as PRs 3/5/6:
**byte-identical results** -- every float in every
:class:`~repro.serve.core.ServingResult` /
:class:`~repro.serve.cluster.ClusterResult` record equals the event
loop's output exactly, which is why the engine choice is deliberately
*excluded* from every cache key (a cached record is valid under either
engine).

Two layers:

* :func:`lindley_open_loop` -- a numpy Lindley-recursion kernel for the
  single-queue, no-steal open-loop path.  With one core the busy-core
  count is always 1, so the contention model collapses to one constant
  service time ``s`` and the waiting-time recursion
  ``start_i = max(arrival_i, finish_{i-1})`` is exact.  Finish times
  are chained additions of ``s`` inside each busy period, reproduced
  bit-for-bit with ``np.cumsum`` (``add.accumulate`` is sequential, so
  it performs the *same* float additions as the loop).  Busy-period
  boundaries are *guessed* with a vectorized running max, then
  *validated* exactly against the recursion; any mismatch falls back to
  a sequential sweep from the first divergent index -- the kernel never
  approximates.  Configurations the kernel cannot reproduce exactly
  (``n_cores > 1``, where work stealing and the busy-count coupling of
  ``service_time_ns`` make state order-dependent, or unsorted/non-finite
  arrivals) are detected per-config and refused (:func:`kernel_applies`),
  falling back to the event loop.
* :class:`SealedEventQueue` -- a drop-in
  :class:`~repro.serve.core.EventHeap` for every remaining path (multi-
  core open loop, closed loop, the cluster and tenancy simulators).
  Events pushed before the first pop (the bulk: pre-generated arrivals
  and the merged fault timeline) are batch-sorted *once* instead of
  heap-pushed one by one; later pushes go to a small side heap.  Pops
  merge the two streams in ``(time, kind, seq)`` order, so the total
  order -- and therefore every simulation result -- is identical to one
  big heap by construction.
"""

from __future__ import annotations

import heapq
import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serve import telemetry as tel_mod
from repro.serve.core import Request, ServiceModel, ServingResult
from repro.serve.telemetry import TelemetryConfig, TimeSeries

#: Selectable serving engines: the reference discrete-event loop and
#: this module's vectorized/batched engine.  Results are byte-identical,
#: so the choice only changes wall-clock speed.
SERVE_ENGINE_NAMES = ("event", "fast")

_ENV_VAR = "REPRO_SERVE_ENGINE"


def default_serve_engine_name() -> str:
    """Engine named by ``$REPRO_SERVE_ENGINE``, else ``"event"``.

    Engine selection is ambient by design: simulation cache keys do
    *not* include the engine (results are byte-identical), and pool
    workers inherit the choice through the environment.
    """
    name = os.environ.get(_ENV_VAR)
    if not name:
        return "event"
    if name not in SERVE_ENGINE_NAMES:
        raise ValueError(
            f"unknown serving engine {name!r} in ${_ENV_VAR}; "
            f"known: {', '.join(SERVE_ENGINE_NAMES)}"
        )
    return name


def resolve_serve_engine(engine: Optional[str] = None) -> str:
    """Explicit engine name, or the ambient default when ``None``."""
    if engine is None:
        return default_serve_engine_name()
    if engine not in SERVE_ENGINE_NAMES:
        raise ValueError(
            f"unknown serving engine {engine!r}; "
            f"known: {', '.join(SERVE_ENGINE_NAMES)}"
        )
    return engine


class SealedEventQueue:
    """Drop-in :class:`~repro.serve.core.EventHeap` with one batch sort.

    Pushes before the first pop accumulate in a plain list and are
    sorted once ("sealed"); pushes after that go to a conventional side
    heap.  Sequence numbers are assigned at push time exactly as the
    heap does, so entries are totally ordered by ``(time, kind, seq)``
    and payloads are never compared.  Popping the minimum of the two
    streams yields the same event order as a single heap, hence
    byte-identical simulations.

    Reconfiguration triggers (:mod:`repro.serve.reconfig`) need no
    special casing: the declarative schedule rides the static batch
    alongside arrivals and faults, and runtime-emitted follow-ups (a
    rebuild's completion, like retries and hedges) land on the side
    heap -- the total order, and therefore the bytes, match the event
    engine either way.
    """

    __slots__ = ("_static", "_cursor", "_heap", "_seq", "_sealed")

    def __init__(self) -> None:
        self._static: list = []
        self._cursor = 0
        self._heap: list = []
        self._seq = 0
        self._sealed = False

    def push(self, time_ns: float, kind: int, payload) -> None:
        entry = (time_ns, kind, self._seq, payload)
        self._seq += 1
        if self._sealed:
            heapq.heappush(self._heap, entry)
        else:
            self._static.append(entry)

    def pop(self):
        if not self._sealed:
            # Unique seqs make (time, kind, seq) a total order, so the
            # sort never reaches the payload element.
            self._static.sort()
            self._sealed = True
        cursor = self._cursor
        if cursor < len(self._static):
            entry = self._static[cursor]
            if not self._heap or entry <= self._heap[0]:
                self._cursor = cursor + 1
                return entry
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return (len(self._static) - self._cursor) + len(self._heap)

    def __bool__(self) -> bool:
        return self._cursor < len(self._static) or bool(self._heap)


class _KernelServingResult(ServingResult):
    """Kernel output with lazily materialized :class:`Request` objects.

    The Lindley kernel produces arrival/start/finish arrays; building
    20k dataclass instances out of them would dominate its runtime, and
    most consumers (``summarize_result``, the selector sweeps) only read
    ``latencies_ns``.  So the arrays are kept and ``requests`` is a
    property that materializes the exact event-loop objects on first
    access.  Every observable value -- fields, latencies
    (``finish - arrival`` is the same IEEE subtraction either way),
    equality against a plain :class:`ServingResult` -- is byte-identical.
    """

    def __init__(
        self,
        arrivals: np.ndarray,
        start: np.ndarray,
        finish: np.ndarray,
        max_queue_depth: int,
    ):
        # Deliberately skips the dataclass __init__: ``requests`` is a
        # class-level property here and must not be assigned.
        self._arrivals = arrivals
        self._start = start
        self._finish = finish
        self._requests: Optional[List[Request]] = None
        self.n_cores = 1
        self.makespan_ns = float(finish[-1])
        self.total_steals = 0
        self.max_queue_depth = max_queue_depth
        self.telemetry: Optional[TimeSeries] = None
        self.traces: Optional[tuple] = None

    @property
    def requests(self) -> List[Request]:
        if self._requests is None:
            a_list = self._arrivals.tolist()
            st_list = self._start.tolist()
            f_list = self._finish.tolist()
            self._requests = [
                Request(rid, a, 0, st, f, 0)
                for rid, (a, st, f) in enumerate(
                    zip(a_list, st_list, f_list)
                )
            ]
        return self._requests

    @property
    def latencies_ns(self) -> List[float]:
        return (self._finish - self._arrivals).tolist()

    @property
    def throughput_per_sec(self) -> float:
        if self.makespan_ns <= 0.0:
            return 0.0
        return self._arrivals.shape[0] / (self.makespan_ns * 1e-9)

    def _field_tuple(self):
        return (
            self.requests,
            self.n_cores,
            self.makespan_ns,
            self.total_steals,
            self.max_queue_depth,
            self.telemetry,
            self.traces,
        )

    def __eq__(self, other):
        if isinstance(other, ServingResult):
            return self._field_tuple() == (
                other.requests,
                other.n_cores,
                other.makespan_ns,
                other.total_steals,
                other.max_queue_depth,
                other.telemetry,
                other.traces,
            )
        return NotImplemented


def kernel_applies(
    service: ServiceModel, arrivals_ns: Sequence[float], n_cores: int
) -> bool:
    """True iff :func:`lindley_open_loop` reproduces the event loop
    exactly for this configuration.

    The predicate is conservative by construction: with several cores,
    work stealing and the busy-count argument of
    :meth:`~repro.serve.core.ServiceModel.service_ns` make service times
    depend on interleaving order, which no closed-form recursion can
    reproduce -- so anything but a single-core, sorted, finite arrival
    stream with a positive service time is refused and handled by the
    event loop instead.
    """
    if n_cores != 1:
        return False
    a = np.asarray(arrivals_ns, dtype=np.float64)
    if a.size and (not np.all(np.isfinite(a)) or np.any(a[1:] < a[:-1])):
        return False
    s = service.service_ns(1)
    return bool(np.isfinite(s)) and s > 0.0


def lindley_open_loop(
    service: ServiceModel,
    arrivals_ns: Sequence[float],
    n_cores: int,
    telemetry: Optional[TelemetryConfig] = None,
) -> Optional[ServingResult]:
    """Vectorized single-queue open loop; ``None`` when it doesn't apply.

    Byte-identical to ``simulate_open_loop(..., engine="event")`` on
    every configuration it accepts (pinned by the hypothesis suite in
    ``tests/test_fastsim.py``), telemetry included: the kernel has no
    per-event code, so :func:`repro.serve.telemetry.open_loop_series`
    recomputes the collector's windowed aggregates from the arrays with
    the same binning arithmetic and percentile code.
    """
    if not kernel_applies(service, arrivals_ns, n_cores):
        return None
    n = len(arrivals_ns)
    if n == 0:
        empty = np.empty(0, dtype=np.float64)
        return ServingResult(
            requests=[],
            n_cores=n_cores,
            makespan_ns=0.0,
            total_steals=0,
            max_queue_depth=0,
            telemetry=(
                tel_mod.open_loop_series(telemetry, empty, empty, empty, empty)
                if telemetry is not None
                else None
            ),
            traces=() if telemetry is not None and telemetry.traces else None,
        )
    arr = np.asarray(arrivals_ns, dtype=np.float64)
    s = service.service_ns(1)
    finish, starts = _exact_finish_times(arr, s)
    # start_i = max(A_i, F_{i-1}) without arithmetic: a busy-period
    # start begins service at its arrival, everything else at the
    # previous finish (equal-time ties dispatch the arrival first and
    # start it at now == F_{i-1} == A_i, which np.where matches).
    prev_finish = np.empty(n, dtype=np.float64)
    prev_finish[0] = 0.0
    prev_finish[1:] = finish[:-1]
    start = np.where(starts, arr, prev_finish)
    # Queue depth at request i's dispatch instant: everything not yet
    # finished, where a finish at exactly A_i still counts (the arrival
    # pops first).  finish is strictly increasing (s > 0), so the count
    # of earlier finishes is a searchsorted.
    depth = np.arange(1, n + 1) - np.searchsorted(finish, arr, side="left")
    result = _KernelServingResult(
        arrivals=arr,
        start=start,
        finish=finish,
        max_queue_depth=int(depth.max()),
    )
    if telemetry is not None:
        result.telemetry = tel_mod.open_loop_series(
            telemetry, arr, start, finish, depth
        )
        if telemetry.traces:
            result.traces = tel_mod.open_loop_traces(arr, start, finish)
    return result


def _exact_finish_times(
    arr: np.ndarray, s: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Finish times + busy-period-start mask, bit-identical to the loop.

    Boundaries are guessed with the float running max of
    ``A_i - i*s`` (cheap, but its rounding can differ from the loop's
    chained additions near exact ties), then validated against the
    recursion ``starts_i == (A_i > F_{i-1})`` using the *exact* finish
    times implied by the guess.  Consistency proves correctness by
    induction; the first inconsistent index falls back to a sequential
    sweep, so the result is always exact, never approximated.
    """
    n = arr.shape[0]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    if n > 1:
        drift = arr - np.arange(n, dtype=np.float64) * s
        running = np.maximum.accumulate(drift)
        starts[1:] = drift[1:] > running[:-1]
    finish = _finish_from_starts(arr, s, starts)
    if n > 1:
        expected = arr[1:] > finish[:-1]
        mismatch = np.flatnonzero(expected != starts[1:])
        if mismatch.size:
            _sequential_repair(arr, s, starts, finish, int(mismatch[0]) + 1)
    return finish, starts


def _finish_from_starts(
    arr: np.ndarray, s: float, starts: np.ndarray
) -> np.ndarray:
    """Chained-addition finish times for a given busy-period partition.

    Within a period of length L starting at j the loop computes
    ``A_j + s``, then L-1 further ``+ s`` additions.  ``np.cumsum``
    (``add.accumulate``) applies the same additions sequentially, so
    grouping all periods of equal length into one 2-D cumsum reproduces
    every float bit-for-bit while staying vectorized.
    """
    n = arr.shape[0]
    starts_idx = np.flatnonzero(starts)
    lengths = np.diff(np.append(starts_idx, n))
    finish = np.empty(n, dtype=np.float64)
    singles = starts_idx[lengths == 1]
    if singles.size:
        finish[singles] = arr[singles] + s
    for length in np.unique(lengths[lengths >= 2]):
        length = int(length)
        heads = starts_idx[lengths == length]
        steps = np.full((heads.shape[0], length), s, dtype=np.float64)
        steps[:, 0] = arr[heads] + s
        finish[heads[:, None] + np.arange(length)] = np.cumsum(steps, axis=1)
    return finish


def _sequential_repair(
    arr: np.ndarray,
    s: float,
    starts: np.ndarray,
    finish: np.ndarray,
    first_bad: int,
) -> None:
    """Exact scalar recursion from the first index the guess got wrong.

    Everything before ``first_bad`` is already exact (validation walks
    from the front), so resume the event loop's own arithmetic there.
    """
    f_prev = float(finish[first_bad - 1])
    a_list = arr.tolist()
    for i in range(first_bad, len(a_list)):
        a = a_list[i]
        if a > f_prev:
            starts[i] = True
            f_prev = a + s
        else:
            starts[i] = False
            f_prev = f_prev + s
        finish[i] = f_prev
