"""Declarative scenario specs: arrivals x topology x faults x tenants x policy.

Every serving experiment so far wired its scenario together in Python
(``ext_serving``/``ext_cluster`` build arrival lists, ``Cluster`` objects
and ``FaultConfig``s by hand).  This module turns a scenario into *data*:
a :class:`ScenarioSpec` is a frozen dataclass tree -- topology, router
policy, fault process, admission policy, and a list of tenants, each
with its own seeded arrival process and key space -- that round-trips
losslessly through JSON and hashes to a stable content key.  New
scenarios become spec values instead of new experiment modules, and a
serialized spec is a complete, reproducible description of a run (the
simulators are deterministic, so spec + measurements => identical
results, bit for bit).  Content keys are serving-engine-invariant by
the same argument: both engines (``event`` and ``fast``, see
:mod:`repro.serve.fastsim`) produce byte-identical results, so neither
the spec key nor :func:`repro.bench.cache.scenario_key` (nor the
simulation-result keys of :mod:`repro.serve.sweep`) mentions the
engine.

Layering: this module only *describes* scenarios; :mod:`repro.serve.tenancy`
executes them, and :mod:`repro.serve.trace` records/reloads the merged
arrival timeline.  Specs deliberately reuse the existing pure pieces --
:class:`~repro.serve.router.RouterPolicy`, :class:`~repro.serve.faults.FaultConfig`,
the :mod:`repro.serve.arrivals` generators, the Zipf hotspot sampler
behind ``ext_skew`` -- so a degenerate single-tenant spec reproduces
today's :func:`~repro.serve.cluster.simulate_cluster` runs byte-identically
(``tests/test_tenancy_differential.py`` pins this).

SLO classes order tenants by how much the router protects them:
**gold** (never shed by default), **silver**, **bronze** (first to go
under pressure).  The admission thresholds live in
:class:`AdmissionSpec`; the pure shedding rule that applies them is
:func:`repro.serve.tenancy.should_shed`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serve.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
)
from repro.serve.faults import FaultConfig
from repro.serve.reconfig import ReconfigSpec
from repro.serve.router import RouterPolicy

#: Bump when spec semantics change meaning (new fields with changed
#: defaults, different sampling streams); content keys then differ.
SCENARIO_SCHEMA_VERSION = 1

GOLD = "gold"
SILVER = "silver"
BRONZE = "bronze"
#: Protection order, most protected first.
SLO_CLASSES = (GOLD, SILVER, BRONZE)

#: Arrival shapes a spec may name, with their admissible knobs.
ARRIVAL_SHAPES: Dict[str, Tuple[str, ...]] = {
    "poisson": (),
    "bursty": ("burst_factor", "burst_fraction", "period_requests"),
    "diurnal": ("peak_to_trough", "period_requests"),
    "flash": ("spike_factor", "spike_start_request", "spike_len_requests"),
}

#: Arrival knobs that are request counts/indices, coerced back to int
#: after a JSON round trip (JSON numbers do not distinguish 100 / 100.0).
_INT_PARAMS = frozenset(
    ["period_requests", "spike_start_request", "spike_len_requests"]
)


# The canonical encoding is shared with the telemetry layer so scenario
# specs and TimeSeries artifacts hash the same way (telemetry.py is the
# one serve module with no serve imports, hence it hosts the helpers).
from repro.serve.telemetry import (  # noqa: E402
    canonical_json as _canonical_json,
    content_hash as _content_hash,
)


@dataclass(frozen=True)
class ArrivalSpec:
    """One tenant's seeded open-loop arrival process, as data.

    ``params`` holds the shape-specific knobs as sorted ``(name, value)``
    pairs (hashable, JSON-able); unknown knobs for the shape are
    rejected.  :meth:`generate` dispatches to the matching
    :mod:`repro.serve.arrivals` generator, so every documented property
    of those (seed determinism, horizon purity, rate scaling over one
    fixed gap sequence) carries over to specs verbatim.
    """

    rate_per_sec: float
    n_requests: int
    seed: int = 0
    shape: str = "poisson"
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self):
        if self.shape not in ARRIVAL_SHAPES:
            raise ValueError(
                f"unknown arrival shape {self.shape!r}; "
                f"known: {', '.join(sorted(ARRIVAL_SHAPES))}"
            )
        if self.rate_per_sec <= 0.0:
            raise ValueError(
                f"rate must be positive, got {self.rate_per_sec}"
            )
        if self.n_requests < 1:
            raise ValueError(
                f"need at least one request, got {self.n_requests}"
            )
        allowed = ARRIVAL_SHAPES[self.shape]
        frozen = tuple(sorted((str(k), v) for k, v in self.params))
        for name, _ in frozen:
            if name not in allowed:
                raise ValueError(
                    f"unknown param {name!r} for shape {self.shape!r}; "
                    f"allowed: {allowed}"
                )
        object.__setattr__(self, "params", frozen)

    def param_dict(self) -> dict:
        return {
            k: int(v) if k in _INT_PARAMS else v for k, v in self.params
        }

    def generate(self) -> List[float]:
        """Absolute arrival timestamps (ns), a pure function of the spec."""
        kwargs = self.param_dict()
        if self.shape == "poisson":
            return poisson_arrivals(self.rate_per_sec, self.n_requests, self.seed)
        if self.shape == "bursty":
            return bursty_arrivals(
                self.rate_per_sec, self.n_requests, self.seed, **kwargs
            )
        if self.shape == "diurnal":
            return diurnal_arrivals(
                self.rate_per_sec, self.n_requests, self.seed, **kwargs
            )
        return flash_crowd_arrivals(
            self.rate_per_sec, self.n_requests, self.seed, **kwargs
        )

    def to_dict(self) -> dict:
        return {
            "rate_per_sec": self.rate_per_sec,
            "n_requests": self.n_requests,
            "seed": self.seed,
            "shape": self.shape,
            "params": self.param_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ArrivalSpec":
        return cls(
            rate_per_sec=float(d["rate_per_sec"]),
            n_requests=int(d["n_requests"]),
            seed=int(d.get("seed", 0)),
            shape=str(d.get("shape", "poisson")),
            params=tuple(sorted(dict(d.get("params", {})).items())),
        )


@dataclass(frozen=True)
class KeySpaceSpec:
    """Which keys a tenant looks up: a sub-range of the served sorted
    array, optionally with a Zipfian hotspot.

    ``lo_frac``/``hi_frac`` bound the tenant's slice of the key array
    (fractions of its length, so the spec is dataset-size-free).
    ``hot_theta`` switches uniform sampling within the slice to the
    YCSB-style Zipf sampler behind ``ext_skew`` (hot keys spread over
    the slice by a seeded permutation).  The degenerate full-range
    uniform spec samples *exactly* like
    :func:`repro.serve.router.request_keys` -- same stream constants,
    same draws -- which the differential tests rely on.
    """

    lo_frac: float = 0.0
    hi_frac: float = 1.0
    hot_theta: Optional[float] = None
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.lo_frac < self.hi_frac <= 1.0:
            raise ValueError(
                "need 0 <= lo_frac < hi_frac <= 1, got "
                f"[{self.lo_frac}, {self.hi_frac})"
            )
        if self.hot_theta is not None and not 0.0 < self.hot_theta < 10.0:
            raise ValueError(
                f"hot_theta must be in (0, 10), got {self.hot_theta}"
            )

    def bounds(self, n_keys: int) -> Tuple[int, int]:
        """Index range [lo, hi) of this tenant's slice; never empty."""
        if n_keys < 1:
            raise ValueError(f"need at least one key, got {n_keys}")
        lo = min(int(self.lo_frac * n_keys), n_keys - 1)
        hi = max(min(int(round(self.hi_frac * n_keys)), n_keys), lo + 1)
        return lo, hi

    def sample(self, keys, n_requests: int) -> List[int]:
        """``n_requests`` seeded lookup keys from this key space."""
        if n_requests < 1:
            raise ValueError(
                f"need at least one request, got {n_requests}"
            )
        lo, hi = self.bounds(len(keys))
        seed64 = self.seed & (2**63 - 1)
        if self.hot_theta is None:
            # Stream-compatible with router.request_keys: at the full
            # range this is the identical call sequence.
            rng = np.random.default_rng((seed64, 0x50A7))
            idx = lo + rng.integers(0, hi - lo, size=n_requests)
        else:
            # ext_skew's hotspot machinery: Zipfian ranks over the
            # slice, rank -> position shuffled so hot keys spread out.
            from repro.datasets.workload import _zipf_ranks

            rng = np.random.default_rng((seed64, 0x50A7, 0x21F))
            ranks = _zipf_ranks(rng, hi - lo, n_requests, self.hot_theta)
            perm = rng.permutation(hi - lo)
            idx = lo + perm[ranks]
        return [int(keys[i]) for i in idx]

    def to_dict(self) -> dict:
        return {
            "lo_frac": self.lo_frac,
            "hi_frac": self.hi_frac,
            "hot_theta": self.hot_theta,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "KeySpaceSpec":
        return cls(
            lo_frac=float(d.get("lo_frac", 0.0)),
            hi_frac=float(d.get("hi_frac", 1.0)),
            hot_theta=(
                None if d.get("hot_theta") is None else float(d["hot_theta"])
            ),
            seed=int(d.get("seed", 0)),
        )


@dataclass(frozen=True)
class TenantSpec:
    """One workload sharing the cluster: identity, traffic, keys, SLO."""

    name: str
    arrivals: ArrivalSpec
    keyspace: KeySpaceSpec = field(default_factory=KeySpaceSpec)
    slo_class: str = GOLD
    #: Per-tenant p99 target (ns); None = no target, no violation
    #: accounting for this tenant.
    p99_slo_ns: Optional[float] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"unknown SLO class {self.slo_class!r}; "
                f"known: {', '.join(SLO_CLASSES)}"
            )
        if self.p99_slo_ns is not None and self.p99_slo_ns <= 0.0:
            raise ValueError(
                f"p99_slo_ns must be positive, got {self.p99_slo_ns}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "arrivals": self.arrivals.to_dict(),
            "keyspace": self.keyspace.to_dict(),
            "slo_class": self.slo_class,
            "p99_slo_ns": self.p99_slo_ns,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TenantSpec":
        return cls(
            name=str(d["name"]),
            arrivals=ArrivalSpec.from_dict(d["arrivals"]),
            keyspace=KeySpaceSpec.from_dict(d.get("keyspace", {})),
            slo_class=str(d.get("slo_class", GOLD)),
            p99_slo_ns=(
                None if d.get("p99_slo_ns") is None else float(d["p99_slo_ns"])
            ),
        )


@dataclass(frozen=True)
class TopologySpec:
    """Cluster shape: key-range shards x replicas x cores per replica."""

    n_shards: int = 1
    n_replicas: int = 1
    n_cores: int = 2

    def __post_init__(self):
        for name in ("n_shards", "n_replicas", "n_cores"):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )

    def to_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "n_replicas": self.n_replicas,
            "n_cores": self.n_cores,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TopologySpec":
        return cls(
            n_shards=int(d.get("n_shards", 1)),
            n_replicas=int(d.get("n_replicas", 1)),
            n_cores=int(d.get("n_cores", 2)),
        )


@dataclass(frozen=True)
class PolicySpec:
    """Router failure-policy knobs, field-for-field a :class:`RouterPolicy`.

    The defaults are the degenerate policy (no hedging, no batching),
    same as ``RouterPolicy()`` -- so the zero-value spec reproduces the
    zero-value cluster.
    """

    hedge_after_ns: Optional[float] = None
    max_attempts: int = 4
    backoff_base_ns: float = 100_000.0
    backoff_cap_ns: float = 3_200_000.0
    batch_window_ns: float = 0.0

    def __post_init__(self):
        self.to_router_policy()  # reuse RouterPolicy's validation

    def to_router_policy(self) -> RouterPolicy:
        return RouterPolicy(
            hedge_after_ns=self.hedge_after_ns,
            max_attempts=self.max_attempts,
            backoff_base_ns=self.backoff_base_ns,
            backoff_cap_ns=self.backoff_cap_ns,
            batch_window_ns=self.batch_window_ns,
        )

    @classmethod
    def from_router_policy(cls, policy: RouterPolicy) -> "PolicySpec":
        """Re-express an existing router policy (ext_cluster configs)."""
        return cls(
            hedge_after_ns=policy.hedge_after_ns,
            max_attempts=policy.max_attempts,
            backoff_base_ns=policy.backoff_base_ns,
            backoff_cap_ns=policy.backoff_cap_ns,
            batch_window_ns=policy.batch_window_ns,
        )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "PolicySpec":
        out = dict(d)
        if out.get("max_attempts") is not None:
            out["max_attempts"] = int(out["max_attempts"])
        return cls(**out)


@dataclass(frozen=True)
class FaultSpec:
    """Fault-process knobs, field-for-field a :class:`FaultConfig`.

    The all-defaults spec injects nothing and converts to ``None`` (a
    fault-free cluster), matching how :class:`Cluster` treats a missing
    fault config.
    """

    crash_mttf_ns: Optional[float] = None
    crash_mttr_ns: float = 2_000_000.0
    slow_mttf_ns: Optional[float] = None
    slow_mttr_ns: float = 2_000_000.0
    slow_factor: float = 4.0
    seed: int = 0

    def __post_init__(self):
        self._config()  # reuse FaultConfig's validation

    def _config(self) -> FaultConfig:
        return FaultConfig(
            crash_mttf_ns=self.crash_mttf_ns,
            crash_mttr_ns=self.crash_mttr_ns,
            slow_mttf_ns=self.slow_mttf_ns,
            slow_mttr_ns=self.slow_mttr_ns,
            slow_factor=self.slow_factor,
            seed=self.seed,
        )

    @property
    def enabled(self) -> bool:
        return self.crash_mttf_ns is not None or self.slow_mttf_ns is not None

    def to_fault_config(self) -> Optional[FaultConfig]:
        return self._config() if self.enabled else None

    @classmethod
    def from_fault_config(
        cls, config: Optional[FaultConfig]
    ) -> "FaultSpec":
        """Re-express an existing fault config (ext_cluster scenarios)."""
        if config is None:
            return cls()
        return cls(
            crash_mttf_ns=config.crash_mttf_ns,
            crash_mttr_ns=config.crash_mttr_ns,
            slow_mttf_ns=config.slow_mttf_ns,
            slow_mttr_ns=config.slow_mttr_ns,
            slow_factor=config.slow_factor,
            seed=config.seed,
        )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        out = dict(d)
        if out.get("seed") is not None:
            out["seed"] = int(out["seed"])
        return cls(**out)


@dataclass(frozen=True)
class AdmissionSpec:
    """Router-level admission control: per-class queue-depth thresholds.

    A request of class ``c`` is *shed* (rejected at dispatch, never
    queued) when its shard's backlog -- queued plus in-service attempts
    over all replicas, the same quantity the queue-depth gauges track --
    is at or above the class's threshold.  ``None`` means the class is
    never shed; the defaults protect gold absolutely and shed bronze
    well before silver.  The decision itself is the pure function
    :func:`repro.serve.tenancy.should_shed` of (this spec, class,
    backlog), per the determinism rules of :mod:`repro.serve.faults`.
    """

    enabled: bool = False
    gold_depth: Optional[int] = None
    silver_depth: Optional[int] = None
    bronze_depth: Optional[int] = None

    def __post_init__(self):
        for name in ("gold_depth", "silver_depth", "bronze_depth"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    def threshold(self, slo_class: str) -> Optional[int]:
        if slo_class not in SLO_CLASSES:
            raise ValueError(f"unknown SLO class {slo_class!r}")
        return getattr(self, f"{slo_class}_depth")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "AdmissionSpec":
        out = dict(d)
        for name in ("gold_depth", "silver_depth", "bronze_depth"):
            if out.get(name) is not None:
                out[name] = int(out[name])
        return cls(**out)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete multi-tenant serving scenario, as one JSON-able value.

    Composes arrivals x topology x faults x tenants x router policy x
    admission control.  Tenant names must be unique; tenant order is
    significant (it breaks simultaneous-arrival ties in the merged
    timeline, and tenant ids in traces index into it).
    """

    name: str
    tenants: Tuple[TenantSpec, ...]
    topology: TopologySpec = field(default_factory=TopologySpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    admission: AdmissionSpec = field(default_factory=AdmissionSpec)
    #: Fault-schedule horizon override (ns); None = the simulator's
    #: default (last arrival plus 25% drain slack).
    fault_horizon_ns: Optional[float] = None
    #: Live-reconfiguration plan (:mod:`repro.serve.reconfig`); None
    #: keeps the spec's serialized form -- and every derived content
    #: key -- exactly as before the field existed.
    reconfig: Optional[ReconfigSpec] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        tenants = tuple(self.tenants)
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique: {names}")
        if self.fault_horizon_ns is not None and self.fault_horizon_ns <= 0.0:
            raise ValueError(
                f"fault_horizon_ns must be positive, got "
                f"{self.fault_horizon_ns}"
            )
        object.__setattr__(self, "tenants", tenants)

    @property
    def n_requests(self) -> int:
        return sum(t.arrivals.n_requests for t in self.tenants)

    def tenant_index(self, name: str) -> int:
        for i, t in enumerate(self.tenants):
            if t.name == name:
                return i
        raise KeyError(f"no tenant named {name!r}")

    def to_dict(self) -> dict:
        d = {
            "schema": SCENARIO_SCHEMA_VERSION,
            "name": self.name,
            "tenants": [t.to_dict() for t in self.tenants],
            "topology": self.topology.to_dict(),
            "policy": self.policy.to_dict(),
            "faults": self.faults.to_dict(),
            "admission": self.admission.to_dict(),
            "fault_horizon_ns": self.fault_horizon_ns,
        }
        # Only a set plan changes the serialized form (and thereby the
        # content/cache keys); specs without one hash as they always did.
        if self.reconfig is not None:
            d["reconfig"] = self.reconfig.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        schema = int(d.get("schema", SCENARIO_SCHEMA_VERSION))
        if schema != SCENARIO_SCHEMA_VERSION:
            raise ValueError(
                f"scenario schema {schema} != {SCENARIO_SCHEMA_VERSION}"
            )
        return cls(
            name=str(d["name"]),
            tenants=tuple(
                TenantSpec.from_dict(t) for t in d["tenants"]
            ),
            topology=TopologySpec.from_dict(d.get("topology", {})),
            policy=PolicySpec.from_dict(d.get("policy", {})),
            faults=FaultSpec.from_dict(d.get("faults", {})),
            admission=AdmissionSpec.from_dict(d.get("admission", {})),
            fault_horizon_ns=(
                None
                if d.get("fault_horizon_ns") is None
                else float(d["fault_horizon_ns"])
            ),
            reconfig=(
                None
                if d.get("reconfig") is None
                else ReconfigSpec.from_dict(d["reconfig"])
            ),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        if indent is None:
            return _canonical_json(self.to_dict())
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def content_key(self) -> str:
        """Stable content hash; canonical JSON, so key order and float
        formatting never perturb it (floats round-trip exactly)."""
        return _content_hash(self.to_dict())

    def with_admission(self, admission: AdmissionSpec) -> "ScenarioSpec":
        """The same scenario under a different admission policy."""
        return replace(self, admission=admission)

    def with_reconfig(
        self, reconfig: Optional[ReconfigSpec]
    ) -> "ScenarioSpec":
        """The same scenario under a different reconfiguration plan."""
        return replace(self, reconfig=reconfig)


def single_tenant_spec(
    rate_per_sec: float,
    n_requests: int,
    seed: int = 0,
    name: str = "single",
    tenant: str = "t0",
    topology: TopologySpec = TopologySpec(),
    policy: PolicySpec = PolicySpec(),
    faults: FaultSpec = FaultSpec(),
    fault_horizon_ns: Optional[float] = None,
) -> ScenarioSpec:
    """The degenerate spec: one gold tenant, Poisson arrivals over the
    full key space, admission control off.

    This re-expresses today's ``ext_serving``/``ext_cluster`` runs as
    data: replayed through the tenancy layer it pushes *exactly* the
    arrival timestamps of ``poisson_arrivals(rate, n, seed)`` and the
    lookup keys of ``request_keys(keys, n, seed)``, so the result is
    byte-identical to the equivalent direct
    :func:`~repro.serve.cluster.simulate_cluster` call.
    """
    return ScenarioSpec(
        name=name,
        tenants=(
            TenantSpec(
                name=tenant,
                arrivals=ArrivalSpec(
                    rate_per_sec=rate_per_sec,
                    n_requests=n_requests,
                    seed=seed,
                ),
                keyspace=KeySpaceSpec(seed=seed),
            ),
        ),
        topology=topology,
        policy=policy,
        faults=faults,
        admission=AdmissionSpec(),
        fault_horizon_ns=fault_horizon_ns,
    )
