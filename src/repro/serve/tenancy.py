"""Multi-tenant scenario execution: admission control, shedding, SLOs.

This is the layer that *runs* a :class:`~repro.serve.scenario.ScenarioSpec`:
it materializes the spec into a :class:`~repro.serve.trace.TenantTrace`,
replays the trace through the PR 5 cluster simulator, and splits the
results back out per tenant.  The simulator itself is reused unchanged
-- :class:`_TenantSim` subclasses :class:`~repro.serve.cluster._ClusterSim`
and overrides exactly two points: the record factory (to stamp tenant
identity on each request) and the arrival handler (to apply admission
control before dispatch).  With admission off both overrides are
behaviour-preserving, which is why the degenerate single-tenant replay
is byte-identical to a direct :func:`~repro.serve.cluster.simulate_cluster`
call (``tests/test_tenancy_differential.py``).

**Admission control and load shedding.**  Following the
:mod:`repro.serve.faults` determinism doctrine, the shedding decision is
the pure function :func:`should_shed` of (admission spec, SLO class,
shard backlog): a request is rejected at its arrival instant when its
shard's backlog -- queued plus in-service attempts summed over all
replicas, the same quantity the queue-depth stats track -- has reached
its class's threshold.  A shed request never enters a queue, is never
retried, and counts as neither completed nor failed; it is the router
deliberately trading bronze goodput for gold tail latency, and the
per-tenant ``shed`` counters make the trade visible.  Thresholds are
per class (gold/silver/bronze), so under a flash crowd bronze sheds
first, silver next, and gold -- unbounded by default -- keeps its p99
(``ext_tenants`` measures exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.serve.cluster import (
    Cluster,
    ClusterRequest,
    ClusterResult,
    _ClusterSim,
)
from repro.serve.metrics import LatencySummary, summarize
from repro.serve.router import ShardMap
from repro.serve.scenario import (
    BRONZE,
    GOLD,
    SILVER,
    SLO_CLASSES,
    AdmissionSpec,
    ScenarioSpec,
)
from repro.serve.telemetry import TelemetryConfig
from repro.serve.trace import TenantTrace

__all__ = [
    "GOLD",
    "SILVER",
    "BRONZE",
    "SLO_CLASSES",
    "TenantRequest",
    "TenantStats",
    "TenancyResult",
    "should_shed",
    "simulate_scenario",
    "replay_trace",
]


def should_shed(
    admission: AdmissionSpec, slo_class: str, shard_backlog: int
) -> bool:
    """Pure shedding rule: reject iff the class's threshold is reached.

    A pure function of (config, queue state) -- no randomness, no clock,
    no history -- per the :mod:`repro.serve.faults` determinism rules;
    replaying the same trace therefore sheds the same requests.
    """
    if not admission.enabled:
        return False
    threshold = admission.threshold(slo_class)
    return threshold is not None and shard_backlog >= threshold


@dataclass
class TenantRequest(ClusterRequest):
    """A cluster request stamped with its tenant, plus the shed flag."""

    #: Index into the scenario's tenant tuple.
    tenant: int = -1
    #: True iff admission control rejected this request at arrival.
    shed: bool = False


@dataclass
class TenantStats:
    """One tenant's view of a scenario run."""

    tenant: int
    name: str
    slo_class: str
    p99_slo_ns: Optional[float] = None
    requests: int = 0
    completed: int = 0
    #: Requests that exhausted their retry budget (cluster failures).
    failed: int = 0
    #: Requests rejected by admission control (never dispatched).
    shed: int = 0
    retries: int = 0
    hedges: int = 0
    latencies_ns: List[float] = field(default_factory=list)
    #: Run makespan (shared across tenants; per-tenant throughput is
    #: completions over the whole run's wall clock).
    makespan_ns: float = 0.0

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def goodput(self) -> float:
        """Fraction of offered requests that completed."""
        return self.completed / self.requests if self.requests else 1.0

    def summary(self) -> Optional[LatencySummary]:
        """Latency percentiles over this tenant's completed requests
        (None when nothing completed -- a fully shed tenant)."""
        if not self.latencies_ns:
            return None
        throughput = (
            self.completed / (self.makespan_ns * 1e-9)
            if self.makespan_ns > 0.0
            else 0.0
        )
        return summarize(self.latencies_ns, throughput)

    @property
    def requests_over_slo(self) -> int:
        """Completed requests whose latency exceeded the p99 target."""
        if self.p99_slo_ns is None:
            return 0
        return sum(1 for l in self.latencies_ns if l > self.p99_slo_ns)

    def slo_met(self) -> Optional[bool]:
        """Whether this tenant's p99 met its target (None: no target or
        no completions to measure)."""
        if self.p99_slo_ns is None:
            return None
        s = self.summary()
        return None if s is None else s.meets(self.p99_slo_ns)


@dataclass
class TenancyResult:
    """Everything one scenario run produced: the underlying cluster
    result plus the per-tenant split and the replayed trace."""

    spec: ScenarioSpec
    trace: TenantTrace
    cluster: ClusterResult
    tenants: List[TenantStats]

    @property
    def total_shed(self) -> int:
        return sum(t.shed for t in self.tenants)

    @property
    def telemetry(self):
        """The run's windowed time-series (None when not collected).
        Tenancy telemetry carries per-class ``class_stats``, so the
        burn-rate report can be split by gold/silver/bronze."""
        return self.cluster.telemetry

    @property
    def traces(self):
        return self.cluster.traces

    @property
    def admitted(self) -> int:
        return len(self.cluster.records) - self.total_shed

    def summary(self) -> LatencySummary:
        """Cluster-wide percentiles over completed requests."""
        return self.cluster.summary()

    def by_name(self, name: str) -> TenantStats:
        return self.tenants[self.spec.tenant_index(name)]

    def to_metrics(
        self, registry=None, prefix: str = "serve.tenancy"
    ) -> None:
        """Publish per-tenant latency/violation/shed counters into an
        obs metrics registry, mirroring
        :meth:`~repro.serve.cluster.ClusterResult.to_metrics`.
        """
        from repro.obs.metrics import get_registry

        reg = registry if registry is not None else get_registry()
        reg.counter(f"{prefix}.requests").inc(len(self.cluster.records))
        reg.counter(f"{prefix}.shed").inc(self.total_shed)
        for ts in self.tenants:
            p = f"{prefix}.tenant.{ts.name}"
            reg.counter(f"{p}.requests").inc(ts.requests)
            reg.counter(f"{p}.completed").inc(ts.completed)
            reg.counter(f"{p}.failed").inc(ts.failed)
            reg.counter(f"{p}.shed").inc(ts.shed)
            reg.counter(f"{p}.retries").inc(ts.retries)
            summary = ts.summary()
            if summary is not None:
                reg.gauge(f"{p}.latency.p50_ns").set_max(summary.p50_ns)
                reg.gauge(f"{p}.latency.p99_ns").set_max(summary.p99_ns)
            if ts.p99_slo_ns is not None:
                reg.counter(f"{p}.slo.runs").inc()
                reg.counter(f"{p}.slo.requests_over").inc(
                    ts.requests_over_slo
                )
                if ts.slo_met() is False:
                    reg.counter(f"{p}.slo.violations").inc()


class _TenantSim(_ClusterSim):
    """Cluster simulation with tenant identity and admission control.

    Overrides only the record factory and the arrival handler; every
    queueing, retry, hedging and fault decision is inherited verbatim.
    """

    def __init__(
        self,
        cluster: Cluster,
        horizon_ns: float,
        spec: ScenarioSpec,
        trace: TenantTrace,
        engine: Optional[str] = None,
        telemetry: Optional[TelemetryConfig] = None,
    ):
        super().__init__(cluster, horizon_ns, engine=engine, telemetry=telemetry)
        self.spec = spec
        self.trace = trace

    def _telemetry_class(self, record: TenantRequest):
        tenant = self.spec.tenants[record.tenant]
        return tenant.slo_class, tenant.p99_slo_ns

    def _make_record(
        self, rid: int, key: int, t: float, shard: int
    ) -> TenantRequest:
        return TenantRequest(
            rid=rid,
            key=int(key),
            shard=shard,
            arrival_ns=float(t),
            tenant=int(self.trace.tenants[rid]),
        )

    def on_arrival(self, record: TenantRequest, now: float) -> None:
        admission = self.spec.admission
        if admission.enabled:
            slo_class = self.spec.tenants[record.tenant].slo_class
            backlog = sum(
                r.backlog for r in self.replicas[record.shard]
            )
            if should_shed(admission, slo_class, backlog):
                record.shed = True
                if self.telemetry is not None:
                    self.telemetry.on_shed(now, record.shard, slo_class)
                return  # rejected: never queued, never retried
        super().on_arrival(record, now)


def _split_by_tenant(
    spec: ScenarioSpec, trace: TenantTrace, result: ClusterResult
) -> List[TenantStats]:
    stats = [
        TenantStats(
            tenant=i,
            name=t.name,
            slo_class=t.slo_class,
            p99_slo_ns=t.p99_slo_ns,
            makespan_ns=result.makespan_ns,
        )
        for i, t in enumerate(spec.tenants)
    ]
    for record in result.records:
        ts = stats[record.tenant]
        ts.requests += 1
        ts.retries += record.retries
        if record.hedged:
            ts.hedges += 1
        if record.shed:
            ts.shed += 1
        elif record.completed:
            ts.completed += 1
            ts.latencies_ns.append(record.latency_ns)
        elif record.failed:
            ts.failed += 1
    return stats


def replay_trace(
    spec: ScenarioSpec,
    trace: TenantTrace,
    services: Sequence,
    keys: Optional[Sequence[int]] = None,
    shard_map: Optional[ShardMap] = None,
    engine: Optional[str] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> TenancyResult:
    """Replay a materialized trace under a spec's topology and policies.

    Deterministic in (spec, trace, services, shard_map): replaying a
    saved trace reproduces a run byte for byte.  ``shard_map`` defaults
    to the equal-count split of ``keys`` (one of the two must be given);
    ``services[s]`` is shard ``s``'s :class:`~repro.serve.core.ServiceModel`.
    ``engine`` picks the serving engine (``None`` = ambient default);
    engines are byte-identical, so it never changes the result.
    """
    if trace.tenant_names != tuple(t.name for t in spec.tenants):
        raise ValueError(
            f"trace tenants {trace.tenant_names} do not match spec "
            f"tenants {tuple(t.name for t in spec.tenants)}"
        )
    if shard_map is None:
        if keys is None:
            raise ValueError("need keys or an explicit shard_map")
        shard_map = ShardMap.from_keys(keys, spec.topology.n_shards)
    cluster = Cluster(
        shard_map=shard_map,
        services=services,
        n_replicas=spec.topology.n_replicas,
        n_cores=spec.topology.n_cores,
        policy=spec.policy.to_router_policy(),
        faults=spec.faults.to_fault_config(),
        reconfig=spec.reconfig,
    )
    horizon = spec.fault_horizon_ns
    if horizon is None:
        last = float(trace.arrivals_ns[-1])
        horizon = last + max(0.25 * last, 1e6)
    sim = _TenantSim(
        cluster,
        horizon_ns=horizon,
        spec=spec,
        trace=trace,
        engine=engine,
        telemetry=telemetry,
    )
    sim.load([float(t) for t in trace.arrivals_ns], trace.keys)
    result = sim.run()
    return TenancyResult(
        spec=spec,
        trace=trace,
        cluster=result,
        tenants=_split_by_tenant(spec, trace, result),
    )


def simulate_scenario(
    spec: ScenarioSpec,
    services: Sequence,
    keys: Sequence[int],
    shard_map: Optional[ShardMap] = None,
    engine: Optional[str] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> TenancyResult:
    """Materialize and run a scenario against a served key array.

    Equivalent to ``replay_trace(spec, TenantTrace.from_spec(spec, keys),
    ...)`` -- generation and replay are the same code path, which is what
    makes record-replay sound.
    """
    trace = TenantTrace.from_spec(spec, keys)
    return replay_trace(
        spec,
        trace,
        services,
        keys=keys,
        shard_map=shard_map,
        engine=engine,
        telemetry=telemetry,
    )
