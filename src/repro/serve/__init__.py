"""`repro.serve`: discrete-event serving simulation with tail-latency SLOs.

The benchmark's figures summarize lookups as steady-state means; this
subsystem asks the serving question instead: given an arrival process and
a modelled multi-core server, what latency distribution does each index
deliver, and which index should serve a given load under a
(p99, memory-budget) SLO?

* :mod:`repro.serve.arrivals` -- seeded open-loop arrival processes
  (Poisson, bursty) and closed-loop think times.
* :mod:`repro.serve.contention` -- the machine + memory-contention model
  (shared with Figure 16, which is now a thin client of it).
* :mod:`repro.serve.core` -- the event loop: per-core FIFO queues, work
  stealing, contention-frozen service times.
* :mod:`repro.serve.metrics` -- p50/p95/p99/p99.9 accounting.
* :mod:`repro.serve.selector` -- SLO-aware index selection (single-node
  and cluster-wide).
* :mod:`repro.serve.cluster` -- sharded, replicated cluster simulation
  with seeded fault injection (:mod:`repro.serve.faults`) and a
  retry/hedge/batch router (:mod:`repro.serve.router`); see
  ``docs/cluster.md``.
* :mod:`repro.serve.scenario` / :mod:`repro.serve.tenancy` /
  :mod:`repro.serve.trace` -- declarative multi-tenant scenario specs,
  admission control with SLO-class load shedding, and trace
  record-replay; see ``docs/tenancy.md``.
* :mod:`repro.serve.reconfig` -- live reconfiguration under traffic:
  epoch-versioned shard splits/merges with key-range handoff,
  background rebuild-and-swap, and a reactive autoscaler, all as
  deterministic as the fault schedules; see ``docs/reconfig.md``.
* :mod:`repro.serve.fastsim` -- the ``fast`` serving engine: a
  vectorized Lindley-recursion kernel plus batch-sorted event queues,
  byte-identical to the event loop (``--serve-engine`` /
  ``REPRO_SERVE_ENGINE``); see ``docs/serving_fast.md``.
* :mod:`repro.serve.sweep` -- simulations as picklable tasks: process-
  pool fan-out with a persistent, engine-invariant result cache.
* :mod:`repro.serve.telemetry` -- deterministic in-run telemetry:
  windowed time-series, opt-in request traces rendered as ``repro.obs``
  spans, and SLO burn-rate accounting; byte-identical across engines
  and serial vs ``--jobs N``; see ``docs/observability.md``.

Driven end-to-end by the ``ext_serving``, ``ext_cluster`` and
``ext_tenants`` experiments (``python -m repro.bench --experiment
ext_tenants``).
"""

from repro.serve.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
    think_times_ns,
)
from repro.serve.contention import (
    MachineModel,
    ThroughputPoint,
    saturation_throughput,
    service_time_ns,
    thread_sweep,
    throughput,
)
from repro.serve.core import (
    Request,
    ServiceModel,
    ServingResult,
    simulate_closed_loop,
    simulate_open_loop,
)
from repro.serve.cluster import Cluster, ClusterResult, simulate_cluster
from repro.serve.faults import FaultConfig, FaultEvent, fault_schedule
from repro.serve.fastsim import (
    SERVE_ENGINE_NAMES,
    default_serve_engine_name,
    resolve_serve_engine,
)
from repro.serve.metrics import LatencySummary, summarize, summarize_result
from repro.serve.reconfig import (
    AutoscaleSpec,
    MergeSpec,
    RebuildSpec,
    ReconfigSpec,
    ShardEpoch,
    SplitSpec,
    autoscale_decision,
    reconfig_schedule,
)
from repro.serve.router import RouterPolicy, ShardMap, request_keys
from repro.serve.scenario import (
    AdmissionSpec,
    ArrivalSpec,
    FaultSpec,
    KeySpaceSpec,
    PolicySpec,
    ScenarioSpec,
    TenantSpec,
    TopologySpec,
    single_tenant_spec,
)
from repro.serve.selector import (
    Candidate,
    ClusterCandidate,
    ClusterSelection,
    Selection,
    cluster_selection_from_candidates,
    evaluate_candidate,
    select_cluster_under_slo,
    select_under_slo,
    selection_from_candidates,
)
from repro.serve.sweep import (
    ClusterRunStats,
    ClusterTask,
    OpenLoopTask,
    ScenarioTask,
    SimRunnerStats,
    TenancyRunStats,
    cluster_task,
    open_loop_summary,
    open_loop_task,
    run_sim_tasks,
    scenario_task,
)
from repro.serve.telemetry import (
    AttemptTrace,
    BurnRateReport,
    BurnWindow,
    TelemetryConfig,
    TimeSeries,
    WindowStats,
    burn_rate_report,
    spans_from_traces,
)
from repro.serve.tenancy import (
    TenancyResult,
    TenantStats,
    replay_trace,
    should_shed,
    simulate_scenario,
)
from repro.serve.trace import TenantTrace

__all__ = [
    "MachineModel",
    "ThroughputPoint",
    "throughput",
    "thread_sweep",
    "saturation_throughput",
    "service_time_ns",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "think_times_ns",
    "ServiceModel",
    "Request",
    "ServingResult",
    "simulate_open_loop",
    "simulate_closed_loop",
    "LatencySummary",
    "summarize",
    "summarize_result",
    "Candidate",
    "Selection",
    "evaluate_candidate",
    "select_under_slo",
    "selection_from_candidates",
    "Cluster",
    "ClusterResult",
    "simulate_cluster",
    "FaultConfig",
    "FaultEvent",
    "fault_schedule",
    "ReconfigSpec",
    "SplitSpec",
    "MergeSpec",
    "RebuildSpec",
    "AutoscaleSpec",
    "ShardEpoch",
    "reconfig_schedule",
    "autoscale_decision",
    "RouterPolicy",
    "ShardMap",
    "request_keys",
    "ClusterCandidate",
    "ClusterSelection",
    "cluster_selection_from_candidates",
    "select_cluster_under_slo",
    "ScenarioSpec",
    "TenantSpec",
    "ArrivalSpec",
    "KeySpaceSpec",
    "TopologySpec",
    "PolicySpec",
    "FaultSpec",
    "AdmissionSpec",
    "single_tenant_spec",
    "TenantTrace",
    "TenancyResult",
    "TenantStats",
    "should_shed",
    "simulate_scenario",
    "replay_trace",
    "SERVE_ENGINE_NAMES",
    "default_serve_engine_name",
    "resolve_serve_engine",
    "OpenLoopTask",
    "ClusterTask",
    "ScenarioTask",
    "ClusterRunStats",
    "TenancyRunStats",
    "SimRunnerStats",
    "open_loop_task",
    "cluster_task",
    "scenario_task",
    "open_loop_summary",
    "run_sim_tasks",
    "TelemetryConfig",
    "TimeSeries",
    "WindowStats",
    "AttemptTrace",
    "BurnWindow",
    "BurnRateReport",
    "burn_rate_report",
    "spans_from_traces",
]
