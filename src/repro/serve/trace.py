"""Tenant trace record-replay: a mixed-tenant day as typed arrays.

The tenancy layer never feeds the cluster simulator from generators
directly: a :class:`ScenarioSpec` is first *materialized* into a
:class:`TenantTrace` -- the merged arrival timeline over all tenants,
stored as parallel typed arrays like :class:`repro.memsim.trace.Trace`
stores lookup events -- and the trace is what gets replayed.  That split
is what makes scenario runs reproducible artifacts: a trace serializes
losslessly to JSON (floats round-trip exactly via ``repr``), hashes to a
stable content key, and replaying a reloaded trace is byte-identical to
replaying the freshly generated one, which in turn means the measurement
cache can treat (spec content key, measurement inputs) as a complete
identity for a scenario run (see ``repro.bench.cache.scenario_key``).

The merge order is deterministic: events sort by
``(time, tenant index, per-tenant sequence)``, so simultaneous arrivals
break ties by tenant declaration order -- tenant order in a spec is
significant, as :class:`ScenarioSpec` documents.  For a single-tenant
spec the merge is the identity and replay pushes exactly the arrival
stream a direct :func:`~repro.serve.cluster.simulate_cluster` call would
(the degenerate differential in ``tests/test_tenancy_differential.py``).
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Sequence, Tuple

import numpy as np

from repro.serve.scenario import ScenarioSpec

#: Bump when the trace layout or merge rule changes meaning.
TRACE_SCHEMA_VERSION = 1


class TenantTrace:
    """One materialized scenario timeline as parallel typed arrays.

    ``arrivals_ns[i]`` (float64, non-decreasing) is request ``i``'s
    arrival time, ``keys[i]`` (uint64) its lookup key, ``tenants[i]``
    (int32) the index of its tenant in ``tenant_names``.  Requests are
    already merged and sorted; replay enumerates them in order, so
    request ids in results equal trace positions.
    """

    __slots__ = ("arrivals_ns", "keys", "tenants", "tenant_names")

    def __init__(self, arrivals_ns, keys, tenants, tenant_names):
        self.arrivals_ns = np.asarray(arrivals_ns, dtype=np.float64)
        self.keys = np.asarray(keys, dtype=np.uint64)
        self.tenants = np.asarray(tenants, dtype=np.int32)
        self.tenant_names: Tuple[str, ...] = tuple(
            str(n) for n in tenant_names
        )
        n = len(self.arrivals_ns)
        if len(self.keys) != n or len(self.tenants) != n:
            raise ValueError(
                f"parallel arrays disagree: {n} arrivals, "
                f"{len(self.keys)} keys, {len(self.tenants)} tenants"
            )
        if n == 0:
            raise ValueError("need at least one request")
        if not self.tenant_names:
            raise ValueError("need at least one tenant name")
        if len(set(self.tenant_names)) != len(self.tenant_names):
            raise ValueError(
                f"tenant names must be unique: {self.tenant_names}"
            )
        lo = int(self.tenants.min())
        hi = int(self.tenants.max())
        if lo < 0 or hi >= len(self.tenant_names):
            raise ValueError(
                f"tenant ids [{lo}, {hi}] out of range for "
                f"{len(self.tenant_names)} tenants"
            )
        if np.any(np.diff(self.arrivals_ns) < 0.0):
            raise ValueError("arrivals must be non-decreasing")

    @classmethod
    def from_spec(cls, spec: ScenarioSpec, keys: Sequence[int]) -> "TenantTrace":
        """Materialize a spec against a served key array.

        Pure in (spec, keys): each tenant's arrival process and key
        samples are seeded by its own spec, and the merge is the stable
        sort by ``(time, tenant index, per-tenant sequence)``.
        """
        entries: List[Tuple[float, int, int, int]] = []
        for ti, tenant in enumerate(spec.tenants):
            times = tenant.arrivals.generate()
            tkeys = tenant.keyspace.sample(keys, tenant.arrivals.n_requests)
            for j, (t, k) in enumerate(zip(times, tkeys)):
                entries.append((t, ti, j, k))
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        return cls(
            arrivals_ns=[e[0] for e in entries],
            keys=[e[3] for e in entries],
            tenants=[e[1] for e in entries],
            tenant_names=[t.name for t in spec.tenants],
        )

    def __len__(self) -> int:
        return len(self.arrivals_ns)

    @property
    def nbytes(self) -> int:
        return (
            self.arrivals_ns.nbytes + self.keys.nbytes + self.tenants.nbytes
        )

    def counts_by_tenant(self) -> List[int]:
        """Requests per tenant, indexed like ``tenant_names``."""
        return (
            np.bincount(self.tenants, minlength=len(self.tenant_names))
            .astype(int)
            .tolist()
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        # float64 -> repr via tolist() round-trips exactly through JSON.
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "tenant_names": list(self.tenant_names),
            "arrivals_ns": self.arrivals_ns.tolist(),
            "keys": self.keys.tolist(),
            "tenants": self.tenants.tolist(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TenantTrace":
        schema = int(d.get("schema", TRACE_SCHEMA_VERSION))
        if schema != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace schema {schema} != {TRACE_SCHEMA_VERSION}"
            )
        return cls(
            arrivals_ns=d["arrivals_ns"],
            keys=d["keys"],
            tenants=d["tenants"],
            tenant_names=d["tenant_names"],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "TenantTrace":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "TenantTrace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def content_key(self) -> str:
        """Stable content hash of the serialized trace."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:40]

    def __eq__(self, other) -> bool:
        if not isinstance(other, TenantTrace):
            return NotImplemented
        return (
            self.tenant_names == other.tenant_names
            and np.array_equal(self.arrivals_ns, other.arrivals_ns)
            and np.array_equal(self.keys, other.keys)
            and np.array_equal(self.tenants, other.tenants)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TenantTrace({len(self)} requests, "
            f"{len(self.tenant_names)} tenants, {self.nbytes} bytes)"
        )
