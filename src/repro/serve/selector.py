"""Load-aware index selection under a (p99 latency, memory budget) SLO.

``table2`` answers "which index is fastest?" with a single steady-state
number.  Under real traffic the question is "which index *serves this
load* within the tail-latency SLO, in the least memory?" -- the answer
depends on the arrival process, because queueing inflates the tail long
before mean throughput saturates.  The selector simulates every candidate
measurement (one per index configuration, typically a registry sweep)
against the same seeded arrival process and picks the cheapest-by-memory
candidate whose simulated p99 meets the SLO within the memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.serve.arrivals import poisson_arrivals
from repro.serve.contention import MachineModel, saturation_throughput
from repro.serve.core import ServiceModel, simulate_open_loop
from repro.serve.metrics import LatencySummary, summarize_result


@dataclass(frozen=True)
class Candidate:
    """One simulated index configuration and its tail behaviour."""

    index: str
    config: dict
    size_bytes: int
    saturation_per_sec: float
    summary: LatencySummary

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024.0 * 1024.0)


@dataclass
class Selection:
    """Outcome of one SLO sweep: every candidate, plus the winner."""

    offered_per_sec: float
    p99_slo_ns: float
    memory_budget_bytes: Optional[float]
    candidates: List[Candidate]
    chosen: Optional[Candidate]

    def eligible(self) -> List[Candidate]:
        return [c for c in self.candidates if self._fits(c)]

    def _fits(self, c: Candidate) -> bool:
        if c.summary.p99_ns > self.p99_slo_ns:
            return False
        if (
            self.memory_budget_bytes is not None
            and c.size_bytes > self.memory_budget_bytes
        ):
            return False
        return True


def evaluate_candidate(
    measurement,
    offered_per_sec: float,
    n_requests: int,
    seed: int,
    n_cores: int,
    machine: MachineModel = MachineModel(),
    fence: bool = False,
    slo_p99_ns: Optional[float] = None,
) -> Candidate:
    """Simulate one measurement under Poisson load; summarize its tail.

    The summary is published to the obs metrics registry
    (:meth:`LatencySummary.to_metrics`), so SLO violations and
    queue-depth maxima appear in the run's metrics snapshot.
    """
    service = ServiceModel.from_measurement(
        measurement, fence=fence, machine=machine
    )
    arrivals = poisson_arrivals(offered_per_sec, n_requests, seed)
    result = simulate_open_loop(service, arrivals, n_cores)
    summary = summarize_result(result)
    summary.to_metrics(slo_p99_ns=slo_p99_ns, result=result)
    return Candidate(
        index=measurement.index,
        config=dict(measurement.config),
        size_bytes=measurement.size_bytes,
        saturation_per_sec=saturation_throughput(measurement, machine),
        summary=summary,
    )


def select_under_slo(
    measurements: Sequence,
    offered_per_sec: float,
    p99_slo_ns: float,
    memory_budget_bytes: Optional[float] = None,
    n_requests: int = 2_000,
    seed: int = 0,
    n_cores: int = 4,
    machine: MachineModel = MachineModel(),
    fence: bool = False,
) -> Selection:
    """Pick the cheapest index meeting the SLO at the offered load.

    Every measurement is simulated against the *same* seeded arrival
    sequence, so the comparison isolates the index (identical traffic,
    identical tie-breaks).  The winner is the eligible candidate with the
    smallest memory footprint; ties break on lower p99, then on
    ``(index, sorted config)`` for full determinism.
    """
    candidates = [
        evaluate_candidate(
            m,
            offered_per_sec,
            n_requests,
            seed,
            n_cores,
            machine,
            fence,
            slo_p99_ns=p99_slo_ns,
        )
        for m in measurements
    ]
    selection = Selection(
        offered_per_sec=offered_per_sec,
        p99_slo_ns=p99_slo_ns,
        memory_budget_bytes=memory_budget_bytes,
        candidates=candidates,
        chosen=None,
    )
    eligible = selection.eligible()
    if eligible:
        selection.chosen = min(
            eligible,
            key=lambda c: (
                c.size_bytes,
                c.summary.p99_ns,
                c.index,
                sorted(c.config.items()),
            ),
        )
    return selection
