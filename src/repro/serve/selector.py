"""Load-aware index selection under a (p99 latency, memory budget) SLO.

``table2`` answers "which index is fastest?" with a single steady-state
number.  Under real traffic the question is "which index *serves this
load* within the tail-latency SLO, in the least memory?" -- the answer
depends on the arrival process, because queueing inflates the tail long
before mean throughput saturates.  The selector simulates every candidate
measurement (one per index configuration, typically a registry sweep)
against the same seeded arrival process and picks the cheapest-by-memory
candidate whose simulated p99 meets the SLO within the memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.arrivals import poisson_arrivals
from repro.serve.contention import MachineModel, saturation_throughput
from repro.serve.core import ServiceModel, simulate_open_loop
from repro.serve.metrics import LatencySummary, summarize_result


@dataclass(frozen=True)
class Candidate:
    """One simulated index configuration and its tail behaviour."""

    index: str
    config: dict
    size_bytes: int
    saturation_per_sec: float
    summary: LatencySummary

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024.0 * 1024.0)


@dataclass
class Selection:
    """Outcome of one SLO sweep: every candidate, plus the winner."""

    offered_per_sec: float
    p99_slo_ns: float
    memory_budget_bytes: Optional[float]
    candidates: List[Candidate]
    chosen: Optional[Candidate]

    def eligible(self) -> List[Candidate]:
        return [c for c in self.candidates if self._fits(c)]

    def _fits(self, c: Candidate) -> bool:
        """Both SLO checks are *inclusive*: a candidate whose p99 equals
        the SLO exactly, or whose footprint equals the memory budget
        exactly, is eligible.  An SLO is a contract boundary -- "p99
        within 1 ms" admits 1 ms -- and budgets likewise admit a
        footprint that exactly fills them.  Pinned by a regression test
        (``tests/test_serving.py::TestSelector::test_boundary_semantics``);
        do not tighten to strict inequality.
        """
        if c.summary.p99_ns > self.p99_slo_ns:
            return False
        if (
            self.memory_budget_bytes is not None
            and c.size_bytes > self.memory_budget_bytes
        ):
            return False
        return True


def evaluate_candidate(
    measurement,
    offered_per_sec: float,
    n_requests: int,
    seed: int,
    n_cores: int,
    machine: MachineModel = MachineModel(),
    fence: bool = False,
    slo_p99_ns: Optional[float] = None,
) -> Candidate:
    """Simulate one measurement under Poisson load; summarize its tail.

    The summary is published to the obs metrics registry
    (:meth:`LatencySummary.to_metrics`), so SLO violations and
    queue-depth maxima appear in the run's metrics snapshot.
    """
    service = ServiceModel.from_measurement(
        measurement, fence=fence, machine=machine
    )
    arrivals = poisson_arrivals(offered_per_sec, n_requests, seed)
    result = simulate_open_loop(service, arrivals, n_cores)
    summary = summarize_result(result)
    summary.to_metrics(slo_p99_ns=slo_p99_ns, result=result)
    return Candidate(
        index=measurement.index,
        config=dict(measurement.config),
        size_bytes=measurement.size_bytes,
        saturation_per_sec=saturation_throughput(measurement, machine),
        summary=summary,
    )


def select_under_slo(
    measurements: Sequence,
    offered_per_sec: float,
    p99_slo_ns: float,
    memory_budget_bytes: Optional[float] = None,
    n_requests: int = 2_000,
    seed: int = 0,
    n_cores: int = 4,
    machine: MachineModel = MachineModel(),
    fence: bool = False,
    jobs: Optional[int] = None,
    sim_cache=None,
) -> Selection:
    """Pick the cheapest index meeting the SLO at the offered load.

    Every measurement is simulated against the *same* seeded arrival
    sequence, so the comparison isolates the index (identical traffic,
    identical tie-breaks).  The winner is the eligible candidate with the
    smallest memory footprint; ties break on lower p99, then on
    ``(index, sorted config)`` for full determinism.

    ``jobs``/``sim_cache`` route each candidate simulation through the
    :mod:`repro.serve.sweep` runner (a ``--jobs`` process pool and/or a
    persistent :class:`~repro.bench.cache.SimResultCache`); with both
    ``None`` the simulations run inline.  The paths are byte-identical
    -- simulations are pure functions of their seeds -- so this changes
    wall-clock only, never the selection.
    """
    if jobs is None and sim_cache is None:
        candidates = [
            evaluate_candidate(
                m,
                offered_per_sec,
                n_requests,
                seed,
                n_cores,
                machine,
                fence,
                slo_p99_ns=p99_slo_ns,
            )
            for m in measurements
        ]
    else:
        from repro.serve.sweep import (
            open_loop_summary,
            open_loop_task,
            run_sim_tasks,
        )

        ms = list(measurements)
        tasks = [
            open_loop_task(
                m, offered_per_sec, n_requests, seed, n_cores, machine, fence
            )
            for m in ms
        ]
        records = run_sim_tasks(tasks, jobs=jobs, cache=sim_cache)
        candidates = []
        for m, record in zip(ms, records):
            summary, queue_stats = open_loop_summary(record)
            summary.to_metrics(slo_p99_ns=p99_slo_ns, result=queue_stats)
            candidates.append(
                Candidate(
                    index=m.index,
                    config=dict(m.config),
                    size_bytes=m.size_bytes,
                    saturation_per_sec=saturation_throughput(m, machine),
                    summary=summary,
                )
            )
    return selection_from_candidates(
        candidates, offered_per_sec, p99_slo_ns, memory_budget_bytes
    )


def selection_from_candidates(
    candidates: Sequence[Candidate],
    offered_per_sec: float,
    p99_slo_ns: float,
    memory_budget_bytes: Optional[float] = None,
) -> Selection:
    """Pick from already-simulated candidates (the pure half of
    :func:`select_under_slo`).

    Separated so the decision rule can be property-tested without
    running simulations: the winner is the eligible candidate with the
    smallest memory footprint, ties broken on lower p99, then on
    ``(index, sorted config)``.  The total order makes the outcome
    invariant under any permutation of ``candidates``.
    """
    selection = Selection(
        offered_per_sec=offered_per_sec,
        p99_slo_ns=p99_slo_ns,
        memory_budget_bytes=memory_budget_bytes,
        candidates=list(candidates),
        chosen=None,
    )
    eligible = selection.eligible()
    if eligible:
        selection.chosen = min(
            eligible,
            key=lambda c: (
                c.size_bytes,
                c.summary.p99_ns,
                c.index,
                sorted(c.config.items()),
            ),
        )
    return selection


@dataclass(frozen=True)
class ClusterCandidate:
    """One index family deployed across every shard of a cluster."""

    index: str
    per_shard_size_bytes: Tuple[int, ...]
    summary: Optional[LatencySummary]
    availability: float
    total_retries: int
    total_hedges: int
    max_queue_depth: int

    @property
    def total_size_bytes(self) -> int:
        return sum(self.per_shard_size_bytes)

    @property
    def max_shard_size_bytes(self) -> int:
        return max(self.per_shard_size_bytes)

    @property
    def total_size_mb(self) -> float:
        return self.total_size_bytes / (1024.0 * 1024.0)


@dataclass
class ClusterSelection:
    """Outcome of one cluster-wide SLO sweep across index families.

    Eligibility follows the same inclusive boundary semantics as
    :class:`Selection` (``<=`` at the p99 SLO and at the per-shard
    memory budget), plus an availability floor: under fault injection a
    family must also complete at least ``min_availability`` of requests.
    """

    offered_per_sec: float
    p99_slo_ns: float
    shard_memory_budget_bytes: Optional[float]
    min_availability: float
    candidates: List[ClusterCandidate]
    chosen: Optional[ClusterCandidate] = None

    def eligible(self) -> List[ClusterCandidate]:
        return [c for c in self.candidates if self._fits(c)]

    def _fits(self, c: ClusterCandidate) -> bool:
        if c.summary is None:
            return False
        if c.summary.p99_ns > self.p99_slo_ns:
            return False
        if (
            self.shard_memory_budget_bytes is not None
            and c.max_shard_size_bytes > self.shard_memory_budget_bytes
        ):
            return False
        if c.availability < self.min_availability:
            return False
        return True


def select_cluster_under_slo(
    shard_measurements: Dict[str, Sequence],
    shard_map,
    keys: Sequence[int],
    offered_per_sec: float,
    p99_slo_ns: float,
    shard_memory_budget_bytes: Optional[float] = None,
    min_availability: float = 0.99,
    n_requests: int = 2_000,
    seed: int = 0,
    n_replicas: int = 2,
    n_cores: int = 2,
    policy=None,
    faults=None,
    machine: MachineModel = MachineModel(),
    fence: bool = False,
    fault_horizon_ns: Optional[float] = None,
    jobs: Optional[int] = None,
    sim_cache=None,
) -> ClusterSelection:
    """Cluster-aware ``select_under_slo``: cheapest index family that
    meets the p99 SLO and the per-shard memory budget under faults.

    ``shard_measurements`` maps each index family to its per-shard
    measurements (one real harness build per shard, so sizes and service
    times reflect the partitioned key counts).  Every family is
    simulated against the *same* seeded arrivals, request keys, and
    fault schedule, so the comparison isolates the index.  The winner is
    the eligible family with the smallest total footprint; ties break on
    lower p99, then family name.

    ``jobs``/``sim_cache`` route each family's cluster replay through
    the :mod:`repro.serve.sweep` runner; with both ``None`` the replays
    run inline.  Byte-identical either way -- wall-clock only.
    """
    # Imported lazily: cluster imports this module's ServiceModel host
    # package, and keeping selector importable without cluster avoids a
    # cycle at package-init time.
    from repro.serve.cluster import Cluster, simulate_cluster
    from repro.serve.router import RouterPolicy, request_keys

    if policy is None:
        policy = RouterPolicy()
    lookup_keys = request_keys(keys, n_requests, seed)
    candidates: List[ClusterCandidate] = []
    if jobs is None and sim_cache is None:
        arrivals = poisson_arrivals(offered_per_sec, n_requests, seed)
        for family in sorted(shard_measurements):
            per_shard = list(shard_measurements[family])
            cluster = Cluster(
                shard_map=shard_map,
                services=[
                    ServiceModel.from_measurement(
                        m, fence=fence, machine=machine
                    )
                    for m in per_shard
                ],
                n_replicas=n_replicas,
                n_cores=n_cores,
                policy=policy,
                faults=faults,
            )
            result = simulate_cluster(
                cluster,
                arrivals,
                lookup_keys,
                fault_horizon_ns=fault_horizon_ns,
            )
            summary = result.summary() if result.completed else None
            result.to_metrics()
            candidates.append(
                ClusterCandidate(
                    index=family,
                    per_shard_size_bytes=tuple(
                        m.size_bytes for m in per_shard
                    ),
                    summary=summary,
                    availability=result.availability,
                    total_retries=result.total_retries,
                    total_hedges=result.total_hedges,
                    max_queue_depth=result.max_queue_depth,
                )
            )
    else:
        from repro.serve.sweep import (
            ClusterRunStats,
            cluster_task,
            run_sim_tasks,
        )

        families = sorted(shard_measurements)
        tasks = [
            cluster_task(
                list(shard_measurements[family]),
                shard_map,
                lookup_keys,
                offered_per_sec,
                n_requests,
                seed,
                n_replicas,
                n_cores,
                policy,
                faults,
                fault_horizon_ns,
                machine,
                fence,
            )
            for family in families
        ]
        records = run_sim_tasks(tasks, jobs=jobs, cache=sim_cache)
        for family, record in zip(families, records):
            stats = ClusterRunStats.from_record(record)
            stats.to_metrics()
            per_shard = list(shard_measurements[family])
            candidates.append(
                ClusterCandidate(
                    index=family,
                    per_shard_size_bytes=tuple(
                        m.size_bytes for m in per_shard
                    ),
                    summary=stats.summary,
                    availability=stats.availability,
                    total_retries=stats.total_retries,
                    total_hedges=stats.total_hedges,
                    max_queue_depth=stats.max_queue_depth,
                )
            )
    return cluster_selection_from_candidates(
        candidates,
        offered_per_sec,
        p99_slo_ns,
        shard_memory_budget_bytes,
        min_availability,
    )


def cluster_selection_from_candidates(
    candidates: Sequence[ClusterCandidate],
    offered_per_sec: float,
    p99_slo_ns: float,
    shard_memory_budget_bytes: Optional[float] = None,
    min_availability: float = 0.99,
) -> ClusterSelection:
    """Pure decision rule of :func:`select_cluster_under_slo`."""
    selection = ClusterSelection(
        offered_per_sec=offered_per_sec,
        p99_slo_ns=p99_slo_ns,
        shard_memory_budget_bytes=shard_memory_budget_bytes,
        min_availability=min_availability,
        candidates=list(candidates),
    )
    eligible = selection.eligible()
    if eligible:
        # The tail of the key covers every remaining field so the order
        # is total over candidate *content*: candidates that tie on all
        # of it are equal, which keeps the choice invariant under any
        # permutation of the input (property-tested).
        selection.chosen = min(
            eligible,
            key=lambda c: (
                c.total_size_bytes,
                c.summary.p99_ns,
                c.index,
                c.per_shard_size_bytes,
                -c.availability,
                c.total_retries,
                c.total_hedges,
                c.max_queue_depth,
                tuple(sorted(c.summary.to_dict().items())),
            ),
        )
    return selection
