"""Deterministic in-run telemetry for the serving simulators.

End-of-run summaries (:class:`~repro.serve.metrics.LatencySummary`,
:class:`~repro.serve.cluster.ClusterResult`) compress a whole run into
one row, which hides exactly the stories this benchmark is about: a
flash crowd ramping, a fault window draining a shard, a shed storm
protecting gold tail latency.  This module adds the time axis back as
three layers, all of them pure data:

* **Windowed time-series.**  A :class:`TelemetryConfig` with a tumbling
  sim-time window (``window_ns``) is passed to
  :func:`~repro.serve.core.simulate_open_loop` /
  :func:`~repro.serve.cluster.simulate_cluster` /
  :func:`~repro.serve.tenancy.simulate_scenario`.  The simulators feed a
  :class:`TelemetryCollector` whose hooks observe but never mutate the
  simulation; the result carries a frozen :class:`TimeSeries` of
  per-window :class:`WindowStats` -- completed/failed/shed counts,
  retries, hedges, SLO violations, max queue depth at dispatch instants,
  exact p50/p99 (:func:`repro.bench.stats.percentiles`), and per-shard
  completion/failure splits.
* **Request traces.**  Opt-in (``traces=True``): one
  :class:`AttemptTrace` per dispatch attempt (shard, replica, core,
  cause -- arrival / retry / hedge -- and outcome), convertible to
  ``repro.obs`` span dicts (:func:`spans_from_traces`) so the ``summary``
  and ``timeline`` CLIs render them like any other span stream.
* **SLO burn rate.**  :func:`burn_rate_report` is a pure function of a
  :class:`TimeSeries`: per-window error-budget burn, cumulative budget
  consumed, and time-to-exhaustion, per tenant class or cluster-wide.

Determinism contract (the PR 3/6/8 bar): telemetry is **byte-identical
across engines** -- the event loop's hooks and the Lindley kernel's
vectorized aggregation (:func:`open_loop_series`) bin the same times
with the same float division and run the same percentile code on the
same multisets, and the :class:`~repro.serve.fastsim.SealedEventQueue`
paths execute the hook code itself -- and identical serial vs ``--jobs
N`` (the series rides the task records of :mod:`repro.serve.sweep`).
With ``telemetry=None`` every hook site is a single ``is not None``
check, results are bit-for-bit what they were, and no task cache key
changes (``key_fields`` omits the telemetry entry entirely).

Window semantics: window ``i`` covers sim time ``[i * window_ns,
(i + 1) * window_ns)``; an event at time ``t`` lands in window
``int(t / window_ns)``.  Completions (and their latencies, violations)
bin by *finish* time; sheds by arrival time; retries/hedges/failures by
the instant they were decided; queue depth is sampled at dispatch
instants, exactly the quantity behind ``max_queue_depth``.  Windows are
dense from 0 through the last window containing any event.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Bump when the TimeSeries/AttemptTrace record layout changes meaning.
TELEMETRY_SCHEMA_VERSION = 1

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "canonical_json",
    "content_hash",
    "TelemetryConfig",
    "WindowStats",
    "TimeSeries",
    "AttemptTrace",
    "TelemetryCollector",
    "BurnWindow",
    "BurnRateReport",
    "burn_rate_report",
    "open_loop_series",
    "open_loop_traces",
    "spans_from_traces",
    "publish",
    "drain_published",
    "clear_published",
]


def canonical_json(payload: dict) -> str:
    """Sorted-key, no-whitespace JSON: one byte string per value.

    The serving stack's single canonical form -- scenario specs and
    telemetry series hash the same encoding
    (:mod:`repro.serve.scenario` aliases these helpers).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload: dict) -> str:
    """sha256 of the canonical JSON, truncated to 40 hex chars."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:40]


@dataclass(frozen=True)
class TelemetryConfig:
    """What to collect during a simulation run.

    ``window_ns`` is the tumbling-window width on the simulation clock.
    ``slo_p99_ns``, when set, counts per-window SLO violations
    (completions whose sojourn exceeds it); the tenancy layer overrides
    it per request with each tenant's own ``p99_slo_ns``.  ``traces``
    additionally records one :class:`AttemptTrace` per dispatch attempt
    (memory scales with attempts, hence opt-in).
    """

    window_ns: float
    slo_p99_ns: Optional[float] = None
    traces: bool = False

    def __post_init__(self):
        if not self.window_ns > 0.0:
            raise ValueError(
                f"window_ns must be positive, got {self.window_ns}"
            )


@dataclass(frozen=True)
class WindowStats:
    """Aggregates of one tumbling window (see module doc for binning).

    ``class_stats`` is the per-SLO-class split the burn-rate math reads:
    sorted ``(class, completed, violations, shed, failed)`` tuples,
    present only when the simulator stamps classes (the tenancy layer).
    """

    index: int
    completed: int = 0
    failed: int = 0
    shed: int = 0
    retries: int = 0
    hedges: int = 0
    violations: int = 0
    max_queue_depth: int = 0
    p50_ns: Optional[float] = None
    p99_ns: Optional[float] = None
    shard_completed: Tuple[int, ...] = ()
    shard_failed: Tuple[int, ...] = ()
    class_stats: Tuple[Tuple[str, int, int, int, int], ...] = ()

    @property
    def shard_availability(self) -> Tuple[float, ...]:
        """Per-shard completed / (completed + failed); 1.0 when idle."""
        return tuple(
            c / (c + f) if (c + f) else 1.0
            for c, f in zip(self.shard_completed, self.shard_failed)
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "retries": self.retries,
            "hedges": self.hedges,
            "violations": self.violations,
            "max_queue_depth": self.max_queue_depth,
            "p50_ns": self.p50_ns,
            "p99_ns": self.p99_ns,
            "shard_completed": list(self.shard_completed),
            "shard_failed": list(self.shard_failed),
            "class_stats": [list(c) for c in self.class_stats],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WindowStats":
        return cls(
            index=int(d["index"]),
            completed=int(d["completed"]),
            failed=int(d["failed"]),
            shed=int(d["shed"]),
            retries=int(d["retries"]),
            hedges=int(d["hedges"]),
            violations=int(d["violations"]),
            max_queue_depth=int(d["max_queue_depth"]),
            p50_ns=None if d["p50_ns"] is None else float(d["p50_ns"]),
            p99_ns=None if d["p99_ns"] is None else float(d["p99_ns"]),
            shard_completed=tuple(int(x) for x in d["shard_completed"]),
            shard_failed=tuple(int(x) for x in d["shard_failed"]),
            class_stats=tuple(
                (str(c[0]), int(c[1]), int(c[2]), int(c[3]), int(c[4]))
                for c in d["class_stats"]
            ),
        )


@dataclass(frozen=True)
class TimeSeries:
    """The frozen windowed time-series artifact of one simulation run.

    JSON round-trips exactly (floats keep shortest-repr identity), so a
    series replayed from a sweep record or ``timeseries.jsonl`` is
    byte-identical to the freshly collected one; :meth:`content_key`
    hashes the canonical JSON, so equal series share a key.
    """

    window_ns: float
    n_shards: int
    windows: Tuple[WindowStats, ...]

    def window_start_ns(self, index: int) -> float:
        return index * self.window_ns

    @property
    def span_ns(self) -> float:
        """Sim time covered by the dense window range."""
        return len(self.windows) * self.window_ns

    @property
    def completed(self) -> int:
        return sum(w.completed for w in self.windows)

    @property
    def failed(self) -> int:
        return sum(w.failed for w in self.windows)

    @property
    def shed(self) -> int:
        return sum(w.shed for w in self.windows)

    @property
    def retries(self) -> int:
        return sum(w.retries for w in self.windows)

    @property
    def hedges(self) -> int:
        return sum(w.hedges for w in self.windows)

    @property
    def violations(self) -> int:
        return sum(w.violations for w in self.windows)

    @property
    def max_queue_depth(self) -> int:
        return max((w.max_queue_depth for w in self.windows), default=0)

    @property
    def classes(self) -> Tuple[str, ...]:
        """Every SLO class that appears in any window, sorted."""
        names = {c[0] for w in self.windows for c in w.class_stats}
        return tuple(sorted(names))

    def to_dict(self) -> dict:
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "window_ns": self.window_ns,
            "n_shards": self.n_shards,
            "windows": [w.to_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TimeSeries":
        return cls(
            window_ns=float(d["window_ns"]),
            n_shards=int(d["n_shards"]),
            windows=tuple(
                WindowStats.from_dict(w) for w in d["windows"]
            ),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "TimeSeries":
        return cls.from_dict(json.loads(text))

    def content_key(self) -> str:
        """Stable content hash of the canonical JSON form."""
        return content_hash(self.to_dict())


@dataclass(frozen=True)
class AttemptTrace:
    """One dispatch attempt of one request, as pure data.

    ``attempt`` is 1-based; ``cause`` is ``"arrival"`` / ``"retry"`` /
    ``"hedge"``; ``status`` is ``"completed"`` (this attempt won),
    ``"absorbed"`` (finished after a hedged twin already won or the
    request had failed), ``"cancelled"`` (in service when its replica
    crashed) or ``"lost"`` (queued at crash time, never started).
    ``start_ns`` is -1.0 for attempts that never reached a core.
    """

    rid: int
    attempt: int
    shard: int
    replica: int
    core: int
    cause: str
    dispatch_ns: float
    start_ns: float
    finish_ns: float
    status: str

    def to_dict(self) -> dict:
        return {
            "rid": self.rid,
            "attempt": self.attempt,
            "shard": self.shard,
            "replica": self.replica,
            "core": self.core,
            "cause": self.cause,
            "dispatch_ns": self.dispatch_ns,
            "start_ns": self.start_ns,
            "finish_ns": self.finish_ns,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AttemptTrace":
        return cls(
            rid=int(d["rid"]),
            attempt=int(d["attempt"]),
            shard=int(d["shard"]),
            replica=int(d["replica"]),
            core=int(d["core"]),
            cause=str(d["cause"]),
            dispatch_ns=float(d["dispatch_ns"]),
            start_ns=float(d["start_ns"]),
            finish_ns=float(d["finish_ns"]),
            status=str(d["status"]),
        )


class _WindowAcc:
    """Mutable per-window accumulator behind :class:`TelemetryCollector`."""

    __slots__ = (
        "completed",
        "failed",
        "shed",
        "retries",
        "hedges",
        "violations",
        "max_depth",
        "latencies",
        "shard_completed",
        "shard_failed",
        "classes",
    )

    def __init__(self, n_shards: int):
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.retries = 0
        self.hedges = 0
        self.violations = 0
        self.max_depth = 0
        self.latencies: list = []
        self.shard_completed = [0] * n_shards
        self.shard_failed = [0] * n_shards
        # class -> [completed, violations, shed, failed]
        self.classes: Dict[str, list] = {}

    def cls(self, name: str) -> list:
        acc = self.classes.get(name)
        if acc is None:
            acc = self.classes[name] = [0, 0, 0, 0]
        return acc


class TelemetryCollector:
    """Per-run mutable state the simulators' hooks feed.

    Every hook is observation-only -- no simulator state is read back
    out, so enabling telemetry cannot perturb a run.  Events at time
    ``t`` land in window ``int(t / window_ns)`` (one IEEE division plus
    a truncation, the exact arithmetic the vectorized kernel path in
    :func:`open_loop_series` performs), so both engines bin identically.
    """

    __slots__ = ("config", "window_ns", "n_shards", "traces", "_acc", "_max")

    def __init__(self, config: TelemetryConfig, n_shards: int = 1):
        self.config = config
        self.window_ns = config.window_ns
        self.n_shards = n_shards
        self.traces: Optional[List[AttemptTrace]] = (
            [] if config.traces else None
        )
        self._acc: Dict[int, _WindowAcc] = {}
        self._max = -1

    def _window(self, t: float) -> _WindowAcc:
        idx = int(t / self.window_ns)
        acc = self._acc.get(idx)
        if acc is None:
            acc = self._acc[idx] = _WindowAcc(self.n_shards)
            if idx > self._max:
                self._max = idx
        return acc

    def grow(self, n_shards: int) -> None:
        """Widen the per-shard arrays mid-run (a reconfig shard split).

        Windows accumulated before the split are zero-padded for the new
        shards; shrinking is never needed (merges retire shard ids but
        their columns remain).  No-op when not actually growing.
        """
        if n_shards <= self.n_shards:
            return
        pad = n_shards - self.n_shards
        for acc in self._acc.values():
            acc.shard_completed.extend([0] * pad)
            acc.shard_failed.extend([0] * pad)
        self.n_shards = n_shards

    # -- hooks (called by the simulators; gated on `is not None`) -----------

    def on_completed(
        self,
        t: float,
        latency_ns: float,
        shard: int = 0,
        slo_class: Optional[str] = None,
        slo_ns: Optional[float] = None,
    ) -> None:
        acc = self._window(t)
        acc.completed += 1
        acc.shard_completed[shard] += 1
        acc.latencies.append(latency_ns)
        slo = slo_ns if slo_ns is not None else self.config.slo_p99_ns
        violated = slo is not None and latency_ns > slo
        if violated:
            acc.violations += 1
        if slo_class is not None:
            cls = acc.cls(slo_class)
            cls[0] += 1
            if violated:
                cls[1] += 1

    def on_failed(
        self, t: float, shard: int = 0, slo_class: Optional[str] = None
    ) -> None:
        acc = self._window(t)
        acc.failed += 1
        acc.shard_failed[shard] += 1
        if slo_class is not None:
            acc.cls(slo_class)[3] += 1

    def on_shed(
        self, t: float, shard: int = 0, slo_class: Optional[str] = None
    ) -> None:
        acc = self._window(t)
        acc.shed += 1
        if slo_class is not None:
            acc.cls(slo_class)[2] += 1

    def on_retry(self, t: float, shard: int = 0) -> None:
        self._window(t).retries += 1

    def on_hedge(self, t: float, shard: int = 0) -> None:
        self._window(t).hedges += 1

    def on_depth(self, t: float, depth: int) -> None:
        acc = self._window(t)
        if depth > acc.max_depth:
            acc.max_depth = depth

    # -- trace recording (only reached when config.traces) ------------------

    def trace_open_loop(self, req, now: float) -> None:
        """Single-node completion: one attempt, dispatched at arrival."""
        self.traces.append(
            AttemptTrace(
                rid=req.rid,
                attempt=1,
                shard=0,
                replica=0,
                core=req.core,
                cause="arrival",
                dispatch_ns=req.arrival_ns,
                start_ns=req.start_ns,
                finish_ns=now,
                status="completed",
            )
        )

    def trace_attempt(
        self, attempt, shard: int, replica: int, finish_ns: float, status: str
    ) -> None:
        """Cluster attempt end (duck-typed ``_Attempt``: the cluster sim
        stamps ``attempt_no`` / ``cause`` / ``dispatch_ns`` at dispatch
        time whenever tracing is on)."""
        self.traces.append(
            AttemptTrace(
                rid=attempt.record.rid,
                attempt=attempt.attempt_no,
                shard=shard,
                replica=replica,
                core=attempt.core,
                cause=attempt.cause,
                dispatch_ns=attempt.dispatch_ns,
                start_ns=attempt.start_ns,
                finish_ns=finish_ns,
                status=status,
            )
        )

    # -- finalization --------------------------------------------------------

    def series(self) -> TimeSeries:
        """The frozen dense time-series (windows 0..last non-empty)."""
        # Imported lazily like repro.serve.metrics: repro.bench pulls in
        # the experiment drivers, so a top-level import would be circular.
        from repro.bench.stats import percentiles

        windows = []
        for idx in range(self._max + 1):
            acc = self._acc.get(idx)
            if acc is None:
                windows.append(
                    WindowStats(
                        index=idx,
                        shard_completed=(0,) * self.n_shards,
                        shard_failed=(0,) * self.n_shards,
                    )
                )
                continue
            if acc.latencies:
                ps = percentiles(acc.latencies, (50.0, 99.0))
                p50_ns: Optional[float] = float(ps[50.0])
                p99_ns: Optional[float] = float(ps[99.0])
            else:
                p50_ns = p99_ns = None
            windows.append(
                WindowStats(
                    index=idx,
                    completed=acc.completed,
                    failed=acc.failed,
                    shed=acc.shed,
                    retries=acc.retries,
                    hedges=acc.hedges,
                    violations=acc.violations,
                    max_queue_depth=acc.max_depth,
                    p50_ns=p50_ns,
                    p99_ns=p99_ns,
                    shard_completed=tuple(acc.shard_completed),
                    shard_failed=tuple(acc.shard_failed),
                    class_stats=tuple(
                        (name, c[0], c[1], c[2], c[3])
                        for name, c in sorted(acc.classes.items())
                    ),
                )
            )
        return TimeSeries(
            window_ns=self.window_ns,
            n_shards=self.n_shards,
            windows=tuple(windows),
        )

    def trace_tuple(self) -> Optional[Tuple[AttemptTrace, ...]]:
        return None if self.traces is None else tuple(self.traces)


# ---------------------------------------------------------------------------
# Vectorized aggregation for the Lindley kernel path
# ---------------------------------------------------------------------------


def open_loop_series(
    config: TelemetryConfig,
    arrivals,
    start,
    finish,
    depth,
) -> TimeSeries:
    """Windowed series straight from the kernel's arrays.

    The Lindley kernel never executes per-event code, so its telemetry
    is computed from the (arrival, start, finish, dispatch-depth) arrays
    instead -- with the *same* binning arithmetic (one float64 division,
    truncate) and the *same* percentile code on the same per-window
    latency multisets as :class:`TelemetryCollector`, which is what
    makes the engines byte-identical (``tests/test_telemetry_differential
    .py`` pins it).  ``depth[i]`` is the backlog at request ``i``'s
    dispatch instant, exactly what the event loop samples.
    """
    import numpy as np

    from repro.bench.stats import percentiles

    w = config.window_ns
    n = int(arrivals.shape[0])
    if n == 0:
        return TimeSeries(window_ns=w, n_shards=1, windows=())
    w_arr = (arrivals / w).astype(np.int64)
    w_fin = (finish / w).astype(np.int64)
    n_win = int(max(w_arr[-1], w_fin[-1])) + 1
    lat = finish - arrivals
    completed = np.bincount(w_fin, minlength=n_win)
    if config.slo_p99_ns is not None:
        over = w_fin[lat > config.slo_p99_ns]
        violations = np.bincount(over, minlength=n_win)
    else:
        violations = np.zeros(n_win, dtype=np.int64)
    depth_max = np.zeros(n_win, dtype=np.int64)
    np.maximum.at(depth_max, w_arr, depth)
    # Finish times are strictly increasing (s > 0), so per-window
    # latencies are contiguous slices.
    bounds = np.searchsorted(w_fin, np.arange(n_win + 1))
    windows = []
    for idx in range(n_win):
        lo, hi = int(bounds[idx]), int(bounds[idx + 1])
        c = int(completed[idx])
        if c:
            ps = percentiles(lat[lo:hi], (50.0, 99.0))
            p50_ns: Optional[float] = float(ps[50.0])
            p99_ns: Optional[float] = float(ps[99.0])
        else:
            p50_ns = p99_ns = None
        windows.append(
            WindowStats(
                index=idx,
                completed=c,
                violations=int(violations[idx]),
                max_queue_depth=int(depth_max[idx]),
                p50_ns=p50_ns,
                p99_ns=p99_ns,
                shard_completed=(c,),
                shard_failed=(0,),
            )
        )
    return TimeSeries(window_ns=w, n_shards=1, windows=tuple(windows))


def open_loop_traces(arrivals, start, finish) -> Tuple[AttemptTrace, ...]:
    """Kernel-path attempt traces: single core, finishes in rid order."""
    a = arrivals.tolist()
    st = start.tolist()
    f = finish.tolist()
    return tuple(
        AttemptTrace(
            rid=i,
            attempt=1,
            shard=0,
            replica=0,
            core=0,
            cause="arrival",
            dispatch_ns=a[i],
            start_ns=st[i],
            finish_ns=f[i],
            status="completed",
        )
        for i in range(len(a))
    )


# ---------------------------------------------------------------------------
# SLO burn rate: pure functions of a TimeSeries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BurnWindow:
    """One window's view of the error budget.

    ``burn_rate`` is the standard SRE ratio: the window's bad fraction
    over the budget fraction (1.0 = burning exactly at budget).
    ``budget_left`` is the fraction of the whole run's budget remaining
    after this window (may go negative once exhausted).
    """

    index: int
    completed: int
    bad: int
    burn_rate: float
    budget_left: float


@dataclass(frozen=True)
class BurnRateReport:
    """Error-budget accounting over one :class:`TimeSeries`.

    The budget is ``budget_fraction`` of the run's completed-or-failed
    requests (e.g. 0.01 for a 99% SLO); *bad* requests are completions
    over the SLO plus failures (sheds are deliberate admission-control
    rejections and excluded unless ``include_shed``).
    ``time_to_exhaustion_ns`` extrapolates the observed average burn:
    the sim time at which the budget runs out if the run kept burning at
    its mean rate (None when nothing burned; at most ``span_ns`` when
    the budget was exhausted inside the run).
    """

    slo_class: Optional[str]
    budget_fraction: float
    window_ns: float
    windows: Tuple[BurnWindow, ...]
    total: int
    total_bad: int
    consumed: float
    exhausted_window: Optional[int]
    time_to_exhaustion_ns: Optional[float]


def _window_counts(
    w: WindowStats, slo_class: Optional[str], include_shed: bool
) -> Tuple[int, int]:
    """(completed-or-failed, bad) of one window for a class or overall."""
    if slo_class is None:
        total = w.completed + w.failed
        bad = w.violations + w.failed
        if include_shed:
            total += w.shed
            bad += w.shed
        return total, bad
    for name, completed, violations, shed, failed in w.class_stats:
        if name == slo_class:
            total = completed + failed
            bad = violations + failed
            if include_shed:
                total += shed
                bad += shed
            return total, bad
    return 0, 0


def burn_rate_report(
    series: TimeSeries,
    budget_fraction: float,
    slo_class: Optional[str] = None,
    include_shed: bool = False,
) -> BurnRateReport:
    """Pure error-budget accounting over a windowed time-series.

    Deterministic scalar arithmetic only -- the report is a function of
    the series, so it inherits the series' cross-engine byte-identity.
    """
    if not 0.0 < budget_fraction <= 1.0:
        raise ValueError(
            f"budget_fraction must be in (0, 1], got {budget_fraction}"
        )
    per_window = [
        _window_counts(w, slo_class, include_shed) for w in series.windows
    ]
    total = sum(t for t, _ in per_window)
    total_bad = sum(b for _, b in per_window)
    budget = budget_fraction * total
    windows = []
    cum_bad = 0
    exhausted: Optional[int] = None
    for w, (count, bad) in zip(series.windows, per_window):
        cum_bad += bad
        burn = (
            (bad / count) / budget_fraction if count else 0.0
        )
        left = 1.0 - (cum_bad / budget) if budget else 1.0
        if exhausted is None and budget and cum_bad >= budget:
            exhausted = w.index
        windows.append(
            BurnWindow(
                index=w.index,
                completed=count,
                bad=bad,
                burn_rate=burn,
                budget_left=left,
            )
        )
    consumed = (total_bad / budget) if budget else 0.0
    tte: Optional[float] = None
    if consumed > 0.0:
        tte = series.span_ns / consumed
    return BurnRateReport(
        slo_class=slo_class,
        budget_fraction=budget_fraction,
        window_ns=series.window_ns,
        windows=tuple(windows),
        total=total,
        total_bad=total_bad,
        consumed=consumed,
        exhausted_window=exhausted,
        time_to_exhaustion_ns=tte,
    )


# ---------------------------------------------------------------------------
# Obs bridges: traces as spans, published series for --obs-dir
# ---------------------------------------------------------------------------


def spans_from_traces(
    traces: Sequence[AttemptTrace], label: str = "serve"
) -> List[dict]:
    """Render attempt traces as ``repro.obs`` span dicts.

    One parent ``request`` span per rid (first dispatch to last attempt
    end) with one ``request/attempt`` child per attempt, on sim-time
    nanoseconds with a synthetic pid of 0 -- deterministic, so the span
    stream is as replayable as the traces.  ``status`` is ``"error"``
    for cancelled/lost attempts and for requests whose last attempt did
    not complete, which makes crash fallout visible in the flame table's
    error column.
    """
    by_rid: Dict[int, List[AttemptTrace]] = {}
    for t in traces:
        by_rid.setdefault(t.rid, []).append(t)
    spans: List[dict] = []
    for rid in sorted(by_rid):
        attempts = by_rid[rid]
        first = min(a.dispatch_ns for a in attempts)
        last = max(a.finish_ns for a in attempts)
        won = any(a.status == "completed" for a in attempts)
        req_sid = f"{label}:req:{rid}"
        spans.append(
            {
                "sid": req_sid,
                "parent": None,
                "name": "request",
                "path": "request",
                "pid": 0,
                "start_ns": first,
                "wall_ns": last - first,
                "status": "ok" if won else "error",
                "attrs": {
                    "label": label,
                    "rid": rid,
                    "shard": attempts[0].shard,
                    "attempts": len(attempts),
                },
            }
        )
        for a in attempts:
            spans.append(
                {
                    "sid": f"{req_sid}:a{a.attempt}",
                    "parent": req_sid,
                    "name": "attempt",
                    "path": "request/attempt",
                    "pid": 0,
                    "start_ns": a.dispatch_ns,
                    "wall_ns": a.finish_ns - a.dispatch_ns,
                    "status": (
                        "error"
                        if a.status in ("cancelled", "lost")
                        else "ok"
                    ),
                    "attrs": {
                        "label": label,
                        "rid": a.rid,
                        "shard": a.shard,
                        "replica": a.replica,
                        "core": a.core,
                        "cause": a.cause,
                        "outcome": a.status,
                    },
                }
            )
    return spans


#: Series (and trace spans) published by experiments this process, for
#: ``--obs-dir`` to drain into ``timeseries.jsonl`` / ``spans.jsonl``.
_PUBLISHED: List[dict] = []
_PUBLISHED_SPANS: List[dict] = []


def publish(
    label: str,
    series: TimeSeries,
    traces: Optional[Sequence[AttemptTrace]] = None,
) -> None:
    """Buffer a labelled series for the CLI's obs sink.

    Experiments call this as they build their telemetry tables; the
    bench CLI drains the buffer into ``timeseries.jsonl`` (and trace
    spans into ``spans.jsonl``) when ``--obs-dir`` is set.
    """
    _PUBLISHED.append(
        {
            "label": label,
            "content_key": series.content_key(),
            "series": series.to_dict(),
        }
    )
    if traces:
        _PUBLISHED_SPANS.extend(spans_from_traces(traces, label=label))


def drain_published() -> Tuple[List[dict], List[dict]]:
    """(timeseries records, trace span dicts); empties the buffers."""
    records, spans = list(_PUBLISHED), list(_PUBLISHED_SPANS)
    _PUBLISHED.clear()
    _PUBLISHED_SPANS.clear()
    return records, spans


def clear_published() -> None:
    """Drop buffered series (the CLI resets between in-process runs)."""
    _PUBLISHED.clear()
    _PUBLISHED_SPANS.clear()
