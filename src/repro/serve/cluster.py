"""Deterministic discrete-event simulation of a sharded, replicated cluster.

The single-node simulator (:mod:`repro.serve.core`) models one machine;
this module scales it out.  A cluster is ``n_shards`` key ranges, each
served by ``n_replicas`` independent replicas (every replica is a full
:class:`~repro.serve.core._EventLoop` machine with its own cores and the
shard's :class:`~repro.serve.core.ServiceModel`), all interleaved on one
global :class:`~repro.serve.core.EventHeap` so the whole cluster shares a
single deterministic clock.

The router (:mod:`repro.serve.router`) maps each request's key to its
shard by binary search and picks the least-backlog healthy replica.
Failure handling, in the order a request experiences it:

* **retry + capped exponential backoff** -- an attempt lost to a crash
  (or a dispatch that finds every replica down) is retried after
  ``min(base * 2**(k-1), cap)`` ns, up to ``max_attempts`` total
  attempts; a request that exhausts them fails and counts against
  availability.
* **hedging** -- optionally, a request still incomplete
  ``hedge_after_ns`` after dispatch is duplicated to a *different*
  healthy replica; the first completion wins and the loser's work is
  simply absorbed (hedging without cancellation, so its capacity cost is
  modelled, not assumed away).
* **degraded-mode routing** -- while some replicas of a shard are down,
  dispatch simply concentrates on the survivors (the backlog-aware
  replica choice does this with no special casing); only a fully-dark
  shard forces backoff.

Faults come from a pre-computed seeded schedule
(:mod:`repro.serve.faults`): crashes empty a replica (queued and
in-flight attempts are lost, then retried by the router) and slow events
multiply its service times.

Live reconfiguration (:mod:`repro.serve.reconfig`) rides the same event
queue: shard splits/merges version the key-range partition into epochs
(stale requests re-resolve at dispatch), rebuilds drain a replica via
the degraded-routing path and swap its index atomically, and an
autoscaler adds/retires replicas from queue-depth and p99 signals.  A
cluster without a :class:`~repro.serve.reconfig.ReconfigSpec` runs the
exact pre-reconfig code paths, byte for byte.

With one shard, one replica and no faults, the cluster *is* the
single-node simulator: the same events are pushed with the same
sequence numbers and popped by the same loop code, so results are
byte-identical (``tests/test_cluster_differential.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.serve.core import (
    _ARRIVAL,
    _FINISH,
    EventHeap,
    Request,
    ServiceModel,
    _EventLoop,
)
from repro.serve.faults import (
    CRASH,
    FaultConfig,
    FaultEvent,
    fault_schedule,
)
from repro.serve.metrics import LatencySummary, summarize
from repro.serve.reconfig import (
    ReconfigEvent,
    ReconfigRuntime,
    ReconfigSpec,
)
from repro.serve.router import RouterPolicy, ShardMap, pick_replica
from repro.serve.telemetry import TelemetryCollector, TelemetryConfig

# Additional event kinds; _ARRIVAL (0) and _FINISH (1) come from core so
# the degenerate cluster pushes exactly the single-node event stream.
_HEDGE = 2
_RETRY = 3
_FLUSH = 4
_FAULT_BEGIN = 5
_FAULT_END = 6
_RECONFIG = 7


@dataclass
class ClusterRequest:
    """End-to-end record of one request, across all its attempts."""

    rid: int
    key: int
    shard: int
    arrival_ns: float
    attempts: int = 0
    retries: int = 0
    hedged: bool = False
    completed: bool = False
    failed: bool = False
    start_ns: float = -1.0
    finish_ns: float = -1.0
    replica: int = -1
    core: int = -1
    #: Attempts currently queued or in service (internal bookkeeping).
    live: int = 0
    #: Replica id of the most recent dispatch (hedges exclude it).
    last_replica: int = -1
    #: Shard-map epoch the request was last routed under; requests
    #: stamped with a stale epoch re-resolve their shard at dispatch.
    epoch: int = 0

    @property
    def latency_ns(self) -> float:
        """Sojourn time of the *winning* attempt, from original arrival."""
        return self.finish_ns - self.arrival_ns


@dataclass
class _Attempt(Request):
    """One dispatch of a request to one replica (a core-level Request)."""

    record: Optional[ClusterRequest] = None
    rep: Optional["_Replica"] = None
    cancelled: bool = False
    #: Trace metadata, stamped at dispatch only when tracing is on.
    cause: str = "arrival"
    dispatch_ns: float = -1.0
    attempt_no: int = 0


@dataclass
class _Replica:
    """One replica: an independent single-node event loop plus health."""

    shard: int
    rid: int
    loop: _EventLoop
    up: bool = True
    slow: bool = False
    served: int = 0
    crash_count: int = 0
    slow_count: int = 0
    #: Permanently removed from the rotation (merge or scale-down);
    #: queued work still completes, and fault recovery cannot revive it.
    retired: bool = False
    #: Out of the rotation for a background index rebuild.
    rebuilding: bool = False

    @property
    def backlog(self) -> int:
        return sum(c.backlog for c in self.loop.cores)


@dataclass
class ShardStats:
    """Per-shard operational counters of one simulation run."""

    shard: int
    completed: int = 0
    retries: int = 0
    hedges: int = 0
    crashes: int = 0
    slow_events: int = 0
    #: Largest backlog (queued + in service over all replicas) seen at
    #: any dispatch instant.
    max_queue_depth: int = 0


@dataclass
class Cluster:
    """Topology + policy of a simulated cluster (no run state).

    ``services[s]`` models shard ``s``'s index build; every replica of a
    shard shares it (replicas serve identical copies of the shard).
    """

    shard_map: ShardMap
    services: Sequence[ServiceModel]
    n_replicas: int = 2
    n_cores: int = 2
    policy: RouterPolicy = field(default_factory=RouterPolicy)
    faults: Optional[FaultConfig] = None
    #: Optional live-reconfiguration plan (:mod:`repro.serve.reconfig`);
    #: None (or a spec with no triggers) leaves the run untouched.
    reconfig: Optional[ReconfigSpec] = None

    def __post_init__(self):
        if len(self.services) != self.shard_map.n_shards:
            raise ValueError(
                f"{self.shard_map.n_shards} shards need "
                f"{self.shard_map.n_shards} service models, "
                f"got {len(self.services)}"
            )
        if self.n_replicas < 1:
            raise ValueError(
                f"need at least one replica, got {self.n_replicas}"
            )

    @property
    def n_shards(self) -> int:
        return self.shard_map.n_shards


@dataclass
class ClusterResult:
    """Everything one cluster run produced, in deterministic order."""

    records: List[ClusterRequest]
    n_shards: int
    n_replicas: int
    n_cores: int
    makespan_ns: float
    completed: int
    failed: int
    total_retries: int
    total_hedges: int
    crashes: int
    slow_events: int
    fault_events: List[FaultEvent]
    shard_stats: List[ShardStats]
    #: Windowed :class:`~repro.serve.telemetry.TimeSeries` when the run
    #: was given a :class:`~repro.serve.telemetry.TelemetryConfig`.
    telemetry: Optional[object] = None
    #: Tuple of :class:`~repro.serve.telemetry.AttemptTrace` when the
    #: config asked for traces.
    traces: Optional[tuple] = None
    #: Reconfiguration history, present only when the cluster had an
    #: enabled :class:`~repro.serve.reconfig.ReconfigSpec`: the epoch
    #: sequence, completed rebuilds ``(time_ns, shard, replica)``,
    #: autoscaler actions ``(time_ns, shard, +1 | -1)``, and the final
    #: live replica count.
    epochs: Optional[tuple] = None
    rebuilds: Optional[tuple] = None
    scale_events: Optional[tuple] = None
    live_replicas: Optional[int] = None

    @property
    def epoch_count(self) -> int:
        """Number of shard-map epochs the run went through (1 = static)."""
        return len(self.epochs) if self.epochs else 1

    @property
    def final_shards(self) -> int:
        """Key ranges in the final epoch (splits add, merges remove)."""
        return len(self.epochs[-1].owners) if self.epochs else self.n_shards

    @property
    def final_replicas(self) -> int:
        """Live replicas at the end of the run, over active shards."""
        if self.live_replicas is not None:
            return self.live_replicas
        return self.n_shards * self.n_replicas

    @property
    def availability(self) -> float:
        """Fraction of requests that completed (vs exhausted retries)."""
        return self.completed / len(self.records) if self.records else 1.0

    @property
    def max_queue_depth(self) -> int:
        return max((s.max_queue_depth for s in self.shard_stats), default=0)

    @property
    def latencies_ns(self) -> List[float]:
        return [r.latency_ns for r in self.records if r.completed]

    @property
    def throughput_per_sec(self) -> float:
        if self.makespan_ns <= 0.0:
            return 0.0
        return self.completed / (self.makespan_ns * 1e-9)

    def summary(self) -> LatencySummary:
        """Percentiles over *completed* requests (failed ones have no
        latency; availability reports them separately)."""
        return summarize(self.latencies_ns, self.throughput_per_sec)

    def to_metrics(self, registry=None, prefix: str = "serve.cluster") -> None:
        """Publish run counters into an obs metrics registry.

        Mirrors :meth:`repro.serve.metrics.LatencySummary.to_metrics`:
        per-shard queue-depth maxima and fault/retry counts land in the
        same ``metrics.json`` snapshot as every other subsystem, and the
        availability gauge keeps the *worst* value over repeated runs.
        """
        from repro.obs.metrics import get_registry

        reg = registry if registry is not None else get_registry()
        reg.counter(f"{prefix}.requests").inc(len(self.records))
        reg.counter(f"{prefix}.completed").inc(self.completed)
        reg.counter(f"{prefix}.failed").inc(self.failed)
        reg.counter(f"{prefix}.retries").inc(self.total_retries)
        reg.counter(f"{prefix}.hedges").inc(self.total_hedges)
        reg.counter(f"{prefix}.faults.crashes").inc(self.crashes)
        reg.counter(f"{prefix}.faults.slow").inc(self.slow_events)
        reg.gauge(f"{prefix}.availability.min").set_min(self.availability)
        # Topology gauges: the autoscaler's inputs/outputs are observable
        # even for static runs (final == initial there).
        reg.gauge(f"{prefix}.shards").set(float(self.final_shards))
        if self.final_replicas > 0:
            reg.gauge(f"{prefix}.replicas").set(float(self.final_replicas))
        reg.counter(f"{prefix}.epochs").inc(self.epoch_count)
        depth_hist = reg.histogram(f"{prefix}.shard_queue_depth.max")
        for st in self.shard_stats:
            depth_hist.observe(st.max_queue_depth)
            reg.gauge(f"{prefix}.shard{st.shard}.queue_depth.max").set_max(
                st.max_queue_depth
            )
            reg.counter(f"{prefix}.shard{st.shard}.retries").inc(st.retries)
            reg.counter(f"{prefix}.shard{st.shard}.faults").inc(
                st.crashes + st.slow_events
            )


class _ClusterSim:
    """One run's mutable state; :func:`simulate_cluster` drives it.

    ``engine`` selects the event-queue implementation (``None`` = the
    ambient default): the fast engine's :class:`~repro.serve.fastsim.
    SealedEventQueue` batch-sorts the up-front events -- every arrival
    plus the merged fault timeline -- in one pass instead of heap-pushing
    them individually, and pops the identical total order, so results
    are byte-identical across engines.
    """

    def __init__(
        self,
        cluster: Cluster,
        horizon_ns: float,
        engine: Optional[str] = None,
        telemetry: Optional[TelemetryConfig] = None,
    ):
        from repro.serve import fastsim

        self.cluster = cluster
        # The cluster owns the collector (replica loops keep theirs None
        # so completions are not double counted); all hooks fire from
        # shared code paths, so telemetry is engine-identical here too.
        self.telemetry: Optional[TelemetryCollector] = (
            TelemetryCollector(telemetry, n_shards=cluster.n_shards)
            if telemetry is not None
            else None
        )
        if fastsim.resolve_serve_engine(engine) == "fast":
            self.events = fastsim.SealedEventQueue()
        else:
            self.events = EventHeap()
        self.replicas: List[List[_Replica]] = []
        for shard in range(cluster.n_shards):
            row = []
            for rid in range(cluster.n_replicas):
                loop = _EventLoop(
                    cluster.services[shard],
                    cluster.n_cores,
                    events=self.events,
                )
                rep = _Replica(shard=shard, rid=rid, loop=loop)
                loop.on_finish = self._make_completion_hook(rep)
                row.append(rep)
            self.replicas.append(row)
        self.records: List[ClusterRequest] = []
        self.shard_stats = [
            ShardStats(shard=s) for s in range(cluster.n_shards)
        ]
        self.batch_buf: Dict[int, List[ClusterRequest]] = {}
        self.makespan = 0.0
        self.completed = 0
        self.failed = 0
        self.total_retries = 0
        self.total_hedges = 0
        self.crashes = 0
        self.slow_events = 0
        self.schedule: List[FaultEvent] = []
        if cluster.faults is not None and cluster.faults.enabled:
            self.schedule = fault_schedule(
                cluster.faults,
                cluster.n_shards,
                cluster.n_replicas,
                horizon_ns,
            )
        # A disabled spec stays None: every reconfig branch below is
        # gated on it, so runs without triggers are byte-identical to
        # the pre-reconfig simulator (the differential suite pins this).
        self.reconfig: Optional[ReconfigRuntime] = None
        if cluster.reconfig is not None and cluster.reconfig.enabled:
            self.reconfig = ReconfigRuntime(self, cluster.reconfig, horizon_ns)

    # -- event generation ---------------------------------------------------

    def _make_record(
        self, rid: int, key: int, t: float, shard: int
    ) -> ClusterRequest:
        """Record factory; the tenancy layer overrides this to attach
        tenant identity without perturbing the event stream.  ``shard``
        is precomputed for the whole batch by ``load``."""
        return ClusterRequest(
            rid=rid,
            key=int(key),
            shard=shard,
            arrival_ns=float(t),
        )

    def load(self, arrivals_ns: Sequence[float], keys: Sequence[int]) -> None:
        """Push arrivals first (sequence numbers 0..n-1, exactly as the
        single-node simulator does), then the fault schedule.  Shard
        routing is vectorized over the whole key batch up front
        (:meth:`~repro.serve.router.ShardMap.shards_for`, exactly
        ``shard_for`` per key)."""
        shards = self.cluster.shard_map.shards_for(keys)
        for rid, (t, key) in enumerate(zip(arrivals_ns, keys)):
            record = self._make_record(rid, key, t, shards[rid])
            self.records.append(record)
            self.events.push(float(t), _ARRIVAL, record)
        for event in self.schedule:
            self.events.push(event.time_ns, _FAULT_BEGIN, event)
            self.events.push(event.recovery_ns, _FAULT_END, event)
        if self.reconfig is not None:
            for ev in self.reconfig.schedule:
                self.events.push(ev.time_ns, _RECONFIG, ev)

    # -- online operations (reconfig runtime calls back in) -----------------

    def schedule_reconfig(self, time_ns: float, ev: ReconfigEvent) -> None:
        """Push a follow-up trigger (a rebuild's completion) mid-run."""
        self.events.push(time_ns, _RECONFIG, ev)

    def provision_shard(self, service: ServiceModel) -> int:
        """Bring up a brand-new shard (a split's upper half): fresh
        replicas serving the parent's index, fresh stats row, and a
        widened telemetry collector.  Returns the new shard id --
        existing ids never shift."""
        sid = len(self.replicas)
        row = []
        for rid in range(self.cluster.n_replicas):
            loop = _EventLoop(
                service, self.cluster.n_cores, events=self.events
            )
            rep = _Replica(shard=sid, rid=rid, loop=loop)
            loop.on_finish = self._make_completion_hook(rep)
            row.append(rep)
        self.replicas.append(row)
        self.shard_stats.append(ShardStats(shard=sid))
        if self.telemetry is not None:
            self.telemetry.grow(sid + 1)
        return sid

    def provision_replica(self, shard: int, service: ServiceModel) -> None:
        """Autoscale-up: append one fresh replica to a shard's row."""
        row = self.replicas[shard]
        loop = _EventLoop(service, self.cluster.n_cores, events=self.events)
        rep = _Replica(shard=shard, rid=len(row), loop=loop)
        loop.on_finish = self._make_completion_hook(rep)
        row.append(rep)

    def retire_shard(self, shard: int) -> None:
        """Graceful decommission (a merge's orphan): every replica leaves
        the rotation for good; queued work completes, new traffic
        re-resolves to the surviving owner."""
        for rep in self.replicas[shard]:
            rep.retired = True
            rep.up = False

    # -- dispatch path ------------------------------------------------------

    def _telemetry_class(self, record: ClusterRequest):
        """(slo_class, slo_ns) stamped onto telemetry events; the
        tenancy layer overrides this with each tenant's class/SLO."""
        return None, None

    def _make_completion_hook(self, rep: _Replica):
        def hook(attempt: _Attempt, now: float) -> None:
            rep.served += 1
            record = attempt.record
            record.live -= 1
            tel = self.telemetry
            if record.completed or record.failed:
                # The hedged twin already won (or retries ran out).
                if tel is not None and tel.traces is not None:
                    tel.trace_attempt(attempt, rep.shard, rep.rid, now, "absorbed")
                return
            record.completed = True
            record.start_ns = attempt.start_ns
            record.finish_ns = now
            record.replica = rep.rid
            record.core = attempt.core
            self.completed += 1
            self.shard_stats[record.shard].completed += 1
            if now > self.makespan:
                self.makespan = now
            if self.reconfig is not None:
                self.reconfig.note_completion(record.shard, record.latency_ns)
            if tel is not None:
                cls, slo = self._telemetry_class(record)
                tel.on_completed(
                    now, record.latency_ns, record.shard, cls, slo
                )
                if tel.traces is not None:
                    tel.trace_attempt(
                        attempt, rep.shard, rep.rid, now, "completed"
                    )

        return hook

    def dispatch(
        self,
        record: ClusterRequest,
        now: float,
        exclude: Optional[int] = None,
        hedge: bool = False,
        cause: str = "arrival",
    ) -> bool:
        if self.reconfig is not None and not hedge:
            # Key-range handoff: a request routed under a stale epoch is
            # re-resolved against the current map before dispatch (a
            # hedge intentionally stays on its primary's shard).
            self.reconfig.resolve(record)
        replicas = self.replicas[record.shard]
        rep = pick_replica(replicas, exclude=exclude)
        if rep is None:
            if hedge:
                return False  # no second replica to hedge to
            record.attempts += 1
            self._maybe_retry(record, now)
            return False
        record.attempts += 1
        record.last_replica = rep.rid
        record.live += 1
        attempt = _Attempt(
            rid=record.rid,
            arrival_ns=record.arrival_ns,
            record=record,
            rep=rep,
        )
        tel = self.telemetry
        if tel is not None and tel.traces is not None:
            attempt.cause = cause
            attempt.dispatch_ns = now
            attempt.attempt_no = record.attempts
        rep.loop.dispatch(attempt, now)
        stats = self.shard_stats[record.shard]
        depth = sum(r.backlog for r in replicas)
        if depth > stats.max_queue_depth:
            stats.max_queue_depth = depth
        if tel is not None:
            tel.on_depth(now, depth)
        policy = self.cluster.policy
        if (
            not hedge
            and policy.hedge_after_ns is not None
            and self.cluster.n_replicas > 1
        ):
            self.events.push(now + policy.hedge_after_ns, _HEDGE, record)
        return True

    def _maybe_retry(self, record: ClusterRequest, now: float) -> None:
        """Schedule the next attempt with capped exponential backoff."""
        if record.completed or record.failed:
            return
        if record.attempts >= self.cluster.policy.max_attempts:
            record.failed = True
            self.failed += 1
            if self.telemetry is not None:
                cls, _ = self._telemetry_class(record)
                self.telemetry.on_failed(now, record.shard, cls)
            return
        record.retries += 1
        self.total_retries += 1
        self.shard_stats[record.shard].retries += 1
        if self.telemetry is not None:
            self.telemetry.on_retry(now, record.shard)
        delay = self.cluster.policy.backoff_ns(record.retries)
        self.events.push(now + delay, _RETRY, record)

    # -- event handlers -----------------------------------------------------

    def on_arrival(self, record: ClusterRequest, now: float) -> None:
        window = self.cluster.policy.batch_window_ns
        if window > 0.0:
            buf = self.batch_buf.setdefault(record.shard, [])
            buf.append(record)
            if len(buf) == 1:
                self.events.push(now + window, _FLUSH, record.shard)
            return
        self.dispatch(record, now)

    def on_flush(self, shard: int, now: float) -> None:
        buf = self.batch_buf.get(shard, [])
        self.batch_buf[shard] = []
        for record in buf:
            self.dispatch(record, now)

    def on_finish(self, payload, now: float) -> None:
        loop, core_id, attempt = payload
        if attempt.cancelled:
            return  # replica crashed mid-service; its cores were reset
        loop.finish(core_id, attempt, now)

    def on_hedge(self, record: ClusterRequest, now: float) -> None:
        if record.completed or record.failed or record.hedged:
            return
        if record.live == 0:
            return  # lost to a crash; the retry path owns it now
        if self.dispatch(
            record, now, exclude=record.last_replica, hedge=True, cause="hedge"
        ):
            record.hedged = True
            self.total_hedges += 1
            self.shard_stats[record.shard].hedges += 1
            if self.telemetry is not None:
                self.telemetry.on_hedge(now, record.shard)

    def on_retry(self, record: ClusterRequest, now: float) -> None:
        if record.completed or record.failed:
            return
        self.dispatch(record, now, cause="retry")

    def on_fault_begin(self, event: FaultEvent, now: float) -> None:
        rep = self.replicas[event.shard][event.replica]
        stats = self.shard_stats[event.shard]
        if event.kind == CRASH:
            rep.up = False
            rep.crash_count += 1
            self.crashes += 1
            stats.crashes += 1
            self._drain_crashed(rep, now)
        else:
            rep.slow = True
            rep.loop.slow_factor = self.cluster.faults.slow_factor
            rep.slow_count += 1
            self.slow_events += 1
            stats.slow_events += 1

    def on_fault_end(self, event: FaultEvent, now: float) -> None:
        rep = self.replicas[event.shard][event.replica]
        if event.kind == CRASH:
            # Recovers empty (queues were drained at crash) -- unless it
            # was retired or is mid-rebuild, in which case the rotation
            # is owned by the reconfig lifecycle, not fault repair.
            rep.up = not (rep.retired or rep.rebuilding)
        else:
            rep.slow = False
            rep.loop.slow_factor = 1.0

    def on_reconfig(self, ev: ReconfigEvent, now: float) -> None:
        self.reconfig.on_event(ev, now)

    def _drain_crashed(self, rep: _Replica, now: float) -> None:
        """Cancel every attempt on a crashed replica and retry elsewhere.

        In-flight attempts keep their already-scheduled finish events on
        the heap; the ``cancelled`` flag turns those pops into no-ops.
        Cores are visited in id order, service slot before queue, so the
        retry order is deterministic.
        """
        lost: List[_Attempt] = []
        for core in rep.loop.cores:
            if core.current is not None:
                core.current.cancelled = True
                lost.append(core.current)
                core.current = None
            while core.queue:
                lost.append(core.queue.popleft())
        tel = self.telemetry
        tracing = tel is not None and tel.traces is not None
        for attempt in lost:
            if tracing:
                tel.trace_attempt(
                    attempt,
                    rep.shard,
                    rep.rid,
                    now,
                    "cancelled" if attempt.cancelled else "lost",
                )
            record = attempt.record
            record.live -= 1
            if record.live > 0:
                continue  # a hedged twin is still running elsewhere
            self._maybe_retry(record, now)

    # -- main loop ----------------------------------------------------------

    def run(self) -> ClusterResult:
        handlers = {
            _ARRIVAL: self.on_arrival,
            _HEDGE: self.on_hedge,
            _RETRY: self.on_retry,
            _FLUSH: self.on_flush,
            _FAULT_BEGIN: self.on_fault_begin,
            _FAULT_END: self.on_fault_end,
            _RECONFIG: self.on_reconfig,
        }
        while self.events:
            now, kind, _, payload = self.events.pop()
            if kind == _FINISH:
                self.on_finish(payload, now)
            else:
                handlers[kind](payload, now)
        return ClusterResult(
            records=self.records,
            n_shards=self.cluster.n_shards,
            n_replicas=self.cluster.n_replicas,
            n_cores=self.cluster.n_cores,
            makespan_ns=self.makespan,
            completed=self.completed,
            failed=self.failed,
            total_retries=self.total_retries,
            total_hedges=self.total_hedges,
            crashes=self.crashes,
            slow_events=self.slow_events,
            fault_events=self.schedule,
            shard_stats=self.shard_stats,
            telemetry=(
                self.telemetry.series()
                if self.telemetry is not None
                else None
            ),
            traces=(
                self.telemetry.trace_tuple()
                if self.telemetry is not None
                else None
            ),
            epochs=(
                tuple(self.reconfig.epochs)
                if self.reconfig is not None
                else None
            ),
            rebuilds=(
                tuple(self.reconfig.rebuilds)
                if self.reconfig is not None
                else None
            ),
            scale_events=(
                tuple(self.reconfig.scale_events)
                if self.reconfig is not None
                else None
            ),
            live_replicas=(
                self.reconfig.live_replicas()
                if self.reconfig is not None
                else None
            ),
        )


def simulate_cluster(
    cluster: Cluster,
    arrivals_ns: Sequence[float],
    keys: Sequence[int],
    fault_horizon_ns: Optional[float] = None,
    engine: Optional[str] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> ClusterResult:
    """Run one open-loop trace through the cluster; fully deterministic.

    ``keys[i]`` is the lookup key of the request arriving at
    ``arrivals_ns[i]``; the router shards on it.  ``fault_horizon_ns``
    bounds the fault schedule (default: last arrival plus 25% drain
    slack) -- it only changes which faults exist, never how any given
    schedule is replayed.  ``engine`` picks the serving engine (``None``
    = ambient default); engines produce byte-identical results.
    ``telemetry`` collects a windowed time-series (and, opt-in, attempt
    traces) without perturbing the run.
    """
    if len(arrivals_ns) != len(keys):
        raise ValueError(
            f"{len(arrivals_ns)} arrivals but {len(keys)} keys"
        )
    if not arrivals_ns:
        raise ValueError("need at least one request")
    if fault_horizon_ns is None:
        last = float(arrivals_ns[-1])
        fault_horizon_ns = last + max(0.25 * last, 1e6)
    sim = _ClusterSim(
        cluster,
        horizon_ns=fault_horizon_ns,
        engine=engine,
        telemetry=telemetry,
    )
    sim.load(arrivals_ns, keys)
    return sim.run()
