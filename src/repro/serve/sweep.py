"""Parallel, cached simulation sweeps for the serving experiments.

The measurement grid already flows through picklable cells, a process
pool and a persistent cache (:mod:`repro.bench.parallel`); this module
gives the serving simulations the same treatment.  Each simulation an
experiment wants -- one open-loop run, one cluster replay, one tenancy
scenario -- is captured as a frozen *task* dataclass of plain scalars:
hashable (in-process memo), picklable (``--jobs`` fan-out) and JSON-able
(:func:`repro.bench.cache.sim_key` content keys for the persistent
:class:`~repro.bench.cache.SimResultCache`).  Workers rebuild arrival
processes, request keys, shard maps and fault schedules from the task's
seeds -- all pure functions -- so a task produces the identical result
record in any process, and :func:`run_sim_tasks` returns records aligned
with the input order regardless of completion order.

Determinism contract, inherited from the engines: simulations are
byte-identical across serial runs, ``--jobs N``, cache replay, and the
``event``/``fast`` serving engines.  The serving engine is therefore
ambient (``$REPRO_SERVE_ENGINE``, inherited by pool workers) and is
deliberately NOT part of any task's identity: a cache warmed under one
engine serves the other verbatim (``tests/test_serve_sweep.py``).

Result records are plain dicts of JSON scalars.  :class:`ClusterRunStats`
and :class:`TenancyRunStats` wrap the cluster/tenancy records back into
objects whose accessors -- ``availability``, ``summary``, ``to_metrics``
-- reproduce the originals' values exactly, so experiments publish the
same metrics whether a run was simulated inline, pooled, or replayed
from cache.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.datasets.loader import make_dataset
from repro.memsim.counters import PerfCountersF
from repro.serve.arrivals import bursty_arrivals, poisson_arrivals
from repro.serve.contention import MachineModel
from repro.serve.core import ServiceModel, simulate_open_loop
from repro.serve.metrics import LatencySummary, summarize_result
from repro.serve.telemetry import TelemetryConfig

__all__ = [
    "OpenLoopTask",
    "ClusterTask",
    "ScenarioTask",
    "SimStats",
    "ClusterRunStats",
    "TenancyRunStats",
    "TenantRunStats",
    "SimRunnerStats",
    "run_sim_tasks",
    "open_loop_task",
    "cluster_task",
    "scenario_task",
    "freeze_machine",
    "freeze_telemetry",
    "clear_sim_results",
]

#: Per-process memo of executed/cached records, keyed by task.
_RESULTS: Dict["SimTask", dict] = {}


def clear_sim_results() -> None:
    """Reset the in-process simulation memo (mainly for tests)."""
    _RESULTS.clear()


# ---------------------------------------------------------------------------
# freezing helpers: model objects <-> tuples of JSON scalars
# ---------------------------------------------------------------------------


def freeze_machine(machine: MachineModel) -> Tuple[Tuple[str, float], ...]:
    """Canonical, hashable form of a :class:`MachineModel`."""
    return (
        ("cores", machine.cores),
        ("threads", machine.threads),
        ("ht_gain", machine.ht_gain),
        ("dram_bandwidth_bytes", machine.dram_bandwidth_bytes),
    )


def _thaw_machine(frozen: Tuple[Tuple[str, float], ...]) -> MachineModel:
    d = dict(frozen)
    return MachineModel(
        cores=int(d["cores"]),
        threads=int(d["threads"]),
        ht_gain=float(d["ht_gain"]),
        dram_bandwidth_bytes=float(d["dram_bandwidth_bytes"]),
    )


def _freeze_policy(policy) -> Tuple[Tuple[str, object], ...]:
    return (
        ("hedge_after_ns", policy.hedge_after_ns),
        ("max_attempts", policy.max_attempts),
        ("backoff_base_ns", policy.backoff_base_ns),
        ("backoff_cap_ns", policy.backoff_cap_ns),
        ("batch_window_ns", policy.batch_window_ns),
    )


def _freeze_faults(faults) -> Optional[Tuple[Tuple[str, object], ...]]:
    if faults is None:
        return None
    return (
        ("crash_mttf_ns", faults.crash_mttf_ns),
        ("crash_mttr_ns", faults.crash_mttr_ns),
        ("slow_mttf_ns", faults.slow_mttf_ns),
        ("slow_mttr_ns", faults.slow_mttr_ns),
        ("slow_factor", faults.slow_factor),
        ("seed", faults.seed),
    )


def _service_from_frozen(
    counters: Tuple[Tuple[str, float], ...],
    fence: bool,
    machine: MachineModel,
) -> ServiceModel:
    return ServiceModel(
        PerfCountersF(**dict(counters)), fence=fence, machine=machine
    )


def _pairs(value):
    """JSON form of a frozen pair tuple (or None)."""
    return None if value is None else dict(value)


def freeze_telemetry(
    config: Optional[TelemetryConfig],
) -> Optional[Tuple[Tuple[str, object], ...]]:
    """Canonical, hashable form of a :class:`TelemetryConfig`.

    Traces are refused: task records are JSON aggregates sized for the
    persistent cache, and per-attempt traces belong on inline
    ``simulate_*`` calls, not fanned-out sweeps.
    """
    if config is None:
        return None
    if config.traces:
        raise ValueError(
            "sweep tasks do not support telemetry traces; call the "
            "simulate_* function inline to collect traces"
        )
    return (
        ("window_ns", config.window_ns),
        ("slo_p99_ns", config.slo_p99_ns),
    )


def _thaw_telemetry(
    frozen: Optional[Tuple[Tuple[str, object], ...]],
) -> Optional[TelemetryConfig]:
    if frozen is None:
        return None
    d = dict(frozen)
    return TelemetryConfig(
        window_ns=float(d["window_ns"]),
        slo_p99_ns=(
            None if d["slo_p99_ns"] is None else float(d["slo_p99_ns"])
        ),
    )


# ---------------------------------------------------------------------------
# tasks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpenLoopTask:
    """One single-node open-loop simulation: counters + traffic + cores.

    The service model is rebuilt from the measured per-lookup counters
    (the only measurement fields :class:`ServiceModel` consumes) and the
    arrival process from ``(shape, rate, n, seed)`` -- pure functions,
    so the worker reproduces the parent's inputs exactly.
    """

    counters: Tuple[Tuple[str, float], ...]
    fence: bool
    machine: Tuple[Tuple[str, float], ...]
    shape: str  # "poisson" or "bursty"
    rate_per_sec: float
    n_requests: int
    seed: int
    n_cores: int
    #: Frozen :class:`TelemetryConfig` (via :func:`freeze_telemetry`).
    #: None omits the key-fields entry entirely, so telemetry-off task
    #: keys are bit-for-bit what they were before telemetry existed.
    telemetry: Optional[Tuple[Tuple[str, object], ...]] = None

    def key_fields(self) -> dict:
        fields = {
            "kind": "open_loop",
            "counters": dict(self.counters),
            "fence": self.fence,
            "machine": dict(self.machine),
            "shape": self.shape,
            "rate_per_sec": self.rate_per_sec,
            "n_requests": self.n_requests,
            "seed": self.seed,
            "n_cores": self.n_cores,
        }
        if self.telemetry is not None:
            fields["telemetry"] = _pairs(self.telemetry)
        return fields

    def run(self) -> dict:
        service = _service_from_frozen(
            self.counters, self.fence, _thaw_machine(self.machine)
        )
        if self.shape == "poisson":
            arrivals = poisson_arrivals(
                self.rate_per_sec, self.n_requests, self.seed
            )
        elif self.shape == "bursty":
            arrivals = bursty_arrivals(
                self.rate_per_sec, self.n_requests, self.seed
            )
        else:
            raise ValueError(f"unknown arrival shape {self.shape!r}")
        result = simulate_open_loop(
            service,
            arrivals,
            self.n_cores,
            telemetry=_thaw_telemetry(self.telemetry),
        )
        summary = summarize_result(result)
        record = {
            "summary": summary.to_dict(),
            "max_queue_depth": result.max_queue_depth,
            "total_steals": result.total_steals,
        }
        if result.telemetry is not None:
            record["telemetry"] = result.telemetry.to_dict()
        return record


@dataclass(frozen=True)
class ClusterTask:
    """One cluster replay: per-shard counters, routing, policy, faults.

    ``lookup_keys`` and ``shard_bounds`` are carried verbatim (the
    selector's public API accepts arbitrary key arrays and shard maps);
    arrivals regenerate from ``(rate, n, seed)``.
    """

    per_shard_counters: Tuple[Tuple[Tuple[str, float], ...], ...]
    fence: bool
    machine: Tuple[Tuple[str, float], ...]
    shard_bounds: Tuple[int, ...]
    lookup_keys: Tuple[int, ...]
    rate_per_sec: float
    n_requests: int
    seed: int
    n_replicas: int
    n_cores: int
    policy: Tuple[Tuple[str, object], ...]
    faults: Optional[Tuple[Tuple[str, object], ...]]
    fault_horizon_ns: Optional[float]
    telemetry: Optional[Tuple[Tuple[str, object], ...]] = None
    #: Canonical :class:`~repro.serve.reconfig.ReconfigSpec` JSON; None
    #: (or a trigger-free spec, normalized away by :func:`cluster_task`)
    #: leaves the cache key exactly as before the field existed.
    reconfig: Optional[str] = None

    def key_fields(self) -> dict:
        import json

        fields = {
            "kind": "cluster",
            "per_shard_counters": [dict(c) for c in self.per_shard_counters],
            "fence": self.fence,
            "machine": dict(self.machine),
            "shard_bounds": list(self.shard_bounds),
            "lookup_keys": list(self.lookup_keys),
            "rate_per_sec": self.rate_per_sec,
            "n_requests": self.n_requests,
            "seed": self.seed,
            "n_replicas": self.n_replicas,
            "n_cores": self.n_cores,
            "policy": _pairs(self.policy),
            "faults": _pairs(self.faults),
            "fault_horizon_ns": self.fault_horizon_ns,
        }
        if self.telemetry is not None:
            fields["telemetry"] = _pairs(self.telemetry)
        if self.reconfig is not None:
            fields["reconfig"] = json.loads(self.reconfig)
        return fields

    def run(self) -> dict:
        from repro.serve.cluster import Cluster, simulate_cluster
        from repro.serve.faults import FaultConfig
        from repro.serve.reconfig import ReconfigSpec
        from repro.serve.router import RouterPolicy, ShardMap

        machine = _thaw_machine(self.machine)
        cluster = Cluster(
            shard_map=ShardMap(list(self.shard_bounds)),
            services=[
                _service_from_frozen(c, self.fence, machine)
                for c in self.per_shard_counters
            ],
            n_replicas=self.n_replicas,
            n_cores=self.n_cores,
            policy=RouterPolicy(**dict(self.policy)),
            faults=(
                None
                if self.faults is None
                else FaultConfig(**dict(self.faults))
            ),
            reconfig=(
                None
                if self.reconfig is None
                else ReconfigSpec.from_json(self.reconfig)
            ),
        )
        arrivals = poisson_arrivals(
            self.rate_per_sec, self.n_requests, self.seed
        )
        result = simulate_cluster(
            cluster,
            arrivals,
            list(self.lookup_keys),
            fault_horizon_ns=self.fault_horizon_ns,
            telemetry=_thaw_telemetry(self.telemetry),
        )
        record = ClusterRunStats.from_result(result).to_record()
        if result.telemetry is not None:
            record["telemetry"] = result.telemetry.to_dict()
        return record


@dataclass(frozen=True)
class ScenarioTask:
    """One tenancy scenario run: spec JSON + dataset + shard counters.

    The worker rebuilds the served key array from the dataset identity
    (exactly as measurement cells rebuild datasets from seeds) and the
    shard map as the equal-count split the experiments use, then runs
    :func:`repro.serve.tenancy.simulate_scenario`.
    """

    spec_json: str
    dataset: str
    n_keys: int
    seed: int
    key_bits: int
    per_shard_counters: Tuple[Tuple[Tuple[str, float], ...], ...]
    fence: bool
    machine: Tuple[Tuple[str, float], ...]
    telemetry: Optional[Tuple[Tuple[str, object], ...]] = None

    def key_fields(self) -> dict:
        import json

        fields = {
            "kind": "scenario",
            "scenario": json.loads(self.spec_json),
            "dataset": self.dataset,
            "n_keys": self.n_keys,
            "seed": self.seed,
            "key_bits": self.key_bits,
            "per_shard_counters": [dict(c) for c in self.per_shard_counters],
            "fence": self.fence,
            "machine": dict(self.machine),
        }
        if self.telemetry is not None:
            fields["telemetry"] = _pairs(self.telemetry)
        return fields

    def run(self) -> dict:
        from repro.serve.router import ShardMap
        from repro.serve.scenario import ScenarioSpec
        from repro.serve.tenancy import simulate_scenario

        spec = ScenarioSpec.from_json(self.spec_json)
        ds = make_dataset(
            self.dataset, self.n_keys, seed=self.seed, key_bits=self.key_bits
        )
        machine = _thaw_machine(self.machine)
        services = [
            _service_from_frozen(c, self.fence, machine)
            for c in self.per_shard_counters
        ]
        shard_map = ShardMap.from_keys(ds.keys, spec.topology.n_shards)
        result = simulate_scenario(
            spec,
            services,
            ds.keys,
            shard_map=shard_map,
            telemetry=_thaw_telemetry(self.telemetry),
        )
        record = TenancyRunStats.from_result(result).to_record()
        if result.telemetry is not None:
            record["telemetry"] = result.telemetry.to_dict()
        return record


SimTask = Union[OpenLoopTask, ClusterTask, ScenarioTask]


def open_loop_task(
    measurement,
    rate_per_sec: float,
    n_requests: int,
    seed: int,
    n_cores: int,
    machine: MachineModel = MachineModel(),
    fence: bool = False,
    shape: str = "poisson",
    telemetry: Optional[TelemetryConfig] = None,
) -> OpenLoopTask:
    """The task :func:`repro.serve.selector.evaluate_candidate` runs."""
    from repro.bench.cells import freeze_counters

    return OpenLoopTask(
        counters=freeze_counters(measurement.counters),
        fence=fence,
        machine=freeze_machine(machine),
        shape=shape,
        rate_per_sec=rate_per_sec,
        n_requests=n_requests,
        seed=seed,
        n_cores=n_cores,
        telemetry=freeze_telemetry(telemetry),
    )


def cluster_task(
    per_shard_measurements: Sequence,
    shard_map,
    lookup_keys: Sequence[int],
    rate_per_sec: float,
    n_requests: int,
    seed: int,
    n_replicas: int,
    n_cores: int,
    policy,
    faults,
    fault_horizon_ns: Optional[float],
    machine: MachineModel = MachineModel(),
    fence: bool = False,
    telemetry: Optional[TelemetryConfig] = None,
    reconfig=None,
) -> ClusterTask:
    """The task one :func:`~repro.serve.cluster.simulate_cluster` run is.

    A ``reconfig`` that is None *or has no triggers* freezes to None, so
    attaching a no-op spec never perturbs cache keys.
    """
    from repro.bench.cells import freeze_counters

    return ClusterTask(
        per_shard_counters=tuple(
            freeze_counters(m.counters) for m in per_shard_measurements
        ),
        fence=fence,
        machine=freeze_machine(machine),
        shard_bounds=tuple(shard_map.lower_bounds),
        lookup_keys=tuple(int(k) for k in lookup_keys),
        rate_per_sec=rate_per_sec,
        n_requests=n_requests,
        seed=seed,
        n_replicas=n_replicas,
        n_cores=n_cores,
        policy=_freeze_policy(policy),
        faults=_freeze_faults(faults),
        fault_horizon_ns=fault_horizon_ns,
        telemetry=freeze_telemetry(telemetry),
        reconfig=(
            None
            if reconfig is None or not reconfig.enabled
            else reconfig.to_json()
        ),
    )


def scenario_task(
    spec,
    dataset: str,
    n_keys: int,
    seed: int,
    per_shard_measurements: Sequence,
    machine: MachineModel = MachineModel(),
    fence: bool = False,
    key_bits: int = 64,
    telemetry: Optional[TelemetryConfig] = None,
) -> ScenarioTask:
    """The task one :func:`~repro.serve.tenancy.simulate_scenario` run is."""
    from repro.bench.cells import freeze_counters

    return ScenarioTask(
        spec_json=spec.to_json(),
        dataset=dataset,
        n_keys=n_keys,
        seed=seed,
        key_bits=key_bits,
        per_shard_counters=tuple(
            freeze_counters(m.counters) for m in per_shard_measurements
        ),
        fence=fence,
        machine=freeze_machine(machine),
        telemetry=freeze_telemetry(telemetry),
    )


# ---------------------------------------------------------------------------
# result records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimStats:
    """Queue statistics of an open-loop run record, shaped for
    :meth:`LatencySummary.to_metrics`'s ``result`` parameter."""

    max_queue_depth: int
    total_steals: int


def open_loop_summary(record: dict) -> Tuple[LatencySummary, SimStats]:
    """(summary, queue stats) view of an :class:`OpenLoopTask` record."""
    return (
        LatencySummary.from_dict(record["summary"]),
        SimStats(
            max_queue_depth=int(record["max_queue_depth"]),
            total_steals=int(record["total_steals"]),
        ),
    )


@dataclass(frozen=True)
class ShardRunStats:
    """Per-shard counters of a cluster record (mirrors ``ShardStats``)."""

    shard: int
    completed: int
    retries: int
    hedges: int
    crashes: int
    slow_events: int
    max_queue_depth: int


@dataclass
class ClusterRunStats:
    """Everything the experiments read off a :class:`~repro.serve.
    cluster.ClusterResult`, reconstructible from a cached JSON record.

    Accessors and :meth:`to_metrics` reproduce the original result's
    values exactly (same fields, same float arithmetic, same counter
    names), so a replayed record is indistinguishable from a fresh run.
    """

    requests: int
    completed: int
    failed: int
    total_retries: int
    total_hedges: int
    crashes: int
    slow_events: int
    makespan_ns: float
    summary: Optional[LatencySummary]
    shard_stats: List[ShardRunStats]
    #: Reconfig topology outcome (static runs: 1 epoch, initial counts).
    #: ``final_replicas`` 0 marks a pre-reconfig record, whose replica
    #: count is unrecoverable; the gauge is skipped for those.
    epoch_count: int = 1
    final_shards: int = 0
    final_replicas: int = 0

    @property
    def availability(self) -> float:
        return self.completed / self.requests if self.requests else 1.0

    @property
    def max_queue_depth(self) -> int:
        return max((s.max_queue_depth for s in self.shard_stats), default=0)

    @classmethod
    def from_result(cls, result) -> "ClusterRunStats":
        return cls(
            requests=len(result.records),
            completed=result.completed,
            failed=result.failed,
            total_retries=result.total_retries,
            total_hedges=result.total_hedges,
            crashes=result.crashes,
            slow_events=result.slow_events,
            makespan_ns=result.makespan_ns,
            summary=result.summary() if result.completed else None,
            shard_stats=[
                ShardRunStats(
                    shard=st.shard,
                    completed=st.completed,
                    retries=st.retries,
                    hedges=st.hedges,
                    crashes=st.crashes,
                    slow_events=st.slow_events,
                    max_queue_depth=st.max_queue_depth,
                )
                for st in result.shard_stats
            ],
            epoch_count=result.epoch_count,
            final_shards=result.final_shards,
            final_replicas=result.final_replicas,
        )

    def to_record(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "total_retries": self.total_retries,
            "total_hedges": self.total_hedges,
            "crashes": self.crashes,
            "slow_events": self.slow_events,
            "makespan_ns": self.makespan_ns,
            "summary": (
                None if self.summary is None else self.summary.to_dict()
            ),
            "shard_stats": [
                {
                    "shard": st.shard,
                    "completed": st.completed,
                    "retries": st.retries,
                    "hedges": st.hedges,
                    "crashes": st.crashes,
                    "slow_events": st.slow_events,
                    "max_queue_depth": st.max_queue_depth,
                }
                for st in self.shard_stats
            ],
            "epoch_count": self.epoch_count,
            "final_shards": self.final_shards,
            "final_replicas": self.final_replicas,
        }

    @classmethod
    def from_record(cls, record: dict) -> "ClusterRunStats":
        summary = record["summary"]
        return cls(
            requests=int(record["requests"]),
            completed=int(record["completed"]),
            failed=int(record["failed"]),
            total_retries=int(record["total_retries"]),
            total_hedges=int(record["total_hedges"]),
            crashes=int(record["crashes"]),
            slow_events=int(record["slow_events"]),
            makespan_ns=float(record["makespan_ns"]),
            summary=(
                None if summary is None else LatencySummary.from_dict(summary)
            ),
            shard_stats=[
                ShardRunStats(
                    shard=int(st["shard"]),
                    completed=int(st["completed"]),
                    retries=int(st["retries"]),
                    hedges=int(st["hedges"]),
                    crashes=int(st["crashes"]),
                    slow_events=int(st["slow_events"]),
                    max_queue_depth=int(st["max_queue_depth"]),
                )
                for st in record["shard_stats"]
            ],
            # Records written before the reconfig fields existed fall
            # back to "static run" (and 0 = unknown replica count).
            epoch_count=int(record.get("epoch_count", 1)),
            final_shards=int(
                record.get("final_shards", len(record["shard_stats"]))
            ),
            final_replicas=int(record.get("final_replicas", 0)),
        )

    def to_metrics(self, registry=None, prefix: str = "serve.cluster") -> None:
        """Mirror of :meth:`ClusterResult.to_metrics`, same names/values."""
        from repro.obs.metrics import get_registry

        reg = registry if registry is not None else get_registry()
        reg.counter(f"{prefix}.requests").inc(self.requests)
        reg.counter(f"{prefix}.completed").inc(self.completed)
        reg.counter(f"{prefix}.failed").inc(self.failed)
        reg.counter(f"{prefix}.retries").inc(self.total_retries)
        reg.counter(f"{prefix}.hedges").inc(self.total_hedges)
        reg.counter(f"{prefix}.faults.crashes").inc(self.crashes)
        reg.counter(f"{prefix}.faults.slow").inc(self.slow_events)
        reg.gauge(f"{prefix}.availability.min").set_min(self.availability)
        reg.gauge(f"{prefix}.shards").set(float(self.final_shards))
        if self.final_replicas > 0:
            reg.gauge(f"{prefix}.replicas").set(float(self.final_replicas))
        reg.counter(f"{prefix}.epochs").inc(self.epoch_count)
        depth_hist = reg.histogram(f"{prefix}.shard_queue_depth.max")
        for st in self.shard_stats:
            depth_hist.observe(st.max_queue_depth)
            reg.gauge(f"{prefix}.shard{st.shard}.queue_depth.max").set_max(
                st.max_queue_depth
            )
            reg.counter(f"{prefix}.shard{st.shard}.retries").inc(st.retries)
            reg.counter(f"{prefix}.shard{st.shard}.faults").inc(
                st.crashes + st.slow_events
            )


@dataclass
class TenantRunStats:
    """One tenant's slice of a scenario record (mirrors ``TenantStats``)."""

    tenant: int
    name: str
    slo_class: str
    p99_slo_ns: Optional[float]
    requests: int
    completed: int
    failed: int
    shed: int
    retries: int
    hedges: int
    summary: Optional[LatencySummary]
    requests_over_slo: int

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def goodput(self) -> float:
        return self.completed / self.requests if self.requests else 1.0

    def slo_met(self) -> Optional[bool]:
        if self.p99_slo_ns is None or self.summary is None:
            return None
        return self.summary.meets(self.p99_slo_ns)


@dataclass
class TenancyRunStats:
    """Everything the experiments read off a :class:`~repro.serve.
    tenancy.TenancyResult`, reconstructible from a cached JSON record."""

    requests: int
    total_shed: int
    makespan_ns: float
    summary: Optional[LatencySummary]
    tenants: List[TenantRunStats] = field(default_factory=list)
    #: Cluster topology outcome (see :class:`ClusterRunStats`); lets
    #: experiments report reconfig transitions off cached records.
    epoch_count: int = 1
    final_shards: int = 0
    final_replicas: int = 0

    def by_name(self, name: str) -> TenantRunStats:
        for ts in self.tenants:
            if ts.name == name:
                return ts
        raise KeyError(name)

    @classmethod
    def from_result(cls, result) -> "TenancyRunStats":
        return cls(
            requests=len(result.cluster.records),
            total_shed=result.total_shed,
            makespan_ns=result.cluster.makespan_ns,
            summary=(
                result.summary() if result.cluster.completed else None
            ),
            tenants=[
                TenantRunStats(
                    tenant=ts.tenant,
                    name=ts.name,
                    slo_class=ts.slo_class,
                    p99_slo_ns=ts.p99_slo_ns,
                    requests=ts.requests,
                    completed=ts.completed,
                    failed=ts.failed,
                    shed=ts.shed,
                    retries=ts.retries,
                    hedges=ts.hedges,
                    summary=ts.summary(),
                    requests_over_slo=ts.requests_over_slo,
                )
                for ts in result.tenants
            ],
            epoch_count=result.cluster.epoch_count,
            final_shards=result.cluster.final_shards,
            final_replicas=result.cluster.final_replicas,
        )

    def to_record(self) -> dict:
        return {
            "requests": self.requests,
            "total_shed": self.total_shed,
            "makespan_ns": self.makespan_ns,
            "summary": (
                None if self.summary is None else self.summary.to_dict()
            ),
            "tenants": [
                {
                    "tenant": ts.tenant,
                    "name": ts.name,
                    "slo_class": ts.slo_class,
                    "p99_slo_ns": ts.p99_slo_ns,
                    "requests": ts.requests,
                    "completed": ts.completed,
                    "failed": ts.failed,
                    "shed": ts.shed,
                    "retries": ts.retries,
                    "hedges": ts.hedges,
                    "summary": (
                        None if ts.summary is None else ts.summary.to_dict()
                    ),
                    "requests_over_slo": ts.requests_over_slo,
                }
                for ts in self.tenants
            ],
            "epoch_count": self.epoch_count,
            "final_shards": self.final_shards,
            "final_replicas": self.final_replicas,
        }

    @classmethod
    def from_record(cls, record: dict) -> "TenancyRunStats":
        summary = record["summary"]
        return cls(
            requests=int(record["requests"]),
            total_shed=int(record["total_shed"]),
            makespan_ns=float(record["makespan_ns"]),
            summary=(
                None if summary is None else LatencySummary.from_dict(summary)
            ),
            tenants=[
                TenantRunStats(
                    tenant=int(t["tenant"]),
                    name=t["name"],
                    slo_class=t["slo_class"],
                    p99_slo_ns=(
                        None
                        if t["p99_slo_ns"] is None
                        else float(t["p99_slo_ns"])
                    ),
                    requests=int(t["requests"]),
                    completed=int(t["completed"]),
                    failed=int(t["failed"]),
                    shed=int(t["shed"]),
                    retries=int(t["retries"]),
                    hedges=int(t["hedges"]),
                    summary=(
                        None
                        if t["summary"] is None
                        else LatencySummary.from_dict(t["summary"])
                    ),
                    requests_over_slo=int(t["requests_over_slo"]),
                )
                for t in record["tenants"]
            ],
            epoch_count=int(record.get("epoch_count", 1)),
            final_shards=int(record.get("final_shards", 0)),
            final_replicas=int(record.get("final_replicas", 0)),
        )

    def to_metrics(self, registry=None, prefix: str = "serve.tenancy") -> None:
        """Mirror of :meth:`TenancyResult.to_metrics`, same names/values."""
        from repro.obs.metrics import get_registry

        reg = registry if registry is not None else get_registry()
        reg.counter(f"{prefix}.requests").inc(self.requests)
        reg.counter(f"{prefix}.shed").inc(self.total_shed)
        for ts in self.tenants:
            p = f"{prefix}.tenant.{ts.name}"
            reg.counter(f"{p}.requests").inc(ts.requests)
            reg.counter(f"{p}.completed").inc(ts.completed)
            reg.counter(f"{p}.failed").inc(ts.failed)
            reg.counter(f"{p}.shed").inc(ts.shed)
            reg.counter(f"{p}.retries").inc(ts.retries)
            if ts.summary is not None:
                reg.gauge(f"{p}.latency.p50_ns").set_max(ts.summary.p50_ns)
                reg.gauge(f"{p}.latency.p99_ns").set_max(ts.summary.p99_ns)
            if ts.p99_slo_ns is not None:
                reg.counter(f"{p}.slo.runs").inc()
                reg.counter(f"{p}.slo.requests_over").inc(
                    ts.requests_over_slo
                )
                if ts.slo_met() is False:
                    reg.counter(f"{p}.slo.violations").inc()


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


@dataclass
class SimRunnerStats:
    """What one :func:`run_sim_tasks` call did (mirrors ``RunnerStats``)."""

    total_tasks: int = 0
    unique_tasks: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0


def _execute_task(task: SimTask) -> dict:
    """Worker entry point: always computes.  The serving engine is
    ambient (``$REPRO_SERVE_ENGINE``), inherited by the pool worker."""
    return task.run()


def run_sim_tasks(
    tasks: Sequence[SimTask],
    jobs: Optional[int] = None,
    cache=None,
    stats: Optional[SimRunnerStats] = None,
) -> List[dict]:
    """Resolve every task; return records aligned with the input order.

    The resolution ladder mirrors :func:`repro.bench.parallel.run_cells`:
    per-process memo, then the persistent ``cache`` (a
    :class:`~repro.bench.cache.SimResultCache`), then execution --
    inline for ``jobs in (None, 1)`` or a single pending task, else on a
    ``ProcessPoolExecutor`` whose ``map`` preserves dispatch order, so
    completion order never leaks into results, memo insertion, or cache
    writes.

    Every call also publishes its resolution split to the global obs
    metrics registry (``serve.sweep.cache.{hits,misses,executed}`` for
    the persistent cache, ``serve.sweep.memo.hits`` for the in-process
    memo), so a warm sweep is distinguishable from a cold one in
    ``metrics.json``.
    """
    from repro.obs.metrics import get_registry

    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    n_jobs = 1 if jobs is None else jobs
    start = time.perf_counter()
    if stats is None:
        stats = SimRunnerStats()
    stats.total_tasks += len(tasks)
    stats.jobs = max(stats.jobs, n_jobs)

    unique: List[SimTask] = []
    seen = set()
    for task in tasks:
        if task not in seen:
            seen.add(task)
            unique.append(task)
    stats.unique_tasks += len(unique)

    memo_hits = 0
    cache_hits = 0
    pending: List[SimTask] = []
    for task in unique:
        if task in _RESULTS:
            memo_hits += 1
            continue
        if cache is not None:
            record = cache.get(task)
            if record is not None:
                cache_hits += 1
                _RESULTS[task] = record
                continue
        pending.append(task)
    stats.memo_hits += memo_hits
    stats.cache_hits += cache_hits
    reg = get_registry()
    reg.counter("serve.sweep.memo.hits").inc(memo_hits)
    reg.counter("serve.sweep.cache.hits").inc(cache_hits)
    if cache is not None:
        # Misses against the *persistent* cache: looked up, not found.
        reg.counter("serve.sweep.cache.misses").inc(len(pending))
    reg.counter("serve.sweep.cache.executed").inc(len(pending))

    if pending:
        if n_jobs == 1 or len(pending) == 1:
            records = map(_execute_task, pending)
        else:
            workers = min(n_jobs, len(pending), os.cpu_count() or 1)
            pool = ProcessPoolExecutor(max_workers=workers)
            records = pool.map(_execute_task, pending)
        with_pool = n_jobs > 1 and len(pending) > 1
        try:
            for task, record in zip(pending, records):
                stats.executed += 1
                _RESULTS[task] = record
                if cache is not None:
                    cache.put(task, record)
        finally:
            if with_pool:
                pool.shutdown()

    stats.wall_seconds += time.perf_counter() - start
    return [_RESULTS[task] for task in tasks]
