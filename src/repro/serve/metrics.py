"""Tail-latency accounting for simulation runs.

A :class:`LatencySummary` condenses one run's sojourn-time trace into the
numbers an SLO speaks: p50/p95/p99/p99.9 (exact-interpolation percentiles
from :mod:`repro.bench.stats`), mean, max, and achieved throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Percentile view of one serving run (all latencies in ns)."""

    n: int
    mean_ns: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    p999_ns: float
    max_ns: float
    throughput_per_sec: float

    def meets(self, p99_slo_ns: float) -> bool:
        return self.p99_ns <= p99_slo_ns


def summarize(
    latencies_ns: Sequence[float], throughput_per_sec: float = 0.0
) -> LatencySummary:
    # Imported here, not at module level: repro.bench pulls in the
    # experiment drivers (including ext_serving, which imports this
    # module), so a top-level import would be circular.
    from repro.bench.stats import percentiles

    if not latencies_ns:
        raise ValueError("cannot summarize an empty latency trace")
    ps = percentiles(latencies_ns, (50.0, 95.0, 99.0, 99.9))
    return LatencySummary(
        n=len(latencies_ns),
        mean_ns=sum(latencies_ns) / len(latencies_ns),
        p50_ns=ps[50.0],
        p95_ns=ps[95.0],
        p99_ns=ps[99.0],
        p999_ns=ps[99.9],
        max_ns=max(latencies_ns),
        throughput_per_sec=throughput_per_sec,
    )


def summarize_result(result) -> LatencySummary:
    """Summary of a :class:`repro.serve.core.ServingResult`."""
    return summarize(result.latencies_ns, result.throughput_per_sec)
