"""Tail-latency accounting for simulation runs.

A :class:`LatencySummary` condenses one run's sojourn-time trace into the
numbers an SLO speaks: p50/p95/p99/p99.9 (exact-interpolation percentiles
from :mod:`repro.bench.stats`), mean, max, and achieved throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Percentile view of one serving run (all latencies in ns)."""

    n: int
    mean_ns: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    p999_ns: float
    max_ns: float
    throughput_per_sec: float

    def meets(self, p99_slo_ns: float) -> bool:
        return self.p99_ns <= p99_slo_ns

    def to_dict(self) -> dict:
        """JSON-able form for the persistent simulation-result cache.

        Floats round-trip exactly through JSON (shortest-repr), so a
        cached summary is byte-identical to a recomputed one.
        """
        return {
            "n": self.n,
            "mean_ns": self.mean_ns,
            "p50_ns": self.p50_ns,
            "p95_ns": self.p95_ns,
            "p99_ns": self.p99_ns,
            "p999_ns": self.p999_ns,
            "max_ns": self.max_ns,
            "throughput_per_sec": self.throughput_per_sec,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LatencySummary":
        return cls(
            n=int(d["n"]),
            mean_ns=float(d["mean_ns"]),
            p50_ns=float(d["p50_ns"]),
            p95_ns=float(d["p95_ns"]),
            p99_ns=float(d["p99_ns"]),
            p999_ns=float(d["p999_ns"]),
            max_ns=float(d["max_ns"]),
            throughput_per_sec=float(d["throughput_per_sec"]),
        )

    def to_metrics(
        self,
        registry=None,
        prefix: str = "serve",
        slo_p99_ns: Optional[float] = None,
        result=None,
    ) -> None:
        """Publish this summary into an obs metrics registry.

        Serving numbers then land in the same ``metrics.json`` snapshot
        as harness and runner metrics (``repro.obs.sink.write_run``).
        ``slo_p99_ns`` additionally counts runs and SLO violations;
        ``result`` (a :class:`~repro.serve.core.ServingResult`) adds
        queue-depth maxima and work-stealing counts.  Gauges take the
        max over repeated calls, so a sweep reports its worst case.
        """
        from repro.obs.metrics import get_registry

        reg = registry if registry is not None else get_registry()
        reg.gauge(f"{prefix}.latency.p50_ns").set_max(self.p50_ns)
        reg.gauge(f"{prefix}.latency.p95_ns").set_max(self.p95_ns)
        reg.gauge(f"{prefix}.latency.p99_ns").set_max(self.p99_ns)
        reg.gauge(f"{prefix}.latency.p999_ns").set_max(self.p999_ns)
        reg.gauge(f"{prefix}.latency.max_ns").set_max(self.max_ns)
        reg.counter(f"{prefix}.requests").inc(self.n)
        if slo_p99_ns is not None:
            reg.counter(f"{prefix}.slo.runs").inc()
            if not self.meets(slo_p99_ns):
                reg.counter(f"{prefix}.slo.violations").inc()
        if result is not None:
            reg.gauge(f"{prefix}.queue_depth.max").set_max(
                result.max_queue_depth
            )
            reg.counter(f"{prefix}.steals").inc(result.total_steals)


def summarize(
    latencies_ns: Sequence[float], throughput_per_sec: float = 0.0
) -> LatencySummary:
    # Imported here, not at module level: repro.bench pulls in the
    # experiment drivers (including ext_serving, which imports this
    # module), so a top-level import would be circular.
    from repro.bench.stats import percentiles

    if not latencies_ns:
        raise ValueError("cannot summarize an empty latency trace")
    ps = percentiles(latencies_ns, (50.0, 95.0, 99.0, 99.9))
    return LatencySummary(
        n=len(latencies_ns),
        mean_ns=sum(latencies_ns) / len(latencies_ns),
        p50_ns=ps[50.0],
        p95_ns=ps[95.0],
        p99_ns=ps[99.0],
        p999_ns=ps[99.9],
        max_ns=max(latencies_ns),
        throughput_per_sec=throughput_per_sec,
    )


def summarize_result(result) -> LatencySummary:
    """Summary of a :class:`repro.serve.core.ServingResult`."""
    return summarize(result.latencies_ns, result.throughput_per_sec)
