"""Discrete-event serving simulator: multi-core server, FIFO + stealing.

The simulator replays an arrival process against a modelled server of
``n_cores`` physical cores.  Each request is dispatched to the core with
the shortest queue (ties to the lowest core id), cores serve their own
FIFO queue, and an idle core steals the oldest waiting request from the
longest queue.  A request's service time comes from the measured
per-lookup counters through the contention model: it is frozen when
service *starts*, using the number of cores busy at that instant
(:func:`repro.serve.contention.service_time_ns`), so a fully loaded
server reproduces Figure 16's steady-state throughput while a lightly
loaded one serves at the uncontended latency.

Everything is deterministic: events are totally ordered by
``(time, sequence number)``, arrival processes are seeded
(:mod:`repro.serve.arrivals`), and no wall clock is consulted -- the same
inputs produce bit-identical latency traces in any process.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from repro.memsim.costmodel import XEON_GOLD_6230, CostModel
from repro.serve.arrivals import think_times_ns
from repro.serve.contention import MachineModel, service_time_ns
from repro.serve.telemetry import TelemetryCollector, TelemetryConfig

_ARRIVAL = 0
_FINISH = 1


class EventHeap:
    """Deterministic event queue ordered by ``(time, kind, seq)``.

    The sequence number is assigned at push time, so simultaneous events
    of the same kind pop in FIFO order and the payload is never compared.
    A single heap can be shared by several :class:`_EventLoop` instances
    (the cluster simulator runs one loop per replica on one global
    heap), which is why finish payloads carry their owning loop.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0

    def push(self, time_ns: float, kind: int, payload) -> None:
        heapq.heappush(self._heap, (time_ns, kind, self._seq, payload))
        self._seq += 1

    def pop(self):
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class ServiceModel:
    """Per-request service times for one index, contention included."""

    def __init__(
        self,
        counters,
        fence: bool = False,
        machine: MachineModel = MachineModel(),
        cost_model: CostModel = XEON_GOLD_6230,
    ):
        self.counters = counters
        self.fence = fence
        self.machine = machine
        self.cost_model = cost_model
        # Service time only depends on the busy-core count, so memoize
        # the n_cores possible values.
        self._cache: dict = {}

    @classmethod
    def from_measurement(cls, measurement, **kwargs) -> "ServiceModel":
        return cls(measurement.counters, **kwargs)

    def service_ns(self, busy_cores: int) -> float:
        s = self._cache.get(busy_cores)
        if s is None:
            s = service_time_ns(
                self.counters,
                busy_cores,
                fence=self.fence,
                machine=self.machine,
                cost_model=self.cost_model,
            )
            self._cache[busy_cores] = s
        return s


@dataclass
class Request:
    """One simulated lookup request."""

    rid: int
    arrival_ns: float
    client: int = 0
    start_ns: float = -1.0
    finish_ns: float = -1.0
    core: int = -1

    @property
    def latency_ns(self) -> float:
        """Sojourn time: queueing wait plus service."""
        return self.finish_ns - self.arrival_ns

    @property
    def wait_ns(self) -> float:
        return self.start_ns - self.arrival_ns


@dataclass
class ServingResult:
    """Completed requests of one simulation run, in request-id order."""

    requests: List[Request]
    n_cores: int
    makespan_ns: float
    total_steals: int
    #: Largest total backlog (queued + in service, over all cores) seen
    #: at any dispatch instant -- the headroom number an operator watches.
    max_queue_depth: int = 0
    #: Windowed :class:`~repro.serve.telemetry.TimeSeries` when the run
    #: was given a :class:`~repro.serve.telemetry.TelemetryConfig`.
    telemetry: Optional[object] = None
    #: Tuple of :class:`~repro.serve.telemetry.AttemptTrace` when the
    #: config asked for traces.
    traces: Optional[tuple] = None

    @property
    def latencies_ns(self) -> List[float]:
        return [r.latency_ns for r in self.requests]

    @property
    def throughput_per_sec(self) -> float:
        if self.makespan_ns <= 0.0:
            return 0.0
        return len(self.requests) / (self.makespan_ns * 1e-9)


@dataclass
class _Core:
    cid: int
    queue: Deque[Request] = field(default_factory=deque)
    current: Optional[Request] = None

    @property
    def backlog(self) -> int:
        return len(self.queue) + (1 if self.current is not None else 0)


class _EventLoop:
    """Shared event-heap machinery for open- and closed-loop runs.

    ``events`` may be a shared :class:`EventHeap` so several loops (the
    cluster's replicas) interleave on one global clock; ``on_finish`` is
    called after a request completes and its core has pulled the next
    one (the cluster router hooks completions there); ``slow_factor``
    scales service times (a degraded replica).  The defaults reproduce
    the original single-node behaviour exactly -- same events, same
    order, same float arithmetic.
    """

    def __init__(
        self,
        service: ServiceModel,
        n_cores: int,
        events: Optional[EventHeap] = None,
    ):
        if n_cores < 1:
            raise ValueError(f"need at least one core, got {n_cores}")
        self.service = service
        self.cores = [_Core(cid) for cid in range(n_cores)]
        self.events = events if events is not None else EventHeap()
        self.done: List[Request] = []
        self.steals = 0
        self.makespan = 0.0
        self.max_queue_depth = 0
        self.slow_factor = 1.0
        self.on_finish = None
        #: Optional TelemetryCollector.  The single-node simulators set
        #: it; the cluster router leaves it None (it has its own hooks).
        self.telemetry: Optional[TelemetryCollector] = None

    def push(self, time_ns: float, kind: int, payload) -> None:
        # (time, kind, seq) orders simultaneous events deterministically:
        # arrivals before finishes at the same instant, then FIFO.
        self.events.push(time_ns, kind, payload)

    def dispatch(self, req: Request, now: float) -> None:
        core = min(self.cores, key=lambda c: (c.backlog, c.cid))
        core.queue.append(req)
        depth = sum(c.backlog for c in self.cores)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        if self.telemetry is not None:
            self.telemetry.on_depth(now, depth)
        if core.current is None:
            self.start_next(core, now)

    def start_next(self, core: _Core, now: float) -> None:
        if core.queue:
            req = core.queue.popleft()
        else:
            victim = max(
                self.cores, key=lambda c: (len(c.queue), -c.cid)
            )
            if not victim.queue:
                return
            req = victim.queue.popleft()
            self.steals += 1
        core.current = req
        busy = sum(1 for c in self.cores if c.current is not None)
        req.core = core.cid
        req.start_ns = now
        service_ns = self.service.service_ns(busy)
        if self.slow_factor != 1.0:
            service_ns *= self.slow_factor
        req.finish_ns = now + service_ns
        self.push(req.finish_ns, _FINISH, (self, core.cid, req))

    def finish(self, core_id: int, req: Request, now: float) -> None:
        core = self.cores[core_id]
        core.current = None
        self.done.append(req)
        self.makespan = max(self.makespan, now)
        self.start_next(core, now)
        if self.telemetry is not None:
            self.telemetry.on_completed(now, req.latency_ns)
            if self.telemetry.traces is not None:
                self.telemetry.trace_open_loop(req, now)
        if self.on_finish is not None:
            self.on_finish(req, now)

    def result(self) -> ServingResult:
        self.done.sort(key=lambda r: r.rid)
        tel = self.telemetry
        return ServingResult(
            requests=self.done,
            n_cores=len(self.cores),
            makespan_ns=self.makespan,
            total_steals=self.steals,
            max_queue_depth=self.max_queue_depth,
            telemetry=tel.series() if tel is not None else None,
            traces=tel.trace_tuple() if tel is not None else None,
        )


def simulate_open_loop(
    service: ServiceModel,
    arrivals_ns: Sequence[float],
    n_cores: int,
    engine: Optional[str] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> ServingResult:
    """Serve pre-generated arrival timestamps (open loop).

    ``engine`` picks the simulation engine (``None`` = the ambient
    default, ``$REPRO_SERVE_ENGINE`` or ``"event"``).  Engines are
    byte-identical; the fast engine uses the vectorized Lindley kernel
    where it applies (:func:`repro.serve.fastsim.kernel_applies`) and
    otherwise falls back to this event loop over a batch-sorted queue.
    ``telemetry`` additionally collects a windowed time-series (and,
    opt-in, attempt traces) without perturbing the simulation; the
    telemetry too is byte-identical across engines.
    """
    from repro.serve import fastsim

    events = None
    if fastsim.resolve_serve_engine(engine) == "fast":
        result = fastsim.lindley_open_loop(
            service, arrivals_ns, n_cores, telemetry=telemetry
        )
        if result is not None:
            return result
        events = fastsim.SealedEventQueue()
    loop = _EventLoop(service, n_cores, events=events)
    if telemetry is not None:
        loop.telemetry = TelemetryCollector(telemetry)
    for rid, t in enumerate(arrivals_ns):
        loop.push(float(t), _ARRIVAL, Request(rid=rid, arrival_ns=float(t)))
    while loop.events:
        now, kind, _, payload = loop.events.pop()
        if kind == _ARRIVAL:
            loop.dispatch(payload, now)
        else:
            loop.finish(payload[1], payload[2], now)
    return loop.result()


def simulate_closed_loop(
    service: ServiceModel,
    n_clients: int,
    n_requests: int,
    mean_think_ns: float,
    seed: int,
    n_cores: int,
    engine: Optional[str] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> ServingResult:
    """Closed loop: each client re-issues after completion + think time.

    Exactly ``n_requests`` requests are issued in total, spread over
    ``n_clients`` concurrent clients (client ``i`` gets its own seeded
    think-time sequence); all clients start at time zero.  Closed-loop
    arrivals depend on completions, so both engines run this event loop
    (the fast engine swaps in the batch-sorted queue); results are
    byte-identical either way.
    """
    if n_clients < 1:
        raise ValueError(f"need at least one client, got {n_clients}")
    from repro.serve import fastsim

    events = None
    if fastsim.resolve_serve_engine(engine) == "fast":
        events = fastsim.SealedEventQueue()
    loop = _EventLoop(service, n_cores, events=events)
    if telemetry is not None:
        loop.telemetry = TelemetryCollector(telemetry)
    per_client = (n_requests + n_clients - 1) // n_clients
    thinks = {
        c: think_times_ns(mean_think_ns, per_client, seed + 7919 * c)
        for c in range(n_clients)
    }
    issued = {c: 0 for c in range(n_clients)}
    rid = 0
    remaining = n_requests

    def issue(client: int, at: float) -> None:
        nonlocal rid, remaining
        if remaining <= 0:
            return
        remaining -= 1
        loop.push(
            at, _ARRIVAL, Request(rid=rid, arrival_ns=at, client=client)
        )
        rid += 1

    for c in range(min(n_clients, n_requests)):
        issue(c, 0.0)
    while loop.events:
        now, kind, _, payload = loop.events.pop()
        if kind == _ARRIVAL:
            loop.dispatch(payload, now)
        else:
            _, core_id, req = payload
            loop.finish(core_id, req, now)
            client = req.client
            i = issued[client]
            issued[client] = i + 1
            think = thinks[client][i % len(thinks[client])]
            issue(client, now + think)
    return loop.result()
