"""Seeded fault injection for the cluster simulator.

Faults are generated *ahead of time* as a schedule -- a pure function of
``(FaultConfig, topology, horizon)`` -- rather than sampled inside the
event loop.  That keeps the cluster simulation a deterministic replay
(the same config always yields the same crashes at the same nanoseconds,
regardless of what the router does in between) and makes fault schedules
directly comparable in tests.

Two independent fault processes per replica, in the classic renewal
form:

* **crash** -- the replica goes down entirely: queued and in-flight
  requests are lost (the router retries them elsewhere), and the replica
  comes back empty after the repair time.
* **slow** -- the replica keeps serving but every service time is
  multiplied by ``slow_factor`` for the duration (a gray failure: page
  cache loss, noisy neighbour, thermal throttling).

Up-times are exponential with mean MTTF, repair times exponential with
mean MTTR, each ``(shard, replica, kind)`` stream seeded independently
so adding replicas never perturbs existing streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

CRASH = "crash"
SLOW = "slow"


@dataclass(frozen=True)
class FaultConfig:
    """Mean-time-to-failure/repair knobs for both fault processes.

    ``None`` MTTF disables that fault kind entirely; the all-defaults
    config injects nothing, so a fault-free cluster is the zero value.
    """

    crash_mttf_ns: Optional[float] = None
    crash_mttr_ns: float = 2_000_000.0
    slow_mttf_ns: Optional[float] = None
    slow_mttr_ns: float = 2_000_000.0
    #: Service-time multiplier while a replica is slow.
    slow_factor: float = 4.0
    seed: int = 0

    def __post_init__(self):
        for name in ("crash_mttf_ns", "slow_mttf_ns"):
            value = getattr(self, name)
            if value is not None and value <= 0.0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("crash_mttr_ns", "slow_mttr_ns"):
            if getattr(self, name) <= 0.0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.slow_factor <= 1.0:
            raise ValueError(
                f"slow_factor must exceed 1, got {self.slow_factor}"
            )

    @property
    def enabled(self) -> bool:
        return self.crash_mttf_ns is not None or self.slow_mttf_ns is not None


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: a replica fails at ``time_ns`` for ``duration_ns``."""

    time_ns: float
    kind: str  # CRASH or SLOW
    shard: int
    replica: int
    duration_ns: float

    @property
    def recovery_ns(self) -> float:
        return self.time_ns + self.duration_ns


def _stream_rng(seed: int, shard: int, replica: int, kind: str) -> np.random.Generator:
    """Independent generator per (seed, shard, replica, kind) stream."""
    return np.random.default_rng(
        (seed & (2**63 - 1), 0xFA017, shard, replica, 0 if kind == CRASH else 1)
    )


def _renewal_stream(
    rng: np.random.Generator,
    mttf_ns: float,
    mttr_ns: float,
    horizon_ns: float,
) -> List[Tuple[float, float]]:
    """(failure time, repair duration) pairs of one up/down renewal process."""
    out: List[Tuple[float, float]] = []
    t = 0.0
    while True:
        t += float(rng.exponential(mttf_ns))
        if t >= horizon_ns:
            return out
        duration = float(rng.exponential(mttr_ns))
        out.append((t, duration))
        t += duration


def fault_schedule(
    config: FaultConfig,
    n_shards: int,
    n_replicas: int,
    horizon_ns: float,
) -> List[FaultEvent]:
    """Every fault hitting the cluster before ``horizon_ns``, time-ordered.

    Pure function of its arguments: the schedule for (seed, topology,
    horizon) is bit-identical across processes and runs.  Events are
    sorted by ``(time, shard, replica, kind)`` so the order is stable
    even for simultaneous faults.
    """
    if n_shards < 1 or n_replicas < 1:
        raise ValueError(
            f"need at least one shard and replica, got {n_shards}x{n_replicas}"
        )
    if horizon_ns <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon_ns}")
    events: List[FaultEvent] = []
    for shard in range(n_shards):
        for replica in range(n_replicas):
            for kind, mttf, mttr in (
                (CRASH, config.crash_mttf_ns, config.crash_mttr_ns),
                (SLOW, config.slow_mttf_ns, config.slow_mttr_ns),
            ):
                if mttf is None:
                    continue
                rng = _stream_rng(config.seed, shard, replica, kind)
                for t, duration in _renewal_stream(rng, mttf, mttr, horizon_ns):
                    events.append(
                        FaultEvent(
                            time_ns=t,
                            kind=kind,
                            shard=shard,
                            replica=replica,
                            duration_ns=duration,
                        )
                    )
    events.sort(key=lambda e: (e.time_ns, e.shard, e.replica, e.kind))
    return events


def downtime_fraction(
    events: List[FaultEvent], n_shards: int, n_replicas: int, horizon_ns: float
) -> float:
    """Fraction of replica-time spent crashed (schedule-level, pre-routing)."""
    down = sum(
        min(e.recovery_ns, horizon_ns) - e.time_ns
        for e in events
        if e.kind == CRASH
    )
    return down / (horizon_ns * n_shards * n_replicas)
