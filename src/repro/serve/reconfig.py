"""Live cluster reconfiguration: splits, rebuild-and-swap, autoscaling.

Production clusters never get to stop: shards split while traffic is in
flight, indexes are rebuilt in the background and swapped in atomically,
and replica counts follow load.  This module makes those *online
operations* first-class, declarative, and exactly as deterministic as
the fault schedules in :mod:`repro.serve.faults`:

* **Shard split / merge** -- the key-range partition is versioned as a
  sequence of :class:`ShardEpoch` values.  A split carves one range in
  two and hands the new range to a freshly provisioned shard; a merge
  returns a range to its left neighbour and retires the orphaned shard
  (gracefully: queued work completes, new traffic re-routes).  Requests
  stamped with a stale epoch are re-resolved against the current map at
  dispatch time -- the router-side half of a key-range handoff.
* **Rebuild-and-swap** -- a replica leaves the routing rotation (the
  degraded-routing drain the fault injector already exercises: queued
  and in-flight work completes, nothing is cancelled), rebuilds its
  index for ``build_ns`` (drawn from the paper's fig17 build-time data
  by the ``ext_reconfig`` experiment), then swaps the new index in
  atomically and rejoins the rotation -- optionally faster by
  ``speedup``.
* **Reactive autoscaling** -- at fixed intervals the autoscaler reads,
  per shard, exactly the signals :meth:`ClusterResult.to_metrics`
  exports (queue depth, p99 latency) and applies the pure rule
  :func:`autoscale_decision` to add or retire replicas.

Determinism contract (the ``faults.py`` rules):

* :func:`reconfig_schedule` is a pure function of ``(spec, topology,
  horizon)``.  Trigger times are *absolute* nanoseconds; the horizon
  only filters which triggers exist, so the schedule for a shorter
  horizon is a bit-identical prefix of the schedule for a longer one.
* Everything the runtime does downstream of a trigger is a pure
  function of simulator state, so runs replay byte-identically across
  seeds, serial vs ``--jobs N``, and the ``event`` vs ``fast`` engines
  (reconfig triggers ride the same batch-sorted event queue as faults).
* :class:`ReconfigSpec` is versioned, JSON round-trippable data with a
  ``content_key()``, and composes into
  :class:`~repro.serve.scenario.ScenarioSpec`; cache keys gain a
  ``reconfig`` entry only when a spec is attached, so existing keys
  (and warm caches) are untouched.

See ``docs/reconfig.md`` for the epoch/handoff model and the drain-and-
swap lifecycle.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.router import ShardMap
from repro.serve.telemetry import canonical_json, content_hash

#: Bumped whenever the serialized spec layout changes meaning.
RECONFIG_SCHEMA_VERSION = 1

#: Trigger kinds, in intra-timestamp execution order.
SPLIT = "split"
MERGE = "merge"
REBUILD = "rebuild"
AUTOSCALE = "autoscale"
#: Emitted by the runtime when a rebuild's build time elapses -- never
#: present in a declarative schedule.
REBUILD_DONE = "rebuild_done"
_KIND_ORDER = {SPLIT: 0, MERGE: 1, REBUILD: 2, AUTOSCALE: 3}


@dataclass(frozen=True)
class SplitSpec:
    """Split the range at position ``shard`` (in the epoch current when
    the trigger fires) at ``at_key``; the upper half moves to a newly
    provisioned shard."""

    at_ns: float
    shard: int
    at_key: int

    def __post_init__(self):
        if self.at_ns < 0.0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")

    def to_dict(self) -> Dict:
        return {
            "at_ns": self.at_ns,
            "shard": self.shard,
            "at_key": int(self.at_key),
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "SplitSpec":
        return cls(
            at_ns=float(d["at_ns"]),
            shard=int(d["shard"]),
            at_key=int(d["at_key"]),
        )


@dataclass(frozen=True)
class MergeSpec:
    """Merge the range at position ``shard`` with its right neighbour;
    the neighbour's shard is retired (graceful drain)."""

    at_ns: float
    shard: int

    def __post_init__(self):
        if self.at_ns < 0.0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")

    def to_dict(self) -> Dict:
        return {"at_ns": self.at_ns, "shard": self.shard}

    @classmethod
    def from_dict(cls, d: Dict) -> "MergeSpec":
        return cls(at_ns=float(d["at_ns"]), shard=int(d["shard"]))


@dataclass(frozen=True)
class RebuildSpec:
    """Rebuild replica ``replica`` of (initial-topology) shard ``shard``.

    The replica leaves the rotation at ``at_ns``, drains gracefully, and
    rejoins ``build_ns`` later with its service times divided by
    ``speedup`` (1.0 = same index, e.g. a compaction).
    """

    at_ns: float
    shard: int
    replica: int
    build_ns: float
    speedup: float = 1.0

    def __post_init__(self):
        if self.at_ns < 0.0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.shard < 0 or self.replica < 0:
            raise ValueError("shard and replica must be >= 0")
        if self.build_ns <= 0.0:
            raise ValueError(f"build_ns must be positive, got {self.build_ns}")
        if self.speedup <= 0.0:
            raise ValueError(f"speedup must be positive, got {self.speedup}")

    def to_dict(self) -> Dict:
        return {
            "at_ns": self.at_ns,
            "shard": self.shard,
            "replica": self.replica,
            "build_ns": self.build_ns,
            "speedup": self.speedup,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "RebuildSpec":
        return cls(
            at_ns=float(d["at_ns"]),
            shard=int(d["shard"]),
            replica=int(d["replica"]),
            build_ns=float(d["build_ns"]),
            speedup=float(d.get("speedup", 1.0)),
        )


@dataclass(frozen=True)
class AutoscaleSpec:
    """The reactive scaling rule, evaluated per shard every
    ``interval_ns``.

    Scale *up* (add one replica) when the shard's total backlog reaches
    ``up_depth``, or when ``up_p99_ns`` is set and the shard's p99
    latency since the last tick exceeds it; scale *down* (retire the
    newest replica, graceful drain) when the backlog has fallen to
    ``down_depth``.  Replica counts stay within
    ``[min_replicas, max_replicas]``.
    """

    interval_ns: float
    up_depth: int
    down_depth: int = 0
    min_replicas: int = 1
    max_replicas: int = 8
    up_p99_ns: Optional[float] = None

    def __post_init__(self):
        if self.interval_ns <= 0.0:
            raise ValueError(
                f"interval_ns must be positive, got {self.interval_ns}"
            )
        if self.up_depth < 1:
            raise ValueError(f"up_depth must be >= 1, got {self.up_depth}")
        if not 0 <= self.down_depth < self.up_depth:
            raise ValueError(
                f"need 0 <= down_depth < up_depth, got {self.down_depth}"
            )
        if self.min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas {self.max_replicas} below min_replicas "
                f"{self.min_replicas}"
            )
        if self.up_p99_ns is not None and self.up_p99_ns <= 0.0:
            raise ValueError(
                f"up_p99_ns must be positive, got {self.up_p99_ns}"
            )

    def to_dict(self) -> Dict:
        d = {
            "interval_ns": self.interval_ns,
            "up_depth": self.up_depth,
            "down_depth": self.down_depth,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
        }
        if self.up_p99_ns is not None:
            d["up_p99_ns"] = self.up_p99_ns
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "AutoscaleSpec":
        return cls(
            interval_ns=float(d["interval_ns"]),
            up_depth=int(d["up_depth"]),
            down_depth=int(d.get("down_depth", 0)),
            min_replicas=int(d.get("min_replicas", 1)),
            max_replicas=int(d.get("max_replicas", 8)),
            up_p99_ns=(
                float(d["up_p99_ns"]) if d.get("up_p99_ns") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ReconfigSpec:
    """A complete reconfiguration plan: declarative, versioned data.

    The zero value (no triggers) is a strict no-op: the differential
    suite pins that a cluster run with ``ReconfigSpec()`` attached is
    byte-identical to one with no spec at all.
    """

    splits: Tuple[SplitSpec, ...] = ()
    merges: Tuple[MergeSpec, ...] = ()
    rebuilds: Tuple[RebuildSpec, ...] = ()
    autoscale: Optional[AutoscaleSpec] = None

    def __post_init__(self):
        object.__setattr__(self, "splits", tuple(self.splits))
        object.__setattr__(self, "merges", tuple(self.merges))
        object.__setattr__(self, "rebuilds", tuple(self.rebuilds))

    @property
    def enabled(self) -> bool:
        """True when any trigger is present."""
        return bool(
            self.splits or self.merges or self.rebuilds
            or self.autoscale is not None
        )

    def to_dict(self) -> Dict:
        d: Dict = {"schema": RECONFIG_SCHEMA_VERSION}
        if self.splits:
            d["splits"] = [s.to_dict() for s in self.splits]
        if self.merges:
            d["merges"] = [m.to_dict() for m in self.merges]
        if self.rebuilds:
            d["rebuilds"] = [r.to_dict() for r in self.rebuilds]
        if self.autoscale is not None:
            d["autoscale"] = self.autoscale.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "ReconfigSpec":
        schema = d.get("schema")
        if schema != RECONFIG_SCHEMA_VERSION:
            raise ValueError(
                f"reconfig schema {schema!r} != {RECONFIG_SCHEMA_VERSION}"
            )
        return cls(
            splits=tuple(
                SplitSpec.from_dict(s) for s in d.get("splits", [])
            ),
            merges=tuple(
                MergeSpec.from_dict(m) for m in d.get("merges", [])
            ),
            rebuilds=tuple(
                RebuildSpec.from_dict(r) for r in d.get("rebuilds", [])
            ),
            autoscale=(
                AutoscaleSpec.from_dict(d["autoscale"])
                if d.get("autoscale") is not None
                else None
            ),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ReconfigSpec":
        import json

        return cls.from_dict(json.loads(text))

    def content_key(self) -> str:
        return content_hash(self.to_dict())


@dataclass(frozen=True)
class ReconfigEvent:
    """One scheduled trigger, ready for the simulator's event queue."""

    time_ns: float
    kind: str
    shard: int = -1
    replica: int = -1
    at_key: int = 0
    build_ns: float = 0.0
    speedup: float = 1.0


def reconfig_schedule(
    spec: ReconfigSpec,
    n_shards: int,
    n_replicas: int,
    horizon_ns: float,
) -> List[ReconfigEvent]:
    """Expand a spec into the triggers that fire before ``horizon_ns``.

    Pure function of ``(spec, topology, horizon)``.  Trigger times are
    absolute, so the horizon only *filters*: the schedule for ``h1 <
    h2`` is a bit-identical prefix of the schedule for ``h2`` (the
    property suite pins this).  Sorted by ``(time, kind, shard,
    replica)`` with the kind order split < merge < rebuild < autoscale.

    Rebuild targets are validated against the *initial* topology --
    splits provision new shards at runtime, but declarative rebuilds may
    only name shards that exist at time zero.
    """
    if horizon_ns <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon_ns}")
    events: List[ReconfigEvent] = []
    for s in spec.splits:
        if s.at_ns < horizon_ns:
            events.append(
                ReconfigEvent(s.at_ns, SPLIT, shard=s.shard, at_key=s.at_key)
            )
    for m in spec.merges:
        if m.at_ns < horizon_ns:
            events.append(ReconfigEvent(m.at_ns, MERGE, shard=m.shard))
    for r in spec.rebuilds:
        if r.shard >= n_shards or r.replica >= n_replicas:
            raise ValueError(
                f"rebuild targets replica {r.replica} of shard {r.shard}, "
                f"outside the {n_shards}x{n_replicas} initial topology"
            )
        if r.at_ns < horizon_ns:
            events.append(
                ReconfigEvent(
                    r.at_ns,
                    REBUILD,
                    shard=r.shard,
                    replica=r.replica,
                    build_ns=r.build_ns,
                    speedup=r.speedup,
                )
            )
    if spec.autoscale is not None:
        k = 1
        while k * spec.autoscale.interval_ns < horizon_ns:
            events.append(
                ReconfigEvent(k * spec.autoscale.interval_ns, AUTOSCALE)
            )
            k += 1
    events.sort(
        key=lambda e: (e.time_ns, _KIND_ORDER[e.kind], e.shard, e.replica)
    )
    return events


def autoscale_decision(
    spec: AutoscaleSpec,
    backlog: int,
    p99_ns: Optional[float],
    n_live: int,
) -> int:
    """The scaling rule: +1 (add a replica), -1 (retire one), or 0.

    Pure function of ``(spec, observed backlog, observed p99, live
    replica count)`` -- the same numbers ``to_metrics()`` exports as the
    ``queue_depth`` and ``p99_ns`` gauges.  ``p99_ns`` is None when no
    request completed since the last tick.
    """
    overloaded = backlog >= spec.up_depth or (
        spec.up_p99_ns is not None
        and p99_ns is not None
        and p99_ns > spec.up_p99_ns
    )
    if overloaded:
        return 1 if n_live < spec.max_replicas else 0
    if backlog <= spec.down_depth and n_live > spec.min_replicas:
        return -1
    return 0


@dataclass(frozen=True)
class ShardEpoch:
    """One version of the key-range partition.

    ``bounds[i]`` is the lower bound of range ``i``; ``owners[i]`` is
    the simulator shard id serving that range.  Splits append brand-new
    shard ids rather than renumbering, so per-shard statistics and
    in-flight requests keep their indices across epochs; ranges stay a
    total, non-overlapping partition of the keyspace (the property
    suite pins both invariants).
    """

    version: int
    time_ns: float
    bounds: Tuple[int, ...]
    owners: Tuple[int, ...]

    def __post_init__(self):
        if len(self.bounds) != len(self.owners):
            raise ValueError(
                f"{len(self.bounds)} bounds vs {len(self.owners)} owners"
            )
        if len(set(self.owners)) != len(self.owners):
            raise ValueError(f"duplicate owners: {self.owners}")
        ShardMap(self.bounds)  # validates strictly-increasing bounds

    @property
    def n_ranges(self) -> int:
        return len(self.bounds)

    def shard_for(self, key: int) -> int:
        """Owning shard id for ``key`` (clamped below the first bound,
        like :meth:`ShardMap.shard_for`)."""
        idx = max(bisect_right(self.bounds, int(key)) - 1, 0)
        return self.owners[idx]

    def to_dict(self) -> Dict:
        return {
            "version": self.version,
            "time_ns": self.time_ns,
            "bounds": list(self.bounds),
            "owners": list(self.owners),
        }


class _RebuiltService:
    """A replica's service model after rebuild-and-swap: the base model
    with every service time divided by ``speedup``."""

    __slots__ = ("base", "speedup")

    def __init__(self, base, speedup: float):
        self.base = base
        self.speedup = speedup

    def service_ns(self, busy_cores: int) -> float:
        return self.base.service_ns(busy_cores) / self.speedup


class ReconfigRuntime:
    """Online-operation state riding one cluster simulation.

    The cluster simulator owns the event loop; this object owns the
    epoch history and applies each trigger when the simulator hands it
    over.  Everything here is driven by :func:`reconfig_schedule` plus
    simulator state, so it inherits the simulator's determinism.
    """

    def __init__(self, sim, spec: ReconfigSpec, horizon_ns: float):
        self.sim = sim
        self.spec = spec
        cluster = sim.cluster
        self.schedule = reconfig_schedule(
            spec, cluster.n_shards, cluster.n_replicas, horizon_ns
        )
        self.epochs: List[ShardEpoch] = [
            ShardEpoch(
                version=0,
                time_ns=0.0,
                bounds=tuple(cluster.shard_map.lower_bounds),
                owners=tuple(range(cluster.n_shards)),
            )
        ]
        #: Base (pre-rebuild) service model per shard id; splits append.
        self.shard_services = list(cluster.services)
        #: Completed rebuilds: (completion_ns, shard, replica).
        self.rebuilds: List[Tuple[float, int, int]] = []
        #: Autoscaler actions: (time_ns, shard, +1 | -1).
        self.scale_events: List[Tuple[float, int, int]] = []
        #: Per-shard latencies since the last autoscale tick (collected
        #: only when the rule reads p99).
        self._latencies: Dict[int, List[float]] = {}

    @property
    def epoch(self) -> ShardEpoch:
        return self.epochs[-1]

    # -- router-side handoff ---------------------------------------------

    def resolve(self, record) -> None:
        """Re-route a request stamped with a stale epoch: recompute its
        shard against the current map and restamp.  The retrying router
        calls this on every (non-hedge) dispatch."""
        cur = self.epochs[-1]
        if record.epoch != cur.version:
            record.shard = cur.shard_for(record.key)
            record.epoch = cur.version

    def note_completion(self, shard: int, latency_ns: float) -> None:
        sp = self.spec.autoscale
        if sp is not None and sp.up_p99_ns is not None:
            self._latencies.setdefault(shard, []).append(latency_ns)

    # -- trigger application ---------------------------------------------

    def on_event(self, ev: ReconfigEvent, now: float) -> None:
        if ev.kind == SPLIT:
            self._apply_split(ev, now)
        elif ev.kind == MERGE:
            self._apply_merge(ev, now)
        elif ev.kind == REBUILD:
            self._begin_rebuild(ev, now)
        elif ev.kind == REBUILD_DONE:
            self._finish_rebuild(ev, now)
        elif ev.kind == AUTOSCALE:
            self._autoscale_tick(now)
        else:  # pragma: no cover - schedule only emits known kinds
            raise ValueError(f"unknown reconfig event kind {ev.kind!r}")

    def _finish_rebuild(self, ev: ReconfigEvent, now: float) -> None:
        """Atomic swap at build completion: install the rebuilt service
        model on every core at once and rejoin the rotation."""
        rep = self.sim.replicas[ev.shard][ev.replica]
        if ev.speedup != 1.0:
            rep.loop.service = _RebuiltService(
                self.shard_services[ev.shard], ev.speedup
            )
        rep.rebuilding = False
        rep.up = not rep.retired
        self.rebuilds.append((now, ev.shard, ev.replica))

    def live_replicas(self) -> int:
        """Replicas still provisioned on the shards owning a range."""
        return sum(
            sum(1 for r in self.sim.replicas[sid] if not r.retired)
            for sid in self.epochs[-1].owners
        )

    def _apply_split(self, ev: ReconfigEvent, now: float) -> None:
        cur = self.epochs[-1]
        if not 0 <= ev.shard < cur.n_ranges:
            raise ValueError(
                f"split targets range {ev.shard}, but epoch "
                f"{cur.version} has {cur.n_ranges} ranges"
            )
        # ShardMap.split validates the key falls strictly inside the
        # range; the upper half's owner is a brand-new shard cloned from
        # the range's current owner (same index, fresh replicas).
        new_map = ShardMap(cur.bounds).split(ev.shard, ev.at_key)
        owner = cur.owners[ev.shard]
        new_sid = self.sim.provision_shard(self.shard_services[owner])
        self.shard_services.append(self.shard_services[owner])
        owners = (
            cur.owners[: ev.shard + 1]
            + (new_sid,)
            + cur.owners[ev.shard + 1 :]
        )
        self.epochs.append(
            ShardEpoch(
                version=cur.version + 1,
                time_ns=now,
                bounds=tuple(new_map.lower_bounds),
                owners=owners,
            )
        )

    def _apply_merge(self, ev: ReconfigEvent, now: float) -> None:
        cur = self.epochs[-1]
        # ShardMap.merge validates the range has a right neighbour.
        new_map = ShardMap(cur.bounds).merge(ev.shard)
        retired_sid = cur.owners[ev.shard + 1]
        owners = cur.owners[: ev.shard + 1] + cur.owners[ev.shard + 2 :]
        self.sim.retire_shard(retired_sid)
        self.epochs.append(
            ShardEpoch(
                version=cur.version + 1,
                time_ns=now,
                bounds=tuple(new_map.lower_bounds),
                owners=owners,
            )
        )

    def _begin_rebuild(self, ev: ReconfigEvent, now: float) -> None:
        rep = self.sim.replicas[ev.shard][ev.replica]
        # Degraded-routing drain: out of the rotation, queued work
        # completes.  The swap arrives build_ns later.
        rep.up = False
        rep.rebuilding = True
        self.sim.schedule_reconfig(
            now + ev.build_ns,
            ReconfigEvent(
                now + ev.build_ns,
                REBUILD_DONE,
                shard=ev.shard,
                replica=ev.replica,
                speedup=ev.speedup,
            ),
        )

    def _autoscale_tick(self, now: float) -> None:
        sp = self.spec.autoscale
        cur = self.epochs[-1]
        for sid in cur.owners:  # range order: deterministic
            row = self.sim.replicas[sid]
            live = [r for r in row if not r.retired]
            backlog = sum(r.backlog for r in live)
            decision = autoscale_decision(
                sp, backlog, self._p99(sid), len(live)
            )
            if decision > 0:
                self.sim.provision_replica(sid, self.shard_services[sid])
                self.scale_events.append((now, sid, 1))
            elif decision < 0:
                # Retire the newest replica; rows are rid-ordered.
                rep = live[-1]
                rep.retired = True
                rep.up = False
                self.scale_events.append((now, sid, -1))
        self._latencies.clear()

    def _p99(self, sid: int) -> Optional[float]:
        lat = self._latencies.get(sid)
        if not lat:
            return None
        from repro.bench.stats import percentiles

        return float(percentiles(lat, (99.0,))[99.0])
