"""Request routing for the sharded cluster: shard lookup + replica choice.

The router is the client-side half of the cluster simulator: it maps a
key to its shard (binary search over the partition's lower bounds,
exactly the fence-pointer lookup a real proxy does), picks a replica
(least backlog among healthy replicas, ties to the lowest id -- the
deterministic analogue of power-of-two-choices), and owns the failure
policy: how long to wait before hedging a straggling request, how many
attempts to make, and how the retry backoff grows.

Everything here is pure data + pure functions; the event-loop side that
*applies* the policy lives in :mod:`repro.serve.cluster`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


class ShardMap:
    """Key-range partitioning: shard ``i`` owns ``[lower_bounds[i], next)``.

    ``lower_bounds`` must be strictly increasing; the first bound is the
    notional start of the keyspace (keys below it still route to shard 0,
    matching how a real fence-pointer table handles out-of-range keys).
    """

    def __init__(self, lower_bounds: Sequence[int]):
        bounds = [int(b) for b in lower_bounds]
        if not bounds:
            raise ValueError("need at least one shard bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bounds must be strictly increasing: {bounds}")
        self._bounds = bounds

    @property
    def n_shards(self) -> int:
        return len(self._bounds)

    @property
    def lower_bounds(self) -> List[int]:
        return list(self._bounds)

    def shard_for(self, key: int) -> int:
        """Binary-search shard lookup (clamped below the first bound)."""
        return max(bisect_right(self._bounds, int(key)) - 1, 0)

    def shards_for(self, keys: Sequence[int]) -> List[int]:
        """Vectorized :meth:`shard_for` over a key batch.

        ``np.searchsorted(bounds, key, side="right")`` is ``bisect_right``
        in pure integer arithmetic, so the result equals the scalar path
        element for element; inputs numpy cannot represent losslessly
        (mixed-sign 64-bit extremes, arbitrary-precision ints) fall back
        to the scalar loop rather than risk a wrapping cast.
        """
        arr = np.asarray(keys)
        if arr.size == 0:
            return []
        try:
            if arr.dtype.kind == "u":
                if self._bounds[0] >= 0:
                    bounds = np.asarray(self._bounds, dtype=np.uint64)
                elif int(arr.max()) <= np.iinfo(np.int64).max:
                    arr = arr.astype(np.int64)
                    bounds = np.asarray(self._bounds, dtype=np.int64)
                else:
                    raise OverflowError
            elif arr.dtype.kind == "i":
                bounds = np.asarray(self._bounds, dtype=np.int64)
            else:
                raise OverflowError
        except OverflowError:
            return [self.shard_for(key) for key in keys]
        idx = np.searchsorted(bounds, arr, side="right").astype(np.int64) - 1
        np.maximum(idx, 0, out=idx)
        return idx.tolist()

    def __eq__(self, other) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return self._bounds == other._bounds

    def __hash__(self) -> int:
        return hash(tuple(self._bounds))

    def __repr__(self) -> str:
        return f"ShardMap({self._bounds!r})"

    def split(self, shard: int, at_key: int) -> "ShardMap":
        """Split range ``shard`` at ``at_key`` into two adjacent ranges.

        The new range ``[at_key, old upper bound)`` is inserted directly
        after ``shard``; ``at_key`` must fall strictly inside the range
        being split so both halves stay non-empty.  Pure: returns a new
        map, never mutates.
        """
        at_key = int(at_key)
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"no shard {shard} in a {self.n_shards}-map")
        if at_key <= self._bounds[shard]:
            raise ValueError(
                f"split key {at_key} not above shard {shard} lower bound "
                f"{self._bounds[shard]}"
            )
        if shard + 1 < self.n_shards and at_key >= self._bounds[shard + 1]:
            raise ValueError(
                f"split key {at_key} not below shard {shard} upper bound "
                f"{self._bounds[shard + 1]}"
            )
        bounds = list(self._bounds)
        bounds.insert(shard + 1, at_key)
        return ShardMap(bounds)

    def merge(self, shard: int) -> "ShardMap":
        """Merge range ``shard`` with its right neighbour ``shard + 1``.

        Inverse of :meth:`split`: ``m.split(s, k).merge(s) == m`` for any
        valid split.  Pure: returns a new map, never mutates.
        """
        if not 0 <= shard < self.n_shards - 1:
            raise ValueError(
                f"shard {shard} has no right neighbour in a "
                f"{self.n_shards}-map"
            )
        bounds = list(self._bounds)
        del bounds[shard + 1]
        return ShardMap(bounds)

    @classmethod
    def from_keys(cls, keys: Sequence[int], n_shards: int) -> "ShardMap":
        """Equal-count split of a sorted key array into ``n_shards`` ranges.

        Duplicate boundary keys (possible on very skewed data) are nudged
        upward so bounds stay strictly increasing; the resulting map still
        covers every key.
        """
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        n = len(keys)
        if n < n_shards:
            raise ValueError(f"{n} keys cannot fill {n_shards} shards")
        bounds: List[int] = []
        for s in range(n_shards):
            b = int(keys[(n * s) // n_shards])
            if bounds and b <= bounds[-1]:
                b = bounds[-1] + 1
            bounds.append(b)
        return cls(bounds)

    @classmethod
    def uniform(cls, lo: int, hi: int, n_shards: int) -> "ShardMap":
        """Equal-width split of ``[lo, hi)``."""
        if hi <= lo:
            raise ValueError(f"empty keyspace [{lo}, {hi})")
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        step = (hi - lo) // n_shards
        if step < 1:
            raise ValueError(f"keyspace [{lo}, {hi}) too small for {n_shards}")
        return cls([lo + s * step for s in range(n_shards)])


@dataclass(frozen=True)
class RouterPolicy:
    """Failure-handling knobs of the router.

    The defaults are the *degenerate* policy -- no hedging, no batching
    -- under which a 1-shard, 1-replica, fault-free cluster is
    event-for-event identical to the single-node simulator (the
    differential tests pin this).
    """

    #: Hedge a request to a second replica if it has not completed this
    #: many nanoseconds after dispatch (None = hedging off).
    hedge_after_ns: Optional[float] = None
    #: Total attempts per request, counting the first dispatch.  A
    #: request still incomplete after this many lost attempts fails and
    #: counts against availability.
    max_attempts: int = 4
    #: Capped exponential backoff between retry attempts:
    #: ``min(base * 2**(attempt - 1), cap)``.
    backoff_base_ns: float = 100_000.0
    backoff_cap_ns: float = 3_200_000.0
    #: Group same-shard arrivals inside this window into one dispatch
    #: batch (0 = dispatch each request immediately).
    batch_window_ns: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.hedge_after_ns is not None and self.hedge_after_ns <= 0.0:
            raise ValueError(
                f"hedge_after_ns must be positive, got {self.hedge_after_ns}"
            )
        if self.backoff_base_ns <= 0.0 or self.backoff_cap_ns <= 0.0:
            raise ValueError("backoff base and cap must be positive")
        if self.batch_window_ns < 0.0:
            raise ValueError(
                f"batch_window_ns must be >= 0, got {self.batch_window_ns}"
            )

    def backoff_ns(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.backoff_base_ns * (2.0 ** (attempt - 1)), self.backoff_cap_ns
        )


def pick_replica(
    replicas, exclude: Optional[int] = None
):
    """Least-backlog healthy replica, ties to the lowest id.

    ``replicas`` is a sequence of objects exposing ``rid``, ``up`` and
    ``backlog`` (the cluster's replica wrappers).  ``exclude`` skips one
    replica id (hedges go to a *different* replica).  Returns None when
    no healthy replica is available -- the caller then enters degraded
    mode (backoff + retry until a replica recovers or attempts run out).
    """
    best = None
    for r in replicas:
        if not r.up or r.rid == exclude:
            continue
        if best is None or (r.backlog, r.rid) < (best.backlog, best.rid):
            best = r
    return best


def request_keys(
    keys: Sequence[int], n_requests: int, seed: int
) -> List[int]:
    """Seeded uniform sample of lookup keys for a cluster run.

    Sampling from the served key array means shard load follows the
    partition (equal-count split -> roughly balanced shards), while
    still being a pure function of ``(keys, n, seed)``.
    """
    if n_requests < 1:
        raise ValueError(f"need at least one request, got {n_requests}")
    rng = np.random.default_rng((seed & (2**63 - 1), 0x50A7))
    idx = rng.integers(0, len(keys), size=n_requests)
    return [int(keys[i]) for i in idx]
