"""repro (pylis): a Python reproduction of "Benchmarking Learned Indexes".

Marcus, Kipf, van Renen, Stoian, Misra, Kemper, Neumann, Kraska
(VLDB 2020 / arXiv:2006.12804) -- learned and traditional index
structures over sorted in-memory integer arrays, benchmarked on a
simulated CPU/memory substrate.

Quickstart::

    from repro import make_index, make_dataset, make_workload
    from repro.bench import measure_index

    ds = make_dataset("amzn", 100_000)
    wl = make_workload(ds, 1_000)
    m = measure_index(ds, wl, "RMI", {"branching": 1024})
    print(m.latency_ns, m.size_mb, m.counters.llc_misses)
"""

from repro.core import (
    Capabilities,
    SearchBound,
    SortedDataIndex,
    available_indexes,
    get_index_class,
    make_index,
    pareto_front,
    validate_index,
)
from repro.datasets import Dataset, Workload, make_dataset, make_workload

__version__ = "1.0.0"

__all__ = [
    "SearchBound",
    "SortedDataIndex",
    "Capabilities",
    "make_index",
    "get_index_class",
    "available_indexes",
    "pareto_front",
    "validate_index",
    "Dataset",
    "Workload",
    "make_dataset",
    "make_workload",
    "__version__",
]
