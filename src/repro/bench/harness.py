"""Measurement harness: run traced lookup loops over the simulated CPU.

This is the analogue of the paper's timed lookup loop: build the index in
a fresh simulated address space (data array, payload array, index
internals), replay a workload through the index + last-mile search +
payload read, and collect per-lookup performance counters.  The cost
model converts counters to estimated nanoseconds.

Lookup results are verified against ground truth on every measured lookup
(the paper sums payloads for the same reason): a structure that returned
an invalid bound fails the measurement instead of producing garbage
numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.registry import make_index
from repro.core.interface import SortedDataIndex
from repro.datasets.loader import Dataset
from repro.datasets.workload import Workload
from repro.learned import kernels
from repro.memsim.costmodel import XEON_GOLD_6230, CostModel
from repro.memsim.counters import PerfCounters, PerfCountersF
from repro.memsim.engine import default_engine_name
from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.trace import TraceRecorder, TraceStore
from repro.memsim.tracer import PerfTracer
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.phase import PhaseTracer, phase_window, profiling_enabled
from repro.search.last_mile import SEARCH_FUNCTIONS

#: Instruction charge for the per-lookup loop body (increment, compare,
#: accumulate payload sum).
_LOOP_INSTR = 4


class LookupError_(AssertionError):
    """A measured lookup returned the wrong position."""


@dataclass
class BuiltIndex:
    """An index built into a simulated address space alongside its data."""

    index: SortedDataIndex
    data: TracedArray
    payloads: TracedArray
    space: AddressSpace
    dataset: Dataset
    config: dict = field(default_factory=dict)
    #: Lazily created by ``measure(..., replay=True)``: recorded lookup
    #: event streams, keyed by (search, key), replayed on repeat lookups.
    traces: Optional[TraceStore] = None
    #: Lazily created by the vector-engine batched measure path:
    #: synthesized :class:`~repro.learned.kernels.BatchLookups` plus the
    #: assembled warmup/measured mega-traces, keyed by
    #: ``(search, warmup, n_lookups)`` and pinned to the workload object
    #: they were derived from.  Reusing the trace objects across
    #: ``measure`` calls is what lets the vector engine reuse its
    #: compiled plans and replay memos.
    batches: Optional[dict] = None


@dataclass
class Measurement:
    """Per-lookup averages for one (index config, workload) pair."""

    index: str
    dataset: str
    config: dict
    n_keys: int
    size_bytes: int
    build_seconds: float
    counters: PerfCountersF
    latency_ns: float
    fence_latency_ns: float
    avg_log2_bound: float
    n_lookups: int
    warm: bool = True
    search: str = "binary"
    key_bits: int = 64
    #: Raw per-phase counter totals over the measured window (``--profile``
    #: only, else None).  Values are integer :class:`PerfCounters` whose
    #: field-wise sum equals ``counters * n_lookups`` byte-exactly.
    phases: Optional[Dict[str, PerfCounters]] = None

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024.0 * 1024.0)

    def phase_per_lookup(self) -> Optional[Dict[str, PerfCountersF]]:
        """Per-lookup float view of :attr:`phases` (None when unprofiled)."""
        if self.phases is None:
            return None
        return {
            name: c.per_lookup(self.n_lookups)
            for name, c in self.phases.items()
        }


def build_index(
    dataset: Dataset,
    index_name: str,
    config: Optional[dict] = None,
) -> BuiltIndex:
    """Build an index over a dataset in a fresh simulated address space."""
    config = dict(config or {})
    with obs_spans.span(
        "build", index=index_name, dataset=dataset.name, n_keys=dataset.n
    ) as sp:
        space = AddressSpace()
        dtype = np.uint32 if dataset.key_bits == 32 else np.uint64
        data = TracedArray.allocate(
            space, dataset.keys.astype(dtype), name="data"
        )
        payloads = TracedArray.allocate(space, dataset.payloads, name="payloads")
        index = make_index(index_name, **config).build(data, space)
        sp.set(build_seconds=index.build_seconds, size_bytes=index.size_bytes())
    return BuiltIndex(index, data, payloads, space, dataset, config)


def measure(
    built: BuiltIndex,
    workload: Workload,
    n_lookups: int = 1000,
    warmup: int = 300,
    warm: bool = True,
    search: str = "binary",
    cost_model: CostModel = XEON_GOLD_6230,
    verify: bool = True,
    engine: Optional[str] = None,
    replay: bool = False,
    profile: Optional[bool] = None,
) -> Measurement:
    """Replay a workload through the index on the simulated CPU.

    ``warm=False`` reproduces the paper's cold-cache experiment: caches
    and TLB are flushed before every measured lookup (the branch predictor
    stays warm, matching the paper's method of flushing only the cache).

    ``engine`` selects the memsim engine (None -> ambient default, see
    ``repro.memsim.engine``); both engines are counter-identical, so the
    choice never changes the measurement.  ``replay=True`` records each
    (search, key) lookup's event stream into ``built.traces`` on first
    execution and replays it on repeats -- sound because tracer calls
    return ``None``, so the stream is independent of simulator state.
    Repeat-heavy callers (``measure_repeated``, warm/cold pairs over one
    build) get the speedup; one-shot grid cells default to off.

    ``profile`` (None -> ambient ``REPRO_OBS_PROFILE``, the CLI's
    ``--profile``) attributes counters to lookup phases via a
    :class:`~repro.obs.phase.PhaseTracer`; the per-phase totals land in
    ``Measurement.phases`` and sum byte-exactly to ``counters``.
    Profiling disables trace replay for this call (recorded streams
    carry no phase markers) but never changes any counter.
    """
    index = built.index
    data = built.data
    payloads = built.payloads
    search_fn = SEARCH_FUNCTIONS[search]
    n = len(data)
    keys = workload.keys_py
    truths = workload.positions_py
    n_work = len(keys)
    point_only = index.point_only
    if profile is None:
        profile = profiling_enabled()

    if (
        not profile
        and n_work > 0
        and search in kernels.BATCH_SEARCHES
        and kernels.supports(index)
        and not getattr(index, "mutating_lookups", False)
        and _engine_name(engine) == "vector"
    ):
        # Batched path: one kernel call synthesizes every distinct
        # lookup's event stream, then the vector engine replays the
        # warmup and measured windows wholesale.  Counter-identical to
        # the loop below (same event stream at both snapshot points);
        # unsupported indexes/searches, mutating lookups, and profiling
        # fall back to the per-lookup loop (whose per-event path under
        # the vector engine is the fast engine's).
        return _measure_batched(
            built, workload, n_lookups, warmup, warm, search,
            cost_model, verify, engine,
        )

    store = None
    if replay and not profile and not getattr(index, "mutating_lookups", False):
        if built.traces is None:
            built.traces = TraceStore()
        store = built.traces
    tracer = PerfTracer(
        engine=engine, sites=store.sites if store is not None else None
    )
    if profile:
        tracer = PhaseTracer(tracer)
    replay_trace = tracer.replay

    def one_lookup(i: int, check: bool) -> float:
        key = keys[i % n_work]
        if store is not None:
            entry = store.get((search, key))
            if entry is not None:
                trace, lg = entry
                replay_trace(trace)
                return lg
            # Record the first execution (verified below even during
            # warmup, so every replayed stream was checked once).
            t = TraceRecorder(tracer, store.sites)
            check = check or verify
        else:
            t = tracer
        # Phase markers are no-ops unless `t` is a PhaseTracer; indexes
        # may refine "model" into finer phases (e.g. in-structure
        # "search") from inside their lookup.
        t.phase("model")
        bound = index.lookup(key, t)
        t.phase("search")
        pos = search_fn(data, key, bound, t)
        t.phase("other")
        t.instr(_LOOP_INSTR)
        if pos < n:
            payloads.touch(pos, t)
        if check:
            truth = truths[i % n_work]
            ok = pos == truth or (point_only and truth >= n)
            if not ok:
                raise LookupError_(
                    f"{index.name}: key {key} -> position {pos}, "
                    f"expected {truth} (bound [{bound.lo}, {bound.hi}))"
                )
        lg = math.log2(len(bound)) if len(bound) > 0 else 0.0
        if store is not None:
            store.put((search, key), t.finish(), lg)
        return lg

    measure_span = obs_spans.span(
        "measure",
        index=index.name,
        dataset=built.dataset.name,
        n_lookups=n_lookups,
        warmup=warmup,
        search=search,
        warm=warm,
        profile=profile,
    )
    with measure_span:
        replay_hits0 = store.hits if store is not None else 0
        replay_misses0 = store.misses if store is not None else 0
        for i in range(min(warmup, max(n_work, 1))):
            one_lookup(i, False)

        base = tracer.snapshot()
        # Checkpoint immediately after the base snapshot (no events can
        # interleave), so per-phase window deltas telescope to exactly
        # `snapshot() - base`.
        phase_base = tracer.checkpoint() if profile else None
        log2_sum = 0.0
        for i in range(n_lookups):
            if not warm:
                tracer.flush_caches()
            log2_sum += one_lookup(warmup + i, verify)
        phases = (
            phase_window(tracer.checkpoint(), phase_base) if profile else None
        )
        counters = (tracer.snapshot() - base).per_lookup(n_lookups)

        if store is not None:
            reg = obs_metrics.get_registry()
            reg.counter("harness.replay.hits").inc(store.hits - replay_hits0)
            reg.counter("harness.replay.misses").inc(
                store.misses - replay_misses0
            )
            reg.counter("memsim.trace_store.rejects").inc(store.rejects)
            store.rejects = 0
            reg.gauge("memsim.trace_store.events").set_max(store.events)
            reg.gauge("memsim.trace_store.traces").set_max(len(store))

    return Measurement(
        index=index.name,
        dataset=built.dataset.name,
        config=built.config,
        n_keys=n,
        size_bytes=index.size_bytes(),
        build_seconds=index.build_seconds,
        counters=counters,
        latency_ns=cost_model.latency_ns(counters, fence=False),
        fence_latency_ns=cost_model.latency_ns(counters, fence=True),
        avg_log2_bound=log2_sum / max(n_lookups, 1),
        n_lookups=n_lookups,
        warm=warm,
        search=search,
        key_bits=built.dataset.key_bits,
        phases=phases,
    )


def _engine_name(engine) -> Optional[str]:
    """Resolve ``measure``'s engine argument to an engine name."""
    if engine is None:
        return default_engine_name()
    if isinstance(engine, str):
        return engine
    return getattr(engine, "name", None)


def _measure_batched(
    built: BuiltIndex,
    workload: Workload,
    n_lookups: int,
    warmup: int,
    warm: bool,
    search: str,
    cost_model: CostModel,
    verify: bool,
    engine,
) -> Measurement:
    """Vectorized measure: kernel-synthesized streams + batch replay.

    Produces the same :class:`Measurement` as the scalar loop, byte for
    byte: the synthesized per-key event streams equal the scalar ones
    (``repro.learned.kernels``), the warmup/measured windows replay the
    same lookup sequence around the same snapshot boundary, and
    ``avg_log2_bound`` accumulates per-lookup floats in the same order.
    """
    index = built.index
    data = built.data
    n = len(data)
    keys = workload.keys_py
    truths = workload.positions_py
    n_work = len(keys)
    point_only = index.point_only

    tracer = PerfTracer(engine=engine)
    # Synthesis and mega-trace assembly are pure functions of the
    # (index, workload, window) tuple, so they are cached on the built
    # index; repeat measures then hit the traces' compiled plans and
    # replay memos (see repro.memsim.vector).
    cache_key = (search, warmup, n_lookups)
    entry = built.batches.get(cache_key) if built.batches else None
    if entry is not None and entry[0] is not workload:
        entry = None
    if entry is None:
        # The scalar loops: warmup lookups i, measured lookups warmup+i.
        warm_seq = [i % n_work for i in range(min(warmup, max(n_work, 1)))]
        meas_seq = [(warmup + i) % n_work for i in range(n_lookups)]
        need = sorted(set(warm_seq) | set(meas_seq))
        uniq, inv = np.unique(
            np.array([keys[i] for i in need], dtype=np.uint64),
            return_inverse=True,
        )
        batch = kernels.batch_lookups(
            index, data, built.payloads, uniq, search, tracer.sites
        )
        row_of = dict(zip(need, (int(r) for r in inv)))
        warm_rows = [row_of[i] for i in warm_seq]
        meas_rows = [row_of[i] for i in meas_seq]
        entry = (
            workload,
            batch,
            meas_seq,
            meas_rows,
            batch.mega_trace(warm_rows) if warm_rows else None,
            batch.mega_trace(meas_rows) if meas_rows else None,
        )
        if built.batches is None:
            built.batches = {}
        elif len(built.batches) >= 8:
            built.batches.clear()
        built.batches[cache_key] = entry
    _, batch, meas_seq, meas_rows, warm_trace, meas_trace = entry

    if verify:
        # Same check, same failure order, as the scalar measured loop.
        pos_l = batch.pos.tolist()
        lo_l = batch.lo.tolist()
        hi_l = batch.hi.tolist()
        for i, r in zip(meas_seq, meas_rows):
            pos = pos_l[r]
            truth = truths[i]
            if not (pos == truth or (point_only and truth >= n)):
                raise LookupError_(
                    f"{index.name}: key {keys[i]} -> position {pos}, "
                    f"expected {truth} (bound [{lo_l[r]}, {hi_l[r]}))"
                )

    lg = batch.lg
    with obs_spans.span(
        "measure",
        index=index.name,
        dataset=built.dataset.name,
        n_lookups=n_lookups,
        warmup=warmup,
        search=search,
        warm=warm,
        profile=False,
    ):
        if warm_trace is not None:
            tracer.replay(warm_trace)
        base = tracer.snapshot()
        log2_sum = 0.0
        if warm:
            if meas_trace is not None:
                tracer.replay(meas_trace)
            for r in meas_rows:
                log2_sum += lg[r]
        else:
            # Cold-cache: flush before every measured lookup, so each
            # lookup replays individually (per-row plans are cached).
            for r in meas_rows:
                tracer.flush_caches()
                tracer.replay(batch.trace_for(r))
                log2_sum += lg[r]
        counters = (tracer.snapshot() - base).per_lookup(n_lookups)

    return Measurement(
        index=index.name,
        dataset=built.dataset.name,
        config=built.config,
        n_keys=n,
        size_bytes=index.size_bytes(),
        build_seconds=index.build_seconds,
        counters=counters,
        latency_ns=cost_model.latency_ns(counters, fence=False),
        fence_latency_ns=cost_model.latency_ns(counters, fence=True),
        avg_log2_bound=log2_sum / max(n_lookups, 1),
        n_lookups=n_lookups,
        warm=warm,
        search=search,
        key_bits=built.dataset.key_bits,
        phases=None,
    )


def measure_index(
    dataset: Dataset,
    workload: Workload,
    index_name: str,
    config: Optional[dict] = None,
    **measure_kwargs,
) -> Measurement:
    """Convenience: build + measure in one call."""
    built = build_index(dataset, index_name, config)
    return measure(built, workload, **measure_kwargs)


@dataclass
class RepeatedMeasurement:
    """Chunked measurement with dispersion (error bars for figures)."""

    measurement: Measurement  # aggregate over all chunks
    chunk_latencies_ns: list

    @property
    def mean_latency_ns(self) -> float:
        return sum(self.chunk_latencies_ns) / len(self.chunk_latencies_ns)

    @property
    def std_latency_ns(self) -> float:
        mean = self.mean_latency_ns
        var = sum((x - mean) ** 2 for x in self.chunk_latencies_ns) / max(
            len(self.chunk_latencies_ns) - 1, 1
        )
        return var**0.5


def measure_repeated(
    built: BuiltIndex,
    workload: Workload,
    n_chunks: int = 5,
    chunk_lookups: int = 300,
    warmup: int = 300,
    cost_model: CostModel = XEON_GOLD_6230,
    replay: bool = True,
    **measure_kwargs,
) -> RepeatedMeasurement:
    """Measure in chunks over one warm run; report per-chunk dispersion.

    The simulator is deterministic given a workload, so dispersion here
    reflects genuine workload heterogeneity (different keys hit different
    structure regions), not timer noise.

    Chunk ``i`` re-runs the previous chunks' lookups as its warmup, so
    trace replay is on by default here: every lookup seen before is
    replayed from its recorded event stream instead of re-executing
    index code, with byte-identical counters
    (``tests/test_harness_replay.py``).
    """
    chunks = []
    for i in range(n_chunks):
        # Each chunk measures a different slice of the workload (the
        # measured window starts after `warmup` lookups).
        m = measure(
            built,
            workload,
            n_lookups=chunk_lookups,
            warmup=warmup + i * chunk_lookups,
            cost_model=cost_model,
            replay=replay,
            **measure_kwargs,
        )
        chunks.append(m)
    total = chunks[-1]
    return RepeatedMeasurement(
        measurement=total,
        chunk_latencies_ns=[c.latency_ns for c in chunks],
    )
