"""Compare two saved measurement files (regression tracking).

A benchmark repo lives or dies by noticing drift: after a change, run
``python -m repro.bench --experiment all --save-measurements new.json``
and compare against a stored baseline::

    python -m repro.bench.compare baseline.json new.json --threshold 0.05

Measurements are matched on (dataset, index, config, search, warm,
key_bits); the report lists latency changes beyond the threshold and any
configurations that appeared or disappeared.  Because the simulator is
deterministic, *any* latency change reflects a code change, not noise —
the threshold exists for intentional-but-small recalibrations.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.export import read_measurement_records

_KEY_FIELDS = ("dataset", "index", "config", "search", "warm", "key_bits")


def _record_key(record: dict) -> Tuple:
    return tuple(str(record.get(f)) for f in _KEY_FIELDS)


@dataclass
class Delta:
    key: Tuple
    baseline_ns: float
    current_ns: float

    @property
    def ratio(self) -> float:
        if self.baseline_ns <= 0:
            return float("inf")
        return self.current_ns / self.baseline_ns

    def describe(self) -> str:
        dataset, index, config, *_ = self.key
        direction = "slower" if self.ratio > 1 else "faster"
        return (
            f"{index} on {dataset} {config}: "
            f"{self.baseline_ns:.0f} -> {self.current_ns:.0f} ns "
            f"({abs(self.ratio - 1) * 100:.1f}% {direction})"
        )


@dataclass
class Comparison:
    regressions: List[Delta]
    improvements: List[Delta]
    unchanged: int
    only_in_baseline: List[Tuple]
    only_in_current: List[Tuple]

    @property
    def clean(self) -> bool:
        return not self.regressions and not self.only_in_baseline


def compare_files(
    baseline_path: str, current_path: str, threshold: float = 0.02
) -> Comparison:
    """Diff two measurement dumps; threshold is a latency ratio margin."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    baseline = {_record_key(r): r for r in read_measurement_records(baseline_path)}
    current = {_record_key(r): r for r in read_measurement_records(current_path)}

    regressions: List[Delta] = []
    improvements: List[Delta] = []
    unchanged = 0
    for key in sorted(set(baseline) & set(current)):
        delta = Delta(
            key,
            float(baseline[key]["latency_ns"]),
            float(current[key]["latency_ns"]),
        )
        if delta.ratio > 1 + threshold:
            regressions.append(delta)
        elif delta.ratio < 1 - threshold:
            improvements.append(delta)
        else:
            unchanged += 1
    regressions.sort(key=lambda d: -d.ratio)
    improvements.sort(key=lambda d: d.ratio)
    return Comparison(
        regressions=regressions,
        improvements=improvements,
        unchanged=unchanged,
        only_in_baseline=sorted(set(baseline) - set(current)),
        only_in_current=sorted(set(current) - set(baseline)),
    )


def format_comparison(comparison: Comparison, limit: int = 20) -> str:
    lines = []
    if comparison.regressions:
        lines.append(f"REGRESSIONS ({len(comparison.regressions)}):")
        lines.extend(
            "  " + d.describe() for d in comparison.regressions[:limit]
        )
    if comparison.improvements:
        lines.append(f"improvements ({len(comparison.improvements)}):")
        lines.extend(
            "  " + d.describe() for d in comparison.improvements[:limit]
        )
    if comparison.only_in_baseline:
        lines.append(
            f"missing from current run: {len(comparison.only_in_baseline)} "
            "configurations"
        )
    if comparison.only_in_current:
        lines.append(
            f"new in current run: {len(comparison.only_in_current)} "
            "configurations"
        )
    lines.append(f"unchanged within threshold: {comparison.unchanged}")
    lines.append("clean" if comparison.clean else "NOT CLEAN")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Diff two --save-measurements dumps; exit 1 on regressions.",
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.02)
    parser.add_argument("--limit", type=int, default=20)
    args = parser.parse_args(argv)
    comparison = compare_files(args.baseline, args.current, args.threshold)
    print(format_comparison(comparison, args.limit))
    return 0 if comparison.clean else 1


if __name__ == "__main__":
    sys.exit(main())
