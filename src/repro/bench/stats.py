"""Statistics for the benchmark: OLS (Sec 4.3) and latency percentiles.

The paper regresses lookup time on cache misses, branch misses and
instruction count across all indexes and datasets, reporting R^2,
standardized coefficients and significance.  This module implements OLS
with t-statistics / p-values from first principles (numpy + scipy.stats),
so the same analysis runs on our measured counters.

It also provides the exact-interpolation percentile helpers the serving
simulator's tail-latency accounting uses (p50/p95/p99/p99.9): the
``inclusive`` linear-interpolation definition, identical to
``statistics.quantiles(..., method="inclusive")`` and numpy's default,
implemented here so percentiles of a latency trace are a deterministic
pure-Python function of the sorted values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

#: The tail percentiles the serving reports quote, in report order.
TAIL_PERCENTILES = (50.0, 95.0, 99.0, 99.9)


def percentile(values: Sequence[float], q: float) -> float:
    """Exact linear-interpolation percentile (``q`` in [0, 100]).

    Matches ``statistics.quantiles(values, n=N, method="inclusive")`` at
    the cut points ``q = 100 * i / N`` and numpy's default
    ``np.percentile``: rank ``q/100 * (n-1)`` interpolated between the
    two bracketing order statistics.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    xs = _sorted_array(values)
    if xs.size == 0:
        raise ValueError("percentile of empty sequence")
    return _interpolate(xs, q)


def percentiles(
    values: Sequence[float], qs: Sequence[float] = TAIL_PERCENTILES
) -> Dict[float, float]:
    """Several percentiles of one sample, sorting it only once."""
    xs = _sorted_array(values)
    if xs.size == 0:
        raise ValueError("percentiles of empty sequence")
    out: Dict[float, float] = {}
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        out[q] = _interpolate(xs, q)
    return out


def _sorted_array(values: Sequence[float]) -> np.ndarray:
    """One numpy sort instead of a Python-object sort; same order (IEEE
    doubles, no NaNs expected in a latency trace), so the bracketing
    order statistics -- and therefore the result -- are unchanged."""
    return np.sort(np.asarray(values, dtype=np.float64))


def _interpolate(xs: np.ndarray, q: float) -> float:
    """The exact interpolation step, in scalar Python-float arithmetic
    (bit-identical to the historical pure-Python implementation, which
    ``tests/test_fastsim.py`` pins with a hypothesis parity suite)."""
    n = int(xs.size)
    if n == 1:
        return float(xs[0])
    rank = (q / 100.0) * (n - 1)
    lo = math.floor(rank)
    hi = min(lo + 1, n - 1)
    x_lo = float(xs[lo])
    x_hi = float(xs[hi])
    return x_lo + (x_hi - x_lo) * (rank - lo)


def p50(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def p95(values: Sequence[float]) -> float:
    return percentile(values, 95.0)


def p99(values: Sequence[float]) -> float:
    return percentile(values, 99.0)


def p999(values: Sequence[float]) -> float:
    return percentile(values, 99.9)


@dataclass
class Coefficient:
    name: str
    beta: float
    std_error: float
    t_stat: float
    p_value: float
    standardized: float

    def significant(self, alpha: float = 0.001) -> bool:
        return self.p_value < alpha


@dataclass
class RegressionResult:
    r_squared: float
    adjusted_r_squared: float
    coefficients: List[Coefficient]
    n: int

    def coefficient(self, name: str) -> Coefficient:
        for c in self.coefficients:
            if c.name == name:
                return c
        raise KeyError(name)


def _t_sf(t: np.ndarray, df: int) -> np.ndarray:
    """Two-sided p-value of a t statistic."""
    try:
        from scipy import stats

        return 2.0 * stats.t.sf(np.abs(t), df)
    except ImportError:  # pragma: no cover - scipy is an install extra
        # Normal approximation fallback.
        from math import erfc, sqrt

        return np.array([erfc(abs(x) / sqrt(2.0)) for x in np.atleast_1d(t)])


def correlations(
    features: Dict[str, Sequence[float]], y: Sequence[float]
) -> Dict[str, float]:
    """Pearson correlation of each feature with ``y`` (Figure 12 helper).

    The paper's Figure 12 eyeballs per-metric scatter plots; this is the
    numeric companion: how strongly each single metric tracks lookup time
    *on its own* (contrast with :func:`ols`, which conditions on the
    others).
    """
    y_arr = np.asarray(y, dtype=np.float64)
    out: Dict[str, float] = {}
    y_centered = y_arr - y_arr.mean()
    y_norm = float(np.sqrt((y_centered**2).sum()))
    for name, col in features.items():
        x = np.asarray(col, dtype=np.float64)
        if len(x) != len(y_arr):
            raise ValueError(f"feature {name!r} length mismatch")
        x_centered = x - x.mean()
        x_norm = float(np.sqrt((x_centered**2).sum()))
        if x_norm == 0.0 or y_norm == 0.0:
            out[name] = 0.0
        else:
            out[name] = float((x_centered @ y_centered) / (x_norm * y_norm))
    return out


def ols(features: Dict[str, Sequence[float]], y: Sequence[float]) -> RegressionResult:
    """Fit y ~ intercept + features; return fit statistics.

    ``features`` maps names to equal-length numeric columns.
    """
    names = list(features)
    y_arr = np.asarray(y, dtype=np.float64)
    n = len(y_arr)
    cols = [np.asarray(features[name], dtype=np.float64) for name in names]
    for name, col in zip(names, cols):
        if len(col) != n:
            raise ValueError(f"feature {name!r} has length {len(col)} != {n}")
    k = len(names)
    if n <= k + 1:
        raise ValueError("need more observations than parameters")

    x = np.column_stack([np.ones(n)] + cols)
    beta, _, rank, _ = np.linalg.lstsq(x, y_arr, rcond=None)
    fitted = x @ beta
    resid = y_arr - fitted
    ss_res = float(resid @ resid)
    ss_tot = float(((y_arr - y_arr.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    df = n - (k + 1)
    adj_r2 = 1.0 - (1.0 - r2) * (n - 1) / df if df > 0 else r2

    sigma2 = ss_res / df
    xtx_inv = np.linalg.pinv(x.T @ x)
    std_errors = np.sqrt(np.maximum(np.diag(xtx_inv) * sigma2, 0.0))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_stats = np.where(std_errors > 0, beta / std_errors, np.inf)
    p_values = _t_sf(t_stats, df)

    y_std = y_arr.std()
    coefficients = [
        Coefficient(
            name="intercept",
            beta=float(beta[0]),
            std_error=float(std_errors[0]),
            t_stat=float(t_stats[0]),
            p_value=float(p_values[0]),
            standardized=0.0,
        )
    ]
    for i, name in enumerate(names, start=1):
        x_std = cols[i - 1].std()
        standardized = float(beta[i]) * (x_std / y_std) if y_std > 0 else 0.0
        coefficients.append(
            Coefficient(
                name=name,
                beta=float(beta[i]),
                std_error=float(std_errors[i]),
                t_stat=float(t_stats[i]),
                p_value=float(p_values[i]),
                standardized=standardized,
            )
        )
    return RegressionResult(
        r_squared=r2, adjusted_r_squared=adj_r2, coefficients=coefficients, n=n
    )
