"""Figure 16: multithreaded throughput (a: threads, b: size, c: misses/s).

Configurations are pinned to the paper's setup: models sized near the
scaled equivalent of 50 MB on 200M keys (0.25 bytes/key), RobinHash at
full size, threads swept 1..40 with and without fences.  Throughput comes
from the counter-driven machine model (see repro.serve.contention).
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    cached_measure,
    cell_for,
    closest_to_size,
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.harness import Measurement
from repro.bench.report import format_table
from repro.serve.contention import MachineModel, throughput

INDEXES = ["RMI", "PGM", "RS", "RBS", "ART", "BTree", "IBTree", "FAST"]
THREADS = [1, 2, 4, 8, 16, 20, 24, 32, 40]
#: Paper: 50 MB over 200M keys.
BYTES_PER_KEY = 50 * 1024 * 1024 / 200_000_000


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for index_name in settings.indexes or INDEXES:
        out.extend(sweep_cells("amzn", index_name, settings))
    out.append(cell_for("amzn", "RobinHash", {}, settings))
    return out


def pinned_measurements(settings: BenchSettings) -> Dict[str, Measurement]:
    ds, wl = dataset_and_workload("amzn", settings)
    target = BYTES_PER_KEY * ds.n
    out: Dict[str, Measurement] = {}
    for index_name in settings.indexes or INDEXES:
        out[index_name] = closest_to_size(
            sweep(ds, wl, index_name, settings), target
        )
    out["RobinHash"] = cached_measure(ds, wl, "RobinHash", {}, settings)
    return out


def run(settings: BenchSettings) -> str:
    machine = MachineModel()
    pinned = pinned_measurements(settings)
    parts = [
        "Figure 16a: throughput vs threads, amzn "
        f"(~{BYTES_PER_KEY:.2f} B/key models; RobinHash full size)\n"
    ]
    for fence in (False, True):
        rows = []
        for name, m in pinned.items():
            cells: List[str] = [name]
            for t in THREADS:
                p = throughput(m, t, fence=fence, machine=machine)
                cells.append(f"{p.lookups_per_sec / 1e6:.1f}")
            rows.append(tuple(cells))
        parts.append("with fence" if fence else "no fence")
        parts.append(
            format_table(
                ["index"] + [f"{t}T (M/s)" for t in THREADS], rows
            )
        )
        parts.append("")

    # 16b: size vs 40-thread throughput.
    ds, wl = dataset_and_workload("amzn", settings)
    rows_b = []
    for index_name in settings.indexes or INDEXES:
        for m in sweep(ds, wl, index_name, settings):
            p = throughput(m, 40, machine=machine)
            rows_b.append(
                (m.index, f"{m.size_mb:.4f}", f"{p.lookups_per_sec / 1e6:.1f}")
            )
    parts.append("Figure 16b: size vs 40-thread throughput")
    parts.append(
        format_table(["index", "size MB", "40T throughput (M/s)"], rows_b)
    )
    parts.append("")

    # 16c: cache misses per second at each thread count (fence variant,
    # like the paper's figure).
    rows_c = []
    for name, m in pinned.items():
        cells = [name]
        for t in THREADS:
            p = throughput(m, t, fence=True, machine=machine)
            cells.append(f"{p.cache_misses_per_sec / 1e6:.0f}")
        rows_c.append(tuple(cells))
    parts.append("Figure 16c: cache misses per second (millions), fence")
    parts.append(format_table(["index"] + [f"{t}T" for t in THREADS], rows_c))
    parts.append("")

    # Relative speedups (the paper's online extension, rm.cab/lis8).
    rows_s = []
    for name, m in pinned.items():
        p = throughput(m, 40, machine=machine)
        rows_s.append((name, f"{p.speedup:.1f}x"))
    parts.append("relative speedup at 40 threads (paper: FAST ~32x, PGM ~27x, RobinHash ~20x)")
    parts.append(format_table(["index", "speedup"], rows_s))
    return "\n".join(parts)
