"""Figure 13: learned indexes as compression (size vs log2 error).

The information-theoretic view: judge an index only by footprint and the
log2 of its search interval.  The harness prints both, per configuration,
so the (in)completeness of this view can be checked against Figure 7's
latencies.
"""

from __future__ import annotations

from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.report import format_table

INDEXES = ["RS", "RMI", "PGM", "BTree"]
DATASETS = ["amzn", "osm"]


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for ds_name in [d for d in DATASETS if d in settings.datasets] or DATASETS:
        for index_name in settings.indexes or INDEXES:
            out.extend(sweep_cells(ds_name, index_name, settings))
    return out


def run(settings: BenchSettings) -> str:
    parts = ["Figure 13: size vs log2 error (compression view)\n"]
    for ds_name in [d for d in DATASETS if d in settings.datasets] or DATASETS:
        ds, wl = dataset_and_workload(ds_name, settings)
        rows = []
        for index_name in settings.indexes or INDEXES:
            for m in sweep(ds, wl, index_name, settings):
                rows.append(
                    (
                        m.index,
                        f"{m.size_mb:.4f}",
                        f"{m.avg_log2_bound:.2f}",
                        f"{m.latency_ns:.0f}",
                    )
                )
        parts.append(f"dataset={ds_name}")
        parts.append(
            format_table(
                ["index", "size MB", "log2 err", "lookup ns (for contrast)"],
                rows,
            )
        )
        parts.append("")
    return "\n".join(parts)
