"""Extension: sharded serving cluster under fault injection.

``ext_serving`` asks which index serves one machine's traffic within an
SLO; a deployment shards the key space over several machines, replicates
each shard, and keeps serving while replicas crash and go slow.  This
experiment partitions each dataset into :data:`N_SHARDS` key ranges,
builds one real index per shard through the measurement harness (cells
flow through the same persistent cache and ``--jobs`` pool as every
other grid), and replays seeded traffic through
:mod:`repro.serve.cluster` to report:

* a tail-latency-under-faults table per index family: fault-free vs
  crash faults vs crash+slow (gray) faults, with availability, retry and
  crash counts alongside p50/p99/p99.9;
* a hedging table under rare gray failures: p99/p99.9 with request
  hedging off vs on, at the same offered load and fault schedule;
* a cluster SLO selection table (the cluster-aware analogue of
  ``select_under_slo``): the cheapest index family whose simulated
  cluster p99 meets the SLO within a per-shard memory budget and an
  availability floor, under crash faults;
* a windowed cluster-telemetry table for the crash scenario: the same
  replay with :class:`repro.serve.telemetry.TelemetryConfig` attached,
  routed *through* :func:`repro.serve.sweep.run_sim_tasks` (telemetry
  survives the task record's JSON round trip byte-identically), showing
  per-window failures, retries and shard availability as replicas crash
  and recover.

Per-shard builds are proxy builds: shard ``i`` is measured on a dataset
drawn from the same generator with ``n_keys / N_SHARDS`` keys and a
shard-distinct seed, which models the smaller per-shard index (size and
cache behaviour scale with the partition) without materializing actual
key-range slices.  Routing still uses the *full* dataset's equal-count
partition bounds, so shard load follows the real key distribution.

Everything downstream of the cells is a deterministic replay: arrivals,
request keys, and fault schedules are pure functions of the seed, so the
tables are bit-identical across serial runs, ``--jobs N``, and
cache-replay (pinned by ``tests/test_cluster_differential.py``).

Each replay is a picklable :class:`repro.serve.sweep.ClusterTask`;
``run()`` batches them in two phases through
:func:`repro.serve.sweep.run_sim_tasks` (``--jobs`` processes plus the
persistent simulation cache): phase one covers the fault scenarios and
the hedging-off runs, phase two the hedging-on runs whose hedge
threshold derives from phase one's healthy baseline -- which is the
same task as the ``none`` scenario, so the memo deduplicates it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    fastest,
    get_active_sim_cache,
    resolve_cell,
    sweep_cells,
)
from repro.bench.harness import Measurement
from repro.bench.report import format_table
from repro.datasets.loader import make_dataset
from repro.serve.arrivals import poisson_arrivals
from repro.serve.cluster import Cluster, ClusterResult, simulate_cluster
from repro.serve.contention import MachineModel, throughput
from repro.serve.core import ServiceModel
from repro.serve.faults import FaultConfig
from repro.serve.router import RouterPolicy, ShardMap, request_keys
from repro.serve.selector import select_cluster_under_slo
from repro.serve.sweep import ClusterRunStats, cluster_task, run_sim_tasks
from repro.serve.telemetry import TelemetryConfig, TimeSeries, publish

INDEXES = ["RMI", "PGM", "BTree"]
DATASETS = ["amzn", "osm"]
#: Cluster topology: key ranges x replicas per range, cores per replica.
N_SHARDS = 4
N_REPLICAS = 2
SIM_CORES = 2
#: Offered load as a fraction of the family's weakest-shard capacity.
LOAD_FRACTION = 0.55
#: SLO for the selection table: p99 within this factor of the best
#: modelled uncontended latency among the dataset's families.  The
#: factor absorbs queueing *and* crash-fault retries, so it is wider
#: than ``ext_serving``'s fault-free 3x.
SLO_FACTOR = 7.0
#: Availability floor for the selection table (under crash faults).
MIN_AVAILABILITY = 0.9
#: Seed offset so per-shard proxy datasets never collide with the full
#: dataset or with each other.
_SHARD_SEED_STRIDE = 9176
#: Crash-intensity sweep for the SVG figures: expected crash faults per
#: replica stream over the run.
FAULT_RATE_SWEEP = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
#: Tumbling windows per cluster-telemetry run.
TELEMETRY_WINDOWS = 12

_SCENARIOS = ("none", "crash", "crash+slow")


def _datasets(settings: BenchSettings) -> List[str]:
    return [d for d in DATASETS if d in settings.datasets] or DATASETS


def _indexes(settings: BenchSettings) -> List[str]:
    return settings.indexes or INDEXES


def _n_requests(settings: BenchSettings) -> int:
    """Simulated requests per run, scaled with the measurement budget."""
    return max(400, min(4_000, 2 * settings.n_lookups))


def shard_settings(settings: BenchSettings, shard: int) -> BenchSettings:
    """Settings for shard ``shard``'s proxy build (1/N keys, own seed)."""
    return replace(
        settings,
        n_keys=max(settings.n_keys // N_SHARDS, 1_000),
        seed=settings.seed + _SHARD_SEED_STRIDE * (shard + 1),
    )


def cells(settings: BenchSettings) -> List[MeasureCell]:
    """Per-shard sweep grid: datasets x indexes x shards x configs."""
    out: List[MeasureCell] = []
    for ds_name in _datasets(settings):
        for index_name in _indexes(settings):
            for shard in range(N_SHARDS):
                out.extend(
                    sweep_cells(
                        ds_name, index_name, shard_settings(settings, shard)
                    )
                )
    return out


def shard_measurements(
    ds_name: str, index_name: str, settings: BenchSettings
) -> List[Measurement]:
    """Fastest sweep variant per shard (one real build per shard)."""
    out: List[Measurement] = []
    for shard in range(N_SHARDS):
        sweep = [
            resolve_cell(cell)
            for cell in sweep_cells(
                ds_name, index_name, shard_settings(settings, shard)
            )
        ]
        out.append(fastest(sweep))
    return out


def cluster_capacity_per_sec(
    per_shard: Sequence[Measurement], machine: MachineModel
) -> float:
    """Modelled saturated cluster rate, limited by the weakest shard.

    Request keys are sampled uniformly from the served array and the
    partition is equal-count, so shards see ~equal load and the slowest
    shard saturates first.
    """
    weakest = min(
        throughput(m, SIM_CORES, machine=machine).lookups_per_sec
        for m in per_shard
    )
    return weakest * N_SHARDS * N_REPLICAS


def _span_ns(offered_per_sec: float, n_requests: int) -> float:
    """Expected arrival span of the run (the fault-schedule timescale)."""
    return n_requests / offered_per_sec * 1e9


def _horizon_ns(span_ns: float) -> float:
    """Fault horizon: schedule faults only while traffic is flowing.

    The simulator's own default horizon has a 1 ms floor meant for
    long-running traces; these runs span tens of microseconds, so the
    floor would inject faults long after the last arrival and swamp the
    counts.  1.5x the arrival span covers the drain tail instead.
    """
    return span_ns * 1.5


def scenario_policy(span_ns: float) -> RouterPolicy:
    """Retry backoff scaled to the run, so retries resolve within it.

    The default :class:`RouterPolicy` backoff (100 us base) suits
    millisecond-scale traces; against a tens-of-microseconds run it
    would dominate every retried request's latency.  Backoff here starts
    at 1/50 of the arrival span (comparable to the scenario MTTRs below)
    and caps at 1/5.
    """
    return RouterPolicy(
        backoff_base_ns=span_ns / 50.0, backoff_cap_ns=span_ns / 5.0
    )


def scenario_faults(
    scenario: str, span_ns: float, seed: int
) -> Optional[FaultConfig]:
    """Fault config for one named scenario, scaled to the run's span.

    MTTFs are fractions of the arrival span so every replica stream is
    expected to fail during the run regardless of the absolute rate.
    """
    if scenario == "none":
        return None
    if scenario == "crash":
        return FaultConfig(
            crash_mttf_ns=span_ns / 2.0,
            crash_mttr_ns=span_ns / 10.0,
            seed=seed,
        )
    if scenario == "crash+slow":
        return FaultConfig(
            crash_mttf_ns=span_ns / 2.0,
            crash_mttr_ns=span_ns / 10.0,
            slow_mttf_ns=span_ns / 2.0,
            slow_mttr_ns=span_ns / 8.0,
            slow_factor=6.0,
            seed=seed,
        )
    raise ValueError(f"unknown fault scenario {scenario!r}")


def _build_cluster(
    shard_map: ShardMap,
    per_shard: Sequence[Measurement],
    machine: MachineModel,
    policy: RouterPolicy,
    faults: Optional[FaultConfig],
) -> Cluster:
    return Cluster(
        shard_map=shard_map,
        services=[
            ServiceModel.from_measurement(m, machine=machine)
            for m in per_shard
        ],
        n_replicas=N_REPLICAS,
        n_cores=SIM_CORES,
        policy=policy,
        faults=faults,
    )


def run_scenario(
    shard_map: ShardMap,
    per_shard: Sequence[Measurement],
    keys,
    offered_per_sec: float,
    settings: BenchSettings,
    machine: MachineModel,
    policy: RouterPolicy = RouterPolicy(),
    faults: Optional[FaultConfig] = None,
) -> ClusterResult:
    """One deterministic cluster replay at the given load and faults."""
    n_req = _n_requests(settings)
    cluster = _build_cluster(shard_map, per_shard, machine, policy, faults)
    arrivals = poisson_arrivals(offered_per_sec, n_req, settings.seed)
    lookup_keys = request_keys(keys, n_req, settings.seed)
    return simulate_cluster(
        cluster,
        arrivals,
        lookup_keys,
        fault_horizon_ns=_horizon_ns(_span_ns(offered_per_sec, n_req)),
    )


def scenario_cluster_task(
    shard_map: ShardMap,
    per_shard: Sequence[Measurement],
    keys,
    offered_per_sec: float,
    settings: BenchSettings,
    machine: MachineModel,
    policy: RouterPolicy = RouterPolicy(),
    faults: Optional[FaultConfig] = None,
    telemetry: Optional[TelemetryConfig] = None,
):
    """:func:`run_scenario` as a picklable task (byte-identical record)."""
    n_req = _n_requests(settings)
    return cluster_task(
        per_shard,
        shard_map,
        request_keys(keys, n_req, settings.seed),
        offered_per_sec,
        n_req,
        settings.seed,
        N_REPLICAS,
        SIM_CORES,
        policy,
        faults,
        _horizon_ns(_span_ns(offered_per_sec, n_req)),
        machine,
        telemetry=telemetry,
    )


def run_scenario_stats(
    shard_map: ShardMap,
    per_shard: Sequence[Measurement],
    keys,
    offered_per_sec: float,
    settings: BenchSettings,
    machine: MachineModel,
    policy: RouterPolicy = RouterPolicy(),
    faults: Optional[FaultConfig] = None,
) -> ClusterRunStats:
    """One scenario through the task runner (memo + persistent cache)."""
    task = scenario_cluster_task(
        shard_map, per_shard, keys, offered_per_sec, settings, machine,
        policy, faults,
    )
    record = run_sim_tasks([task], cache=get_active_sim_cache())[0]
    return ClusterRunStats.from_record(record)


def fault_rate_series(
    shard_map: ShardMap,
    per_shard: Sequence[Measurement],
    keys,
    offered_per_sec: float,
    settings: BenchSettings,
    machine: MachineModel,
    rates: Sequence[float] = FAULT_RATE_SWEEP,
    jobs: Optional[int] = None,
) -> List[Tuple[float, ClusterRunStats]]:
    """(expected crashes per replica stream, run stats) along the sweep.

    The whole sweep is one :func:`run_sim_tasks` batch, so it fans out
    over ``jobs`` processes and replays from the persistent cache.
    """
    span = _span_ns(offered_per_sec, _n_requests(settings))
    tasks = []
    for rate in rates:
        faults = FaultConfig(
            crash_mttf_ns=span / rate,
            crash_mttr_ns=span / 10.0,
            seed=settings.seed,
        )
        tasks.append(
            scenario_cluster_task(
                shard_map,
                per_shard,
                keys,
                offered_per_sec,
                settings,
                machine,
                policy=scenario_policy(span),
                faults=faults,
            )
        )
    records = run_sim_tasks(tasks, jobs=jobs, cache=get_active_sim_cache())
    return [
        (rate, ClusterRunStats.from_record(record))
        for rate, record in zip(rates, records)
    ]


def _per_family(
    ds_name: str, settings: BenchSettings
) -> Dict[str, List[Measurement]]:
    return {
        name: shard_measurements(ds_name, name, settings)
        for name in _indexes(settings)
    }


def run(settings: BenchSettings) -> str:
    # Local for the same import-cycle reason as in ext_serving: the
    # obs report module renders bench tables too.
    from repro.obs.report import format_timeline

    machine = MachineModel()
    n_req = _n_requests(settings)
    parts = [
        "ext_cluster: sharded serving cluster under fault injection "
        f"({N_SHARDS} shards x {N_REPLICAS} replicas x {SIM_CORES} cores, "
        f"{n_req} requests per run, seed {settings.seed})\n"
    ]
    sim_cache = get_active_sim_cache()
    for ds_name in _datasets(settings):
        ds = make_dataset(
            ds_name, settings.n_keys, seed=settings.seed, key_bits=64
        )
        shard_map = ShardMap.from_keys(ds.keys, N_SHARDS)
        families = _per_family(ds_name, settings)

        # Phase one: every scenario replay plus the hedging-off runs, as
        # one batch over --jobs processes.  The hedging-on runs need the
        # healthy baseline's p99 (computed below), so they batch in a
        # second phase; the baseline itself *is* the "none" scenario
        # task, which the runner's memo deduplicates.
        fam_ctx: Dict[str, dict] = {}
        phase1 = []
        for name in sorted(families):
            per_shard = families[name]
            offered = LOAD_FRACTION * cluster_capacity_per_sec(
                per_shard, machine
            )
            span = _span_ns(offered, n_req)
            base_policy = scenario_policy(span)
            gray = FaultConfig(
                slow_mttf_ns=4.0 * span,
                slow_mttr_ns=span / 8.0,
                slow_factor=8.0,
                seed=settings.seed,
            )
            scenario_tasks = {
                scenario: scenario_cluster_task(
                    shard_map,
                    per_shard,
                    ds.keys,
                    offered,
                    settings,
                    machine,
                    policy=base_policy,
                    faults=scenario_faults(scenario, span, settings.seed),
                )
                for scenario in _SCENARIOS
            }
            gray_off = scenario_cluster_task(
                shard_map,
                per_shard,
                ds.keys,
                offered,
                settings,
                machine,
                policy=base_policy,
                faults=gray,
            )
            fam_ctx[name] = {
                "per_shard": per_shard,
                "offered": offered,
                "span": span,
                "base_policy": base_policy,
                "gray": gray,
                "scenario_tasks": scenario_tasks,
                "gray_off": gray_off,
            }
            phase1.extend(scenario_tasks.values())
            phase1.append(gray_off)
        run_sim_tasks(phase1, jobs=settings.jobs, cache=sim_cache)

        # -- tail latency and availability under faults ----------------
        rows = []
        for name in sorted(families):
            ctx = fam_ctx[name]
            for scenario in _SCENARIOS:
                record = run_sim_tasks(
                    [ctx["scenario_tasks"][scenario]], cache=sim_cache
                )[0]
                stats = ClusterRunStats.from_record(record)
                stats.to_metrics()
                s = stats.summary
                rows.append(
                    (
                        name,
                        scenario,
                        f"{stats.availability:.4f}",
                        str(stats.failed),
                        str(stats.total_retries),
                        str(stats.crashes),
                        str(stats.slow_events),
                        f"{s.p50_ns:.0f}",
                        f"{s.p99_ns:.0f}",
                        f"{s.p999_ns:.0f}",
                    )
                )
        parts.append(
            f"tail latency under faults, {ds_name} "
            f"(load {LOAD_FRACTION:.2f} of each family's weakest-shard "
            "capacity; fastest variant per shard)"
        )
        parts.append(
            format_table(
                [
                    "index",
                    "faults",
                    "avail",
                    "failed",
                    "retries",
                    "crashes",
                    "slow",
                    "p50 ns",
                    "p99 ns",
                    "p99.9 ns",
                ],
                rows,
            )
        )
        parts.append("")

        # -- hedging under rare gray failure ---------------------------
        # Hedge only past the *healthy* tail at this load: threshold
        # relative to the fault-free p99, not the uncontended latency,
        # or ordinary queueing would trip it constantly and the extra
        # attempts would burn the capacity hedging needs.
        hedge_ctx = {}
        phase2 = []
        for name in sorted(families):
            ctx = fam_ctx[name]
            healthy_record = run_sim_tasks(
                [ctx["scenario_tasks"]["none"]], cache=sim_cache
            )[0]
            healthy = ClusterRunStats.from_record(healthy_record)
            hedge_ns = 3.0 * healthy.summary.p99_ns
            on_task = scenario_cluster_task(
                shard_map,
                ctx["per_shard"],
                ds.keys,
                ctx["offered"],
                settings,
                machine,
                policy=replace(ctx["base_policy"], hedge_after_ns=hedge_ns),
                faults=ctx["gray"],
            )
            hedge_ctx[name] = (hedge_ns, on_task)
            phase2.append(on_task)
        run_sim_tasks(phase2, jobs=settings.jobs, cache=sim_cache)

        rows = []
        for name in sorted(families):
            hedge_ns, on_task = hedge_ctx[name]
            off_record, on_record = run_sim_tasks(
                [fam_ctx[name]["gray_off"], on_task], cache=sim_cache
            )
            off = ClusterRunStats.from_record(off_record)
            on = ClusterRunStats.from_record(on_record)
            s_off, s_on = off.summary, on.summary
            rows.append(
                (
                    name,
                    f"{hedge_ns:.0f}",
                    str(on.total_hedges),
                    f"{s_off.p99_ns:.0f}",
                    f"{s_on.p99_ns:.0f}",
                    f"{s_off.p999_ns:.0f}",
                    f"{s_on.p999_ns:.0f}",
                )
            )
        parts.append(
            f"request hedging under rare gray failure, {ds_name} "
            "(one slow replica period expected per stream, 8x slowdown)"
        )
        parts.append(
            format_table(
                [
                    "index",
                    "hedge ns",
                    "hedges",
                    "p99 off",
                    "p99 on",
                    "p99.9 off",
                    "p99.9 on",
                ],
                rows,
            )
        )
        parts.append("")

        # -- cluster-aware SLO selection -------------------------------
        all_ms = [m for ms in families.values() for m in ms]
        best_latency = min(m.latency_ns for m in all_ms)
        slo_ns = SLO_FACTOR * best_latency
        offered = LOAD_FRACTION * min(
            cluster_capacity_per_sec(ms, machine)
            for ms in families.values()
        )
        span = _span_ns(offered, n_req)
        budget = float(
            sorted(
                max(m.size_bytes for m in ms) for ms in families.values()
            )[len(families) // 2]
        )
        selection = select_cluster_under_slo(
            families,
            shard_map,
            ds.keys,
            offered_per_sec=offered,
            p99_slo_ns=slo_ns,
            shard_memory_budget_bytes=budget,
            min_availability=MIN_AVAILABILITY,
            n_requests=n_req,
            seed=settings.seed,
            n_replicas=N_REPLICAS,
            n_cores=SIM_CORES,
            policy=scenario_policy(span),
            faults=scenario_faults("crash", span, settings.seed),
            machine=machine,
            fault_horizon_ns=_horizon_ns(span),
            jobs=settings.jobs,
            sim_cache=sim_cache,
        )
        rows = []
        eligible = {c.index for c in selection.eligible()}
        for c in selection.candidates:
            rows.append(
                (
                    c.index,
                    f"{c.total_size_mb:.4f}",
                    f"{c.max_shard_size_bytes / (1024.0 * 1024.0):.4f}",
                    "-" if c.summary is None else f"{c.summary.p99_ns:.0f}",
                    f"{c.availability:.4f}",
                    str(c.total_retries),
                    "yes" if c.index in eligible else "no",
                )
            )
        parts.append(
            f"cluster SLO selection, {ds_name}: cheapest family with "
            f"p99 <= {slo_ns:.0f} ns, shard footprint <= "
            f"{budget / (1024.0 * 1024.0):.4f} MB, availability >= "
            f"{MIN_AVAILABILITY:.2f} under crash faults at "
            f"{offered / 1e6:.1f} M/s offered"
        )
        parts.append(
            format_table(
                [
                    "index",
                    "total MB",
                    "max shard MB",
                    "p99 ns",
                    "avail",
                    "retries",
                    "eligible",
                ],
                rows,
            )
        )
        if selection.chosen is not None:
            c = selection.chosen
            parts.append(
                f"-> chosen: {c.index} ({c.total_size_mb:.4f} MB total, "
                f"p99 {c.summary.p99_ns:.0f} ns, "
                f"availability {c.availability:.4f})"
            )
        else:
            parts.append("-> chosen: none (no family meets the SLO)")
        parts.append("")

        # -- windowed cluster telemetry (crash scenario) ---------------
        # Through the task runner, not inline: the telemetry-on task is
        # its own cache artifact and the series survives the record's
        # JSON round trip byte-identically, so this table replays from
        # the persistent cache like every other.
        tel_name = sorted(families)[0]
        ctx = fam_ctx[tel_name]
        tel_task = scenario_cluster_task(
            shard_map,
            ctx["per_shard"],
            ds.keys,
            ctx["offered"],
            settings,
            machine,
            policy=ctx["base_policy"],
            faults=scenario_faults("crash", ctx["span"], settings.seed),
            telemetry=TelemetryConfig(
                window_ns=ctx["span"] / TELEMETRY_WINDOWS
            ),
        )
        record = run_sim_tasks([tel_task], cache=sim_cache)[0]
        ts = TimeSeries.from_dict(record["telemetry"])
        publish(f"ext_cluster/{ds_name}/{tel_name}", ts)
        parts.append(
            f"cluster telemetry under crash faults, {ds_name}/{tel_name} "
            f"({ts.window_ns / 1e3:.2f} us windows over {ts.n_shards} "
            f"shards, series {ts.content_key()[:12]})"
        )
        parts.append(format_timeline(ts.to_dict()))
        parts.append("")
    return "\n".join(parts)


def render_svgs(settings: BenchSettings, directory: str) -> List[str]:
    """p99 and availability vs crash-fault rate, one pair per dataset.

    Reuses the memoized per-shard measurements (call after :func:`run`
    or after the parallel runner has resolved this experiment's cells).
    """
    import os

    from repro.bench.svgplot import series_figure

    machine = MachineModel()
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for ds_name in _datasets(settings):
        ds = make_dataset(
            ds_name, settings.n_keys, seed=settings.seed, key_bits=64
        )
        shard_map = ShardMap.from_keys(ds.keys, N_SHARDS)
        p99_series: Dict[str, List[Tuple[float, float]]] = {}
        avail_series: Dict[str, List[Tuple[float, float]]] = {}
        for name, per_shard in _per_family(ds_name, settings).items():
            offered = LOAD_FRACTION * cluster_capacity_per_sec(
                per_shard, machine
            )
            points = fault_rate_series(
                shard_map,
                per_shard,
                ds.keys,
                offered,
                settings,
                machine,
                jobs=settings.jobs,
            )
            p99_series[name] = [
                (rate, r.summary.p99_ns) for rate, r in points
            ]
            avail_series[name] = [
                (rate, r.availability) for rate, r in points
            ]
        for stem, series, y_label in (
            ("cluster_p99", p99_series, "p99 latency (ns)"),
            ("cluster_availability", avail_series, "availability"),
        ):
            path = os.path.join(directory, f"{stem}_{ds_name}.svg")
            with open(path, "w") as f:
                f.write(
                    series_figure(
                        series,
                        title=(
                            f"{y_label} vs crash rate — {ds_name} "
                            f"({N_SHARDS}x{N_REPLICAS} cluster)"
                        ),
                        x_label="expected crashes per replica (log)",
                        y_label=y_label,
                    )
                )
            written.append(path)
    return written
