"""Extension experiment: learned-index variants beyond the paper's three.

Compares the paper's RMI/PGM/RS against the extensions implemented here
-- the three-stage RMI (Section 3.1's generalization) and FITing-Tree
(reference [14], which the paper could not benchmark for lack of a public
tuned implementation) -- on the same Pareto axes as Figure 7.
"""

from __future__ import annotations

from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.report import format_table
from repro.core.pareto import ParetoPoint, pareto_front

INDEXES = ["RMI", "RMI3", "PGM", "FITing", "RS"]
DATASETS = ["amzn", "osm"]


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for ds_name in [d for d in DATASETS if d in settings.datasets] or DATASETS:
        for index_name in settings.indexes or INDEXES:
            out.extend(sweep_cells(ds_name, index_name, settings))
    return out


def run(settings: BenchSettings) -> str:
    parts = [
        "Extension: learned-index variants (RMI3 = three-stage RMI, "
        "FITing = FITing-Tree)\n"
    ]
    for ds_name in [d for d in DATASETS if d in settings.datasets] or DATASETS:
        ds, wl = dataset_and_workload(ds_name, settings)
        measurements = []
        for index_name in settings.indexes or INDEXES:
            measurements.extend(sweep(ds, wl, index_name, settings))
        points = [
            ParetoPoint(m.index, m.size_bytes, m.latency_ns, m.config)
            for m in measurements
        ]
        front = {
            (p.index, p.size_bytes, p.latency_ns) for p in pareto_front(points)
        }
        rows = [
            (
                m.index,
                f"{m.size_mb:.4f}",
                f"{m.latency_ns:.0f}",
                f"{m.avg_log2_bound:.2f}",
                "*" if (m.index, m.size_bytes, m.latency_ns) in front else "",
            )
            for m in sorted(measurements, key=lambda m: (m.index, m.size_bytes))
        ]
        parts.append(f"dataset={ds_name}")
        parts.append(
            format_table(
                ["index", "size MB", "lookup ns", "log2 err", "pareto"], rows
            )
        )
        parts.append("")
    return "\n".join(parts)
