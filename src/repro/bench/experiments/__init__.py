"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(settings: BenchSettings) -> str`` returning the
harness's text report.  ``EXPERIMENTS`` maps the ids used by the CLI
(``python -m repro.bench --experiment fig7``) to those callables.

Drivers whose grid goes through ``common.cached_measure`` additionally
expose ``cells(settings) -> List[MeasureCell]`` enumerating that grid
without executing it; ``EXPERIMENT_CELLS`` maps their ids to those
enumerators so the parallel runner (:mod:`repro.bench.parallel`) can
pre-compute every measurement before the drivers format reports.
Experiments absent from ``EXPERIMENT_CELLS`` (capability tables, CDF
plots, non-grid extensions) run inline as before.
"""

from repro.bench.experiments import (
    ext_cluster,
    ext_learned_variants,
    ext_readwrite,
    ext_reconfig,
    ext_serving,
    ext_skew,
    ext_tenants,
    fig6_cdfs,
    fig7_pareto,
    fig8_strings,
    fig9_scaling,
    fig10_keysize,
    fig11_search,
    fig12_metrics,
    fig13_compression,
    fig14_cold_cache,
    fig15_fences,
    fig16_multithread,
    fig17_build_times,
    sec43_regression,
    table1_capabilities,
    table2_fastest,
)

EXPERIMENTS = {
    "table1": table1_capabilities.run,
    "fig6": fig6_cdfs.run,
    "fig7": fig7_pareto.run,
    "fig8": fig8_strings.run,
    "table2": table2_fastest.run,
    "fig9": fig9_scaling.run,
    "fig10": fig10_keysize.run,
    "fig11": fig11_search.run,
    "fig12": fig12_metrics.run,
    "sec4.3": sec43_regression.run,
    "fig13": fig13_compression.run,
    "fig14": fig14_cold_cache.run,
    "fig15": fig15_fences.run,
    "fig16": fig16_multithread.run,
    "fig17": fig17_build_times.run,
    "ext1": ext_learned_variants.run,
    "ext2": ext_skew.run,
    "ext3": ext_readwrite.run,
    "ext_serving": ext_serving.run,
    "ext_cluster": ext_cluster.run,
    "ext_tenants": ext_tenants.run,
    "ext_reconfig": ext_reconfig.run,
}

#: Grid enumerators for the parallel runner (subset of EXPERIMENTS).
EXPERIMENT_CELLS = {
    "fig7": fig7_pareto.cells,
    "fig8": fig8_strings.cells,
    "table2": table2_fastest.cells,
    "fig9": fig9_scaling.cells,
    "fig10": fig10_keysize.cells,
    "fig11": fig11_search.cells,
    "fig12": fig12_metrics.cells,
    "sec4.3": sec43_regression.cells,
    "fig13": fig13_compression.cells,
    "fig14": fig14_cold_cache.cells,
    "fig15": fig15_fences.cells,
    "fig16": fig16_multithread.cells,
    "fig17": fig17_build_times.cells,
    "ext1": ext_learned_variants.cells,
    "ext_serving": ext_serving.cells,
    "ext_cluster": ext_cluster.cells,
    "ext_tenants": ext_tenants.cells,
    "ext_reconfig": ext_reconfig.cells,
}

__all__ = ["EXPERIMENTS", "EXPERIMENT_CELLS"]
