"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(settings: BenchSettings) -> str`` returning the
harness's text report.  ``EXPERIMENTS`` maps the ids used by the CLI
(``python -m repro.bench --experiment fig7``) to those callables.
"""

from repro.bench.experiments import (
    ext_learned_variants,
    ext_readwrite,
    ext_skew,
    fig6_cdfs,
    fig7_pareto,
    fig8_strings,
    fig9_scaling,
    fig10_keysize,
    fig11_search,
    fig12_metrics,
    fig13_compression,
    fig14_cold_cache,
    fig15_fences,
    fig16_multithread,
    fig17_build_times,
    sec43_regression,
    table1_capabilities,
    table2_fastest,
)

EXPERIMENTS = {
    "table1": table1_capabilities.run,
    "fig6": fig6_cdfs.run,
    "fig7": fig7_pareto.run,
    "fig8": fig8_strings.run,
    "table2": table2_fastest.run,
    "fig9": fig9_scaling.run,
    "fig10": fig10_keysize.run,
    "fig11": fig11_search.run,
    "fig12": fig12_metrics.run,
    "sec4.3": sec43_regression.run,
    "fig13": fig13_compression.run,
    "fig14": fig14_cold_cache.run,
    "fig15": fig15_fences.run,
    "fig16": fig16_multithread.run,
    "fig17": fig17_build_times.run,
    "ext1": ext_learned_variants.run,
    "ext2": ext_skew.run,
    "ext3": ext_readwrite.run,
}

__all__ = ["EXPERIMENTS"]
