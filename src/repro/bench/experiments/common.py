"""Shared plumbing for the per-figure experiment drivers.

Measurements flow through a single abstraction: a picklable
:class:`~repro.bench.cells.MeasureCell` (one grid point) mapping to one
:class:`~repro.bench.harness.Measurement`.  ``cached_measure`` resolves a
cell through two layers -- the per-process memo ``_MEASUREMENTS`` and, if
one is active, the persistent on-disk :mod:`repro.bench.cache` -- before
executing it.  The parallel runner (:mod:`repro.bench.parallel`) fills
the same layers from a process pool, so drivers that run afterwards hit
memoized results regardless of how they were computed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.cache import MeasurementCache
from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings, sweep_configs
from repro.bench.harness import Measurement
from repro.core.registry import get_index_class
from repro.datasets.loader import Dataset, make_dataset
from repro.datasets.workload import Workload, make_workload

#: The index set of the paper's Figure 7.
FIG7_INDEXES = ["RMI", "PGM", "RS", "RBS", "ART", "BTree", "IBTree", "FAST"]

_MEASUREMENTS: Dict[MeasureCell, Measurement] = {}
_WORKLOADS: Dict[Tuple, Workload] = {}

#: Process-wide persistent cache handle (None = memo only).
_ACTIVE_CACHE: Optional[MeasurementCache] = None

#: Process-wide persistent simulation-result cache handle
#: (:class:`repro.bench.cache.SimResultCache`; None = memo only).
_ACTIVE_SIM_CACHE = None


def set_active_cache(cache: Optional[MeasurementCache]) -> None:
    """Install (or remove, with None) the persistent measurement cache."""
    global _ACTIVE_CACHE
    _ACTIVE_CACHE = cache


def get_active_cache() -> Optional[MeasurementCache]:
    return _ACTIVE_CACHE


def set_active_sim_cache(cache) -> None:
    """Install (or remove, with None) the persistent simulation cache
    the serving experiments route their sweeps through."""
    global _ACTIVE_SIM_CACHE
    _ACTIVE_SIM_CACHE = cache


def get_active_sim_cache():
    return _ACTIVE_SIM_CACHE


def dataset_and_workload(
    name: str, settings: BenchSettings, key_bits: int = 64
) -> Tuple[Dataset, Workload]:
    """Dataset + present-key workload, both memoized per process."""
    ds = make_dataset(name, settings.n_keys, seed=settings.seed, key_bits=key_bits)
    wl_key = (name, ds.n, settings.seed, key_bits, settings.n_lookups)
    if wl_key not in _WORKLOADS:
        lookups = max(settings.n_lookups + settings.warmup, 1)
        _WORKLOADS[wl_key] = make_workload(ds, lookups, seed=settings.seed + 1)
    return ds, _WORKLOADS[wl_key]


def resolve_cell(
    cell: MeasureCell,
    dataset: Optional[Dataset] = None,
    workload: Optional[Workload] = None,
) -> Measurement:
    """Memo -> persistent cache -> execute, memoizing on the way out."""
    m = _MEASUREMENTS.get(cell)
    if m is not None:
        return m
    cache = _ACTIVE_CACHE
    if cache is not None:
        m = cache.get(cell)
    if m is None:
        m = cell.run(dataset, workload)
        if cache is not None:
            cache.put(cell, m)
    _MEASUREMENTS[cell] = m
    return m


def cached_measure(
    dataset: Dataset,
    workload: Workload,
    index_name: str,
    config: dict,
    settings: BenchSettings,
    warm: bool = True,
    search: str = "binary",
) -> Measurement:
    """Measure one cell, reusing the memo and any active persistent cache."""
    cell = MeasureCell.make(
        dataset.name,
        index_name,
        config,
        settings,
        key_bits=dataset.key_bits,
        warm=warm,
        search=search,
    )
    return resolve_cell(cell, dataset, workload)


def cell_for(
    ds_name: str,
    index_name: str,
    config: dict,
    settings: BenchSettings,
    key_bits: int = 64,
    warm: bool = True,
    search: str = "binary",
) -> MeasureCell:
    """The cell ``cached_measure`` would resolve for these arguments."""
    return MeasureCell.make(
        ds_name, index_name, config, settings, key_bits, warm, search
    )


def sweep_cells(
    ds_name: str,
    index_name: str,
    settings: BenchSettings,
    key_bits: int = 64,
    warm: bool = True,
    search: str = "binary",
    max_configs: Optional[int] = None,
) -> List[MeasureCell]:
    """The cells :func:`sweep` would measure, without measuring them."""
    ds = make_dataset(
        ds_name, settings.n_keys, seed=settings.seed, key_bits=key_bits
    )
    cls = get_index_class(index_name)
    limit = max_configs if max_configs is not None else settings.max_configs
    return [
        MeasureCell.make(
            ds_name, index_name, config, settings, key_bits, warm, search
        )
        for config in sweep_configs(cls, ds.n, limit)
    ]


def sweep(
    dataset: Dataset,
    workload: Workload,
    index_name: str,
    settings: BenchSettings,
    warm: bool = True,
    search: str = "binary",
    max_configs: Optional[int] = None,
) -> List[Measurement]:
    """Measure an index across its size sweep."""
    cls = get_index_class(index_name)
    limit = max_configs if max_configs is not None else settings.max_configs
    results = []
    for config in sweep_configs(cls, dataset.n, limit):
        results.append(
            cached_measure(
                dataset, workload, index_name, config, settings, warm, search
            )
        )
    return results


def fastest(measurements: List[Measurement]) -> Measurement:
    """The lowest-latency configuration of a sweep (the paper's 'fastest variant')."""
    if not measurements:
        raise ValueError("empty sweep")
    return min(measurements, key=lambda m: m.latency_ns)


def closest_to_size(
    measurements: List[Measurement], target_bytes: float
) -> Measurement:
    """The sweep configuration whose footprint is closest to a target."""
    if not measurements:
        raise ValueError("empty sweep")
    return min(measurements, key=lambda m: abs(m.size_bytes - target_bytes))


def clear_caches() -> None:
    """Reset memoized measurements and simulations (mainly for tests)."""
    _MEASUREMENTS.clear()
    _WORKLOADS.clear()
    # Imported here: repro.serve.sweep is independent of this module and
    # only needed when serving experiments have run.
    from repro.serve.sweep import clear_sim_results

    clear_sim_results()
