"""Shared plumbing for the per-figure experiment drivers."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.config import BenchSettings, sweep_configs
from repro.bench.harness import Measurement, measure_index
from repro.core.registry import get_index_class
from repro.datasets.loader import Dataset, make_dataset
from repro.datasets.workload import Workload, make_workload

#: The index set of the paper's Figure 7.
FIG7_INDEXES = ["RMI", "PGM", "RS", "RBS", "ART", "BTree", "IBTree", "FAST"]

_MEASUREMENTS: Dict[Tuple, Measurement] = {}
_WORKLOADS: Dict[Tuple, Workload] = {}


def dataset_and_workload(
    name: str, settings: BenchSettings, key_bits: int = 64
) -> Tuple[Dataset, Workload]:
    """Dataset + present-key workload, both memoized per process."""
    ds = make_dataset(name, settings.n_keys, seed=settings.seed, key_bits=key_bits)
    wl_key = (name, ds.n, settings.seed, key_bits, settings.n_lookups)
    if wl_key not in _WORKLOADS:
        lookups = max(settings.n_lookups + settings.warmup, 1)
        _WORKLOADS[wl_key] = make_workload(ds, lookups, seed=settings.seed + 1)
    return ds, _WORKLOADS[wl_key]


def cached_measure(
    dataset: Dataset,
    workload: Workload,
    index_name: str,
    config: dict,
    settings: BenchSettings,
    warm: bool = True,
    search: str = "binary",
) -> Measurement:
    """Measure once per unique configuration per process."""
    key = (
        dataset.name,
        dataset.n,
        dataset.key_bits,
        index_name,
        tuple(sorted(config.items())),
        settings.n_lookups,
        warm,
        search,
    )
    if key not in _MEASUREMENTS:
        _MEASUREMENTS[key] = measure_index(
            dataset,
            workload,
            index_name,
            config,
            n_lookups=settings.n_lookups,
            warmup=settings.warmup,
            warm=warm,
            search=search,
        )
    return _MEASUREMENTS[key]


def sweep(
    dataset: Dataset,
    workload: Workload,
    index_name: str,
    settings: BenchSettings,
    warm: bool = True,
    search: str = "binary",
    max_configs: Optional[int] = None,
) -> List[Measurement]:
    """Measure an index across its size sweep."""
    cls = get_index_class(index_name)
    limit = max_configs if max_configs is not None else settings.max_configs
    results = []
    for config in sweep_configs(cls, dataset.n, limit):
        results.append(
            cached_measure(
                dataset, workload, index_name, config, settings, warm, search
            )
        )
    return results


def fastest(measurements: List[Measurement]) -> Measurement:
    """The lowest-latency configuration of a sweep (the paper's 'fastest variant')."""
    if not measurements:
        raise ValueError("empty sweep")
    return min(measurements, key=lambda m: m.latency_ns)


def closest_to_size(
    measurements: List[Measurement], target_bytes: float
) -> Measurement:
    """The sweep configuration whose footprint is closest to a target."""
    if not measurements:
        raise ValueError("empty sweep")
    return min(measurements, key=lambda m: abs(m.size_bytes - target_bytes))


def clear_caches() -> None:
    """Reset memoized measurements (mainly for tests)."""
    _MEASUREMENTS.clear()
    _WORKLOADS.clear()
