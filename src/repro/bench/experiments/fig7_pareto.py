"""Figure 7: performance / size tradeoffs on the four datasets.

For each dataset, every index in the paper's Figure 7 is measured across
its size sweep; the binary-search baseline provides the horizontal
reference line.  Points on the cross-index Pareto front are marked, which
is how the paper's headline claim ("learned structures are Pareto
optimal") is checked.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    FIG7_INDEXES,
    cached_measure,
    cell_for,
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.harness import Measurement
from repro.bench.report import format_table
from repro.core.pareto import ParetoPoint, pareto_front


def cells(settings: BenchSettings) -> List[MeasureCell]:
    """The measurement grid of this figure, for the parallel runner."""
    out: List[MeasureCell] = []
    indexes = settings.indexes or FIG7_INDEXES
    for ds_name in settings.datasets:
        for index_name in indexes:
            out.extend(sweep_cells(ds_name, index_name, settings))
        out.append(cell_for(ds_name, "BS", {}, settings))
    return out


def collect(settings: BenchSettings) -> Dict[str, List[Measurement]]:
    """All sweep measurements plus the BS baseline, per dataset."""
    out: Dict[str, List[Measurement]] = {}
    indexes = settings.indexes or FIG7_INDEXES
    for ds_name in settings.datasets:
        ds, wl = dataset_and_workload(ds_name, settings)
        measurements: List[Measurement] = []
        for index_name in indexes:
            measurements.extend(sweep(ds, wl, index_name, settings))
        measurements.append(cached_measure(ds, wl, "BS", {}, settings))
        out[ds_name] = measurements
    return out


def pareto_names(measurements: List[Measurement]) -> set:
    points = [
        ParetoPoint(m.index, m.size_bytes, m.latency_ns, m.config)
        for m in measurements
    ]
    return {
        (p.index, p.size_bytes, p.latency_ns) for p in pareto_front(points)
    }


def run(settings: BenchSettings) -> str:
    parts = ["Figure 7: performance / size tradeoffs (simulated ns)\n"]
    for ds_name, measurements in collect(settings).items():
        front = pareto_names(measurements)
        bs = next(m for m in measurements if m.index == "BS")
        rows = []
        for m in sorted(measurements, key=lambda m: (m.index, m.size_bytes)):
            if m.index == "BS":
                continue
            on_front = (m.index, m.size_bytes, m.latency_ns) in front
            rows.append(
                (
                    m.index,
                    f"{m.size_mb:.4f}",
                    f"{m.latency_ns:.0f}",
                    "*" if on_front else "",
                )
            )
        parts.append(
            f"dataset={ds_name}  (binary search baseline: {bs.latency_ns:.0f} ns)"
        )
        parts.append(
            format_table(["index", "size MB", "lookup ns", "pareto"], rows)
        )
        learned_front = {
            idx for (idx, _, _) in front if idx in ("RMI", "PGM", "RS")
        }
        parts.append(
            f"learned structures on the Pareto front: "
            f"{sorted(learned_front) if learned_front else 'none'}\n"
        )
    return "\n".join(parts)
