"""Figure 11: last-mile search functions (binary / linear / interpolation).

The paper finds binary always beats linear, and interpolation ~matches
binary on the smooth amzn but loses on the erratic osm.  This doubles as
the ablation bench for the last-mile design choice (DESIGN.md Section 5).
"""

from __future__ import annotations

from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.report import format_table
from repro.search.last_mile import SEARCH_FUNCTIONS

INDEXES = ["RMI", "PGM", "RS"]
DATASETS = ["amzn", "osm"]


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for ds_name in [d for d in DATASETS if d in settings.datasets] or DATASETS:
        for index_name in settings.indexes or INDEXES:
            for search in SEARCH_FUNCTIONS:
                out.extend(
                    sweep_cells(ds_name, index_name, settings, search=search)
                )
    return out


def run(settings: BenchSettings) -> str:
    parts = ["Figure 11: last-mile search technique comparison\n"]
    for ds_name in [d for d in DATASETS if d in settings.datasets] or DATASETS:
        ds, wl = dataset_and_workload(ds_name, settings)
        rows = []
        for index_name in settings.indexes or INDEXES:
            for search in SEARCH_FUNCTIONS:
                for m in sweep(ds, wl, index_name, settings, search=search):
                    rows.append(
                        (
                            m.index,
                            search,
                            f"{m.size_mb:.4f}",
                            f"{m.latency_ns:.0f}",
                        )
                    )
        parts.append(f"dataset={ds_name}")
        parts.append(
            format_table(["index", "search", "size MB", "lookup ns"], rows)
        )
        parts.append("")
    return "\n".join(parts)
