"""Table 2: fastest variant of each index vs hashing, 32-bit amzn.

The paper compares the lowest-latency configuration of every structure
against CuckooMap (32-bit keys only) and RobinHash on a 32-bit amzn
dataset: hashes win on latency at a large memory cost.
"""

from __future__ import annotations

from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    cached_measure,
    dataset_and_workload,
    fastest,
    sweep,
)
from repro.bench.report import format_table

SWEPT = ["PGM", "RS", "RMI", "BTree", "IBTree", "FAST"]
HASHES = ["CuckooMap", "RobinHash"]


def run(settings: BenchSettings) -> str:
    ds, wl = dataset_and_workload("amzn", settings, key_bits=32)
    rows = []
    for index_name in SWEPT:
        m = fastest(sweep(ds, wl, index_name, settings))
        rows.append((m.index, f"{m.latency_ns:.2f} ns", f"{m.size_mb:.3f} MB"))
    bs = cached_measure(ds, wl, "BS", {}, settings)
    rows.append(("BS", f"{bs.latency_ns:.2f} ns", "0.0 MB"))
    for index_name in HASHES:
        m = cached_measure(ds, wl, index_name, {}, settings)
        rows.append((m.index, f"{m.latency_ns:.2f} ns", f"{m.size_mb:.3f} MB"))
    return (
        "Table 2: fastest variant of each index vs hashing (amzn, 32-bit)\n\n"
        + format_table(["Method", "Time", "Size"], rows)
    )
