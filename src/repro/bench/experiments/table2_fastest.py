"""Table 2: fastest variant of each index vs hashing, 32-bit amzn.

The paper compares the lowest-latency configuration of every structure
against CuckooMap (32-bit keys only) and RobinHash on a 32-bit amzn
dataset: hashes win on latency at a large memory cost.
"""

from __future__ import annotations

from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    cached_measure,
    cell_for,
    dataset_and_workload,
    fastest,
    sweep,
    sweep_cells,
)
from repro.bench.report import format_table

SWEPT = ["PGM", "RS", "RMI", "BTree", "IBTree", "FAST"]
HASHES = ["CuckooMap", "RobinHash"]


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for index_name in SWEPT:
        out.extend(sweep_cells("amzn", index_name, settings, key_bits=32))
    out.append(cell_for("amzn", "BS", {}, settings, key_bits=32))
    for index_name in HASHES:
        out.append(cell_for("amzn", index_name, {}, settings, key_bits=32))
    return out


def run(settings: BenchSettings) -> str:
    ds, wl = dataset_and_workload("amzn", settings, key_bits=32)
    rows = []
    for index_name in SWEPT:
        m = fastest(sweep(ds, wl, index_name, settings))
        rows.append((m.index, f"{m.latency_ns:.2f} ns", f"{m.size_mb:.3f} MB"))
    bs = cached_measure(ds, wl, "BS", {}, settings)
    rows.append(("BS", f"{bs.latency_ns:.2f} ns", "0.0 MB"))
    for index_name in HASHES:
        m = cached_measure(ds, wl, index_name, {}, settings)
        rows.append((m.index, f"{m.latency_ns:.2f} ns", f"{m.size_mb:.3f} MB"))
    return (
        "Table 2: fastest variant of each index vs hashing (amzn, 32-bit)\n\n"
        + format_table(["Method", "Time", "Size"], rows)
    )
