"""Figure 17: single-threaded build times across dataset sizes.

Build times are real wall-clock seconds of this library's builds (they
are not simulated): unlike lookup latency, builds are dominated by the
number of passes over the data, which the Python implementations share
with their C++ counterparts.  EXPERIMENTS.md discusses where interpreter
overhead distorts the comparison (pure-Python streaming fits vs
vectorized training).
"""

from __future__ import annotations



from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    dataset_and_workload,
    fastest,
    sweep,
    sweep_cells,
)
from repro.bench.harness import build_index
from repro.bench.report import format_table
from repro.datasets.loader import make_dataset

INDEXES = [
    "PGM",
    "RS",
    "RMI",
    "RBS",
    "ART",
    "BTree",
    "IBTree",
    "FAST",
    "FST",
    "Wormhole",
    "RobinHash",
]
SCALES = (1, 2, 3, 4)


def cells(settings: BenchSettings) -> List[MeasureCell]:
    """Only the config-picking sweeps are cellable; the scaled builds
    themselves are wall-clock measurements, not simulated cells."""
    out: List[MeasureCell] = []
    for index_name in settings.indexes or INDEXES:
        out.extend(sweep_cells("amzn", index_name, settings))
    return out


def run(settings: BenchSettings) -> str:
    # "Fastest variant" configs picked at base size.
    ds, wl = dataset_and_workload("amzn", settings)
    configs = {}
    for index_name in settings.indexes or INDEXES:
        ms = sweep(ds, wl, index_name, settings)
        configs[index_name] = fastest(ms).config if ms else {}

    rows = []
    for index_name, config in configs.items():
        cells = [index_name, str(config)]
        for scale in SCALES:
            scaled_ds = make_dataset(
                "amzn", settings.n_keys * scale, seed=settings.seed
            )
            built = build_index(scaled_ds, index_name, config)
            cells.append(f"{built.index.build_seconds:.3f}")
        rows.append(tuple(cells))
    header = ["index", "config"] + [
        f"{settings.n_keys * s} keys (s)" for s in SCALES
    ]
    return (
        "Figure 17: build times (wall-clock seconds, fastest variant per index)\n\n"
        + format_table(header, rows)
    )
