"""Extension experiment: lookup skew and caching.

The paper's Section 4.4 shows warm-vs-cold caching moves latencies by
2-2.5x; real workloads sit in between, concentrating lookups on popular
keys.  This extension drives indexes with YCSB-style Zipfian workloads of
increasing skew: the hotter the key set, the more of the index *and data*
stays cache-resident, and the closer a realistic workload gets to the
paper's warm tight-loop numbers.
"""

from __future__ import annotations

from repro.bench.config import BenchSettings
from repro.bench.harness import build_index, measure
from repro.bench.report import format_table
from repro.datasets.loader import make_dataset
from repro.datasets.workload import make_workload

INDEXES = {
    "RMI": {"branching": 4096},
    "PGM": {"epsilon": 32},
    "BTree": {"gap": 2},
    "RBS": {"radix_bits": 14},
}
THETAS = (0.6, 0.99, 1.4)


def run(settings: BenchSettings) -> str:
    ds = make_dataset("amzn", settings.n_keys, seed=settings.seed)
    n_work = settings.n_lookups + settings.warmup
    uniform = make_workload(ds, n_work, seed=settings.seed + 1, mode="present")
    zipfs = {
        theta: make_workload(
            ds, n_work, seed=settings.seed + 1, mode="zipf", zipf_theta=theta
        )
        for theta in THETAS
    }

    rows = []
    for index_name, config in INDEXES.items():
        if settings.indexes and index_name not in settings.indexes:
            continue
        built = build_index(ds, index_name, config)
        base = measure(
            built, uniform, n_lookups=settings.n_lookups, warmup=settings.warmup
        )
        cells = [index_name, f"{base.latency_ns:.0f}"]
        for theta in THETAS:
            m = measure(
                built,
                zipfs[theta],
                n_lookups=settings.n_lookups,
                warmup=settings.warmup,
            )
            cells.append(f"{m.latency_ns:.0f}")
        rows.append(tuple(cells))

    header = ["index", "uniform ns"] + [f"zipf {t} ns" for t in THETAS]
    return (
        "Extension: Zipfian lookup skew, amzn (hotter workloads stay "
        "cache-resident)\n\n" + format_table(header, rows)
    )
