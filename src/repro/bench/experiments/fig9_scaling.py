"""Figure 9: performance / size tradeoffs across dataset sizes.

The paper scales amzn from 200M to 800M keys and finds learned structures
slow down only logarithmically (one extra binary-search step per
doubling).  We scale the synthetic amzn by the same 1x..4x factors.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.report import format_table

INDEXES = ["RMI", "PGM", "RS", "BTree"]
SCALES = (1, 2, 3, 4)


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for index_name in settings.indexes or INDEXES:
        for scale in SCALES:
            scaled = replace(settings, n_keys=settings.n_keys * scale)
            out.extend(sweep_cells("amzn", index_name, scaled))
    return out


def run(settings: BenchSettings) -> str:
    parts = [
        "Figure 9: dataset-size scaling on amzn "
        f"(sizes {[settings.n_keys * s for s in SCALES]}; the paper's 200M-800M)\n"
    ]
    for index_name in settings.indexes or INDEXES:
        rows = []
        for scale in SCALES:
            scaled = replace(settings, n_keys=settings.n_keys * scale)
            ds, wl = dataset_and_workload("amzn", scaled)
            for m in sweep(ds, wl, index_name, scaled):
                rows.append(
                    (
                        f"{scale}x",
                        ds.n,
                        f"{m.size_mb:.4f}",
                        f"{m.latency_ns:.0f}",
                    )
                )
        parts.append(f"index={index_name}")
        parts.append(
            format_table(["scale", "keys", "size MB", "lookup ns"], rows)
        )
        parts.append("")
    return "\n".join(parts)
