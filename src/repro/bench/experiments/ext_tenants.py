"""Extension: multi-tenant serving with admission control and shedding.

``ext_cluster`` serves one workload per cluster; production serves many.
This experiment drives the tenancy subsystem (:mod:`repro.serve.scenario`
/ :mod:`repro.serve.tenancy`) end to end: per-shard index builds flow
through the same measurement cells, persistent cache and ``--jobs`` pool
as ``ext_cluster`` (the grids overlap, so the caches are shared), and
declarative :class:`~repro.serve.scenario.ScenarioSpec` values -- not
experiment code -- describe the scenarios.  Three tables per dataset:

* a **mixed-tenant day**: gold (diurnal traffic, whole key space, p99
  SLO), silver (bursty, upper half) and bronze (flash crowd, Zipf-hot
  lower half) sharing the cluster; per-tenant goodput, shed counts and
  tail latencies;
* a **flash-crowd admission table**: the same gold+bronze overload run
  with admission control off vs on -- off, the bronze spike destroys
  gold's p99; on, bronze absorbs the rejections and gold's p99 holds
  within its SLO (the headline claim, pinned by the CI smoke);
* a **record-replay table**: spec and trace content keys
  (:func:`repro.bench.cache.scenario_key`), plus proof that a
  serialize-reload-replay round trip reproduces the run identically;
* a **gold burn-rate table**: the flash-crowd run re-simulated with
  :class:`repro.serve.telemetry.TelemetryConfig` attached (admission
  off vs on), reporting gold's per-window SLO burn rate and error-budget
  exhaustion via :func:`repro.serve.telemetry.burn_rate_report`; the
  admission-on run also records request traces, published as
  ``repro.obs`` spans for the ``timeline``/``summary`` CLIs.

Everything downstream of the cells is deterministic replay, as for every
serving experiment: specs and traces are pure data, shedding decisions
are pure functions of (config, queue state), so the tables are
bit-identical across serial runs, ``--jobs N``, and cache replay.

The flash-crowd comparisons and the depth sweep route through
:class:`repro.serve.sweep.ScenarioTask` batches (``--jobs`` processes,
persistent simulation cache); the mixed-tenant day runs inline because
the record-replay table needs its actual :class:`TenantTrace`, not just
the summary record.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench.cache import scenario_key
from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import get_active_sim_cache, sweep_cells
from repro.bench.experiments.ext_cluster import (
    N_REPLICAS,
    N_SHARDS,
    SIM_CORES,
    _n_requests,
    cluster_capacity_per_sec,
    shard_measurements,
    shard_settings,
)
from repro.bench.harness import Measurement
from repro.bench.report import format_table
from repro.datasets.loader import make_dataset
from repro.serve.contention import MachineModel
from repro.serve.core import ServiceModel
from repro.serve.router import ShardMap
from repro.serve.scenario import (
    AdmissionSpec,
    ArrivalSpec,
    KeySpaceSpec,
    ScenarioSpec,
    TenantSpec,
    TopologySpec,
)
from repro.serve.sweep import TenancyRunStats, run_sim_tasks, scenario_task
from repro.serve.telemetry import TelemetryConfig, burn_rate_report, publish
from repro.serve.tenancy import TenancyResult, replay_trace, simulate_scenario
from repro.serve.trace import TenantTrace

#: Index families tried in order; the first one present in the settings
#: serves every tenant (tenancy varies workloads, not index families --
#: ``ext_cluster`` already sweeps families).
INDEX_PREFERENCE = ("RMI", "PGM", "BTree")
DATASETS = ["amzn", "osm"]
#: Baseline offered load (all tenants summed, spike excluded) as a
#: fraction of the family's modelled cluster capacity.
LOAD_FRACTION = 0.55
#: Baseline load split over the day's tenants (sums to 1).
DAY_SHARES = {"gold": 0.4, "silver": 0.3, "bronze": 0.3}
#: Gold's p99 SLO as a multiple of the weakest shard's fully-contended
#: service time (queueing headroom, not raw service).  Tight enough
#: that an unchecked flash crowd decisively blows it at every
#: measurement scale, loose enough that admission-controlled runs clear
#: it with margin.
GOLD_SLO_FACTOR = 8.0
#: Flash-crowd intensity: bronze's spike arrives at this multiple of its
#: baseline rate, overloading the cluster while it lasts.
SPIKE_FACTOR = 16.0
#: Admission thresholds (per-shard backlog: queued + in service over
#: all replicas).  Gold is never shed.
BRONZE_DEPTH = 6
SILVER_DEPTH = 18
#: Bronze-depth sweep for the SVG figures.
DEPTH_SWEEP = (2, 4, 6, 12, 24, 48)
#: Tumbling windows per telemetry run.
TELEMETRY_WINDOWS = 12
#: Gold's error budget for the burn-rate table: at most this fraction
#: of gold requests per window may miss the p99 SLO (or fail) before
#: the budget burns at rate 1.
GOLD_BUDGET_FRACTION = 0.01

TOPOLOGY = TopologySpec(
    n_shards=N_SHARDS, n_replicas=N_REPLICAS, n_cores=SIM_CORES
)
ADMISSION = AdmissionSpec(
    enabled=True, bronze_depth=BRONZE_DEPTH, silver_depth=SILVER_DEPTH
)


def _datasets(settings: BenchSettings) -> List[str]:
    return [d for d in DATASETS if d in settings.datasets] or DATASETS


def _index(settings: BenchSettings) -> str:
    available = settings.indexes or list(INDEX_PREFERENCE)
    for name in INDEX_PREFERENCE:
        if name in available:
            return name
    return available[0]


def cells(settings: BenchSettings) -> List[MeasureCell]:
    """Per-shard sweep grid for the serving family (shared with the
    ``ext_cluster`` grid, so a warm cache resolves every cell)."""
    out: List[MeasureCell] = []
    for ds_name in _datasets(settings):
        for shard in range(N_SHARDS):
            out.extend(
                sweep_cells(
                    ds_name, _index(settings), shard_settings(settings, shard)
                )
            )
    return out


def _services(
    per_shard: Sequence[Measurement], machine: MachineModel
) -> List[ServiceModel]:
    return [
        ServiceModel.from_measurement(m, machine=machine) for m in per_shard
    ]


def _gold_slo_ns(
    services: Sequence[ServiceModel],
) -> float:
    """p99 target for gold: headroom over the weakest shard's service
    time with every simulated core busy (pure function of the cells)."""
    return GOLD_SLO_FACTOR * max(
        s.service_ns(SIM_CORES) for s in services
    )


def day_spec(
    offered_per_sec: float,
    n_requests: int,
    seed: int,
    gold_slo_ns: float,
    admission: AdmissionSpec = ADMISSION,
) -> ScenarioSpec:
    """The mixed-tenant day: diurnal gold, bursty silver, flash bronze.

    Per-tenant request counts are proportional to rate shares, so every
    tenant's traffic spans the same simulated wall-clock window.
    """
    n_gold = max(int(DAY_SHARES["gold"] * n_requests), 2)
    n_silver = max(int(DAY_SHARES["silver"] * n_requests), 2)
    n_bronze = max(n_requests - n_gold - n_silver, 2)
    return ScenarioSpec(
        name="mixed-day",
        tenants=(
            TenantSpec(
                name="gold",
                slo_class="gold",
                arrivals=ArrivalSpec(
                    rate_per_sec=DAY_SHARES["gold"] * offered_per_sec,
                    n_requests=n_gold,
                    seed=seed + 101,
                    shape="diurnal",
                    params=(("period_requests", max(n_gold // 2, 2)),),
                ),
                keyspace=KeySpaceSpec(seed=seed + 101),
                p99_slo_ns=gold_slo_ns,
            ),
            TenantSpec(
                name="silver",
                slo_class="silver",
                arrivals=ArrivalSpec(
                    rate_per_sec=DAY_SHARES["silver"] * offered_per_sec,
                    n_requests=n_silver,
                    seed=seed + 202,
                    shape="bursty",
                ),
                keyspace=KeySpaceSpec(lo_frac=0.5, hi_frac=1.0, seed=seed + 202),
            ),
            TenantSpec(
                name="bronze",
                slo_class="bronze",
                arrivals=ArrivalSpec(
                    rate_per_sec=DAY_SHARES["bronze"] * offered_per_sec,
                    n_requests=n_bronze,
                    seed=seed + 303,
                    shape="flash",
                    params=(
                        ("spike_factor", SPIKE_FACTOR),
                        ("spike_start_request", n_bronze // 4),
                        ("spike_len_requests", max(n_bronze // 2, 1)),
                    ),
                ),
                keyspace=KeySpaceSpec(
                    lo_frac=0.0, hi_frac=0.5, hot_theta=0.99, seed=seed + 303
                ),
            ),
        ),
        topology=TOPOLOGY,
        admission=admission,
    )


def flash_spec(
    offered_per_sec: float,
    n_requests: int,
    seed: int,
    gold_slo_ns: float,
    admission: AdmissionSpec,
) -> ScenarioSpec:
    """The admission-control showdown: steady gold vs a bronze flash
    crowd whose spike overloads the cluster several times over."""
    n_gold = max(n_requests // 2, 2)
    n_bronze = max(n_requests - n_gold, 2)
    return ScenarioSpec(
        name="flash-crowd",
        tenants=(
            TenantSpec(
                name="gold",
                slo_class="gold",
                arrivals=ArrivalSpec(
                    rate_per_sec=0.5 * offered_per_sec,
                    n_requests=n_gold,
                    seed=seed + 11,
                ),
                keyspace=KeySpaceSpec(seed=seed + 11),
                p99_slo_ns=gold_slo_ns,
            ),
            TenantSpec(
                name="bronze",
                slo_class="bronze",
                arrivals=ArrivalSpec(
                    rate_per_sec=0.5 * offered_per_sec,
                    n_requests=n_bronze,
                    seed=seed + 22,
                    shape="flash",
                    params=(
                        ("spike_factor", SPIKE_FACTOR),
                        ("spike_start_request", n_bronze // 8),
                        ("spike_len_requests", max(3 * n_bronze // 4, 1)),
                    ),
                ),
                keyspace=KeySpaceSpec(
                    lo_frac=0.0, hi_frac=0.5, hot_theta=0.99, seed=seed + 22
                ),
            ),
        ),
        topology=TOPOLOGY,
        admission=admission,
    )


def _tenant_rows(result: TenancyResult) -> List[Tuple[str, ...]]:
    rows = []
    for ts in result.tenants:
        s = ts.summary()
        met = ts.slo_met()
        rows.append(
            (
                ts.name,
                ts.slo_class,
                result.spec.tenants[ts.tenant].arrivals.shape,
                str(ts.requests),
                str(ts.completed),
                str(ts.shed),
                f"{ts.goodput:.4f}",
                "-" if s is None else f"{s.p50_ns:.0f}",
                "-" if s is None else f"{s.p99_ns:.0f}",
                "-" if met is None else ("yes" if met else "NO"),
            )
        )
    return rows


def _tenant_rows_from_stats(
    spec: ScenarioSpec, stats: TenancyRunStats
) -> List[Tuple[str, ...]]:
    """:func:`_tenant_rows` over a cached run record (byte-identical:
    the record's floats survive the JSON round trip losslessly)."""
    rows = []
    for ts in stats.tenants:
        s = ts.summary
        met = ts.slo_met()
        rows.append(
            (
                ts.name,
                ts.slo_class,
                spec.tenants[ts.tenant].arrivals.shape,
                str(ts.requests),
                str(ts.completed),
                str(ts.shed),
                f"{ts.goodput:.4f}",
                "-" if s is None else f"{s.p50_ns:.0f}",
                "-" if s is None else f"{s.p99_ns:.0f}",
                "-" if met is None else ("yes" if met else "NO"),
            )
        )
    return rows


def _scenario_run_task(
    spec: ScenarioSpec,
    ds_name: str,
    settings: BenchSettings,
    per_shard: Sequence[Measurement],
    machine: MachineModel,
):
    """One scenario replay as a picklable task; the worker rebuilds the
    dataset and shard map from (dataset, n_keys, seed)."""
    return scenario_task(
        spec, ds_name, settings.n_keys, settings.seed, per_shard, machine
    )


_TENANT_HEADER = [
    "tenant",
    "class",
    "shape",
    "requests",
    "done",
    "shed",
    "goodput",
    "p50 ns",
    "p99 ns",
    "SLO met",
]


def run(settings: BenchSettings) -> str:
    machine = MachineModel()
    n_req = _n_requests(settings)
    index = _index(settings)
    parts = [
        "ext_tenants: multi-tenant serving with admission control "
        f"({index} on {N_SHARDS} shards x {N_REPLICAS} replicas x "
        f"{SIM_CORES} cores, {n_req} requests per scenario, "
        f"seed {settings.seed})\n"
    ]
    for ds_name in _datasets(settings):
        ds = make_dataset(
            ds_name, settings.n_keys, seed=settings.seed, key_bits=64
        )
        shard_map = ShardMap.from_keys(ds.keys, N_SHARDS)
        per_shard = shard_measurements(ds_name, index, settings)
        services = _services(per_shard, machine)
        offered = LOAD_FRACTION * cluster_capacity_per_sec(
            per_shard, machine
        )
        slo_ns = _gold_slo_ns(services)

        # -- mixed-tenant day ------------------------------------------
        day = day_spec(offered, n_req, settings.seed, slo_ns)
        day_result = simulate_scenario(
            day, services, ds.keys, shard_map=shard_map
        )
        day_result.to_metrics()
        parts.append(
            f"mixed-tenant day, {ds_name} (baseline load "
            f"{LOAD_FRACTION:.2f} of cluster capacity, gold p99 SLO "
            f"{slo_ns:.0f} ns, bronze spike {SPIKE_FACTOR:.0f}x)"
        )
        parts.append(format_table(_TENANT_HEADER, _tenant_rows(day_result)))
        parts.append("")

        # -- flash crowd: admission off vs on --------------------------
        flash = [
            (
                label,
                flash_spec(offered, n_req, settings.seed, slo_ns, admission),
            )
            for label, admission in (
                ("off", AdmissionSpec()),
                ("on", ADMISSION),
            )
        ]
        records = run_sim_tasks(
            [
                _scenario_run_task(spec, ds_name, settings, per_shard, machine)
                for _, spec in flash
            ],
            jobs=settings.jobs,
            cache=get_active_sim_cache(),
        )
        rows = []
        for (label, spec), record in zip(flash, records):
            stats = TenancyRunStats.from_record(record)
            stats.to_metrics()
            for row in _tenant_rows_from_stats(spec, stats):
                rows.append((label,) + row)
        parts.append(
            f"flash crowd vs admission control, {ds_name} (bronze "
            f"spike {SPIKE_FACTOR:.0f}x baseline; shed bronze at "
            f"shard backlog {BRONZE_DEPTH})"
        )
        parts.append(format_table(["admission"] + _TENANT_HEADER, rows))
        parts.append("")

        # -- record-replay reproducibility -----------------------------
        trace = day_result.trace
        reloaded_spec = ScenarioSpec.from_json(day.to_json())
        reloaded_trace = TenantTrace.from_json(trace.to_json())
        replayed = replay_trace(
            reloaded_spec, reloaded_trace, services, shard_map=shard_map
        )
        identical = (
            reloaded_spec == day
            and reloaded_trace == trace
            and _tenant_rows(replayed) == _tenant_rows(day_result)
            and replayed.summary() == day_result.summary()
        )
        parts.append(f"record-replay reproducibility, {ds_name}")
        parts.append(
            format_table(
                [
                    "scenario",
                    "spec key",
                    "cache key",
                    "trace key",
                    "requests",
                    "replay identical",
                ],
                [
                    (
                        day.name,
                        day.content_key()[:12],
                        scenario_key(day)[:12],
                        trace.content_key()[:12],
                        str(len(trace)),
                        "yes" if identical else "NO",
                    )
                ],
            )
        )
        parts.append("")

        # -- gold burn rate under the flash crowd ----------------------
        # The admission off/on pair re-simulated inline with telemetry
        # (and, for the "on" run, request traces -- published as obs
        # spans).  Burn rate is a pure function of the series, so this
        # table is as replay-stable as the runs themselves.
        span_ns = n_req / offered * 1e9
        window_ns = span_ns / TELEMETRY_WINDOWS
        tel_results = {
            label: simulate_scenario(
                spec,
                services,
                ds.keys,
                shard_map=shard_map,
                telemetry=TelemetryConfig(
                    window_ns=window_ns, traces=(label == "on")
                ),
            )
            for label, spec in flash
        }
        publish(
            f"ext_tenants/{ds_name}/flash-off",
            tel_results["off"].telemetry,
        )
        publish(
            f"ext_tenants/{ds_name}/flash-on",
            tel_results["on"].telemetry,
            traces=tel_results["on"].traces,
        )
        reports = {
            label: burn_rate_report(
                r.telemetry, GOLD_BUDGET_FRACTION, slo_class="gold"
            )
            for label, r in tel_results.items()
        }
        rows = []
        n_windows = max(len(r.windows) for r in reports.values())
        for i in range(n_windows):
            row = [str(i)]
            for label in ("off", "on"):
                ws = reports[label].windows
                if i < len(ws):
                    w = ws[i]
                    row.extend(
                        [
                            str(w.bad),
                            f"{w.burn_rate:.1f}",
                            f"{w.budget_left:.2f}",
                        ]
                    )
                else:
                    row.extend(["-", "-", "-"])
            rows.append(tuple(row))
        parts.append(
            f"gold error-budget burn under the flash crowd, {ds_name} "
            f"(budget {GOLD_BUDGET_FRACTION:.0%} of gold requests, "
            f"{window_ns / 1e3:.2f} us windows; burn 1.0 = at budget)"
        )
        parts.append(
            format_table(
                [
                    "win",
                    "off bad",
                    "off burn",
                    "off left",
                    "on bad",
                    "on burn",
                    "on left",
                ],
                rows,
            )
        )
        for label in ("off", "on"):
            r = reports[label]
            exhausted = (
                "never exhausted"
                if r.exhausted_window is None
                else f"exhausted in window {r.exhausted_window}"
            )
            tte = (
                "-"
                if r.time_to_exhaustion_ns is None
                else f"{r.time_to_exhaustion_ns / 1e3:.1f} us"
            )
            parts.append(
                f"-> admission {label}: {r.total_bad}/{r.total} bad, "
                f"budget consumed {r.consumed:.2f}x, {exhausted}, "
                f"time-to-exhaustion {tte}"
            )
        parts.append("")
    return "\n".join(parts)


def depth_sweep_series(
    ds_name: str,
    settings: BenchSettings,
    machine: MachineModel,
) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]:
    """(gold p99, bronze shed fraction) vs bronze admission depth.

    The whole sweep is one :func:`run_sim_tasks` batch, so it fans out
    over ``--jobs`` processes and replays from the persistent cache.
    """
    per_shard = shard_measurements(ds_name, _index(settings), settings)
    services = _services(per_shard, machine)
    offered = LOAD_FRACTION * cluster_capacity_per_sec(per_shard, machine)
    slo_ns = _gold_slo_ns(services)
    n_req = _n_requests(settings)
    specs = [
        flash_spec(
            offered,
            n_req,
            settings.seed,
            slo_ns,
            AdmissionSpec(
                enabled=True, bronze_depth=depth, silver_depth=3 * depth
            ),
        )
        for depth in DEPTH_SWEEP
    ]
    records = run_sim_tasks(
        [
            _scenario_run_task(spec, ds_name, settings, per_shard, machine)
            for spec in specs
        ],
        jobs=settings.jobs,
        cache=get_active_sim_cache(),
    )
    p99_points: List[Tuple[float, float]] = []
    shed_points: List[Tuple[float, float]] = []
    for depth, record in zip(DEPTH_SWEEP, records):
        stats = TenancyRunStats.from_record(record)
        gold = stats.by_name("gold").summary
        p99_points.append(
            (float(depth), gold.p99_ns if gold is not None else 0.0)
        )
        shed_points.append(
            (float(depth), stats.by_name("bronze").shed_fraction)
        )
    return p99_points, shed_points


def render_svgs(settings: BenchSettings, directory: str) -> List[str]:
    """Gold p99 and bronze shed fraction vs admission depth, per dataset.

    Reuses the memoized per-shard measurements (call after :func:`run`
    or after the parallel runner has resolved this experiment's cells).
    """
    import os

    from repro.bench.svgplot import series_figure

    machine = MachineModel()
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for ds_name in _datasets(settings):
        p99_points, shed_points = depth_sweep_series(
            ds_name, settings, machine
        )
        for stem, series, y_label in (
            (
                "tenancy_gold_p99",
                {"gold p99": p99_points},
                "gold p99 latency (ns)",
            ),
            (
                "tenancy_bronze_shed",
                {"bronze shed": shed_points},
                "bronze shed fraction",
            ),
        ):
            path = os.path.join(directory, f"{stem}_{ds_name}.svg")
            with open(path, "w") as f:
                f.write(
                    series_figure(
                        series,
                        title=(
                            f"{y_label} vs bronze admission depth — "
                            f"{ds_name} (flash crowd, "
                            f"{N_SHARDS}x{N_REPLICAS} cluster)"
                        ),
                        x_label="bronze shard-backlog threshold (log)",
                        y_label=y_label,
                    )
                )
            written.append(path)
    return written
