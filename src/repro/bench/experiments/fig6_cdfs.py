"""Figure 6: CDF shape of each testing dataset.

The paper plots the CDFs; a text harness prints deciles of the normalized
key range plus the local-roughness statistics that distinguish the
datasets (osm's erratic local structure, face's outliers).
"""

from __future__ import annotations

import numpy as np

from repro.bench.config import BenchSettings
from repro.bench.report import format_series, format_table
from repro.datasets.loader import make_dataset


def dataset_summary(name: str, settings: BenchSettings) -> dict:
    ds = make_dataset(name, settings.n_keys, seed=settings.seed)
    keys = ds.keys.astype(np.float64)
    lo, hi = keys[0], keys[-1]
    deciles = [
        float((keys[int(q * (len(keys) - 1))] - lo) / max(hi - lo, 1.0))
        for q in np.linspace(0, 1, 11)
    ]
    stats = ds.stats()
    return {"name": name, "deciles": deciles, **stats}


def run(settings: BenchSettings) -> str:
    parts = ["Figure 6: dataset CDFs (normalized key at each position decile)\n"]
    rows = []
    for name in settings.datasets:
        s = dataset_summary(name, settings)
        parts.append(
            format_series(
                f"{name}: normalized key value at position decile 0..100%",
                [(f"{10 * i}%", d) for i, d in enumerate(s["deciles"])],
            )
        )
        rows.append((name, s["n"], s["mean_gap"], s["gap_cv"], s["max_gap"]))
    parts.append("")
    parts.append(
        format_table(
            ["dataset", "keys", "mean gap", "gap CV", "max gap"], rows
        )
    )
    return "\n".join(parts)
