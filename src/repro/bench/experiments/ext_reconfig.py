"""Extension: live reconfiguration under traffic.

``ext_tenants`` holds SLOs while tenants misbehave; this experiment
holds them while the *cluster itself* changes shape.  Each dataset's
diurnal and flash-crowd days (the PR 7 arrival shapes) run through
three online operations (:mod:`repro.serve.reconfig`) mid-traffic:

* a **hot-shard split** -- the bronze tenant's Zipf-hot range is carved
  in two at 20% of the day; stale-epoch requests re-resolve against the
  new map at dispatch (key-range handoff);
* a **rebuild-and-swap** -- one replica leaves the rotation at 45% of
  the day and rebuilds its index, the build cost drawn from the paper's
  fig17 build-time measurement for this dataset/index (clamped to a
  band of the day so every measurement scale exercises an in-traffic
  rebuild), then swaps the rebuilt index in atomically;
* a **reactive autoscaler** -- every telemetry window it reads each
  shard's queue depth and adds/retires replicas.

Per scenario the report shows the per-window p99, availability and
gold-class error-budget burn (:func:`repro.serve.telemetry.
burn_rate_report`) with the transitions annotated inline, so SLO
preservation *across* each transition is visible; an epoch-history
table (from an inline run, which carries the full
:class:`~repro.serve.reconfig.ShardEpoch` sequence) pins the handoff
timeline.

Determinism is the usual serving bar: the reconfig schedule is a pure
function of (spec, topology, horizon), the scenario+reconfig pair is
content-keyed data, runs fan out through
:class:`~repro.serve.sweep.ScenarioTask` (``--jobs`` processes,
persistent cache), and the published time-series are byte-identical
across serve engines (the CI smoke diffs ``timeseries.jsonl``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bench.config import BenchSettings
from repro.bench.experiments.common import get_active_sim_cache
from repro.bench.experiments.ext_cluster import (
    N_REPLICAS,
    N_SHARDS,
    SIM_CORES,
    _n_requests,
    cluster_capacity_per_sec,
    shard_measurements,
)
from repro.bench.experiments.ext_tenants import (
    GOLD_BUDGET_FRACTION,
    LOAD_FRACTION,
    SPIKE_FACTOR,
    TELEMETRY_WINDOWS,
    _datasets,
    _gold_slo_ns,
    _index,
    _services,
    cells,  # noqa: F401  (same per-shard grid; re-exported for the CLI)
    day_spec,
    flash_spec,
)
from repro.bench.report import format_table
from repro.datasets.loader import make_dataset
from repro.serve.contention import MachineModel
from repro.serve.reconfig import (
    AUTOSCALE,
    REBUILD,
    SPLIT,
    AutoscaleSpec,
    RebuildSpec,
    ReconfigSpec,
    SplitSpec,
    reconfig_schedule,
)
from repro.serve.router import ShardMap
from repro.serve.scenario import AdmissionSpec, ScenarioSpec
from repro.serve.sweep import TenancyRunStats, run_sim_tasks, scenario_task
from repro.serve.telemetry import (
    TelemetryConfig,
    TimeSeries,
    burn_rate_report,
    publish,
)
from repro.serve.tenancy import simulate_scenario

#: When each operation fires, as fractions of the day's span.
SPLIT_AT_FRAC = 0.20
REBUILD_AT_FRAC = 0.45
#: The measured fig17 build time is clamped into this band of the day,
#: so the rebuild is always *in traffic* (neither instantaneous nor
#: outlasting the run) at every measurement scale.
BUILD_MIN_FRAC = 0.05
BUILD_MAX_FRAC = 0.30
#: Post-rebuild service-time improvement (a fresh, compacted index).
REBUILD_SPEEDUP = 1.25
#: Autoscaler rule: one tick per telemetry window; add a replica at
#: this per-shard backlog, retire one when the backlog drains to zero.
AUTOSCALE_UP_DEPTH = 6
AUTOSCALE_MAX_EXTRA = 2


def build_ns_from_measurements(per_shard, span_ns: float) -> float:
    """The rebuild's cost: the slowest shard's measured build time
    (fig17's quantity), clamped into the in-traffic band of the day."""
    raw = max(m.build_seconds for m in per_shard) * 1e9
    return min(max(raw, BUILD_MIN_FRAC * span_ns), BUILD_MAX_FRAC * span_ns)


def reconfig_plan(
    shard_map: ShardMap, span_ns: float, build_ns: float
) -> ReconfigSpec:
    """The day's operations, as pure data derived from (map, span, cost).

    Shard 0 owns the bronze tenant's Zipf-hot lower key range, so it is
    the split target; the rebuild hits shard 1's first replica, away
    from the split, so the two transitions are separately visible.
    """
    bounds = shard_map.lower_bounds
    at_key = bounds[0] + (bounds[1] - bounds[0]) // 2
    splits: Tuple[SplitSpec, ...] = ()
    if bounds[0] < at_key < bounds[1]:
        splits = (
            SplitSpec(
                at_ns=SPLIT_AT_FRAC * span_ns, shard=0, at_key=at_key
            ),
        )
    return ReconfigSpec(
        splits=splits,
        rebuilds=(
            RebuildSpec(
                at_ns=REBUILD_AT_FRAC * span_ns,
                shard=1,
                replica=0,
                build_ns=build_ns,
                speedup=REBUILD_SPEEDUP,
            ),
        ),
        autoscale=AutoscaleSpec(
            interval_ns=span_ns / TELEMETRY_WINDOWS,
            up_depth=AUTOSCALE_UP_DEPTH,
            down_depth=0,
            min_replicas=N_REPLICAS,
            max_replicas=N_REPLICAS + AUTOSCALE_MAX_EXTRA,
        ),
    )


def _window_events(
    spec: ReconfigSpec, window_ns: float, n_windows: int
) -> List[str]:
    """Transition annotation per window, from the *pure* schedule (no
    simulation): split/rebuild begin+swap markers; autoscale ticks fire
    every window, so only explicit decisions are worth annotating (the
    epoch table reports them)."""
    marks = [[] for _ in range(n_windows)]

    def mark(t_ns: float, label: str) -> None:
        w = int(t_ns / window_ns)
        if 0 <= w < n_windows:
            marks[w].append(label)

    horizon = window_ns * n_windows
    for ev in reconfig_schedule(spec, N_SHARDS, N_REPLICAS, horizon):
        if ev.kind == SPLIT:
            mark(ev.time_ns, f"split s{ev.shard}")
        elif ev.kind == REBUILD:
            mark(ev.time_ns, f"rebuild s{ev.shard}r{ev.replica}")
            mark(ev.time_ns + ev.build_ns, f"swap s{ev.shard}r{ev.replica}")
        elif ev.kind == AUTOSCALE:
            pass
    return [" ".join(m) if m else "-" for m in marks]


def _scenarios(
    offered: float, n_req: int, seed: int, slo_ns: float, rspec: ReconfigSpec
) -> List[Tuple[str, ScenarioSpec]]:
    """The diurnal mixed-tenant day and the flash-crowd day (admission
    off, so the spike drives real queues into the autoscaler), both
    with the same reconfiguration plan attached."""
    return [
        (
            "diurnal",
            day_spec(offered, n_req, seed, slo_ns).with_reconfig(rspec),
        ),
        (
            "flash",
            flash_spec(
                offered, n_req, seed, slo_ns, AdmissionSpec()
            ).with_reconfig(rspec),
        ),
    ]


def run(settings: BenchSettings) -> str:
    machine = MachineModel()
    n_req = _n_requests(settings)
    index = _index(settings)
    parts = [
        "ext_reconfig: live reconfiguration under traffic "
        f"({index} on {N_SHARDS} shards x {N_REPLICAS} replicas x "
        f"{SIM_CORES} cores, {n_req} requests per scenario, "
        f"seed {settings.seed})\n"
    ]
    for ds_name in _datasets(settings):
        ds = make_dataset(
            ds_name, settings.n_keys, seed=settings.seed, key_bits=64
        )
        shard_map = ShardMap.from_keys(ds.keys, N_SHARDS)
        per_shard = shard_measurements(ds_name, index, settings)
        services = _services(per_shard, machine)
        offered = LOAD_FRACTION * cluster_capacity_per_sec(
            per_shard, machine
        )
        slo_ns = _gold_slo_ns(services)
        span_ns = n_req / offered * 1e9
        window_ns = span_ns / TELEMETRY_WINDOWS
        build_ns = build_ns_from_measurements(per_shard, span_ns)
        rspec = reconfig_plan(shard_map, span_ns, build_ns)
        scenarios = _scenarios(offered, n_req, settings.seed, slo_ns, rspec)

        parts.append(
            f"reconfig plan, {ds_name} (reconfig key "
            f"{rspec.content_key()[:12]}): split shard 0 at "
            f"{SPLIT_AT_FRAC:.0%} of the day; rebuild-and-swap shard 1 "
            f"replica 0 at {REBUILD_AT_FRAC:.0%} taking "
            f"{build_ns / 1e3:.1f} us (fig17 build cost, "
            f"{REBUILD_SPEEDUP:.2f}x faster after swap); autoscale "
            f"every {window_ns / 1e3:.2f} us at backlog "
            f"{AUTOSCALE_UP_DEPTH}, {N_REPLICAS}.."
            f"{N_REPLICAS + AUTOSCALE_MAX_EXTRA} replicas/shard"
        )

        # Every scenario is one cached, jobs-parallel task; telemetry
        # rides the record, so the tables replay byte-identically.
        records = run_sim_tasks(
            [
                scenario_task(
                    spec,
                    ds_name,
                    settings.n_keys,
                    settings.seed,
                    per_shard,
                    machine,
                    telemetry=TelemetryConfig(window_ns=window_ns),
                )
                for _, spec in scenarios
            ],
            jobs=settings.jobs,
            cache=get_active_sim_cache(),
        )

        for (label, spec), record in zip(scenarios, records):
            stats = TenancyRunStats.from_record(record)
            stats.to_metrics()
            series = TimeSeries.from_dict(record["telemetry"])
            publish(f"ext_reconfig/{ds_name}/{label}", series)
            burn = burn_rate_report(
                series, GOLD_BUDGET_FRACTION, slo_class="gold"
            )
            events = _window_events(
                rspec, window_ns, len(series.windows)
            )
            rows = []
            for i, w in enumerate(series.windows):
                done = sum(w.shard_completed)
                failed = sum(w.shard_failed)
                avail = done / (done + failed) if done + failed else 1.0
                bw = burn.windows[i] if i < len(burn.windows) else None
                rows.append(
                    (
                        str(i),
                        f"{w.p99_ns:.0f}" if w.p99_ns is not None else "-",
                        f"{avail:.4f}",
                        "-" if bw is None else str(bw.bad),
                        "-" if bw is None else f"{bw.burn_rate:.1f}",
                        "-" if bw is None else f"{bw.budget_left:.2f}",
                        events[i] if i < len(events) else "-",
                    )
                )
            gold = stats.by_name("gold")
            parts.append(
                f"{label} day across the transitions, {ds_name} "
                f"(gold p99 SLO {slo_ns:.0f} ns"
                + (
                    f", bronze spike {SPIKE_FACTOR:.0f}x"
                    if label == "flash"
                    else ""
                )
                + f"; epochs {stats.epoch_count}, final "
                f"{stats.final_shards} shards / "
                f"{stats.final_replicas} replicas)"
            )
            parts.append(
                format_table(
                    [
                        "win",
                        "p99 ns",
                        "avail",
                        "gold bad",
                        "burn",
                        "left",
                        "transition",
                    ],
                    rows,
                )
            )
            exhausted = (
                "never exhausted"
                if burn.exhausted_window is None
                else f"exhausted in window {burn.exhausted_window}"
            )
            parts.append(
                f"-> {label}: overall p99 {stats.summary.p99_ns:.0f} ns, "
                f"gold {gold.completed}/{gold.requests} completed, "
                f"burn {burn.consumed:.2f}x budget, {exhausted}"
                if stats.summary is not None
                else f"-> {label}: no completions"
            )
        parts.append("")

        # -- epoch & transition history (inline run: epochs ride the
        # full result, not the summary record) -------------------------
        diurnal = scenarios[0][1]
        result = simulate_scenario(
            diurnal, services, ds.keys, shard_map=shard_map
        ).cluster
        rows = [
            (
                f"epoch {e.version}",
                f"{e.time_ns / 1e3:.2f}",
                str(len(e.owners)),
                " ".join(f"s{o}" for o in e.owners),
            )
            for e in result.epochs
        ]
        rows += [
            (
                "swap",
                f"{t / 1e3:.2f}",
                f"s{shard}r{replica}",
                f"{REBUILD_SPEEDUP:.2f}x",
            )
            for t, shard, replica in result.rebuilds
        ]
        ups = sum(1 for _, _, d in result.scale_events if d > 0)
        downs = sum(1 for _, _, d in result.scale_events if d < 0)
        parts.append(
            f"epoch + transition history, {ds_name} diurnal day "
            f"({ups} scale-ups, {downs} scale-downs, "
            f"{result.final_replicas} replicas at close)"
        )
        parts.append(
            format_table(["event", "t (us)", "ranges", "owners"], rows)
        )
        parts.append("")
    return "\n".join(parts)
