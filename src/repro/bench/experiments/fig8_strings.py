"""Figure 8: string-oriented structures (FST, Wormhole) on integer data.

The paper's finding: structures whose optimizations assume expensive key
comparisons (FST's byte-per-level navigation, Wormhole's prefix hashing)
are pure overhead on single-instruction integer comparisons, and lose to
even binary search.
"""

from __future__ import annotations

from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    cached_measure,
    cell_for,
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.report import format_table

INDEXES = ["RMI", "BTree", "FST", "Wormhole"]
DATASETS = ["amzn", "face"]


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for ds_name in [d for d in DATASETS if d in settings.datasets] or DATASETS:
        out.append(cell_for(ds_name, "BS", {}, settings))
        for index_name in INDEXES:
            out.extend(sweep_cells(ds_name, index_name, settings))
    return out


def run(settings: BenchSettings) -> str:
    parts = ["Figure 8: structures designed for strings, on integer keys\n"]
    for ds_name in [d for d in DATASETS if d in settings.datasets] or DATASETS:
        ds, wl = dataset_and_workload(ds_name, settings)
        bs = cached_measure(ds, wl, "BS", {}, settings)
        rows = []
        for index_name in INDEXES:
            for m in sweep(ds, wl, index_name, settings):
                rows.append(
                    (m.index, f"{m.size_mb:.4f}", f"{m.latency_ns:.0f}")
                )
        parts.append(
            f"dataset={ds_name}  (binary search baseline: {bs.latency_ns:.0f} ns)"
        )
        parts.append(format_table(["index", "size MB", "lookup ns"], rows))
        parts.append("")
    return "\n".join(parts)
