"""Extension: serving simulation -- throughput-latency curves and SLOs.

The paper's Figure 16 reports closed-loop saturated throughput; a server
"serving heavy traffic" instead sees an *arrival process*, and its tail
latency degrades from queueing long before mean throughput saturates.
This experiment replays seeded Poisson, bursty, and closed-loop traffic
through :mod:`repro.serve` for each index (fastest sweep variant, as in
Table 2) and reports:

* a throughput-latency curve per index and dataset: offered load as a
  fraction of the index's own modelled capacity, against achieved
  throughput and p50/p95/p99/p99.9 sojourn times;
* arrival-process shape at a fixed 0.7 load: Poisson vs bursty vs a
  closed loop with two clients per core (think time zero);
* an SLO selection table (the Table 2 analogue under load): the cheapest
  index configuration whose simulated p99 meets the SLO at a common
  offered rate, within a memory budget;
* a windowed serving-telemetry table: one near-saturation run per
  dataset with :class:`repro.serve.telemetry.TelemetryConfig` attached,
  showing per-window completions, queue depth and p50/p99 as queueing
  builds (published to ``--obs-dir`` as ``timeseries.jsonl``).

Simulations consume the same cached measurements as every other
experiment -- the grid below is just the Table-2-style sweep -- so the
driver is cheap once cells are resolved, and fully seed-deterministic.

Every open-loop point is expressed as a picklable
:class:`repro.serve.sweep.OpenLoopTask`; ``run()`` primes the whole
dataset's task list through :func:`repro.serve.sweep.run_sim_tasks`
(``--jobs`` processes, persistent simulation cache), after which the
per-table helpers below hit the in-process memo.  Records are
byte-identical whether computed inline, pooled, or replayed from cache.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    dataset_and_workload,
    fastest,
    get_active_sim_cache,
    sweep,
    sweep_cells,
)
from repro.bench.harness import Measurement
from repro.bench.report import format_table
from repro.serve.arrivals import poisson_arrivals
from repro.serve.contention import MachineModel, throughput
from repro.serve.core import ServiceModel, simulate_closed_loop, simulate_open_loop
from repro.serve.metrics import LatencySummary, summarize_result
from repro.serve.selector import select_under_slo
from repro.serve.sweep import open_loop_summary, open_loop_task, run_sim_tasks
from repro.serve.telemetry import TelemetryConfig, publish

INDEXES = ["RMI", "PGM", "BTree"]
DATASETS = ["amzn", "osm"]
#: Offered load as a fraction of the index's modelled capacity.
LOAD_FRACTIONS = (0.3, 0.5, 0.7, 0.85, 0.95)
#: Simulated physical cores (kept small: event count = requests, and the
#: contention math is per-busy-core, so the shape is core-count-free).
SIM_CORES = 4
#: SLO: p99 within this factor of the *best* uncontended latency among
#: the dataset's candidates.
SLO_FACTOR = 3.0
#: Offered rate for the SLO table: this fraction of the fastest
#: candidate's capacity (one common rate for every candidate).
SLO_LOAD_FRACTION = 0.6
#: Telemetry demo point: near saturation, where windowed queue depth
#: and tail latency actually move over the run.
TELEMETRY_LOAD_FRACTION = 0.85
#: Tumbling windows per telemetry run (window = arrival span / this).
TELEMETRY_WINDOWS = 12


def _datasets(settings: BenchSettings) -> List[str]:
    return [d for d in DATASETS if d in settings.datasets] or DATASETS


def _indexes(settings: BenchSettings) -> List[str]:
    return settings.indexes or INDEXES


def _n_requests(settings: BenchSettings) -> int:
    """Simulated requests per run, scaled with the measurement budget."""
    return max(400, min(4_000, 2 * settings.n_lookups))


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for ds_name in _datasets(settings):
        for index_name in _indexes(settings):
            out.extend(sweep_cells(ds_name, index_name, settings))
    return out


def capacity_per_sec(
    measurement: Measurement, machine: MachineModel, n_cores: int = SIM_CORES
) -> float:
    """Modelled saturated lookups/second on the simulated core count."""
    return throughput(
        measurement, n_cores, machine=machine
    ).lookups_per_sec


def curve_tasks(
    measurement: Measurement,
    settings: BenchSettings,
    machine: MachineModel = MachineModel(),
    fractions: Sequence[float] = LOAD_FRACTIONS,
    n_cores: int = SIM_CORES,
):
    """(load fraction, offered rate, OpenLoopTask) per curve point."""
    cap = capacity_per_sec(measurement, machine, n_cores)
    n_req = _n_requests(settings)
    return [
        (
            frac,
            cap * frac,
            open_loop_task(
                measurement, cap * frac, n_req, settings.seed, n_cores, machine
            ),
        )
        for frac in fractions
    ]


def shape_tasks(
    measurement: Measurement,
    settings: BenchSettings,
    machine: MachineModel = MachineModel(),
    load_fraction: float = 0.7,
    n_cores: int = SIM_CORES,
):
    """The open-loop (Poisson, bursty) tasks of the shape comparison."""
    cap = capacity_per_sec(measurement, machine, n_cores)
    rate = cap * load_fraction
    n_req = _n_requests(settings)
    return [
        open_loop_task(
            measurement, rate, n_req, settings.seed, n_cores, machine,
            shape=shape,
        )
        for shape in ("poisson", "bursty")
    ]


def latency_curve(
    measurement: Measurement,
    settings: BenchSettings,
    machine: MachineModel = MachineModel(),
    fractions: Sequence[float] = LOAD_FRACTIONS,
    n_cores: int = SIM_CORES,
) -> List[Tuple[float, float, LatencySummary]]:
    """(load fraction, offered rate, summary) per point, Poisson traffic.

    Points resolve through :func:`repro.serve.sweep.run_sim_tasks`, so a
    prior batched run (or a warm persistent cache) makes this free.
    """
    points = curve_tasks(measurement, settings, machine, fractions, n_cores)
    records = run_sim_tasks(
        [task for _, _, task in points], cache=get_active_sim_cache()
    )
    return [
        (frac, offered, open_loop_summary(record)[0])
        for (frac, offered, _), record in zip(points, records)
    ]


def arrival_shape_summaries(
    measurement: Measurement,
    settings: BenchSettings,
    machine: MachineModel = MachineModel(),
    load_fraction: float = 0.7,
    n_cores: int = SIM_CORES,
) -> Dict[str, LatencySummary]:
    """Poisson vs bursty vs closed-loop at one offered load.

    The open-loop shapes route through the task runner; the closed loop
    is state-dependent (think times depend on completions) and runs
    inline.
    """
    records = run_sim_tasks(
        shape_tasks(measurement, settings, machine, load_fraction, n_cores),
        cache=get_active_sim_cache(),
    )
    out: Dict[str, LatencySummary] = {
        name: open_loop_summary(record)[0]
        for name, record in zip(("poisson", "bursty"), records)
    }
    service = ServiceModel.from_measurement(measurement, machine=machine)
    out["closed"] = summarize_result(
        simulate_closed_loop(
            service,
            n_clients=2 * n_cores,
            n_requests=_n_requests(settings),
            mean_think_ns=0.0,
            seed=settings.seed,
            n_cores=n_cores,
        )
    )
    return out


def run(settings: BenchSettings) -> str:
    # Local: repro.obs.report renders *bench* tables too, so importing
    # it at module scope would close an import cycle through the
    # repro.bench package __init__.
    from repro.obs.report import format_timeline

    machine = MachineModel()
    n_req = _n_requests(settings)
    parts = [
        "ext_serving: discrete-event serving simulation "
        f"({SIM_CORES} cores, {n_req} requests per point, "
        f"seed {settings.seed})\n"
    ]
    sim_cache = get_active_sim_cache()
    for ds_name in _datasets(settings):
        ds, wl = dataset_and_workload(ds_name, settings)
        sweeps = {
            name: sweep(ds, wl, name, settings)
            for name in _indexes(settings)
        }
        pinned = {name: fastest(ms) for name, ms in sweeps.items()}
        candidates: List[Measurement] = [
            m for ms in sweeps.values() for m in ms
        ]
        slo_offered = SLO_LOAD_FRACTION * max(
            capacity_per_sec(m, machine) for m in candidates
        )

        # Prime every open-loop simulation of this dataset in one batch:
        # curve points, shape comparisons, and the SLO candidates fan
        # out over --jobs processes (and the persistent cache), then the
        # table-building calls below hit the in-process memo.
        tasks = []
        for m in pinned.values():
            tasks.extend(task for _, _, task in curve_tasks(m, settings, machine))
            tasks.extend(shape_tasks(m, settings, machine))
        tasks.extend(
            open_loop_task(m, slo_offered, n_req, settings.seed, SIM_CORES, machine)
            for m in candidates
        )
        run_sim_tasks(tasks, jobs=settings.jobs, cache=sim_cache)

        rows = []
        for name, m in pinned.items():
            for frac, offered, s in latency_curve(m, settings, machine):
                rows.append(
                    (
                        name,
                        f"{frac:.2f}",
                        f"{offered / 1e6:.1f}",
                        f"{s.throughput_per_sec / 1e6:.1f}",
                        f"{s.p50_ns:.0f}",
                        f"{s.p95_ns:.0f}",
                        f"{s.p99_ns:.0f}",
                        f"{s.p999_ns:.0f}",
                    )
                )
        parts.append(
            f"throughput-latency curve, {ds_name} "
            "(Poisson open loop, fastest variant per index)"
        )
        parts.append(
            format_table(
                [
                    "index",
                    "load",
                    "offered M/s",
                    "achieved M/s",
                    "p50 ns",
                    "p95 ns",
                    "p99 ns",
                    "p99.9 ns",
                ],
                rows,
            )
        )
        parts.append("")

        rows = []
        for name, m in pinned.items():
            shapes = arrival_shape_summaries(m, settings, machine)
            rows.append(
                (
                    name,
                    f"{shapes['poisson'].p99_ns:.0f}",
                    f"{shapes['bursty'].p99_ns:.0f}",
                    f"{shapes['closed'].p99_ns:.0f}",
                    f"{shapes['closed'].throughput_per_sec / 1e6:.1f}",
                )
            )
        parts.append(
            f"arrival-process shape at 0.7 load, {ds_name} "
            "(p99 ns; closed loop: 2 clients/core, zero think time)"
        )
        parts.append(
            format_table(
                [
                    "index",
                    "poisson p99",
                    "bursty p99",
                    "closed p99",
                    "closed M/s",
                ],
                rows,
            )
        )
        parts.append("")

        best_latency = min(m.latency_ns for m in candidates)
        slo_ns = SLO_FACTOR * best_latency
        selection = select_under_slo(
            candidates,
            offered_per_sec=slo_offered,
            p99_slo_ns=slo_ns,
            n_requests=n_req,
            seed=settings.seed,
            n_cores=SIM_CORES,
            machine=machine,
            jobs=settings.jobs,
            sim_cache=sim_cache,
        )
        rows = []
        for c in selection.candidates:
            rows.append(
                (
                    c.index,
                    ",".join(f"{k}={v}" for k, v in sorted(c.config.items()))
                    or "-",
                    f"{c.size_mb:.4f}",
                    f"{c.summary.p99_ns:.0f}",
                    "yes" if c.summary.p99_ns <= slo_ns else "no",
                )
            )
        parts.append(
            f"SLO selection, {ds_name}: cheapest index with "
            f"p99 <= {slo_ns:.0f} ns at {slo_offered / 1e6:.1f} M/s offered"
        )
        parts.append(
            format_table(
                ["index", "config", "size MB", "p99 ns", "meets SLO"], rows
            )
        )
        if selection.chosen is not None:
            c = selection.chosen
            parts.append(
                f"-> chosen: {c.index} ({c.size_mb:.4f} MB, "
                f"p99 {c.summary.p99_ns:.0f} ns)"
            )
        else:
            parts.append("-> chosen: none (no candidate meets the SLO)")
        parts.append("")

        # -- windowed serving telemetry at 0.85 load -------------------
        # One near-saturation run per dataset, inline (telemetry-on
        # tasks are distinct cache artifacts, and one run is cheap).
        tel_name = sorted(pinned)[0]
        tel_m = pinned[tel_name]
        tel_rate = TELEMETRY_LOAD_FRACTION * capacity_per_sec(
            tel_m, machine
        )
        span_ns = n_req / tel_rate * 1e9
        tel_cfg = TelemetryConfig(
            window_ns=span_ns / TELEMETRY_WINDOWS,
            slo_p99_ns=SLO_FACTOR * tel_m.latency_ns,
        )
        tel_result = simulate_open_loop(
            ServiceModel.from_measurement(tel_m, machine=machine),
            poisson_arrivals(tel_rate, n_req, settings.seed),
            SIM_CORES,
            telemetry=tel_cfg,
        )
        ts = tel_result.telemetry
        publish(f"ext_serving/{ds_name}/{tel_name}", ts)
        parts.append(
            f"serving telemetry, {ds_name}/{tel_name} at "
            f"{TELEMETRY_LOAD_FRACTION:.2f} load "
            f"({ts.window_ns / 1e3:.2f} us windows, SLO p99 "
            f"{tel_cfg.slo_p99_ns:.0f} ns, series {ts.content_key()[:12]})"
        )
        parts.append(format_timeline(ts.to_dict()))
        parts.append("")
    return "\n".join(parts)
