"""Figure 10: 32-bit vs 64-bit keys on amzn.

The paper's finding: learned structures (which compute on 64-bit floats
regardless) barely change, while trees gain from packing twice as many
keys per cache line -- FAST doubly so, because each SIMD comparison also
covers twice the keys.
"""

from __future__ import annotations

from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.report import format_table

INDEXES = ["RMI", "RS", "PGM", "BTree", "FAST"]


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for index_name in settings.indexes or INDEXES:
        for bits in (64, 32):
            out.extend(
                sweep_cells("amzn", index_name, settings, key_bits=bits)
            )
    return out


def run(settings: BenchSettings) -> str:
    parts = ["Figure 10: key size (32 vs 64 bit), amzn\n"]
    for index_name in settings.indexes or INDEXES:
        rows = []
        for bits in (64, 32):
            ds, wl = dataset_and_workload("amzn", settings, key_bits=bits)
            for m in sweep(ds, wl, index_name, settings):
                rows.append(
                    (
                        f"{bits}-bit",
                        f"{m.size_mb:.4f}",
                        f"{m.latency_ns:.0f}",
                    )
                )
        parts.append(f"index={index_name}")
        parts.append(format_table(["keys", "size MB", "lookup ns"], rows))
        parts.append("")
    return "\n".join(parts)
