"""Figure 15: memory fences.

With a fence, memory stalls of one lookup cannot overlap the next
lookup's computation.  The paper finds RMI and RS (few instructions, so
much to gain from reordering) slow down ~50% while BTree/FAST/PGM barely
move -- the cost model reproduces that coupling through its
instruction-count-dependent overlap factor.
"""

from __future__ import annotations

from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.report import format_table

INDEXES = ["RMI", "RS", "PGM", "BTree", "FAST"]


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for index_name in settings.indexes or INDEXES:
        out.extend(sweep_cells("amzn", index_name, settings))
    return out


def run(settings: BenchSettings) -> str:
    ds, wl = dataset_and_workload("amzn", settings)
    parts = ["Figure 15: memory fence impact, amzn\n"]
    for index_name in settings.indexes or INDEXES:
        rows = []
        for m in sweep(ds, wl, index_name, settings):
            slowdown = m.fence_latency_ns / max(m.latency_ns, 1e-9)
            rows.append(
                (
                    f"{m.size_mb:.4f}",
                    f"{m.latency_ns:.0f}",
                    f"{m.fence_latency_ns:.0f}",
                    f"{slowdown:.2f}x",
                )
            )
        parts.append(f"index={index_name}")
        parts.append(
            format_table(
                ["size MB", "no fence ns", "fence ns", "slowdown"], rows
            )
        )
        parts.append("")
    return "\n".join(parts)
