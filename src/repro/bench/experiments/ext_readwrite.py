"""Extension experiment: mixed read/write workloads.

The benchmark the paper's conclusion asks for: updatable learned
structures (DynamicPGM, ALEX) against an update-optimized traditional
B+-tree, a hash map, and the sorted-array strawman, across read/write
mixes.  Throughput is real wall-clock (all contestants pay the same
interpreter tax).
"""

from __future__ import annotations

from repro.bench.config import BenchSettings
from repro.bench.readwrite import default_stores, make_mixed_workload, run_mixed
from repro.bench.report import format_table

MIXES = (0.95, 0.50, 0.05)  # read fractions: read-heavy ... write-heavy


def run(settings: BenchSettings) -> str:
    n_ops = max(settings.n_lookups * 10, 2_000)
    n_preload = max(settings.n_keys // 20, 1_000)
    stores = default_stores()
    if settings.indexes:
        stores = {k: v for k, v in stores.items() if k in settings.indexes}

    workloads = {
        mix: make_mixed_workload(
            n_ops,
            mix,
            n_preload=n_preload,
            seed=settings.seed,
        )
        for mix in MIXES
    }
    rows = []
    for name, factory in stores.items():
        cells = [name]
        for mix in MIXES:
            result = run_mixed(name, factory, workloads[mix])
            cells.append(f"{result.ops_per_sec / 1000:.0f}")
        rows.append(tuple(cells))

    header = ["store"] + [f"{int(m * 100)}% reads (kops/s)" for m in MIXES]
    return (
        "Extension: mixed read/write workloads "
        f"(wall-clock, {n_preload} preloaded keys, {n_ops} ops, zipf reads)\n\n"
        + format_table(header, rows)
        + "\n\nnote: wall-clock Python throughput; relative ordering is the result."
    )
