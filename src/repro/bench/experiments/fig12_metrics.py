"""Figure 12: lookup time vs candidate explanatory metrics.

For each index configuration: model size, average log2 of the search
bound ("log2 error"), cache misses, branch misses and instruction count,
against the lookup time.  The point of the figure is that no single
column predicts the latency column.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.harness import Measurement
from repro.bench.report import format_table
from repro.bench.stats import correlations

INDEXES = ["PGM", "RS", "RMI", "BTree", "ART"]
DATASETS = ["amzn", "osm"]


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for ds_name in [d for d in DATASETS if d in settings.datasets] or DATASETS:
        for index_name in settings.indexes or INDEXES:
            out.extend(sweep_cells(ds_name, index_name, settings))
    return out


def collect(settings: BenchSettings) -> Dict[str, List[Measurement]]:
    out: Dict[str, List[Measurement]] = {}
    for ds_name in [d for d in DATASETS if d in settings.datasets] or DATASETS:
        ds, wl = dataset_and_workload(ds_name, settings)
        ms: List[Measurement] = []
        for index_name in settings.indexes or INDEXES:
            ms.extend(sweep(ds, wl, index_name, settings))
        out[ds_name] = ms
    return out


def run(settings: BenchSettings) -> str:
    parts = ["Figure 12: metrics vs lookup time\n"]
    for ds_name, ms in collect(settings).items():
        rows = [
            (
                m.index,
                f"{m.size_mb:.4f}",
                f"{m.avg_log2_bound:.2f}",
                f"{m.counters.llc_misses:.2f}",
                f"{m.counters.branch_misses:.2f}",
                f"{m.counters.instructions:.1f}",
                f"{m.latency_ns:.0f}",
            )
            for m in sorted(ms, key=lambda m: (m.index, m.size_bytes))
        ]
        parts.append(f"dataset={ds_name}")
        parts.append(
            format_table(
                [
                    "index",
                    "size MB",
                    "log2 err",
                    "cache miss",
                    "branch miss",
                    "instructions",
                    "lookup ns",
                ],
                rows,
            )
        )
        corr = correlations(
            {
                "size_mb": [m.size_mb for m in ms],
                "log2_err": [m.avg_log2_bound for m in ms],
                "cache_misses": [m.counters.llc_misses for m in ms],
                "branch_misses": [m.counters.branch_misses for m in ms],
                "instructions": [m.counters.instructions for m in ms],
            },
            [m.latency_ns for m in ms],
        )
        parts.append(
            "single-metric Pearson r vs lookup time: "
            + ", ".join(f"{k}={v:+.2f}" for k, v in corr.items())
        )
        parts.append("")
    return "\n".join(parts)
