"""Figure 14: warm vs cold cache.

The warm variant keeps simulated caches and TLB across lookups (the
tight-loop setup); the cold variant flushes them before every lookup.
The paper reports 2-2.5x gains from a warm cache and that small cold
learned indexes still beat the warm BTree.
"""

from __future__ import annotations

from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.report import format_table

INDEXES = ["RMI", "RS", "PGM", "BTree", "FAST"]


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for index_name in settings.indexes or INDEXES:
        out.extend(sweep_cells("amzn", index_name, settings, warm=True))
        out.extend(sweep_cells("amzn", index_name, settings, warm=False))
    return out


def run(settings: BenchSettings) -> str:
    ds, wl = dataset_and_workload("amzn", settings)
    parts = ["Figure 14: cold vs warm cache, amzn\n"]
    for index_name in settings.indexes or INDEXES:
        warm = sweep(ds, wl, index_name, settings, warm=True)
        cold = sweep(ds, wl, index_name, settings, warm=False)
        rows = []
        for w, c in zip(warm, cold):
            rows.append(
                (
                    f"{w.size_mb:.4f}",
                    f"{w.latency_ns:.0f}",
                    f"{c.latency_ns:.0f}",
                    f"{c.latency_ns / max(w.latency_ns, 1e-9):.2f}x",
                )
            )
        parts.append(f"index={index_name}")
        parts.append(
            format_table(
                ["size MB", "warm ns", "cold ns", "cold/warm"], rows
            )
        )
        parts.append("")
    return "\n".join(parts)
