"""Section 4.3: linear regression analysis of lookup time.

Reproduces the paper's statistical claims: regressing lookup time on
cache misses, branch misses and instruction count across every index and
dataset explains ~95% of variance; size and log2 error add nothing once
those three are included (p > 0.15 in the paper); cache misses carry the
largest standardized coefficient.
"""

from __future__ import annotations

from typing import List

from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.experiments.common import (
    FIG7_INDEXES,
    dataset_and_workload,
    sweep,
    sweep_cells,
)
from repro.bench.harness import Measurement
from repro.bench.report import format_table
from repro.bench.stats import RegressionResult, ols


def cells(settings: BenchSettings) -> List[MeasureCell]:
    out: List[MeasureCell] = []
    for ds_name in settings.datasets:
        for index_name in settings.indexes or FIG7_INDEXES:
            out.extend(sweep_cells(ds_name, index_name, settings))
    return out


def collect(settings: BenchSettings) -> List[Measurement]:
    ms: List[Measurement] = []
    for ds_name in settings.datasets:
        ds, wl = dataset_and_workload(ds_name, settings)
        for index_name in settings.indexes or FIG7_INDEXES:
            ms.extend(sweep(ds, wl, index_name, settings))
    return ms


def regress(ms: List[Measurement], with_size_and_error: bool) -> RegressionResult:
    features = {
        "cache_misses": [m.counters.llc_misses for m in ms],
        "branch_misses": [m.counters.branch_misses for m in ms],
        "instructions": [m.counters.instructions for m in ms],
    }
    if with_size_and_error:
        features["size_mb"] = [m.size_mb for m in ms]
        features["log2_error"] = [m.avg_log2_bound for m in ms]
    return ols(features, [m.latency_ns for m in ms])


def run(settings: BenchSettings) -> str:
    ms = collect(settings)
    base = regress(ms, with_size_and_error=False)
    extended = regress(ms, with_size_and_error=True)

    def table(result: RegressionResult) -> str:
        return format_table(
            ["feature", "beta", "std beta", "t", "p"],
            [
                (
                    c.name,
                    f"{c.beta:.4g}",
                    f"{c.standardized:.3f}",
                    f"{c.t_stat:.2f}",
                    f"{c.p_value:.2g}",
                )
                for c in result.coefficients
            ],
        )

    parts = [
        "Section 4.3: regression of lookup time on performance counters",
        f"({len(ms)} measurements across datasets {settings.datasets})",
        "",
        f"counters only: R^2 = {base.r_squared:.3f} (paper: 0.955)",
        table(base),
        "",
        f"+ size and log2 error: R^2 = {extended.r_squared:.3f}",
        table(extended),
        "",
        "paper's claims to check: cache/branch/instruction p < 0.001; "
        "size & log2-error add little once counters are included; "
        "cache misses have the largest |standardized beta|.",
    ]
    return "\n".join(parts)
