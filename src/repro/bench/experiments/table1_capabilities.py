"""Table 1: search techniques evaluated and their capabilities."""

from __future__ import annotations

from repro.bench.config import BenchSettings
from repro.bench.report import format_table
from repro.core.registry import available_indexes, get_index_class

#: Paper's presentation order.
_ORDER = [
    "PGM",
    "RS",
    "RMI",
    "BTree",
    "IBTree",
    "FAST",
    "ART",
    "FST",
    "Wormhole",
    "CuckooMap",
    "RobinHash",
    "RBS",
    "BS",
]


def rows():
    names = [n for n in _ORDER if n in available_indexes()]
    names += [n for n in available_indexes() if n not in names]
    out = []
    for name in names:
        caps = get_index_class(name).capabilities
        out.append(
            (name, "Yes" if caps.updates else "No", "Yes" if caps.ordered else "No", caps.kind)
        )
    return out


def run(settings: BenchSettings) -> str:
    table = format_table(["Method", "Updates", "Ordered", "Type"], rows())
    return "Table 1: search techniques evaluated\n\n" + table
