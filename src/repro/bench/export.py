"""Machine-readable export of harness measurements.

Experiment drivers print human-readable tables; pipelines (plotting,
regression dashboards, CI tracking) want rows.  ``measurement_record``
flattens a :class:`~repro.bench.harness.Measurement` into plain JSON-able
scalars; ``write_measurements`` dumps a list to JSON or CSV by file
extension.  The CLI exposes this as ``--save-measurements PATH``.
"""

from __future__ import annotations

import csv
import json

from typing import Iterable, List

from repro.bench.harness import Measurement

_COUNTER_FIELDS = (
    "instructions",
    "branches",
    "branch_misses",
    "reads",
    "l1_hits",
    "l2_hits",
    "l3_hits",
    "llc_misses",
    "tlb_misses",
)


def measurement_record(m: Measurement) -> dict:
    """Flatten one measurement into JSON-able scalars."""
    record = {
        "index": m.index,
        "dataset": m.dataset,
        "config": json.dumps(m.config, sort_keys=True),
        "n_keys": m.n_keys,
        "size_bytes": m.size_bytes,
        "size_mb": m.size_mb,
        "build_seconds": m.build_seconds,
        "latency_ns": m.latency_ns,
        "fence_latency_ns": m.fence_latency_ns,
        "avg_log2_bound": m.avg_log2_bound,
        "n_lookups": m.n_lookups,
        "warm": m.warm,
        "search": m.search,
    }
    for name in _COUNTER_FIELDS:
        record[name] = getattr(m.counters, name)
    return record


def write_measurements(path: str, measurements: Iterable[Measurement]) -> int:
    """Write measurements to ``path`` (.json or .csv); returns row count.

    JSON output is a list of objects; CSV has one header row.  Unknown
    extensions raise ``ValueError``.
    """
    records: List[dict] = [measurement_record(m) for m in measurements]
    lower = path.lower()
    if lower.endswith(".json"):
        with open(path, "w") as f:
            json.dump(records, f, indent=1, sort_keys=True)
    elif lower.endswith(".csv"):
        with open(path, "w", newline="") as f:
            if records:
                writer = csv.DictWriter(f, fieldnames=list(records[0]))
                writer.writeheader()
                writer.writerows(records)
    else:
        raise ValueError(
            f"unsupported extension for {path!r}: use .json or .csv"
        )
    return len(records)


def read_measurement_records(path: str) -> List[dict]:
    """Read back records written by :func:`write_measurements`."""
    lower = path.lower()
    if lower.endswith(".json"):
        with open(path) as f:
            return json.load(f)
    if lower.endswith(".csv"):
        with open(path, newline="") as f:
            return list(csv.DictReader(f))
    raise ValueError(f"unsupported extension for {path!r}")
