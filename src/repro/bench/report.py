"""Plain-text reporting helpers for experiment drivers."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width text table (right-aligned numerics, left-aligned text)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_series(title: str, pairs: Iterable[Sequence]) -> str:
    """A named (x, y, ...) series, one point per line."""
    lines = [title]
    for pair in pairs:
        lines.append("  " + "  ".join(_fmt(v) for v in pair))
    return "\n".join(lines)


def bullet_list(items: Iterable[str]) -> str:
    return "\n".join(f"  * {item}" for item in items)


def format_runner_stats(stats) -> str:
    """Cache hit/miss and per-cell wall-clock summary of a runner pass.

    ``stats`` is a :class:`repro.bench.parallel.RunnerStats`.
    """
    lines = [
        f"runner: {stats.total_cells} cells "
        f"({stats.unique_cells} unique), jobs={stats.jobs}, "
        f"{stats.wall_seconds:.1f}s wall",
        f"  memo hits {stats.memo_hits}, cache hits {stats.cache_hits}, "
        f"executed {stats.executed}",
    ]
    if stats.cell_seconds:
        seconds = [s for _, s in stats.cell_seconds]
        slowest_label, slowest = max(
            stats.cell_seconds, key=lambda pair: pair[1]
        )
        lines.append(
            f"  cell wall-clock: total {stats.executed_seconds:.1f}s, "
            f"mean {sum(seconds) / len(seconds):.2f}s, "
            f"max {slowest:.2f}s ({slowest_label})"
        )
    return "\n".join(lines)
