"""Parallel experiment execution: fan measurement cells over processes.

The experiment grid is embarrassingly parallel, so the runner is simple
by design: dedupe the requested cells, resolve what it can from the
in-process memo and the persistent cache, execute the rest either inline
(``jobs <= 1``) or on a ``ProcessPoolExecutor``, and return measurements
re-ordered to match the input cells -- completion order never leaks into
results.  Workers recompute datasets and workloads from their seeds, and
the simulated CPU is deterministic, so a cell produces identical counters
in any process (``tests/test_parallel_determinism.py`` holds the harness
to that).

``--jobs N`` on the CLI and :func:`resolve_jobs` honour the
``REPRO_JOBS`` environment variable.
"""

from __future__ import annotations

import os
import time

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.cache import MeasurementCache
from repro.bench.cells import MeasureCell
from repro.bench.experiments import common
from repro.bench.harness import Measurement
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """CLI/env job-count resolution: explicit value, REPRO_JOBS, else 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass
class RunnerStats:
    """What the runner did, for reporting (`report.format_runner_stats`)."""

    total_cells: int = 0
    unique_cells: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    #: Per executed cell: (label, worker-measured seconds).
    cell_seconds: List[Tuple[str, float]] = field(default_factory=list)
    #: Per resolved-this-run cell: (worker_pid, label, wall_ns,
    #: cache_hit).  Cache hits carry the parent pid and the (tiny) cache
    #: read time; executed cells carry the worker that ran them --
    #: ``obs summary`` renders the per-worker load balance from this.
    worker_cells: List[Tuple[int, str, int, bool]] = field(
        default_factory=list
    )

    @property
    def executed_seconds(self) -> float:
        return sum(s for _, s in self.cell_seconds)


def cell_label(cell: MeasureCell) -> str:
    config = dict(cell.config)
    cfg = ",".join(f"{k}={v}" for k, v in sorted(config.items()))
    label = f"{cell.index}/{cell.dataset}"
    return f"{label}({cfg})" if cfg else label


def _execute_cell(cell: MeasureCell) -> Tuple[Measurement, float, int, List[dict]]:
    """Worker entry point: always computes (memo/cache checks happen in
    the parent, before dispatch).

    Returns ``(measurement, seconds, worker_pid, span_records)``.  Span
    records are captured into a private buffer (isolating any records a
    fork inherited from the parent) and shipped back with the result;
    the parent injects them in deterministic dispatch order.
    """
    start = time.perf_counter()
    with obs_spans.capture() as cap:
        with obs_spans.span("cell", label=cell_label(cell)):
            measurement = cell.run()
    return measurement, time.perf_counter() - start, os.getpid(), cap.records


def run_cells(
    cells: Sequence[MeasureCell],
    jobs: Optional[int] = None,
    cache: Optional[MeasurementCache] = None,
    memo: Optional[Dict[MeasureCell, Measurement]] = None,
) -> Tuple[List[Measurement], RunnerStats]:
    """Resolve every cell; return measurements aligned with the input.

    ``memo`` defaults to the shared per-process memo in
    ``experiments.common``, so drivers running afterwards reuse the
    results; pass a private dict to isolate runs (tests do).  ``cache``
    defaults to the active persistent cache, if any.
    """
    jobs = resolve_jobs(jobs)
    if memo is None:
        memo = common._MEASUREMENTS
    if cache is None:
        cache = common.get_active_cache()

    start = time.perf_counter()
    stats = RunnerStats(total_cells=len(cells), jobs=jobs)

    # Dedupe preserving first-occurrence order (determinism: results and
    # memo insertion follow input order, never completion order).
    unique: List[MeasureCell] = []
    seen = set()
    for cell in cells:
        if cell not in seen:
            seen.add(cell)
            unique.append(cell)
    stats.unique_cells = len(unique)

    pid = os.getpid()
    resolved: Dict[MeasureCell, Measurement] = {}
    pending: List[MeasureCell] = []
    for cell in unique:
        m = memo.get(cell)
        if m is not None:
            stats.memo_hits += 1
            resolved[cell] = m
            continue
        if cache is not None:
            t0 = time.perf_counter_ns()
            m = cache.get(cell)
            if m is not None:
                elapsed_ns = time.perf_counter_ns() - t0
                stats.cache_hits += 1
                stats.worker_cells.append(
                    (pid, cell_label(cell), elapsed_ns, True)
                )
                obs_spans.record(
                    "cell",
                    time.monotonic_ns(),
                    elapsed_ns,
                    label=cell_label(cell),
                    cache_hit=True,
                )
                resolved[cell] = m
                continue
        pending.append(cell)

    executed: Dict[MeasureCell, Tuple[Measurement, float, int]] = {}
    if pending:
        if jobs == 1 or len(pending) == 1:
            results = map(_execute_cell, pending)
        else:
            workers = min(jobs, len(pending))
            pool = ProcessPoolExecutor(max_workers=workers)
            results = pool.map(_execute_cell, pending)
        # zip over `pending` order (pool.map preserves it): executed
        # results, injected worker spans, and worker_cells tuples land in
        # deterministic dispatch order, never completion order.
        with_pool = jobs > 1 and len(pending) > 1
        try:
            for cell, (m, seconds, wpid, spans) in zip(pending, results):
                executed[cell] = (m, seconds, wpid)
                obs_spans.inject(spans)
        finally:
            if with_pool:
                pool.shutdown()

    reg = obs_metrics.get_registry()
    cell_hist = reg.histogram("bench.runner.cell_wall_ns")
    for cell in unique:
        if cell in executed:
            m, seconds, wpid = executed[cell]
            stats.executed += 1
            stats.cell_seconds.append((cell_label(cell), seconds))
            stats.worker_cells.append(
                (wpid, cell_label(cell), int(seconds * 1e9), False)
            )
            cell_hist.observe(int(seconds * 1e9))
            if cache is not None:
                cache.put(cell, m)
            resolved[cell] = m
        memo.setdefault(cell, resolved[cell])

    reg.counter("bench.runner.memo_hits").inc(stats.memo_hits)
    reg.counter("bench.runner.cache_hits").inc(stats.cache_hits)
    reg.counter("bench.runner.executed").inc(stats.executed)
    reg.gauge("bench.runner.jobs").set_max(jobs)

    stats.wall_seconds = time.perf_counter() - start
    return [resolved[cell] for cell in cells], stats


def collect_cells(
    experiment_ids: Iterable[str], settings
) -> List[MeasureCell]:
    """Every enumerable cell of the chosen experiments, in CLI order."""
    from repro.bench.experiments import EXPERIMENT_CELLS

    cells: List[MeasureCell] = []
    for exp_id in experiment_ids:
        enumerate_fn = EXPERIMENT_CELLS.get(exp_id)
        if enumerate_fn is not None:
            cells.extend(enumerate_fn(settings))
    return cells
