"""Multithreaded throughput model (paper Section 4.5, Figure 16).

The machine and memory-contention model now lives in
:mod:`repro.serve.contention`, where the serving simulator shares it;
this module re-exports the original names so existing imports keep
working.  See the serve module for the model's documentation -- the math
is unchanged: cores scale linearly (hyperthreads at ``ht_gain`` each) and
throughput solves the self-consistent bandwidth quadratic
``thr = eff(T) / (lat + m^2 * D * line / BW * thr)``.
"""

from __future__ import annotations

from repro.serve.contention import (
    MachineModel,
    ThroughputPoint,
    bandwidth_coefficient,
    saturation_throughput,
    service_time_ns,
    thread_sweep,
    throughput,
)

__all__ = [
    "MachineModel",
    "ThroughputPoint",
    "bandwidth_coefficient",
    "saturation_throughput",
    "service_time_ns",
    "thread_sweep",
    "throughput",
]
