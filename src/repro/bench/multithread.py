"""Multithreaded throughput model (paper Section 4.5, Figure 16).

Real Python threads would measure the interpreter's GIL, not the index, so
throughput is *modelled* from the measured per-lookup counters -- which is
also the mechanism the paper itself uses to explain its results ("if an
index structure incurs more cache misses per second, the benefits of
multithreading will be diminished, since threads will be latency bound
waiting for access to RAM").

Model:

* ``eff(T)``: physical cores scale linearly; hyperthreads beyond the core
  count contribute a fraction ``ht_gain`` each (Xeon Gold 6230: 20 cores /
  40 threads).
* Memory contention: each lookup moves ``llc_misses`` cache lines through
  DRAM.  Under load the effective memory latency inflates linearly with
  consumed bandwidth, giving the self-consistent throughput equation
  ``thr = eff(T) / (lat + m^2 * D * line / BW * thr)`` -- a quadratic with
  one positive root.  High-miss structures (RobinHash) therefore
  self-throttle, low-miss ones (FAST, PGM) scale nearly linearly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.bench.harness import Measurement
from repro.memsim.cache import LINE_SIZE
from repro.memsim.costmodel import XEON_GOLD_6230, CostModel


@dataclass(frozen=True)
class MachineModel:
    """Core/memory parameters of the modelled machine."""

    cores: int = 20
    threads: int = 40
    ht_gain: float = 0.6
    dram_bandwidth_bytes: float = 8.0e10  # ~80 GB/s, 6-channel DDR4-2933

    def effective_parallelism(self, n_threads: int) -> float:
        if n_threads <= self.cores:
            return float(n_threads)
        extra = min(n_threads, self.threads) - self.cores
        return self.cores + extra * self.ht_gain


@dataclass
class ThroughputPoint:
    index: str
    threads: int
    fence: bool
    lookups_per_sec: float
    cache_misses_per_sec: float
    speedup: float


def throughput(
    measurement: Measurement,
    n_threads: int,
    fence: bool = False,
    machine: MachineModel = MachineModel(),
    cost_model: CostModel = XEON_GOLD_6230,
) -> ThroughputPoint:
    """Modelled lookups/second at ``n_threads`` concurrent threads."""
    c = measurement.counters
    lat_s = cost_model.latency_ns(c, fence=fence) * 1e-9
    eff = machine.effective_parallelism(n_threads)
    m = max(c.llc_misses, 0.0)
    # Quadratic: b*thr^2 + lat*thr - eff = 0.
    b = (m * m) * (cost_model.dram_ns * 1e-9) * LINE_SIZE / (
        machine.dram_bandwidth_bytes
    )
    if b <= 0.0:
        thr = eff / lat_s
    else:
        thr = (-lat_s + math.sqrt(lat_s * lat_s + 4.0 * b * eff)) / (2.0 * b)
    single = 1.0 / lat_s
    return ThroughputPoint(
        index=measurement.index,
        threads=n_threads,
        fence=fence,
        lookups_per_sec=thr,
        cache_misses_per_sec=thr * m,
        speedup=thr / single,
    )


def thread_sweep(
    measurement: Measurement,
    thread_counts: List[int],
    fence: bool = False,
    machine: MachineModel = MachineModel(),
    cost_model: CostModel = XEON_GOLD_6230,
) -> List[ThroughputPoint]:
    return [
        throughput(measurement, t, fence, machine, cost_model)
        for t in thread_counts
    ]
