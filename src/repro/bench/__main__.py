"""CLI: regenerate any table or figure of the paper.

Examples
--------
::

    python -m repro.bench --experiment fig7
    python -m repro.bench --experiment table2 --n-keys 100000
    python -m repro.bench --experiment all --quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.config import BenchSettings
from repro.bench.experiments import EXPERIMENTS
from repro.datasets.loader import DATASET_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables and figures of "
        "'Benchmarking Learned Indexes' (VLDB 2020) on the simulated CPU.",
    )
    parser.add_argument(
        "--experiment",
        default="all",
        help=f"one of {', '.join(sorted(EXPERIMENTS))}, or 'all'",
    )
    parser.add_argument("--n-keys", type=int, default=None)
    parser.add_argument("--n-lookups", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--datasets",
        nargs="+",
        choices=DATASET_NAMES,
        default=None,
    )
    parser.add_argument("--indexes", nargs="+", default=None)
    parser.add_argument("--max-configs", type=int, default=None)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small preset (40k keys, 250 lookups, 4 configs per sweep)",
    )
    parser.add_argument(
        "--save-measurements",
        metavar="PATH",
        default=None,
        help="after running, dump every collected measurement to PATH "
        "(.json or .csv)",
    )
    parser.add_argument(
        "--save-svg",
        metavar="DIR",
        default=None,
        help="after running, render Figure-7-style SVG plots (one per "
        "dataset) from the collected measurements into DIR",
    )
    return parser


def settings_from_args(args) -> BenchSettings:
    settings = BenchSettings.quick() if args.quick else BenchSettings()
    for field_name, arg in (
        ("n_keys", args.n_keys),
        ("n_lookups", args.n_lookups),
        ("warmup", args.warmup),
        ("seed", args.seed),
        ("datasets", args.datasets),
        ("indexes", args.indexes),
        ("max_configs", args.max_configs),
    ):
        if arg is not None:
            setattr(settings, field_name, arg)
    return settings


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    settings = settings_from_args(args)
    if args.experiment == "all":
        chosen = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        chosen = [args.experiment]
    else:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {', '.join(sorted(EXPERIMENTS))}, all",
            file=sys.stderr,
        )
        return 2
    for exp_id in chosen:
        start = time.perf_counter()
        report = EXPERIMENTS[exp_id](settings)
        elapsed = time.perf_counter() - start
        print(f"{'=' * 72}\n[{exp_id}] ({elapsed:.1f}s)\n{'=' * 72}")
        print(report)
        print()
    if args.save_measurements:
        from repro.bench.experiments import common
        from repro.bench.export import write_measurements

        count = write_measurements(
            args.save_measurements, common._MEASUREMENTS.values()
        )
        print(f"saved {count} measurements to {args.save_measurements}")
    if args.save_svg:
        _save_svgs(args.save_svg)
    return 0


def _save_svgs(directory: str) -> None:
    import os

    from repro.bench.experiments import common
    from repro.bench.svgplot import pareto_figure

    os.makedirs(directory, exist_ok=True)
    grouped = {}
    for m in common._MEASUREMENTS.values():
        if m.warm and m.search == "binary" and m.key_bits == 64:
            grouped.setdefault(m.dataset, []).append(m)
    for dataset, ms in sorted(grouped.items()):
        baseline = next(
            (x.latency_ns for x in ms if x.index == "BS"), None
        )
        plottable = [x for x in ms if x.index != "BS" and x.size_bytes > 0]
        if not plottable:
            continue
        path = os.path.join(directory, f"pareto_{dataset}.svg")
        with open(path, "w") as f:
            f.write(
                pareto_figure(
                    plottable,
                    title=f"Size vs lookup time — {dataset}",
                    baseline_ns=baseline,
                )
            )
        print(f"wrote {path}")


if __name__ == "__main__":
    sys.exit(main())
