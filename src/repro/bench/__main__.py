"""CLI: regenerate any table or figure of the paper.

Examples
--------
::

    python -m repro.bench --experiment fig7
    python -m repro.bench --experiment table2 --n-keys 100000
    python -m repro.bench --experiment all --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench.cache import MeasurementCache, default_cache_dir
from repro.bench.config import BenchSettings
from repro.bench.experiments import EXPERIMENTS
from repro.bench.parallel import collect_cells, resolve_jobs, run_cells
from repro.bench.report import format_runner_stats
from repro.datasets.loader import DATASET_NAMES
from repro.memsim.engine import ENGINE_NAMES
from repro.serve.fastsim import SERVE_ENGINE_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables and figures of "
        "'Benchmarking Learned Indexes' (VLDB 2020) on the simulated CPU.",
    )
    parser.add_argument(
        "--experiment",
        default="all",
        help=f"one of {', '.join(sorted(EXPERIMENTS))}, or 'all'",
    )
    parser.add_argument("--n-keys", type=int, default=None)
    parser.add_argument("--n-lookups", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--datasets",
        nargs="+",
        choices=DATASET_NAMES,
        default=None,
    )
    parser.add_argument("--indexes", nargs="+", default=None)
    parser.add_argument("--max-configs", type=int, default=None)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small preset (40k keys, 250 lookups, 4 configs per sweep)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the measurement grid (default: "
        "$REPRO_JOBS or 1); results are bit-identical at any job count",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent measurement cache directory (default: "
        "$REPRO_CACHE_DIR or .repro_cache/measurements); re-runs and "
        "interrupted sweeps resume from it",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent measurement cache",
    )
    parser.add_argument(
        "--memsim-engine",
        choices=ENGINE_NAMES,
        default=None,
        help="simulated-CPU engine (default: $REPRO_MEMSIM_ENGINE or "
        "reference); engines are counter-identical, so this only "
        "changes wall-clock speed",
    )
    parser.add_argument(
        "--serve-engine",
        choices=SERVE_ENGINE_NAMES,
        default=None,
        help="serving-simulation engine (default: $REPRO_SERVE_ENGINE or "
        "event); engines are byte-identical, so this only changes "
        "wall-clock speed",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute per-lookup counters to model/search phases "
        "(adds a phase-breakdown table; counters are unchanged)",
    )
    parser.add_argument(
        "--obs-dir",
        metavar="DIR",
        default=None,
        help="write observability artifacts (manifest.json, spans.jsonl, "
        "metrics.json) into DIR; implies span recording",
    )
    parser.add_argument(
        "--save-measurements",
        metavar="PATH",
        default=None,
        help="after running, dump every collected measurement to PATH "
        "(.json or .csv)",
    )
    parser.add_argument(
        "--save-svg",
        metavar="DIR",
        default=None,
        help="after running, render Figure-7-style SVG plots (one per "
        "dataset) from the collected measurements into DIR",
    )
    return parser


def settings_from_args(args) -> BenchSettings:
    settings = BenchSettings.quick() if args.quick else BenchSettings()
    for field_name, arg in (
        ("n_keys", args.n_keys),
        ("n_lookups", args.n_lookups),
        ("warmup", args.warmup),
        ("seed", args.seed),
        ("datasets", args.datasets),
        ("indexes", args.indexes),
        ("max_configs", args.max_configs),
    ):
        if arg is not None:
            setattr(settings, field_name, arg)
    settings.jobs = resolve_jobs(args.jobs)
    if args.no_cache:
        settings.cache_dir = None
    else:
        settings.cache_dir = args.cache_dir or default_cache_dir()
    if args.memsim_engine is not None:
        settings.memsim_engine = args.memsim_engine
        # The engine choice travels as ambient state so pool workers
        # (spawned by run_cells) inherit it along with in-process code.
        import os

        os.environ["REPRO_MEMSIM_ENGINE"] = args.memsim_engine
    if args.serve_engine is not None:
        settings.serve_engine = args.serve_engine
        # Same ambient pattern as the memsim engine: simulation pool
        # workers (repro.serve.sweep) inherit the choice via the
        # environment, and it stays out of every cache key.
        import os

        os.environ["REPRO_SERVE_ENGINE"] = args.serve_engine
    if args.profile:
        settings.profile = True
        # Same ambient pattern: workers see REPRO_OBS_PROFILE and
        # phase-attribute their cells.
        from repro.obs.phase import set_profiling

        set_profiling(True)
    if args.obs_dir is not None:
        settings.obs_dir = args.obs_dir
        import os

        os.environ["REPRO_OBS"] = "1"  # workers inherit span recording
    return settings


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        settings = settings_from_args(args)
    except ValueError as exc:
        parser.error(str(exc))
    if args.experiment == "all":
        chosen = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        chosen = [args.experiment]
    else:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {', '.join(sorted(EXPERIMENTS))}, all",
            file=sys.stderr,
        )
        return 2

    from repro.bench.experiments import common
    from repro.serve import telemetry as serve_telemetry

    # Experiments publish telemetry unconditionally; start each run with
    # an empty buffer so in-process re-runs don't accumulate series.
    serve_telemetry.clear_published()

    cache = None
    sim_cache = None
    if settings.cache_dir:
        cache = MeasurementCache(settings.cache_dir)
        # Simulation results live beside the measurements, in their own
        # subdirectory so measurement-cache bookkeeping is unaffected.
        from repro.bench.cache import SimResultCache

        sim_cache = SimResultCache(
            os.path.join(settings.cache_dir, "serving")
        )
    previous_cache = common.get_active_cache()
    previous_sim_cache = common.get_active_sim_cache()
    common.set_active_cache(cache)
    common.set_active_sim_cache(sim_cache)
    runner_stats = None
    try:
        # Pre-compute the measurement grid of every chosen experiment:
        # cells resolve through the persistent cache and fan out over
        # --jobs processes, then the drivers below hit memoized results.
        # Result ordering is the deterministic cell order, never
        # completion order.
        cells = collect_cells(chosen, settings)
        if cells:
            _, runner_stats = run_cells(
                cells, jobs=settings.jobs, cache=cache
            )
            print(format_runner_stats(runner_stats))
            print()

        for exp_id in chosen:
            start = time.perf_counter()
            report = EXPERIMENTS[exp_id](settings)
            elapsed = time.perf_counter() - start
            print(f"{'=' * 72}\n[{exp_id}] ({elapsed:.1f}s)\n{'=' * 72}")
            print(report)
            print()
    finally:
        common.set_active_cache(previous_cache)
        common.set_active_sim_cache(previous_sim_cache)

    if settings.profile:
        from repro.obs.report import format_phase_table

        print(f"{'=' * 72}\n[phase breakdown]\n{'=' * 72}")
        print(format_phase_table(common._MEASUREMENTS.values()))
        print()
    if settings.obs_dir:
        _write_obs(settings, runner_stats, argv)
    if args.save_measurements:
        from repro.bench.experiments import common
        from repro.bench.export import write_measurements

        count = write_measurements(
            args.save_measurements, common._MEASUREMENTS.values()
        )
        print(f"saved {count} measurements to {args.save_measurements}")
    if args.save_svg:
        _save_svgs(args.save_svg, chosen, settings)
    return 0


def _write_obs(settings, runner_stats, argv) -> None:
    """Write manifest/spans/metrics (and the phase SVG) into --obs-dir."""
    import os

    from repro.bench.experiments import common
    from repro.obs import metrics as obs_metrics
    from repro.obs import spans as obs_spans
    from repro.obs.report import phase_breakdown_svg
    from repro.obs.sink import run_manifest, write_run
    from repro.serve import telemetry as serve_telemetry

    reg = obs_metrics.get_registry()
    extra = {}
    if runner_stats is not None:
        extra["runner"] = {
            "total_cells": runner_stats.total_cells,
            "unique_cells": runner_stats.unique_cells,
            "memo_hits": runner_stats.memo_hits,
            "cache_hits": runner_stats.cache_hits,
            "executed": runner_stats.executed,
            "jobs": runner_stats.jobs,
            "wall_seconds": runner_stats.wall_seconds,
        }
    # Serving experiments publish windowed telemetry (and trace spans)
    # as they run; the obs sink gets them as a timeseries.jsonl stream
    # next to the harness spans.
    ts_records, trace_spans = serve_telemetry.drain_published()
    spans = obs_spans.drain() + trace_spans
    paths = write_run(
        settings.obs_dir,
        spans=spans,
        metrics_snapshot=reg.snapshot(),
        manifest=run_manifest(settings, argv=argv, extra=extra),
        timeseries=ts_records or None,
    )
    for name in sorted(paths):
        print(f"wrote {paths[name]}")
    if settings.profile:
        profiled = [
            m
            for m in common._MEASUREMENTS.values()
            if getattr(m, "phases", None)
        ]
        if profiled:
            svg_path = os.path.join(settings.obs_dir, "phase_breakdown.svg")
            with open(svg_path, "w") as f:
                f.write(phase_breakdown_svg(profiled))
            print(f"wrote {svg_path}")


def _save_svgs(directory: str, chosen=(), settings=None) -> None:
    import os

    from repro.bench.experiments import common
    from repro.bench.svgplot import pareto_figure

    os.makedirs(directory, exist_ok=True)
    grouped = {}
    for m in common._MEASUREMENTS.values():
        if m.warm and m.search == "binary" and m.key_bits == 64:
            grouped.setdefault(m.dataset, []).append(m)
    for dataset, ms in sorted(grouped.items()):
        baseline = next(
            (x.latency_ns for x in ms if x.index == "BS"), None
        )
        plottable = [x for x in ms if x.index != "BS" and x.size_bytes > 0]
        if not plottable:
            continue
        path = os.path.join(directory, f"pareto_{dataset}.svg")
        with open(path, "w") as f:
            f.write(
                pareto_figure(
                    plottable,
                    title=f"Size vs lookup time — {dataset}",
                    baseline_ns=baseline,
                )
            )
        print(f"wrote {path}")
    if settings is not None and "ext_cluster" in chosen:
        from repro.bench.experiments import ext_cluster

        for path in ext_cluster.render_svgs(settings, directory):
            print(f"wrote {path}")
    if settings is not None and "ext_tenants" in chosen:
        from repro.bench.experiments import ext_tenants

        for path in ext_tenants.render_svgs(settings, directory):
            print(f"wrote {path}")


if __name__ == "__main__":
    sys.exit(main())
