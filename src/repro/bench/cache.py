"""Persistent on-disk measurement cache.

Each :class:`~repro.bench.cells.MeasureCell` hashes to a stable content
key (dataset name/size/seed/key-bits, index name, sorted config, workload
parameters, plus a cache schema version); its measurement is stored as
one small JSON file under that key.  Re-runs and interrupted sweeps then
resume instead of recomputing -- the simulator is deterministic, so a
cached record is exactly what a fresh run would produce.

The JSON round-trip is lossless: floats survive ``json`` exactly (it
emits shortest round-trip reprs), and configs are restricted to JSON
scalars by construction.  Bump :data:`CACHE_SCHEMA_VERSION` whenever the
simulator or the measurement schema changes meaning; old entries are then
simply never looked up again (their keys hash differently).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

from dataclasses import fields
from typing import Optional

from repro.bench.cells import MeasureCell
from repro.bench.harness import Measurement
from repro.memsim.counters import PerfCounters, PerfCountersF
from repro.obs.phase import profiling_enabled

#: Bump when measurement semantics change (simulator, cost model, or the
#: record layout); this invalidates every previously cached entry.
CACHE_SCHEMA_VERSION = 1

#: Default cache location (CLI), overridable via ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = os.path.join(".repro_cache", "measurements")

_COUNTER_NAMES = tuple(f.name for f in fields(PerfCountersF))


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR


def cache_key(cell: MeasureCell, schema_version: Optional[int] = None) -> str:
    """Stable content hash of a cell's identity fields.

    Insensitive to config dict ordering (cells freeze configs sorted) and
    to Python hash randomization; sensitive to every field that changes
    what gets measured, and to the schema version.
    """
    if schema_version is None:
        schema_version = CACHE_SCHEMA_VERSION
    payload = {"schema": schema_version, "cell": cell.key_fields()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:40]


def scenario_key(spec, schema_version: Optional[int] = None) -> str:
    """Stable content hash for a scenario-spec replay.

    Combines the measurement schema version with the spec's canonical
    JSON form (:meth:`~repro.serve.scenario.ScenarioSpec.to_dict`, which
    embeds its own scenario schema version).  Together with the content
    keys of the measurement cells a replay consumes, this identifies a
    scenario run completely: the simulators are deterministic, so (this
    key, cell keys) -> identical tables, which is what lets scenario
    results flow through the same cache-and-replay discipline as every
    measurement (``ext_tenants`` pins the reproducibility end to end).
    """
    if schema_version is None:
        schema_version = CACHE_SCHEMA_VERSION
    payload = {"schema": schema_version, "scenario": spec.to_dict()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:40]


def measurement_to_record(m: Measurement) -> dict:
    """Full, lossless JSON form of a measurement (unlike ``export``'s
    flattened rows, this keeps every field needed to reconstruct)."""
    record = {
        "index": m.index,
        "dataset": m.dataset,
        "config": m.config,
        "n_keys": m.n_keys,
        "size_bytes": m.size_bytes,
        "build_seconds": m.build_seconds,
        "counters": {name: getattr(m.counters, name) for name in _COUNTER_NAMES},
        "latency_ns": m.latency_ns,
        "fence_latency_ns": m.fence_latency_ns,
        "avg_log2_bound": m.avg_log2_bound,
        "n_lookups": m.n_lookups,
        "warm": m.warm,
        "search": m.search,
        "key_bits": m.key_bits,
    }
    if m.phases is not None:
        record["phases"] = {
            phase: {name: getattr(c, name) for name in _COUNTER_NAMES}
            for phase, c in m.phases.items()
        }
    return record


def measurement_from_record(record: dict) -> Measurement:
    record = dict(record)
    record["counters"] = PerfCountersF(**record["counters"])
    phases = record.get("phases")
    if phases is not None:
        record["phases"] = {
            phase: PerfCounters(**vals) for phase, vals in phases.items()
        }
    return Measurement(**record)


def sim_key(task, schema_version: Optional[int] = None) -> str:
    """Stable content hash of a simulation task's identity fields.

    ``task`` is any object with a ``key_fields() -> dict`` of JSON
    scalars (the :mod:`repro.serve.sweep` task dataclasses).  Like
    :func:`cache_key`, the hash canonicalizes ordering and embeds the
    schema version.  The serving engine is deliberately NOT part of any
    task's key fields: engines are byte-identical, so one cached record
    serves both (``tests/test_serve_sweep.py`` pins this invariance).
    """
    if schema_version is None:
        schema_version = CACHE_SCHEMA_VERSION
    payload = {"schema": schema_version, "sim": task.key_fields()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:40]


class MeasurementCache:
    """Directory of ``<content-key>.json`` measurement records.

    Writes are atomic (temp file + ``os.replace``), so concurrent runs
    sharing a cache directory at worst redo a cell, never corrupt one.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _path(self, cell: MeasureCell) -> str:
        return os.path.join(self.directory, cache_key(cell) + ".json")

    def get(self, cell: MeasureCell) -> Optional[Measurement]:
        path = self._path(cell)
        try:
            with open(path) as f:
                entry = json.load(f)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if profiling_enabled() and "phases" not in entry["measurement"]:
            # The caller wants phase attribution but this record predates
            # it (or was produced unprofiled): re-execute.  The refreshed
            # record overwrites this one, counters byte-identical.
            self.misses += 1
            return None
        self.hits += 1
        return measurement_from_record(entry["measurement"])

    def put(self, cell: MeasureCell, measurement: Measurement) -> None:
        os.makedirs(self.directory, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "cell": cell.key_fields(),
            "measurement": measurement_to_record(measurement),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f, indent=1, sort_keys=True)
            os.replace(tmp, self._path(cell))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        return sum(
            1
            for n in names
            if n.endswith(".json") and not n.startswith(".tmp-")
        )

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class SimResultCache:
    """Directory of ``<sim-key>.json`` simulation-result records.

    The serving analogue of :class:`MeasurementCache`: each
    :mod:`repro.serve.sweep` task stores its (JSON-able) result record
    under the task's :func:`sim_key`.  Lives in its own subdirectory
    (conventionally ``<cache_dir>/serving/``) so measurement-cache
    bookkeeping (``MeasurementCache.__len__``) is unaffected.  Writes
    are atomic, so concurrent sweeps sharing a directory at worst redo
    a simulation, never corrupt a record.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _path(self, task) -> str:
        return os.path.join(self.directory, sim_key(task) + ".json")

    def get(self, task) -> Optional[dict]:
        try:
            with open(self._path(task)) as f:
                entry = json.load(f)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, task, result: dict) -> None:
        os.makedirs(self.directory, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "sim": task.key_fields(),
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f, indent=1, sort_keys=True)
            os.replace(tmp, self._path(task))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        return sum(
            1
            for n in names
            if n.endswith(".json") and not n.startswith(".tmp-")
        )

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
