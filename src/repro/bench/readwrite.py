"""Mixed read/write workload harness (the paper's proposed follow-on).

"Hence, we believe our benchmark can ... serve as a foundation to develop
benchmarks for mixed read/write workloads and the next generation of
learned index structures which supports writes" (paper Section 1).  This
module is that foundation: YCSB-style operation streams (configurable
read fraction, uniform or Zipfian key popularity) driven through any
key-value store exposing ``insert(key, value)`` / ``get(key)``.

Measurements here are **real wall-clock throughput** of the Python
implementations -- every competitor pays the same interpreter tax, so the
relative numbers are meaningful (unlike single-lookup nanoseconds, which
is why the read-only experiments use the simulated CPU instead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

#: An operation: ("read", key) or ("insert", key, value).
Operation = Tuple


@dataclass
class MixedWorkload:
    """A reproducible operation stream over an integer key space."""

    operations: List[Operation]
    preload: List[Tuple[int, int]]
    read_fraction: float

    @property
    def n_ops(self) -> int:
        return len(self.operations)


def make_mixed_workload(
    n_ops: int,
    read_fraction: float,
    n_preload: int = 10_000,
    key_space: int = 1 << 40,
    distribution: str = "zipf",
    zipf_theta: float = 0.99,
    seed: int = 0,
) -> MixedWorkload:
    """YCSB-style stream: reads target (mostly) existing keys, inserts new ones.

    ``distribution`` picks how read keys are drawn from the inserted
    population: ``zipf`` (skewed, YCSB default) or ``uniform``.
    """
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    if distribution not in ("zipf", "uniform"):
        raise ValueError("distribution must be 'zipf' or 'uniform'")
    rng = np.random.default_rng(seed)

    preload_keys = np.unique(
        rng.integers(0, key_space, size=int(n_preload * 1.1), dtype=np.int64)
    )[:n_preload]
    rng.shuffle(preload_keys)
    preload = [(int(k), i) for i, k in enumerate(preload_keys)]

    known: List[int] = [k for k, _ in preload]
    operations: List[Operation] = []
    is_read = rng.random(n_ops) < read_fraction
    if distribution == "zipf":
        # Zipf ranks over the growing key population, capped lazily.
        weights = 1.0 / np.power(
            np.arange(1, n_preload + n_ops + 1, dtype=np.float64), zipf_theta
        )
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        ranks = np.searchsorted(cdf, rng.random(n_ops))
    else:
        ranks = rng.integers(0, n_preload + n_ops, size=n_ops)

    next_value = n_preload
    for i in range(n_ops):
        if is_read[i] and known:
            rank = int(ranks[i]) % len(known)
            operations.append(("read", known[rank]))
        else:
            key = int(rng.integers(0, key_space))
            operations.append(("insert", key, next_value))
            known.append(key)
            next_value += 1
    return MixedWorkload(operations, preload, read_fraction)


@dataclass
class MixedResult:
    store: str
    read_fraction: float
    n_ops: int
    seconds: float
    reads_hit: int

    @property
    def ops_per_sec(self) -> float:
        return self.n_ops / self.seconds if self.seconds > 0 else float("inf")


def run_mixed(
    name: str,
    store_factory: Callable[[], object],
    workload: MixedWorkload,
) -> MixedResult:
    """Preload a fresh store, replay the stream, time it end to end."""
    store = store_factory()
    for key, value in workload.preload:
        store.insert(key, value)

    operations = workload.operations
    hits = 0
    start = time.perf_counter()
    for op in operations:
        if op[0] == "read":
            if store.get(op[1]) is not None:
                hits += 1
        else:
            store.insert(op[1], op[2])
    seconds = time.perf_counter() - start
    return MixedResult(
        store=name,
        read_fraction=workload.read_fraction,
        n_ops=len(operations),
        seconds=seconds,
        reads_hit=hits,
    )


# -- reference stores -----------------------------------------------------


class DictStore:
    """Hash-map baseline (no order, no range scans)."""

    def __init__(self):
        self._d: Dict[int, int] = {}

    def insert(self, key: int, value: int) -> None:
        self._d[key] = value

    def get(self, key: int):
        return self._d.get(key)


class SortedArrayStore:
    """Sorted array with bisect: O(log n) reads, O(n) inserts.

    The strawman that motivates every other structure here.
    """

    def __init__(self):
        import bisect

        self._bisect = bisect
        self._keys: List[int] = []
        self._values: List[int] = []

    def insert(self, key: int, value: int) -> None:
        pos = self._bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            self._values[pos] = value
        else:
            self._keys.insert(pos, key)
            self._values.insert(pos, value)

    def get(self, key: int):
        pos = self._bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            return self._values[pos]
        return None


def default_stores() -> Dict[str, Callable[[], object]]:
    """The harness's standard contestants."""
    from repro.learned.alex import AlexIndex
    from repro.learned.dynamic_pgm import DynamicPGM
    from repro.traditional.btree_dynamic import DynamicBTree

    return {
        "DynamicPGM": lambda: DynamicPGM(epsilon=32, buffer_capacity=256),
        "ALEX": lambda: AlexIndex(n_buckets=256, target_node_keys=256),
        "BTree": lambda: DynamicBTree(fanout=32),
        "SortedArray": SortedArrayStore,
        "Dict": DictStore,
    }
