"""Benchmark harness: traced measurement, machine models, experiment drivers."""

from repro.bench.cache import MeasurementCache
from repro.bench.cells import MeasureCell
from repro.bench.config import BenchSettings
from repro.bench.harness import (
    BuiltIndex,
    Measurement,
    build_index,
    measure,
    measure_index,
)
from repro.bench.multithread import MachineModel, ThroughputPoint, throughput
from repro.bench.parallel import RunnerStats, run_cells
from repro.bench.stats import RegressionResult, ols

__all__ = [
    "BenchSettings",
    "BuiltIndex",
    "MeasureCell",
    "Measurement",
    "MeasurementCache",
    "RunnerStats",
    "build_index",
    "measure",
    "measure_index",
    "run_cells",
    "MachineModel",
    "ThroughputPoint",
    "throughput",
    "RegressionResult",
    "ols",
]
