"""Benchmark harness: traced measurement, machine models, experiment drivers."""

from repro.bench.config import BenchSettings
from repro.bench.harness import (
    BuiltIndex,
    Measurement,
    build_index,
    measure,
    measure_index,
)
from repro.bench.multithread import MachineModel, ThroughputPoint, throughput
from repro.bench.stats import RegressionResult, ols

__all__ = [
    "BenchSettings",
    "BuiltIndex",
    "Measurement",
    "build_index",
    "measure",
    "measure_index",
    "MachineModel",
    "ThroughputPoint",
    "throughput",
    "RegressionResult",
    "ols",
]
