"""Measurement cells: one picklable task per experiment-grid point.

The paper's evaluation grid is embarrassingly parallel -- every
(index, config, dataset, workload) combination is an independent
measurement.  A :class:`MeasureCell` captures one such combination as
plain scalars, so it can be hashed (persistent cache keys), pickled
(process-pool fan-out) and re-executed deterministically in any process:
datasets and workloads are reconstructed from their seeds, and the
simulated CPU makes the resulting counters exact, not statistical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.bench.harness import Measurement, measure_index
from repro.datasets.loader import Dataset, make_dataset
from repro.datasets.workload import Workload, make_workload


def freeze_config(config: dict) -> Tuple[Tuple[str, object], ...]:
    """Canonical, hashable form of an index config dict."""
    return tuple(sorted(config.items()))


def freeze_counters(counters) -> Tuple[Tuple[str, float], ...]:
    """Canonical, hashable form of a perf-counter record.

    Used by the :mod:`repro.serve.sweep` tasks, whose identity includes
    the measured counters a service model is derived from.  Works for
    both :class:`~repro.memsim.counters.PerfCounters` and its float
    variant; values are JSON scalars, so the frozen form feeds straight
    into :func:`repro.bench.cache.sim_key`.
    """
    from dataclasses import fields as _fields

    return tuple(
        (f.name, float(getattr(counters, f.name)))
        for f in sorted(_fields(counters), key=lambda f: f.name)
    )


@dataclass(frozen=True)
class MeasureCell:
    """One grid point: everything needed to reproduce one measurement.

    All fields are primitives (the config dict is frozen into sorted
    pairs), so a cell is hashable, picklable, and JSON-able -- the same
    object serves as in-process memo key, persistent cache key material,
    and process-pool work item.
    """

    dataset: str
    #: Requested key count (pre 32-bit dedup; the generator input).
    n_keys: int
    seed: int
    key_bits: int
    index: str
    config: Tuple[Tuple[str, object], ...]
    n_lookups: int
    warmup: int
    warm: bool = True
    search: str = "binary"

    @classmethod
    def make(
        cls,
        dataset: str,
        index: str,
        config: dict,
        settings,
        key_bits: int = 64,
        warm: bool = True,
        search: str = "binary",
    ) -> "MeasureCell":
        """Build a cell from a config dict plus :class:`BenchSettings`."""
        return cls(
            dataset=dataset,
            n_keys=settings.n_keys,
            seed=settings.seed,
            key_bits=key_bits,
            index=index,
            config=freeze_config(config),
            n_lookups=settings.n_lookups,
            warmup=settings.warmup,
            warm=warm,
            search=search,
        )

    def config_dict(self) -> dict:
        return dict(self.config)

    def key_fields(self) -> dict:
        """The fields that define this cell's identity, as a plain dict.

        This is the input to the persistent cache's content hash; field
        order does not matter (the hash canonicalizes), but values must
        stay JSON-scalar.
        """
        return {
            "dataset": self.dataset,
            "n_keys": self.n_keys,
            "seed": self.seed,
            "key_bits": self.key_bits,
            "index": self.index,
            "config": self.config_dict(),
            "n_lookups": self.n_lookups,
            "warmup": self.warmup,
            "warm": self.warm,
            "search": self.search,
        }

    def materialize(self) -> Tuple[Dataset, Workload]:
        """Rebuild the dataset + workload this cell measures against.

        Mirrors ``common.dataset_and_workload`` exactly: the workload
        covers warmup plus measured lookups and is seeded at ``seed + 1``.
        """
        ds = make_dataset(
            self.dataset, self.n_keys, seed=self.seed, key_bits=self.key_bits
        )
        lookups = max(self.n_lookups + self.warmup, 1)
        wl = make_workload(ds, lookups, seed=self.seed + 1)
        return ds, wl

    def run(
        self,
        dataset: Optional[Dataset] = None,
        workload: Optional[Workload] = None,
        engine: Optional[str] = None,
        profile: Optional[bool] = None,
    ) -> Measurement:
        """Execute the cell; pass dataset/workload to reuse built objects.

        ``engine`` selects the memsim engine for this execution (None =
        ambient default).  It is deliberately NOT part of the cell's
        identity or :meth:`key_fields`: both engines are
        counter-identical, so the same cached measurement serves either.
        ``profile`` likewise (None = ambient ``REPRO_OBS_PROFILE``):
        phase attribution annotates a measurement without changing any
        of its counters.
        """
        if dataset is None or workload is None:
            dataset, workload = self.materialize()
        return measure_index(
            dataset,
            workload,
            self.index,
            self.config_dict(),
            n_lookups=self.n_lookups,
            warmup=self.warmup,
            warm=self.warm,
            search=self.search,
            engine=engine,
            profile=profile,
        )
