"""Shared settings for experiment drivers.

The paper runs 200M keys and 10M lookups; defaults here are scaled to
interpreter speed but every knob is overridable (CLI: ``--n-keys``,
``--n-lookups``...).  ``quick()`` returns the small preset the test suite
and pytest benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.datasets.loader import DATASET_NAMES


@dataclass
class BenchSettings:
    """Scale and scope knobs shared by all experiment drivers."""

    n_keys: int = 400_000
    n_lookups: int = 1200
    warmup: int = 300
    seed: int = 0
    datasets: List[str] = field(default_factory=lambda: list(DATASET_NAMES))
    #: Limit the per-index size sweep to this many configurations.
    max_configs: Optional[int] = None
    #: Restrict to these index names (None = experiment default).
    indexes: Optional[List[str]] = None
    #: Worker processes for the parallel runner (CLI: ``--jobs`` /
    #: ``REPRO_JOBS``); 1 = run every cell inline.
    jobs: int = 1
    #: Directory of the persistent measurement cache (None = disabled;
    #: CLI: ``--cache-dir`` / ``REPRO_CACHE_DIR``, ``--no-cache``).
    cache_dir: Optional[str] = None
    #: Memsim engine for this run (CLI: ``--memsim-engine`` /
    #: ``REPRO_MEMSIM_ENGINE``; None = ambient default).  Both engines
    #: are counter-identical, so this changes wall-clock only -- it is
    #: never part of a measurement-cache key.
    memsim_engine: Optional[str] = None
    #: Serving-simulation engine for this run (CLI: ``--serve-engine`` /
    #: ``REPRO_SERVE_ENGINE``; None = ambient default).  Both engines
    #: produce byte-identical ServingResult/ClusterResult records, so
    #: this changes wall-clock only -- it is never part of a simulation
    #: cache key.
    serve_engine: Optional[str] = None
    #: Attribute per-lookup counters to model/search phases (CLI:
    #: ``--profile`` / ``REPRO_OBS_PROFILE``).  Annotates measurements
    #: without changing any counter, so it too stays out of cache keys.
    profile: bool = False
    #: Directory for observability output (span JSONL, metrics snapshot,
    #: run manifest; CLI: ``--obs-dir``).  None = no files written.
    obs_dir: Optional[str] = None

    @classmethod
    def quick(cls) -> "BenchSettings":
        """Small preset for tests and pytest-benchmark runs."""
        return cls(n_keys=40_000, n_lookups=250, warmup=120, max_configs=4)


def sweep_configs(index_cls, n_keys: int, limit: Optional[int]) -> List[dict]:
    """An index's size sweep, optionally thinned to ``limit`` entries."""
    configs = index_cls.size_sweep_configs(n_keys)
    if limit is None or len(configs) <= limit:
        return configs
    step = (len(configs) - 1) / max(limit - 1, 1)
    picked = [configs[round(i * step)] for i in range(limit)]
    deduped = []
    for cfg in picked:
        if cfg not in deduped:
            deduped.append(cfg)
    return deduped
