"""Dependency-free SVG scatter/line plots for measurement data.

The paper's figures are log-x scatter plots of (size, latency) per index.
matplotlib is not a dependency of this library, so this module renders
the same plots as standalone SVG files using nothing but the standard
library -- enough to eyeball a reproduced figure next to the paper's.

Typical use::

    from repro.bench.svgplot import pareto_figure
    svg = pareto_figure(measurements, title="amzn")
    open("fig7_amzn.svg", "w").write(svg)

or from the CLI: ``python -m repro.bench --experiment fig7 --save-svg DIR``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bench.harness import Measurement

#: Okabe-Ito colour-blind-safe palette.
_PALETTE = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#000000",
    "#999999",
)

_WIDTH, _HEIGHT = 640, 420
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 160, 40, 50


def _nice_log_ticks(lo: float, hi: float) -> List[float]:
    if lo <= 0:
        lo = 1e-6
    start = math.floor(math.log10(lo))
    stop = math.ceil(math.log10(hi))
    return [10.0**e for e in range(start, stop + 1)]


def _nice_linear_ticks(lo: float, hi: float, n: int = 6) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / n
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 5, 10):
        step = mult * magnitude
        if step >= raw_step:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-9:
        ticks.append(value)
        value += step
    return ticks


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if value >= 1000 or value < 0.01:
        exponent = int(round(math.log10(abs(value))))
        if abs(value - 10.0**exponent) / value < 1e-9:
            return f"1e{exponent}"
    if value >= 10:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:g}"
    return f"{value:g}"


class SvgCanvas:
    """Minimal SVG builder with a log-x / linear-y data transform."""

    def __init__(
        self,
        x_range: Tuple[float, float],
        y_range: Tuple[float, float],
        title: str,
        x_label: str,
        y_label: str,
    ):
        self.x_lo, self.x_hi = x_range
        self.y_lo, self.y_hi = y_range
        self._parts: List[str] = []
        self._plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
        self._plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B
        self._emit_frame(title, x_label, y_label)

    # -- transforms ---------------------------------------------------------

    def x_px(self, x: float) -> float:
        x = max(x, 1e-12)
        span = math.log10(self.x_hi) - math.log10(self.x_lo)
        frac = (math.log10(x) - math.log10(self.x_lo)) / max(span, 1e-9)
        return _MARGIN_L + frac * self._plot_w

    def y_px(self, y: float) -> float:
        span = self.y_hi - self.y_lo
        frac = (y - self.y_lo) / max(span, 1e-9)
        return _MARGIN_T + (1.0 - frac) * self._plot_h

    # -- primitives ----------------------------------------------------------

    def _emit_frame(self, title: str, x_label: str, y_label: str) -> None:
        p = self._parts
        p.append(
            f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{self._plot_w}" '
            f'height="{self._plot_h}" fill="white" stroke="#333"/>'
        )
        p.append(
            f'<text x="{_WIDTH // 2}" y="22" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{title}</text>'
        )
        p.append(
            f'<text x="{_MARGIN_L + self._plot_w / 2}" y="{_HEIGHT - 12}" '
            f'text-anchor="middle" font-size="12">{x_label}</text>'
        )
        p.append(
            f'<text x="16" y="{_MARGIN_T + self._plot_h / 2}" font-size="12" '
            f'text-anchor="middle" transform="rotate(-90 16 '
            f'{_MARGIN_T + self._plot_h / 2})">{y_label}</text>'
        )
        for tick in _nice_log_ticks(self.x_lo, self.x_hi):
            if not self.x_lo <= tick <= self.x_hi:
                continue
            x = self.x_px(tick)
            p.append(
                f'<line x1="{x:.1f}" y1="{_MARGIN_T}" x2="{x:.1f}" '
                f'y2="{_MARGIN_T + self._plot_h}" stroke="#ddd"/>'
            )
            p.append(
                f'<text x="{x:.1f}" y="{_MARGIN_T + self._plot_h + 16}" '
                f'text-anchor="middle" font-size="10">{_fmt_tick(tick)}</text>'
            )
        for tick in _nice_linear_ticks(self.y_lo, self.y_hi):
            y = self.y_px(tick)
            p.append(
                f'<line x1="{_MARGIN_L}" y1="{y:.1f}" '
                f'x2="{_MARGIN_L + self._plot_w}" y2="{y:.1f}" stroke="#ddd"/>'
            )
            p.append(
                f'<text x="{_MARGIN_L - 6}" y="{y + 3:.1f}" '
                f'text-anchor="end" font-size="10">{_fmt_tick(tick)}</text>'
            )

    def polyline(self, points: Sequence[Tuple[float, float]], color: str) -> None:
        if len(points) < 2:
            return
        coords = " ".join(
            f"{self.x_px(x):.1f},{self.y_px(y):.1f}" for x, y in points
        )
        self._parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="1.5"/>'
        )

    def dots(self, points: Sequence[Tuple[float, float]], color: str) -> None:
        for x, y in points:
            self._parts.append(
                f'<circle cx="{self.x_px(x):.1f}" cy="{self.y_px(y):.1f}" '
                f'r="3.2" fill="{color}"/>'
            )

    def hline(self, y: float, color: str = "#000", dash: str = "5,4") -> None:
        y_px = self.y_px(y)
        self._parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y_px:.1f}" '
            f'x2="{_MARGIN_L + self._plot_w}" y2="{y_px:.1f}" '
            f'stroke="{color}" stroke-dasharray="{dash}"/>'
        )

    def legend(self, labels: Sequence[Tuple[str, str]]) -> None:
        x = _WIDTH - _MARGIN_R + 12
        for i, (label, color) in enumerate(labels):
            y = _MARGIN_T + 14 + i * 18
            self._parts.append(
                f'<rect x="{x}" y="{y - 9}" width="10" height="10" '
                f'fill="{color}"/>'
            )
            self._parts.append(
                f'<text x="{x + 15}" y="{y}" font-size="11">{label}</text>'
            )

    def render(self) -> str:
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
            f'height="{_HEIGHT}" font-family="sans-serif">\n'
            f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )


def pareto_figure(
    measurements: Iterable[Measurement],
    title: str = "",
    baseline_ns: float = None,
) -> str:
    """A Figure-7-style plot: size (MB, log) vs latency (ns) per index."""
    by_index: Dict[str, List[Measurement]] = {}
    for m in measurements:
        by_index.setdefault(m.index, []).append(m)
    all_ms = [m for ms in by_index.values() for m in ms]
    if not all_ms:
        raise ValueError("no measurements to plot")
    sizes = [max(m.size_mb, 1e-5) for m in all_ms]
    lats = [m.latency_ns for m in all_ms]
    if baseline_ns is not None:
        lats.append(baseline_ns)
    canvas = SvgCanvas(
        (min(sizes) / 1.5, max(sizes) * 1.5),
        (0.0, max(lats) * 1.08),
        title=title,
        x_label="Size (MB, log scale)",
        y_label="Lookup time (ns)",
    )
    if baseline_ns is not None:
        canvas.hline(baseline_ns)
    legend = []
    for i, (name, ms) in enumerate(sorted(by_index.items())):
        color = _PALETTE[i % len(_PALETTE)]
        pts = sorted(
            (max(m.size_mb, 1e-5), m.latency_ns) for m in ms
        )
        canvas.polyline(pts, color)
        canvas.dots(pts, color)
        legend.append((name, color))
    if baseline_ns is not None:
        legend.append(("BS baseline", "#000"))
    canvas.legend(legend)
    return canvas.render()


def series_figure(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str,
    x_label: str,
    y_label: str,
) -> str:
    """Generic log-x line plot (throughput-vs-threads uses x=threads)."""
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    if not xs:
        raise ValueError("no series to plot")
    canvas = SvgCanvas(
        (max(min(xs), 1e-5) / 1.5, max(xs) * 1.5),
        (0.0, max(ys) * 1.08),
        title=title,
        x_label=x_label,
        y_label=y_label,
    )
    legend = []
    for i, (name, pts) in enumerate(sorted(series.items())):
        color = _PALETTE[i % len(_PALETTE)]
        ordered = sorted(pts)
        canvas.polyline(ordered, color)
        canvas.dots(ordered, color)
        legend.append((name, color))
    canvas.legend(legend)
    return canvas.render()
