"""Figure 13 companion: fitting-as-compression throughput.

The compression view judges learned indexes by (size, log2 error); the
cost of producing that compression is the fitting algorithms themselves.
"""

import pytest

from repro.learned.pla import fit_pla
from repro.learned.spline import fit_spline


@pytest.mark.parametrize("epsilon", [16.0, 128.0])
def test_fit_pla(benchmark, amzn, epsilon):
    keys = amzn.keys.tolist()
    segs = benchmark(fit_pla, keys, epsilon)
    assert segs


@pytest.mark.parametrize("epsilon", [16.0, 128.0])
def test_fit_spline(benchmark, amzn, epsilon):
    keys = amzn.keys.tolist()
    knots = benchmark(fit_spline, keys, epsilon)
    assert len(knots) >= 2


def test_compression_ratio_shape(amzn, osm):
    """Non-benchmark sanity: osm needs more segments per epsilon (paper)."""
    segs_amzn = len(fit_pla(amzn.keys.tolist(), 64.0))
    segs_osm = len(fit_pla(osm.keys.tolist(), 64.0))
    assert segs_osm > segs_amzn
