"""ext_tenants companion: wall-clock speed of the tenancy layer.

Besides the usual pytest-benchmark timings, this module distils two
headline rates into ``BENCH_tenancy.json`` — ``tenant_requests_per_sec``
(mixed-tenant requests through trace merge, admission control and the
cluster event loop, end to end) and ``trace_merge_requests_per_sec``
(building the merged mixed-tenant-day trace from a scenario spec) — so
CI can track a perf trajectory for the multi-tenant serving subsystem.
Set ``BENCH_TENANCY_JSON`` to redirect the output path (defaults to the
repo root).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bench.harness import measure_index
from repro.serve import (
    AdmissionSpec,
    ArrivalSpec,
    KeySpaceSpec,
    ScenarioSpec,
    ServiceModel,
    TenantSpec,
    TenantTrace,
    TopologySpec,
    simulate_scenario,
    throughput,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

N_SHARDS = 4
N_REPLICAS = 2

#: Filled by the benchmarks below, written out once the module finishes.
_RATES = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_tenancy_json():
    yield
    if not _RATES:  # e.g. --benchmark-disable: no stats to record
        return
    path = os.environ.get("BENCH_TENANCY_JSON") or os.path.join(
        REPO_ROOT, "BENCH_tenancy.json"
    )
    with open(path, "w") as f:
        json.dump(_RATES, f, indent=2, sort_keys=True)
        f.write("\n")


@pytest.fixture(scope="module")
def serve_setup(amzn, workload):
    m = measure_index(amzn, workload, "RMI", {"branching": 512}, n_lookups=150)
    services = [ServiceModel(m.counters) for _ in range(N_SHARDS)]
    rate = 0.6 * N_SHARDS * throughput(m, 2).lookups_per_sec
    return services, np.asarray(amzn.keys), rate


def mixed_spec(rate: float, n_requests: int) -> ScenarioSpec:
    """A three-class day: diurnal gold, bursty silver, flash bronze,
    with admission control on -- the shape ext_tenants exercises."""
    shares = (n_requests // 2, n_requests // 4, n_requests // 4)
    return ScenarioSpec(
        name="bench-day",
        tenants=(
            TenantSpec(
                name="gold",
                slo_class="gold",
                arrivals=ArrivalSpec(
                    rate_per_sec=0.5 * rate,
                    n_requests=shares[0],
                    seed=101,
                    shape="diurnal",
                ),
                keyspace=KeySpaceSpec(seed=101),
            ),
            TenantSpec(
                name="silver",
                slo_class="silver",
                arrivals=ArrivalSpec(
                    rate_per_sec=0.25 * rate,
                    n_requests=shares[1],
                    seed=202,
                    shape="bursty",
                ),
                keyspace=KeySpaceSpec(lo_frac=0.5, hi_frac=1.0, seed=202),
            ),
            TenantSpec(
                name="bronze",
                slo_class="bronze",
                arrivals=ArrivalSpec(
                    rate_per_sec=0.25 * rate,
                    n_requests=shares[2],
                    seed=303,
                    shape="flash",
                ),
                keyspace=KeySpaceSpec(
                    hi_frac=0.5, hot_theta=0.99, seed=303
                ),
            ),
        ),
        topology=TopologySpec(
            n_shards=N_SHARDS, n_replicas=N_REPLICAS, n_cores=2
        ),
        admission=AdmissionSpec(
            enabled=True, bronze_depth=6, silver_depth=18
        ),
    )


def test_scenario_simulation(benchmark, serve_setup):
    """A full mixed-tenant scenario: merge, admit, simulate, split."""
    services, keys, rate = serve_setup
    spec = mixed_spec(rate, 2_000)
    result = benchmark(simulate_scenario, spec, services, keys)
    assert result.admitted + result.total_shed == spec.n_requests
    if benchmark.stats is not None:
        _RATES["tenant_requests_per_sec"] = (
            spec.n_requests / benchmark.stats.stats.mean
        )


def test_trace_merge(benchmark, serve_setup):
    """Building the merged mixed-tenant-day trace from the spec."""
    _, keys, rate = serve_setup
    spec = mixed_spec(rate, 2_000)
    trace = benchmark(TenantTrace.from_spec, spec, keys)
    assert len(trace) == spec.n_requests
    if benchmark.stats is not None:
        _RATES["trace_merge_requests_per_sec"] = (
            len(trace) / benchmark.stats.stats.mean
        )
