"""Shared fixtures for the pytest-benchmark suite.

The benchmarks complement the simulated-CPU experiment drivers
(``python -m repro.bench``): pytest-benchmark measures real wall-clock
time of this library's Python implementations (lookup loops, builds,
fitting algorithms, simulator throughput), one bench module per paper
artifact plus the DESIGN.md ablations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.config import BenchSettings
from repro.bench.harness import build_index
from repro.datasets import make_dataset, make_workload

N_KEYS = 20_000
N_LOOKUPS = 500


@pytest.fixture(scope="session")
def settings():
    return BenchSettings(
        n_keys=N_KEYS, n_lookups=200, warmup=80, max_configs=3
    )


@pytest.fixture(scope="session")
def amzn():
    return make_dataset("amzn", N_KEYS, seed=1)


@pytest.fixture(scope="session")
def osm():
    return make_dataset("osm", N_KEYS, seed=1)


@pytest.fixture(scope="session")
def amzn32():
    return make_dataset("amzn", N_KEYS, seed=1, key_bits=32)


@pytest.fixture(scope="session")
def workload(amzn):
    return make_workload(amzn, N_LOOKUPS, seed=2)


#: Mid-sweep configuration per index, used by the lookup-loop benches.
BENCH_CONFIGS = {
    "RMI": {"branching": 1024},
    "PGM": {"epsilon": 64},
    "RS": {"epsilon": 64, "radix_bits": 10},
    "RBS": {"radix_bits": 12},
    "BTree": {"gap": 2},
    "IBTree": {"gap": 2},
    "FAST": {"gap": 2},
    "ART": {"gap": 2},
    "FST": {"gap": 2},
    "Wormhole": {"gap": 2},
    "BS": {},
    "RobinHash": {},
}


@pytest.fixture(scope="session")
def built_indexes(amzn):
    return {
        name: build_index(amzn, name, cfg) for name, cfg in BENCH_CONFIGS.items()
    }


def lookup_loop(built, keys):
    """Untraced lookup + last-mile loop; returns a checksum of positions."""
    from repro.search.last_mile import binary_search

    index = built.index
    data = built.data
    total = 0
    for key in keys:
        bound = index.lookup(key)
        total += binary_search(data, key, bound)
    return total
