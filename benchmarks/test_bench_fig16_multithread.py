"""Figure 16 companion: throughput-model evaluation speed and shape."""

from repro.bench.harness import measure_index
from repro.bench.multithread import thread_sweep, throughput


def test_thread_sweep(benchmark, amzn, workload):
    m = measure_index(amzn, workload, "RMI", {"branching": 512}, n_lookups=150)
    threads = list(range(1, 41))
    points = benchmark(thread_sweep, m, threads)
    rates = [p.lookups_per_sec for p in points]
    assert rates == sorted(rates)


def test_fig16_shape_robinhash_throttled(amzn, workload):
    """Non-benchmark check: RobinHash's 40-thread speedup trails a
    low-miss structure's (the paper's Figure 16 headline)."""
    robin = measure_index(amzn, workload, "RobinHash", {}, n_lookups=150)
    fast = measure_index(amzn, workload, "FAST", {"gap": 2}, n_lookups=150)
    assert throughput(fast, 40).speedup >= throughput(robin, 40).speedup
