"""Figure 14 companion: warm vs cold traced lookups."""

import pytest

from repro.bench.harness import build_index, measure


@pytest.mark.parametrize("warm", [True, False], ids=["warm", "cold"])
def test_cache_state_measurement(benchmark, amzn, workload, warm):
    built = build_index(amzn, "RMI", {"branching": 512})
    m = benchmark(
        measure, built, workload, n_lookups=120, warmup=60, warm=warm
    )
    assert m.warm is warm
    assert m.latency_ns > 0
