"""Figure 6 companion: dataset generator throughput."""

import pytest

from repro.datasets.generators import GENERATORS


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generate(benchmark, name):
    keys = benchmark(GENERATORS[name], 20_000, 123)
    assert len(keys) == 20_000


def test_table1_rows(benchmark):
    from repro.bench.experiments.table1_capabilities import rows

    out = benchmark(rows)
    assert len(out) >= 13
