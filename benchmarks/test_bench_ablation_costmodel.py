"""Ablation: cost-model parameter sensitivity (DESIGN.md).

The reproduction's claims are about *orderings* (who is faster at a given
size), not absolute nanoseconds.  This bench perturbs the cost model's
DRAM latency and MLP floor by +-30% and checks that pairwise orderings of
representative index profiles are stable.
"""

import dataclasses
import itertools

import pytest

from repro.bench.harness import measure_index
from repro.memsim.costmodel import CostModel, XEON_GOLD_6230


@pytest.fixture(scope="module")
def profiles(amzn, workload):
    configs = {
        "RMI": {"branching": 1024},
        "BTree": {"gap": 2},
        "FST": {"gap": 2},
        "BS": {},
    }
    return {
        name: measure_index(amzn, workload, name, cfg, n_lookups=200)
        for name, cfg in configs.items()
    }


def orderings(profiles, model: CostModel):
    lat = {
        name: model.latency_ns(m.counters) for name, m in profiles.items()
    }
    return sorted(lat, key=lat.get)


@pytest.mark.parametrize("dram_scale", [0.7, 1.0, 1.3])
@pytest.mark.parametrize("mlp_floor", [0.45, 0.60, 0.75])
def test_ordering_stable(profiles, dram_scale, mlp_floor):
    perturbed = dataclasses.replace(
        XEON_GOLD_6230,
        dram_ns=XEON_GOLD_6230.dram_ns * dram_scale,
        mlp_floor=mlp_floor,
    )
    assert orderings(profiles, perturbed) == orderings(
        profiles, XEON_GOLD_6230
    )


def test_latency_evaluation_speed(benchmark, profiles):
    models = [
        dataclasses.replace(XEON_GOLD_6230, dram_ns=60.0 + i)
        for i in range(50)
    ]

    def loop():
        return sum(
            m.latency_ns(p.counters)
            for m, p in itertools.product(models, profiles.values())
        )

    assert benchmark(loop) > 0
