"""Figure 7 companion: wall-clock lookup loops for every index.

The simulated-ns version is ``python -m repro.bench --experiment fig7``;
this measures the same lookup loops in real Python time.
"""

import pytest

from conftest import BENCH_CONFIGS, lookup_loop

FIG7 = ["RMI", "PGM", "RS", "RBS", "ART", "BTree", "IBTree", "FAST", "BS"]


@pytest.mark.parametrize("index_name", FIG7)
def test_lookup_loop(benchmark, built_indexes, workload, index_name):
    built = built_indexes[index_name]
    keys = workload.keys_py
    checksum = benchmark(lookup_loop, built, keys)
    # Validity cross-check: the loop's position checksum matches ground truth.
    assert checksum == sum(workload.positions_py)


def test_pareto_front_computation(benchmark, built_indexes, workload):
    """Pareto analysis itself must be cheap even for many points."""
    from repro.core.pareto import ParetoPoint, pareto_front

    points = [
        ParetoPoint(f"i{i}", (i * 37) % 1000 + 1, float((i * 61) % 500) + 1.0)
        for i in range(5_000)
    ]
    front = benchmark(pareto_front, points)
    assert front
