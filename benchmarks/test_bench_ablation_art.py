"""Ablation: ART uniform vs adaptive sampling (paper Section 4.1.1's
"smarter method ... left to future work")."""

import pytest

from repro.bench.harness import build_index
from conftest import lookup_loop


@pytest.mark.parametrize("sampling", ["uniform", "adaptive"])
@pytest.mark.parametrize("dataset_fixture", ["amzn", "osm"])
def test_art_sampling(benchmark, request, sampling, dataset_fixture):
    ds = request.getfixturevalue(dataset_fixture)
    built = build_index(ds, "ART", {"gap": 8, "sampling": sampling})
    from repro.datasets import make_workload

    wl = make_workload(ds, 400, seed=13)
    checksum = benchmark(lookup_loop, built, wl.keys_py)
    assert checksum == sum(wl.positions_py)


def test_adaptive_shrinks_trie(osm):
    uniform = build_index(osm, "ART", {"gap": 8, "sampling": "uniform"})
    adaptive = build_index(osm, "ART", {"gap": 8, "sampling": "adaptive"})
    per_u = uniform.index.size_bytes() / uniform.index._n_samples
    per_a = adaptive.index.size_bytes() / adaptive.index._n_samples
    assert per_a < per_u
