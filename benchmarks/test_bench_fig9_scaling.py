"""Figure 9 companion: lookup loops across dataset scales."""

import pytest

from repro.bench.harness import build_index
from repro.datasets import make_dataset, make_workload
from conftest import lookup_loop


@pytest.mark.parametrize("scale", [1, 2, 4])
@pytest.mark.parametrize("index_name", ["RMI", "PGM", "RS", "BTree"])
def test_scaling_lookup_loop(benchmark, scale, index_name):
    ds = make_dataset("amzn", 10_000 * scale, seed=6)
    wl = make_workload(ds, 300, seed=7)
    config = {
        "RMI": {"branching": 512},
        "PGM": {"epsilon": 64},
        "RS": {"epsilon": 64, "radix_bits": 10},
        "BTree": {"gap": 2},
    }[index_name]
    built = build_index(ds, index_name, config)
    checksum = benchmark(lookup_loop, built, wl.keys_py)
    assert checksum == sum(wl.positions_py)
