"""Ablation: RMI stage-one model type and branching factor (DESIGN.md)."""

import pytest

from repro.bench.harness import build_index
from conftest import lookup_loop


@pytest.mark.parametrize("stage1", ["linear", "cubic", "loglinear", "radix"])
def test_stage1_model_type(benchmark, amzn, workload, stage1):
    built = build_index(amzn, "RMI", {"branching": 512, "stage1": stage1})
    checksum = benchmark(lookup_loop, built, workload.keys_py)
    assert checksum == sum(workload.positions_py)


@pytest.mark.parametrize("branching", [64, 1024, 8192])
def test_branching_factor(benchmark, amzn, workload, branching):
    built = build_index(amzn, "RMI", {"branching": branching})
    checksum = benchmark(lookup_loop, built, workload.keys_py)
    assert checksum == sum(workload.positions_py)


def test_ablation_shape_error_vs_branching(amzn):
    """More leaves -> lower log2 error (the tradeoff CDFShop explores)."""
    errs = [
        build_index(amzn, "RMI", {"branching": b}).index.mean_log2_error()
        for b in (64, 1024, 8192)
    ]
    assert errs == sorted(errs, reverse=True)
