"""Ablation: RadixSpline radix-table width vs spline error (DESIGN.md)."""

import pytest

from repro.bench.harness import build_index
from conftest import lookup_loop


@pytest.mark.parametrize("radix_bits", [4, 10, 14])
def test_radix_width(benchmark, amzn, workload, radix_bits):
    built = build_index(amzn, "RS", {"epsilon": 64, "radix_bits": radix_bits})
    checksum = benchmark(lookup_loop, built, workload.keys_py)
    assert checksum == sum(workload.positions_py)


@pytest.mark.parametrize("epsilon", [8, 64, 512])
def test_spline_error(benchmark, amzn, workload, epsilon):
    built = build_index(amzn, "RS", {"epsilon": epsilon, "radix_bits": 10})
    checksum = benchmark(lookup_loop, built, workload.keys_py)
    assert checksum == sum(workload.positions_py)
