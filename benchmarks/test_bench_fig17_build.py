"""Figure 17 companion: real wall-clock build times per index."""

import pytest

from repro.bench.harness import build_index
from conftest import BENCH_CONFIGS

BUILDS = [
    "PGM",
    "RS",
    "RMI",
    "RBS",
    "ART",
    "BTree",
    "IBTree",
    "FAST",
    "FST",
    "Wormhole",
    "RobinHash",
]


@pytest.mark.parametrize("index_name", BUILDS)
def test_build(benchmark, amzn, index_name):
    config = BENCH_CONFIGS[index_name]
    built = benchmark(build_index, amzn, index_name, config)
    assert built.index.size_bytes() >= 0
