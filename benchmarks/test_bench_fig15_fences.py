"""Figure 15 companion: fence/no-fence cost-model evaluation."""

import pytest

from repro.memsim.costmodel import XEON_GOLD_6230
from repro.memsim.counters import PerfCountersF


@pytest.mark.parametrize("fence", [False, True], ids=["nofence", "fence"])
def test_cost_model_evaluation(benchmark, fence):
    profiles = [
        PerfCountersF(
            instructions=30.0 + i,
            branch_misses=float(i % 5),
            l1_hits=4.0,
            l2_hits=1.0,
            llc_misses=2.0 + (i % 3),
        )
        for i in range(2_000)
    ]

    def loop():
        return sum(
            XEON_GOLD_6230.latency_ns(c, fence=fence) for c in profiles
        )

    total = benchmark(loop)
    assert total > 0


def test_fence_shape_holds(amzn, workload):
    """Non-benchmark check of the Figure 15 headline: RMI's fence slowdown
    exceeds BTree's."""
    from repro.bench.harness import measure_index

    rmi = measure_index(amzn, workload, "RMI", {"branching": 512}, n_lookups=150)
    btree = measure_index(amzn, workload, "BTree", {"gap": 2}, n_lookups=150)
    rmi_slow = rmi.fence_latency_ns / rmi.latency_ns
    btree_slow = btree.fence_latency_ns / btree.latency_ns
    assert rmi_slow > btree_slow
