"""Observability companion: the cost of instrumentation, on and off.

Distils the overhead story into ``BENCH_obs.json`` so CI can hold the
PR 4 promise — *observability off by default is (near) free*:

* ``phase_marker_*`` — the calibrated overhead guard.  With profiling
  disabled every ``tracer.phase(name)`` in an index's lookup path hits
  the inherited no-op on :class:`~repro.memsim.tracer.Tracer`.  We
  count how many such calls one representative fig7-style cell makes,
  benchmark the no-op itself, benchmark the cell, and assert the
  estimated marker share of cell wall time stays under 2%.
* ``profile_on_*`` — informational: the same cell with ``profile=True``
  (PhaseTracer attribution + replay disabled), as a slowdown factor.
* ``sink_*`` — ``JsonlSink`` span-record throughput.
* ``serve_telemetry_*`` — the serving-telemetry analogue of the marker
  guard (PR 9): with telemetry off, each simulated request pays exactly
  two ``is not None`` checks in the event loop (dispatch + finish); we
  benchmark the check, a representative open-loop run, and assert the
  estimated share stays under 2%.  The telemetry-on run is recorded as
  an informational slowdown factor.

Set ``BENCH_OBS_JSON`` to redirect the output path (defaults to the
repo root).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.harness import build_index, measure
from repro.datasets import make_dataset, make_workload
from repro.memsim.tracer import PerfTracer, Tracer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The guard: no-op phase markers may cost at most this share of a cell.
MAX_MARKER_SHARE = 0.02

#: Filled by the benchmarks below, written out once the module finishes.
_RATES = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_obs_json():
    yield
    if not _RATES:  # e.g. --benchmark-disable: no stats to record
        return
    r = _RATES
    if (
        "phase_marker_calls_per_cell" in r
        and "phase_marker_noop_ns" in r
        and "cell_plain_seconds" in r
    ):
        r["phase_marker_share_of_cell"] = (
            r["phase_marker_calls_per_cell"]
            * r["phase_marker_noop_ns"]
            * 1e-9
            / r["cell_plain_seconds"]
        )
    if "cell_plain_seconds" in r and "cell_profiled_seconds" in r:
        r["profile_on_slowdown"] = (
            r["cell_profiled_seconds"] / r["cell_plain_seconds"]
        )
    if (
        "serve_telemetry_checks_per_request" in r
        and "serve_telemetry_noop_ns" in r
        and "serve_sim_plain_seconds" in r
    ):
        r["serve_telemetry_off_share"] = (
            _SIM_N_REQUESTS
            * r["serve_telemetry_checks_per_request"]
            * r["serve_telemetry_noop_ns"]
            * 1e-9
            / r["serve_sim_plain_seconds"]
        )
    if (
        "serve_sim_plain_seconds" in r
        and "serve_sim_telemetry_seconds" in r
    ):
        r["serve_telemetry_on_slowdown"] = (
            r["serve_sim_telemetry_seconds"] / r["serve_sim_plain_seconds"]
        )
    path = os.environ.get("BENCH_OBS_JSON") or os.path.join(
        REPO_ROOT, "BENCH_obs.json"
    )
    with open(path, "w") as f:
        json.dump(_RATES, f, indent=2, sort_keys=True)
        f.write("\n")


# --------------------------------------------------------------------
# The representative cell every number below is relative to.
# --------------------------------------------------------------------

_CELL_KW = dict(n_lookups=800, warmup=300, replay=False)


@pytest.fixture(scope="module")
def cell_inputs():
    ds = make_dataset("amzn", 30_000, seed=7)
    wl = make_workload(ds, 800, seed=8)
    return ds, wl


class _PhaseCountingTracer(PerfTracer):
    """PerfTracer that counts phase-marker calls instead of ignoring them."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.phase_calls = 0

    def phase(self, name):
        self.phase_calls += 1


def _count_phase_calls(ds, wl):
    """How many no-op ``tracer.phase`` calls one cell's lookups make."""
    from repro.search.last_mile import SEARCH_FUNCTIONS

    built = build_index(ds, "RMI", {"branching": 1024})
    tracer = _PhaseCountingTracer()
    search_fn = SEARCH_FUNCTIONS["binary"]
    keys = wl.keys.tolist()[: _CELL_KW["n_lookups"]]
    for key in keys:
        bound = built.index.lookup(key, tracer)
        search_fn(built.data, key, bound, tracer)
    # warmup + measured loop both pay the markers.
    per_lookup = tracer.phase_calls / len(keys)
    return per_lookup * (_CELL_KW["n_lookups"] + _CELL_KW["warmup"])


def test_phase_marker_noop(benchmark):
    """Cost of one inherited no-op ``Tracer.phase`` call."""
    tracer = PerfTracer()  # stock tracer: phase() is the base-class no-op
    assert type(tracer).phase is Tracer.phase
    phase = tracer.phase
    n = 10_000

    def loop():
        for _ in range(n):
            phase("model")

    benchmark(loop)
    if benchmark.stats is not None:
        _RATES["phase_marker_noop_ns"] = benchmark.stats.stats.mean / n * 1e9


def test_cell_plain(benchmark, cell_inputs):
    """The baseline cell, observability fully off."""
    ds, wl = cell_inputs
    built = build_index(ds, "RMI", {"branching": 1024})
    m = benchmark(measure, built, wl, profile=False, **_CELL_KW)
    assert m.latency_ns > 0
    if benchmark.stats is not None:
        _RATES["cell_plain_seconds"] = benchmark.stats.stats.mean
        _RATES["phase_marker_calls_per_cell"] = _count_phase_calls(ds, wl)


def test_cell_profiled(benchmark, cell_inputs):
    """Informational: the same cell with phase attribution on."""
    ds, wl = cell_inputs
    built = build_index(ds, "RMI", {"branching": 1024})
    m = benchmark(measure, built, wl, profile=True, **_CELL_KW)
    assert m.phases is not None
    if benchmark.stats is not None:
        _RATES["cell_profiled_seconds"] = benchmark.stats.stats.mean


def test_overhead_guard():
    """The 2% promise: no-op markers are noise on a cell's wall time.

    Runs after the two benches above (pytest collection order); skips
    under ``--benchmark-disable`` where no timings were collected.
    """
    needed = (
        "phase_marker_calls_per_cell",
        "phase_marker_noop_ns",
        "cell_plain_seconds",
    )
    if not all(k in _RATES for k in needed):
        pytest.skip("benchmarks disabled; no timings to guard")
    share = (
        _RATES["phase_marker_calls_per_cell"]
        * _RATES["phase_marker_noop_ns"]
        * 1e-9
        / _RATES["cell_plain_seconds"]
    )
    _RATES["phase_marker_share_of_cell"] = share
    assert share < MAX_MARKER_SHARE, (
        f"no-op phase markers cost {share:.2%} of a representative cell "
        f"(limit {MAX_MARKER_SHARE:.0%})"
    )


# --------------------------------------------------------------------
# Span sink throughput.
# --------------------------------------------------------------------


def _num_telemetry_checks():
    """``is not None`` checks per request with telemetry disabled.

    Pinned by inspection of :mod:`repro.serve.core`: one in
    ``_EventLoop.dispatch`` (queue-depth sampling) and one in
    ``_EventLoop.finish`` (completion accounting); the nested traces
    check only runs when a collector is attached.
    """
    import inspect

    from repro.serve.core import _EventLoop

    dispatch_src = inspect.getsource(_EventLoop.dispatch)
    finish_src = inspect.getsource(_EventLoop.finish)
    return dispatch_src.count("telemetry is not None") + finish_src.count(
        "telemetry is not None"
    )


#: Requests per serving-simulation benchmark run.
_SIM_N_REQUESTS = 2_000


def _sim_inputs():
    from repro.memsim.counters import PerfCountersF
    from repro.serve.arrivals import poisson_arrivals
    from repro.serve.core import ServiceModel

    service = ServiceModel(
        PerfCountersF(
            instructions=300, branch_misses=3.0, llc_misses=2.0, l1_hits=20.0
        )
    )
    arrivals = poisson_arrivals(2e6, _SIM_N_REQUESTS, seed=5)
    return service, arrivals


def test_serve_telemetry_check_noop(benchmark):
    """Cost of one disabled-telemetry ``is not None`` check."""

    class Holder:
        telemetry = None

    holder = Holder()
    n = 10_000

    def loop():
        hits = 0
        for _ in range(n):
            if holder.telemetry is not None:
                hits += 1  # pragma: no cover - telemetry is None
        return hits

    assert benchmark(loop) == 0
    if benchmark.stats is not None:
        _RATES["serve_telemetry_noop_ns"] = (
            benchmark.stats.stats.mean / n * 1e9
        )
        _RATES["serve_telemetry_checks_per_request"] = (
            _num_telemetry_checks()
        )


def test_serve_sim_plain(benchmark):
    """Baseline open-loop serving run, telemetry off."""
    from repro.serve.core import simulate_open_loop

    service, arrivals = _sim_inputs()
    result = benchmark(
        simulate_open_loop, service, arrivals, 2, engine="event"
    )
    assert len(result.requests) == _SIM_N_REQUESTS
    assert result.telemetry is None
    if benchmark.stats is not None:
        _RATES["serve_sim_plain_seconds"] = benchmark.stats.stats.mean


def test_serve_sim_telemetry_on(benchmark):
    """Informational: the same run with windowed telemetry attached."""
    from repro.serve.core import simulate_open_loop
    from repro.serve.telemetry import TelemetryConfig

    service, arrivals = _sim_inputs()
    cfg = TelemetryConfig(window_ns=float(arrivals[-1]) / 12.0)
    result = benchmark(
        simulate_open_loop, service, arrivals, 2, engine="event",
        telemetry=cfg,
    )
    assert result.telemetry is not None
    if benchmark.stats is not None:
        _RATES["serve_sim_telemetry_seconds"] = benchmark.stats.stats.mean


def test_serve_telemetry_overhead_guard():
    """The 2% promise for serving telemetry when disabled.

    Same shape as :func:`test_overhead_guard`: estimated cost of the
    per-request no-op checks as a share of the baseline run.
    """
    needed = (
        "serve_telemetry_checks_per_request",
        "serve_telemetry_noop_ns",
        "serve_sim_plain_seconds",
    )
    if not all(k in _RATES for k in needed):
        pytest.skip("benchmarks disabled; no timings to guard")
    assert _RATES["serve_telemetry_checks_per_request"] == 2
    share = (
        _SIM_N_REQUESTS
        * _RATES["serve_telemetry_checks_per_request"]
        * _RATES["serve_telemetry_noop_ns"]
        * 1e-9
        / _RATES["serve_sim_plain_seconds"]
    )
    _RATES["serve_telemetry_off_share"] = share
    assert share < MAX_MARKER_SHARE, (
        f"disabled serving telemetry costs {share:.2%} of a "
        f"representative run (limit {MAX_MARKER_SHARE:.0%})"
    )


def test_sink_throughput(benchmark, tmp_path):
    """JsonlSink records/second on realistic span dicts."""
    from repro.obs.sink import JsonlSink

    records = [
        {
            "sid": f"1234:{i}",
            "parent": f"1234:{i - 1}" if i else None,
            "name": "cell",
            "path": "cell",
            "pid": 1234,
            "start_ns": i * 1000,
            "wall_ns": 12_345,
            "status": "ok",
            "attrs": {"label": "RMI/amzn(branching=1024)", "cache_hit": False},
        }
        for i in range(2_000)
    ]
    path = tmp_path / "spans.jsonl"

    def write_all():
        with JsonlSink(str(path)) as sink:
            return sink.emit_many(records)

    n = benchmark(write_all)
    assert n == len(records)
    if benchmark.stats is not None:
        _RATES["sink_records_per_sec"] = len(records) / benchmark.stats.stats.mean
