"""Observability companion: the cost of instrumentation, on and off.

Distils the overhead story into ``BENCH_obs.json`` so CI can hold the
PR 4 promise — *observability off by default is (near) free*:

* ``phase_marker_*`` — the calibrated overhead guard.  With profiling
  disabled every ``tracer.phase(name)`` in an index's lookup path hits
  the inherited no-op on :class:`~repro.memsim.tracer.Tracer`.  We
  count how many such calls one representative fig7-style cell makes,
  benchmark the no-op itself, benchmark the cell, and assert the
  estimated marker share of cell wall time stays under 2%.
* ``profile_on_*`` — informational: the same cell with ``profile=True``
  (PhaseTracer attribution + replay disabled), as a slowdown factor.
* ``sink_*`` — ``JsonlSink`` span-record throughput.

Set ``BENCH_OBS_JSON`` to redirect the output path (defaults to the
repo root).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.harness import build_index, measure
from repro.datasets import make_dataset, make_workload
from repro.memsim.tracer import PerfTracer, Tracer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The guard: no-op phase markers may cost at most this share of a cell.
MAX_MARKER_SHARE = 0.02

#: Filled by the benchmarks below, written out once the module finishes.
_RATES = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_obs_json():
    yield
    if not _RATES:  # e.g. --benchmark-disable: no stats to record
        return
    r = _RATES
    if (
        "phase_marker_calls_per_cell" in r
        and "phase_marker_noop_ns" in r
        and "cell_plain_seconds" in r
    ):
        r["phase_marker_share_of_cell"] = (
            r["phase_marker_calls_per_cell"]
            * r["phase_marker_noop_ns"]
            * 1e-9
            / r["cell_plain_seconds"]
        )
    if "cell_plain_seconds" in r and "cell_profiled_seconds" in r:
        r["profile_on_slowdown"] = (
            r["cell_profiled_seconds"] / r["cell_plain_seconds"]
        )
    path = os.environ.get("BENCH_OBS_JSON") or os.path.join(
        REPO_ROOT, "BENCH_obs.json"
    )
    with open(path, "w") as f:
        json.dump(_RATES, f, indent=2, sort_keys=True)
        f.write("\n")


# --------------------------------------------------------------------
# The representative cell every number below is relative to.
# --------------------------------------------------------------------

_CELL_KW = dict(n_lookups=800, warmup=300, replay=False)


@pytest.fixture(scope="module")
def cell_inputs():
    ds = make_dataset("amzn", 30_000, seed=7)
    wl = make_workload(ds, 800, seed=8)
    return ds, wl


class _PhaseCountingTracer(PerfTracer):
    """PerfTracer that counts phase-marker calls instead of ignoring them."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.phase_calls = 0

    def phase(self, name):
        self.phase_calls += 1


def _count_phase_calls(ds, wl):
    """How many no-op ``tracer.phase`` calls one cell's lookups make."""
    from repro.search.last_mile import SEARCH_FUNCTIONS

    built = build_index(ds, "RMI", {"branching": 1024})
    tracer = _PhaseCountingTracer()
    search_fn = SEARCH_FUNCTIONS["binary"]
    keys = wl.keys.tolist()[: _CELL_KW["n_lookups"]]
    for key in keys:
        bound = built.index.lookup(key, tracer)
        search_fn(built.data, key, bound, tracer)
    # warmup + measured loop both pay the markers.
    per_lookup = tracer.phase_calls / len(keys)
    return per_lookup * (_CELL_KW["n_lookups"] + _CELL_KW["warmup"])


def test_phase_marker_noop(benchmark):
    """Cost of one inherited no-op ``Tracer.phase`` call."""
    tracer = PerfTracer()  # stock tracer: phase() is the base-class no-op
    assert type(tracer).phase is Tracer.phase
    phase = tracer.phase
    n = 10_000

    def loop():
        for _ in range(n):
            phase("model")

    benchmark(loop)
    if benchmark.stats is not None:
        _RATES["phase_marker_noop_ns"] = benchmark.stats.stats.mean / n * 1e9


def test_cell_plain(benchmark, cell_inputs):
    """The baseline cell, observability fully off."""
    ds, wl = cell_inputs
    built = build_index(ds, "RMI", {"branching": 1024})
    m = benchmark(measure, built, wl, profile=False, **_CELL_KW)
    assert m.latency_ns > 0
    if benchmark.stats is not None:
        _RATES["cell_plain_seconds"] = benchmark.stats.stats.mean
        _RATES["phase_marker_calls_per_cell"] = _count_phase_calls(ds, wl)


def test_cell_profiled(benchmark, cell_inputs):
    """Informational: the same cell with phase attribution on."""
    ds, wl = cell_inputs
    built = build_index(ds, "RMI", {"branching": 1024})
    m = benchmark(measure, built, wl, profile=True, **_CELL_KW)
    assert m.phases is not None
    if benchmark.stats is not None:
        _RATES["cell_profiled_seconds"] = benchmark.stats.stats.mean


def test_overhead_guard():
    """The 2% promise: no-op markers are noise on a cell's wall time.

    Runs after the two benches above (pytest collection order); skips
    under ``--benchmark-disable`` where no timings were collected.
    """
    needed = (
        "phase_marker_calls_per_cell",
        "phase_marker_noop_ns",
        "cell_plain_seconds",
    )
    if not all(k in _RATES for k in needed):
        pytest.skip("benchmarks disabled; no timings to guard")
    share = (
        _RATES["phase_marker_calls_per_cell"]
        * _RATES["phase_marker_noop_ns"]
        * 1e-9
        / _RATES["cell_plain_seconds"]
    )
    _RATES["phase_marker_share_of_cell"] = share
    assert share < MAX_MARKER_SHARE, (
        f"no-op phase markers cost {share:.2%} of a representative cell "
        f"(limit {MAX_MARKER_SHARE:.0%})"
    )


# --------------------------------------------------------------------
# Span sink throughput.
# --------------------------------------------------------------------


def test_sink_throughput(benchmark, tmp_path):
    """JsonlSink records/second on realistic span dicts."""
    from repro.obs.sink import JsonlSink

    records = [
        {
            "sid": f"1234:{i}",
            "parent": f"1234:{i - 1}" if i else None,
            "name": "cell",
            "path": "cell",
            "pid": 1234,
            "start_ns": i * 1000,
            "wall_ns": 12_345,
            "status": "ok",
            "attrs": {"label": "RMI/amzn(branching=1024)", "cache_hit": False},
        }
        for i in range(2_000)
    ]
    path = tmp_path / "spans.jsonl"

    def write_all():
        with JsonlSink(str(path)) as sink:
            return sink.emit_many(records)

    n = benchmark(write_all)
    assert n == len(records)
    if benchmark.stats is not None:
        _RATES["sink_records_per_sec"] = len(records) / benchmark.stats.stats.mean
