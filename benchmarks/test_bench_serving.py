"""ext_serving companion: wall-clock speed of the serving subsystem.

Besides the usual pytest-benchmark timings, this module distils the two
headline rates into ``BENCH_serving.json`` — ``cells_per_sec`` (full
ext_serving measurement cells, end to end) and ``sim_events_per_sec``
(discrete events through the event loop: one arrival + one finish per
request, plus steals) — so CI can track a perf trajectory for the
serving subsystem.  Set ``BENCH_SERVING_JSON`` to redirect the output
path (defaults to the repo root).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.experiments import ext_serving
from repro.bench.harness import measure_index
from repro.serve import (
    ServiceModel,
    poisson_arrivals,
    simulate_open_loop,
    throughput,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Filled by the benchmarks below, written out once the module finishes.
_RATES = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_serving_json():
    yield
    if not _RATES:  # e.g. --benchmark-disable: no stats to record
        return
    path = os.environ.get("BENCH_SERVING_JSON") or os.path.join(
        REPO_ROOT, "BENCH_serving.json"
    )
    with open(path, "w") as f:
        json.dump(_RATES, f, indent=2, sort_keys=True)
        f.write("\n")


def test_open_loop_simulator(benchmark, amzn, workload):
    """Event-loop throughput at 70% load on 4 simulated cores."""
    m = measure_index(amzn, workload, "RMI", {"branching": 512}, n_lookups=150)
    service = ServiceModel(m.counters)
    rate = 0.7 * throughput(m, 4).lookups_per_sec
    arrivals = poisson_arrivals(rate, 5_000, seed=0)
    result = benchmark(simulate_open_loop, service, arrivals, n_cores=4)
    assert len(result.requests) == 5_000
    if benchmark.stats is not None:
        events = 2 * len(result.requests) + result.total_steals
        _RATES["sim_events_per_sec"] = events / benchmark.stats.stats.mean


def test_serving_measurement_cell(benchmark, settings):
    """One ext_serving grid cell, end to end (dataset prebuilt)."""
    cell = ext_serving.cells(settings)[0]
    dataset, workload = cell.materialize()
    m = benchmark(cell.run, dataset, workload)
    assert m.latency_ns > 0
    if benchmark.stats is not None:
        _RATES["cells_per_sec"] = 1.0 / benchmark.stats.stats.mean
