"""ext_serving companion: wall-clock speed of the serving subsystem.

Besides the usual pytest-benchmark timings, this module distils the
headline rates into ``BENCH_serving.json`` so CI can track a perf
trajectory for the serving subsystem:

* ``cells_per_sec`` — full ext_serving measurement cells, end to end;
* ``sim_events_per_sec`` / ``sim_events_per_sec_fast`` — discrete
  events per second through each serving engine on the single-queue
  open-loop microbench (the fast engine runs the vectorized Lindley
  kernel there);
* ``cluster_requests_per_sec_event`` / ``_fast`` — sharded-cluster
  simulation throughput per engine (the fast engine's sealed event
  queue; the kernel does not apply);
* ``selector_sweep_*_seconds`` — wall-clock of an SLO candidate sweep
  routed through ``run_sim_tasks``: cold at ``--jobs 1``, cold at
  ``--jobs 4``, and replayed from a warm ``SimResultCache``.

Set ``BENCH_SERVING_JSON`` to redirect the output path (defaults to
the repo root).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.cache import SimResultCache
from repro.bench.experiments import ext_serving
from repro.bench.harness import measure_index
from repro.memsim.counters import PerfCountersF
from repro.serve import (
    ServiceModel,
    poisson_arrivals,
    simulate_open_loop,
    throughput,
)
from repro.serve.cluster import Cluster, simulate_cluster
from repro.serve.router import RouterPolicy, ShardMap
from repro.serve.selector import select_under_slo
from repro.serve.sweep import clear_sim_results

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Filled by the benchmarks below, written out once the module finishes.
_RATES = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_serving_json():
    yield
    if not _RATES:  # e.g. --benchmark-disable: no stats to record
        return
    if "sim_events_per_sec" in _RATES and "sim_events_per_sec_fast" in _RATES:
        _RATES["fast_engine_speedup"] = (
            _RATES["sim_events_per_sec_fast"] / _RATES["sim_events_per_sec"]
        )
    cold = _RATES.get("selector_sweep_cold_jobs1_seconds")
    warm = _RATES.get("selector_sweep_warm_jobs4_seconds")
    if cold and warm:
        _RATES["selector_sweep_speedup"] = cold / warm
    path = os.environ.get("BENCH_SERVING_JSON") or os.path.join(
        REPO_ROOT, "BENCH_serving.json"
    )
    with open(path, "w") as f:
        json.dump(_RATES, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# open-loop engines
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def rmi_service(amzn, workload):
    m = measure_index(amzn, workload, "RMI", {"branching": 512}, n_lookups=150)
    return m, ServiceModel(m.counters)


@pytest.mark.parametrize("engine", ["event", "fast"])
def test_open_loop_engine(benchmark, rmi_service, engine):
    """Single-queue open loop at 70% load: the fast engine's Lindley
    kernel vs the reference heapq event loop."""
    m, service = rmi_service
    rate = 0.7 * throughput(m, 1).lookups_per_sec
    arrivals = poisson_arrivals(rate, 5_000, seed=0)
    result = benchmark(
        simulate_open_loop, service, arrivals, n_cores=1, engine=engine
    )
    assert len(result.requests) == 5_000
    if benchmark.stats is not None:
        events = 2 * len(result.requests) + result.total_steals
        key = "sim_events_per_sec" + ("" if engine == "event" else "_fast")
        _RATES[key] = events / benchmark.stats.stats.mean


# ---------------------------------------------------------------------------
# sharded cluster engines
# ---------------------------------------------------------------------------

N_CLUSTER_REQ = 2_500


def _cluster_run(engine):
    rate = 4e6
    span = N_CLUSTER_REQ / rate * 1e9
    cluster = Cluster(
        shard_map=ShardMap([0, 500]),
        services=[
            ServiceModel(PerfCountersF(instructions=300, llc_misses=2.0)),
            ServiceModel(PerfCountersF(instructions=400, llc_misses=3.0)),
        ],
        n_replicas=2,
        n_cores=2,
        policy=RouterPolicy(hedge_after_ns=span / 100.0),
        faults=None,
    )
    arrivals = poisson_arrivals(rate, N_CLUSTER_REQ, seed=0)
    keys = [(13 * i) % 1000 for i in range(N_CLUSTER_REQ)]
    return simulate_cluster(cluster, arrivals, keys, engine=engine)


@pytest.mark.parametrize("engine", ["event", "fast"])
def test_cluster_engine(benchmark, engine):
    """Sharded, replicated, hedged cluster: the kernel never applies, so
    this times the sealed-queue event loop against the reference."""
    result = benchmark(_cluster_run, engine)
    assert len(result.records) == N_CLUSTER_REQ
    if benchmark.stats is not None:
        _RATES[f"cluster_requests_per_sec_{engine}"] = (
            N_CLUSTER_REQ / benchmark.stats.stats.mean
        )


# ---------------------------------------------------------------------------
# parallel, cached selector sweeps
# ---------------------------------------------------------------------------


class _Candidate:
    """Duck-typed measurement: a priced index config for the selector."""

    def __init__(self, name, size_bytes, instructions, llc_misses):
        self.index = name
        self.config = {}
        self.size_bytes = size_bytes
        self.counters = PerfCountersF(
            instructions=instructions,
            llc_misses=llc_misses,
            l1_hits=20.0,
            branch_misses=3.0,
        )


def _fleet():
    return [
        _Candidate(f"C{k}", 1 << (12 + k), 200.0 + 40.0 * k, 6.0 - 0.5 * k)
        for k in range(10)
    ]


SWEEP_KW = dict(
    offered_per_sec=2e6,
    p99_slo_ns=80_000.0,
    n_requests=2_000,
    seed=0,
    n_cores=2,
)


@pytest.fixture(scope="module")
def sweep_cache(tmp_path_factory):
    return SimResultCache(str(tmp_path_factory.mktemp("bench") / "serving"))


def _sweep(jobs, cache):
    clear_sim_results()
    return select_under_slo(_fleet(), jobs=jobs, sim_cache=cache, **SWEEP_KW)


def _pedantic_sweep(benchmark, jobs, cache):
    sel = benchmark.pedantic(
        _sweep, args=(jobs, cache), rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(sel.candidates) == len(_fleet())
    return benchmark.stats.stats.mean if benchmark.stats is not None else None


def test_selector_sweep_cold_jobs1(benchmark, tmp_path):
    """10-candidate SLO sweep, serial, empty cache: the baseline."""
    mean = _pedantic_sweep(
        benchmark, 1, SimResultCache(str(tmp_path / "serving"))
    )
    if mean is not None:
        _RATES["selector_sweep_cold_jobs1_seconds"] = mean


def test_selector_sweep_cold_jobs4(benchmark, sweep_cache):
    """Same sweep fanned out over a 4-worker process pool (and priming
    the module cache for the warm-replay bench below)."""
    mean = _pedantic_sweep(benchmark, 4, sweep_cache)
    if mean is not None:
        _RATES["selector_sweep_cold_jobs4_seconds"] = mean


def test_selector_sweep_warm_jobs4(benchmark, sweep_cache):
    """Replay of the sweep from the persistent cache: zero simulations."""
    mean = _pedantic_sweep(benchmark, 4, sweep_cache)
    assert sweep_cache.hits >= len(_fleet())
    if mean is not None:
        _RATES["selector_sweep_warm_jobs4_seconds"] = mean


# ---------------------------------------------------------------------------
# end-to-end measurement cell
# ---------------------------------------------------------------------------


def test_serving_measurement_cell(benchmark, settings):
    """One ext_serving grid cell, end to end (dataset prebuilt)."""
    cell = ext_serving.cells(settings)[0]
    dataset, workload = cell.materialize()
    m = benchmark(cell.run, dataset, workload)
    assert m.latency_ns > 0
    if benchmark.stats is not None:
        _RATES["cells_per_sec"] = 1.0 / benchmark.stats.stats.mean
