"""Section 4.3 companion: OLS analysis throughput."""

import numpy as np

from repro.bench.stats import ols


def test_ols(benchmark):
    rng = np.random.default_rng(0)
    n = 5_000
    x1 = rng.normal(size=n)
    x2 = rng.normal(size=n)
    x3 = rng.normal(size=n)
    y = 1.0 + 2.0 * x1 + 0.5 * x2 - 1.5 * x3 + rng.normal(scale=0.1, size=n)
    r = benchmark(ols, {"a": x1, "b": x2, "c": x3}, y)
    assert r.r_squared > 0.99
