"""Extension benches: updatable learned structures (DynamicPGM, ALEX)."""

import random

import pytest

from repro.learned.alex import AlexIndex
from repro.learned.dynamic_pgm import DynamicPGM


@pytest.fixture(scope="module")
def insert_workload():
    rng = random.Random(11)
    return [(rng.randrange(1 << 44), i) for i in range(5_000)]


def test_dynamic_pgm_inserts(benchmark, insert_workload):
    def run():
        d = DynamicPGM(epsilon=32, buffer_capacity=256)
        for key, value in insert_workload:
            d.insert(key, value)
        return d

    d = benchmark(run)
    assert len(d) > 4_900


def test_alex_inserts(benchmark, insert_workload):
    def run():
        alex = AlexIndex(n_buckets=128, target_node_keys=256)
        for key, value in insert_workload:
            alex.insert(key, value)
        return alex

    alex = benchmark(run)
    assert len(alex) > 4_900


def test_dynamic_pgm_gets(benchmark, insert_workload):
    d = DynamicPGM(epsilon=32, buffer_capacity=256)
    for key, value in insert_workload:
        d.insert(key, value)
    keys = [k for k, _ in insert_workload[:1_000]]

    def run():
        return sum(d.get(k) is not None for k in keys)

    assert benchmark(run) == 1_000


def test_alex_gets(benchmark, insert_workload):
    alex = AlexIndex(n_buckets=128, target_node_keys=256)
    for key, value in insert_workload:
        alex.insert(key, value)
    keys = [k for k, _ in insert_workload[:1_000]]

    def run():
        return sum(alex.get(k) is not None for k in keys)

    assert benchmark(run) == 1_000


@pytest.mark.parametrize("index_name", ["RMI3", "FITing"])
def test_extension_index_lookups(benchmark, amzn, workload, index_name):
    from repro.bench.harness import build_index
    from conftest import lookup_loop

    config = {
        "RMI3": {"branching": 1024, "mid_branching": 32},
        "FITing": {"epsilon": 64},
    }[index_name]
    built = build_index(amzn, index_name, config)
    checksum = benchmark(lookup_loop, built, workload.keys_py)
    assert checksum == sum(workload.positions_py)


def test_vectorized_pla_speedup(amzn):
    """The vectorized fit must beat the reference by a wide margin."""
    import time

    from repro.learned.fitting_fast import fit_pla_fast
    from repro.learned.pla import fit_pla

    start = time.perf_counter()
    fast = fit_pla_fast(amzn.keys, 32.0)
    fast_s = time.perf_counter() - start
    start = time.perf_counter()
    ref = fit_pla(amzn.keys.tolist(), 32.0)
    ref_s = time.perf_counter() - start
    assert len(fast) == len(ref)
    assert fast_s < ref_s
