"""Memsim engine companion: wall-clock speed of the simulated CPU.

Distils the engine speedups into ``BENCH_memsim.json`` so CI can track
the perf trajectory of the tentpole (fast engine + trace replay):

* ``hot_*`` — the memsim access microbenchmark: a sequential 8-byte
  scan of an L1-resident 16 KiB buffer (7 of 8 accesses re-touch the
  line the previous access left MRU), driven through each engine
  per-call and through batch replay of its recorded trace.  The
  headline ``hot_speedup`` compares the reference engine's per-call
  rate (its only mode) against fast-engine replay (the batch mechanism
  the harness actually uses for repeated execution).
* ``mixed_*`` — replay of a real recorded RMI lookup stream (reads,
  branches and instr events in their natural proportions), in raw
  events/second on both engines.
* ``cell_*`` — a representative fig7-style measurement cell end to
  end: steady-state ``measure(..., replay=True)`` under each engine,
  plus the pre-engine baseline (reference engine, no replay) that
  ``cell_speedup`` is measured against.

Set ``BENCH_MEMSIM_JSON`` to redirect the output path (defaults to the
repo root).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.harness import build_index, measure
from repro.datasets import make_dataset, make_workload
from repro.memsim import PerfTracer, SiteInterner, TraceRecorder
from repro.search.last_mile import SEARCH_FUNCTIONS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Filled by the benchmarks below, written out once the module finishes.
_RATES = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_memsim_json():
    yield
    if not _RATES:  # e.g. --benchmark-disable: no stats to record
        return
    r = _RATES
    if "hot_ref_percall_ns_per_access" in r:
        if "hot_fast_replay_ns_per_access" in r:
            r["hot_speedup"] = (
                r["hot_ref_percall_ns_per_access"]
                / r["hot_fast_replay_ns_per_access"]
            )
        if "hot_fast_percall_ns_per_access" in r:
            r["hot_percall_speedup"] = (
                r["hot_ref_percall_ns_per_access"]
                / r["hot_fast_percall_ns_per_access"]
            )
    if (
        "cell_ref_direct_cells_per_sec" in r
        and "cell_fast_replay_cells_per_sec" in r
    ):
        r["cell_speedup"] = (
            r["cell_fast_replay_cells_per_sec"]
            / r["cell_ref_direct_cells_per_sec"]
        )
    path = os.environ.get("BENCH_MEMSIM_JSON") or os.path.join(
        REPO_ROOT, "BENCH_memsim.json"
    )
    with open(path, "w") as f:
        json.dump(_RATES, f, indent=2, sort_keys=True)
        f.write("\n")


# --------------------------------------------------------------------
# The access microbenchmark: sequential scan of an L1-resident buffer.
# --------------------------------------------------------------------

#: 16 KiB scanned in 8-byte strides, four passes: fits L1, maximizes
#: the same-line locality every warm lookup loop exhibits.
_HOT_ADDRS = [
    base + off
    for _ in range(4)
    for base in range(0, 16_384, 4_096)
    for off in range(0, 4_096, 8)
]


def _drive_percall(tracer):
    read = tracer.read
    for a in _HOT_ADDRS:
        read(a, 8)
    return tracer


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_hot_access_percall(benchmark, engine):
    tracer = PerfTracer(engine=engine)
    benchmark(_drive_percall, tracer)
    assert tracer.counters.reads > 0
    if benchmark.stats is not None:
        ns = benchmark.stats.stats.mean / len(_HOT_ADDRS) * 1e9
        _RATES[f"hot_{'ref' if engine == 'reference' else 'fast'}_percall_ns_per_access"] = ns


def test_hot_access_fast_replay(benchmark):
    """The fast engine's batch mode on the recorded hot stream."""
    sites = SiteInterner()
    rec = TraceRecorder(sites=sites)
    _drive_percall(rec)
    trace = rec.finish()
    tracer = PerfTracer(engine="fast", sites=sites)
    benchmark(tracer.replay, trace)
    assert tracer.counters.reads >= len(_HOT_ADDRS)
    if benchmark.stats is not None:
        ns = benchmark.stats.stats.mean / len(_HOT_ADDRS) * 1e9
        _RATES["hot_fast_replay_ns_per_access"] = ns
        _RATES["hot_trace_compression"] = len(_HOT_ADDRS) / len(trace)


# --------------------------------------------------------------------
# Replay of a real mixed lookup stream (reads + branches + instr).
# --------------------------------------------------------------------


class _CountingTee:
    """Forwarding tracer that counts raw (uncompressed) events."""

    def __init__(self, inner):
        self.inner = inner
        self.n = 0

    def read(self, addr, size=8):
        self.n += 1
        self.inner.read(addr, size)

    def instr(self, n=1):
        self.n += 1
        self.inner.instr(n)

    def branch(self, site, taken):
        self.n += 1
        self.inner.branch(site, taken)


@pytest.fixture(scope="module")
def mixed_trace(amzn, workload):
    built = build_index(amzn, "RMI", {"branching": 1024})
    index, data = built.index, built.data
    search_fn = SEARCH_FUNCTIONS["binary"]
    sites = SiteInterner()
    tee = _CountingTee(TraceRecorder(sites=sites))
    for key in workload.keys.tolist():
        bound = index.lookup(key, tee)
        search_fn(data, key, bound, tee)
    return tee.inner.finish(), sites, tee.n


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_mixed_trace_replay(benchmark, mixed_trace, engine):
    trace, sites, n_raw = mixed_trace
    tracer = PerfTracer(engine=engine, sites=sites)
    benchmark(tracer.replay, trace)
    if benchmark.stats is not None:
        rate = n_raw / benchmark.stats.stats.mean
        key = "ref" if engine == "reference" else "fast"
        _RATES[f"mixed_{key}_replay_events_per_sec"] = rate


# --------------------------------------------------------------------
# Representative fig7 cell, end to end.
# --------------------------------------------------------------------

_CELL_KW = dict(n_lookups=1_000, warmup=500)


@pytest.fixture(scope="module")
def cell_inputs():
    ds = make_dataset("amzn", 50_000, seed=7)
    wl = make_workload(ds, 1_000, seed=8)
    return ds, wl


@pytest.mark.parametrize(
    "engine,replay",
    [("reference", False), ("reference", True), ("fast", True)],
    ids=["ref-direct", "ref-replay", "fast-replay"],
)
def test_cell_steady_state(benchmark, cell_inputs, engine, replay):
    """Steady-state measurement of one RMI/amzn cell (post-record)."""
    ds, wl = cell_inputs
    built = build_index(ds, "RMI", {"branching": 1024})
    measure(built, wl, engine=engine, replay=replay, **_CELL_KW)  # record
    m = benchmark(measure, built, wl, engine=engine, replay=replay, **_CELL_KW)
    assert m.latency_ns > 0
    if benchmark.stats is not None:
        rate = 1.0 / benchmark.stats.stats.mean
        key = {
            ("reference", False): "cell_ref_direct_cells_per_sec",
            ("reference", True): "cell_ref_replay_cells_per_sec",
            ("fast", True): "cell_fast_replay_cells_per_sec",
        }[(engine, replay)]
        _RATES[key] = rate
