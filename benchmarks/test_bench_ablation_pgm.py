"""Ablation: PGM epsilon per level (DESIGN.md)."""

import pytest

from repro.bench.harness import build_index
from conftest import lookup_loop


@pytest.mark.parametrize("epsilon", [8, 64, 512])
def test_bottom_epsilon(benchmark, amzn, workload, epsilon):
    built = build_index(amzn, "PGM", {"epsilon": epsilon})
    checksum = benchmark(lookup_loop, built, workload.keys_py)
    assert checksum == sum(workload.positions_py)


@pytest.mark.parametrize("eps_internal", [2, 4, 16])
def test_internal_epsilon(benchmark, amzn, workload, eps_internal):
    built = build_index(
        amzn, "PGM", {"epsilon": 64, "epsilon_internal": eps_internal}
    )
    checksum = benchmark(lookup_loop, built, workload.keys_py)
    assert checksum == sum(workload.positions_py)
