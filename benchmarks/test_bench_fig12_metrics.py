"""Figure 12 companion: traced measurement (simulator) throughput.

The counter-collection pipeline is what every experiment driver runs; its
wall-clock cost determines how large the paper-shape sweeps can be.
"""

import pytest

from repro.bench.harness import build_index, measure
from repro.memsim import PerfTracer


@pytest.mark.parametrize("index_name", ["RMI", "BTree"])
def test_traced_measurement(benchmark, amzn, workload, index_name):
    config = {"RMI": {"branching": 512}, "BTree": {"gap": 2}}[index_name]
    built = build_index(amzn, index_name, config)
    m = benchmark(
        measure, built, workload, n_lookups=150, warmup=50
    )
    assert m.latency_ns > 0


def test_cache_simulator_throughput(benchmark):
    """Raw simulator speed: accesses per second through all three levels."""
    from repro.memsim.cache import CacheHierarchy

    addrs = [(i * 4049) % (1 << 22) for i in range(4_000)]

    def loop():
        h = CacheHierarchy()
        total = 0
        for a in addrs:
            total += h.access_addr(a)
        return total

    assert benchmark(loop) > 0


def test_branch_predictor_throughput(benchmark):
    from repro.memsim.branch import BranchPredictor

    outcomes = [(i * 7) % 3 == 0 for i in range(5_000)]

    def loop():
        p = BranchPredictor()
        return sum(p.predict_and_update("s", t) for t in outcomes)

    assert benchmark(loop) >= 0
