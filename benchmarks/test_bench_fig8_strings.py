"""Figure 8 companion: string-structure (FST, Wormhole) lookup loops."""

import pytest

from conftest import lookup_loop


@pytest.mark.parametrize("index_name", ["FST", "Wormhole", "RMI", "BTree"])
def test_string_structure_lookups(benchmark, built_indexes, workload, index_name):
    built = built_indexes[index_name]
    checksum = benchmark(lookup_loop, built, workload.keys_py)
    assert checksum == sum(workload.positions_py)
