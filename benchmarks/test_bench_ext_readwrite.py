"""Extension bench: mixed read/write throughput per store."""

import pytest

from repro.bench.readwrite import default_stores, make_mixed_workload, run_mixed


@pytest.fixture(scope="module")
def workloads():
    return {
        mix: make_mixed_workload(1_500, mix, n_preload=3_000, seed=17)
        for mix in (0.95, 0.05)
    }


@pytest.mark.parametrize("mix", [0.95, 0.05], ids=["read95", "read05"])
@pytest.mark.parametrize("store_name", sorted(default_stores()))
def test_mixed_throughput(benchmark, workloads, store_name, mix):
    factory = default_stores()[store_name]
    wl = workloads[mix]
    result = benchmark(run_mixed, store_name, factory, wl)
    assert result.reads_hit >= 0
