"""Table 2 companion: hash-table point lookups on 32-bit amzn."""

import pytest

from repro.bench.harness import build_index
from repro.datasets import make_workload


@pytest.fixture(scope="module")
def hash_setup(amzn32):
    wl = make_workload(amzn32, 500, seed=5, mode="present")
    return amzn32, wl


@pytest.mark.parametrize("index_name", ["CuckooMap", "RobinHash"])
def test_hash_point_lookups(benchmark, hash_setup, index_name):
    ds, wl = hash_setup
    built = build_index(ds, index_name, {})
    index = built.index

    def loop():
        total = 0
        for key in wl.keys_py:
            total += index.lookup(key).lo
        return total

    checksum = benchmark(loop)
    assert checksum == sum(wl.positions_py)


def test_rmi_comparison_point(benchmark, hash_setup):
    """The RMI row of Table 2 (fastest ordered structure)."""
    from conftest import lookup_loop

    ds, wl = hash_setup
    built = build_index(ds, "RMI", {"branching": 2048})
    checksum = benchmark(lookup_loop, built, wl.keys_py)
    assert checksum == sum(wl.positions_py)
