"""Figure 11 companion: last-mile search function loops."""

import pytest

from repro.bench.harness import build_index
from repro.datasets import make_workload
from repro.search.last_mile import SEARCH_FUNCTIONS


@pytest.mark.parametrize("search", sorted(SEARCH_FUNCTIONS))
@pytest.mark.parametrize("dataset_fixture", ["amzn", "osm"])
def test_last_mile_loop(benchmark, request, search, dataset_fixture):
    ds = request.getfixturevalue(dataset_fixture)
    wl = make_workload(ds, 400, seed=10)
    built = build_index(ds, "RS", {"epsilon": 128, "radix_bits": 8})
    index, data = built.index, built.data
    fn = SEARCH_FUNCTIONS[search]

    def loop():
        total = 0
        for key in wl.keys_py:
            total += fn(data, key, index.lookup(key))
        return total

    checksum = benchmark(loop)
    assert checksum == sum(wl.positions_py)
