"""Vector engine companion: batched replay + model kernels, wall clock.

Distils the vector tentpole's speedups into ``BENCH_vector.json`` so CI
can track the perf trajectory:

* ``cell_*`` — the representative fig7 measurement cell (RMI/amzn,
  1000 lookups + 500 warmup) end to end, steady state: the fast engine
  direct (the fig7 grid's configuration), the fast engine with trace
  replay (its best repeated-execution mode), and the vector engine's
  batched path (kernel-synthesized streams + compiled plans + replay
  memoization).  ``cell_vector_speedup`` is the headline vector-vs-fast
  number; ``cell_vector_vs_fast_replay`` compares against fast's best.
* ``kernel_*`` — batch-predict kernels in keys/second: RMI, PGM and RS
  ``batch_bounds`` over a large sorted probe batch versus the scalar
  ``index.lookup`` loop on the same keys.

Set ``BENCH_VECTOR_JSON`` to redirect the output path (defaults to the
repo root).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bench.harness import build_index, measure
from repro.datasets import make_dataset, make_workload
from repro.learned import kernels
from repro.memsim.tracer import NULL_TRACER

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Filled by the benchmarks below, written out once the module finishes.
_RATES = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_vector_json():
    yield
    if not _RATES:  # e.g. --benchmark-disable: no stats to record
        return
    r = _RATES
    if "cell_vector_cells_per_sec" in r:
        if "cell_fast_cells_per_sec" in r:
            r["cell_vector_speedup"] = (
                r["cell_vector_cells_per_sec"] / r["cell_fast_cells_per_sec"]
            )
        if "cell_fast_replay_cells_per_sec" in r:
            r["cell_vector_vs_fast_replay"] = (
                r["cell_vector_cells_per_sec"]
                / r["cell_fast_replay_cells_per_sec"]
            )
    for name in ("rmi", "pgm", "rs"):
        batch = r.get(f"kernel_{name}_keys_per_sec")
        scalar = r.get(f"kernel_{name}_scalar_keys_per_sec")
        if batch and scalar:
            r[f"kernel_{name}_speedup"] = batch / scalar
    path = os.environ.get("BENCH_VECTOR_JSON") or os.path.join(
        REPO_ROOT, "BENCH_vector.json"
    )
    with open(path, "w") as f:
        json.dump(_RATES, f, indent=2, sort_keys=True)
        f.write("\n")


# --------------------------------------------------------------------
# Representative fig7 cell, end to end.
# --------------------------------------------------------------------

_CELL_KW = dict(n_lookups=1_000, warmup=500)


@pytest.fixture(scope="module")
def cell_inputs():
    ds = make_dataset("amzn", 50_000, seed=7)
    wl = make_workload(ds, 1_000, seed=8)
    return ds, wl


@pytest.mark.parametrize(
    "engine,replay,key",
    [
        ("fast", False, "cell_fast_cells_per_sec"),
        ("fast", True, "cell_fast_replay_cells_per_sec"),
        ("vector", False, "cell_vector_cells_per_sec"),
    ],
    ids=["fast", "fast-replay", "vector"],
)
def test_cell_steady_state(benchmark, cell_inputs, engine, replay, key):
    """Steady-state measurement of one RMI/amzn fig7 cell."""
    ds, wl = cell_inputs
    built = build_index(ds, "RMI", {"branching": 1024})
    # Prime: records traces (fast+replay) / synthesizes the batch and
    # populates plans + replay memos (vector).
    m0 = measure(built, wl, engine=engine, replay=replay, **_CELL_KW)
    m = benchmark(measure, built, wl, engine=engine, replay=replay, **_CELL_KW)
    assert m.counters == m0.counters  # steady state is byte-stable
    if benchmark.stats is not None:
        _RATES[key] = 1.0 / benchmark.stats.stats.mean


# --------------------------------------------------------------------
# Batch-predict kernels vs the scalar model phase.
# --------------------------------------------------------------------

_KERNEL_CONFIGS = [
    ("rmi", "RMI", {"branching": 1024}),
    ("pgm", "PGM", {"epsilon": 64}),
    ("rs", "RS", {"epsilon": 32, "radix_bits": 14}),
]

_N_PROBES = 50_000


@pytest.fixture(scope="module")
def kernel_inputs():
    ds = make_dataset("amzn", 100_000, seed=7)
    rng = np.random.default_rng(9)
    probes = rng.choice(ds.keys, _N_PROBES).astype(np.uint64)
    probes[::7] += 1  # absent keys in the mix
    return ds, np.sort(probes)


@pytest.mark.parametrize(
    "name,index_name,config", _KERNEL_CONFIGS, ids=[c[0] for c in _KERNEL_CONFIGS]
)
def test_kernel_batch_bounds(benchmark, kernel_inputs, name, index_name, config):
    ds, probes = kernel_inputs
    built = build_index(ds, index_name, config)
    lo, hi = benchmark(kernels.batch_bounds, built.index, probes)
    assert len(lo) == len(probes) and (lo <= hi).all()
    if benchmark.stats is not None:
        _RATES[f"kernel_{name}_keys_per_sec"] = (
            len(probes) / benchmark.stats.stats.mean
        )


@pytest.mark.parametrize(
    "name,index_name,config", _KERNEL_CONFIGS, ids=[c[0] for c in _KERNEL_CONFIGS]
)
def test_kernel_scalar_baseline(benchmark, kernel_inputs, name, index_name, config):
    ds, probes = kernel_inputs
    built = build_index(ds, index_name, config)
    index = built.index
    keys = probes.tolist()[: _N_PROBES // 10]  # scalar is slow; scale rate

    def scalar_loop():
        lookup = index.lookup
        for k in keys:
            lookup(k, NULL_TRACER)

    benchmark(scalar_loop)
    if benchmark.stats is not None:
        _RATES[f"kernel_{name}_scalar_keys_per_sec"] = (
            len(keys) / benchmark.stats.stats.mean
        )
