"""Figure 10 companion: 32-bit vs 64-bit key lookup loops."""

import pytest

from repro.bench.harness import build_index
from repro.datasets import make_dataset, make_workload
from conftest import lookup_loop

CONFIGS = {
    "RMI": {"branching": 512},
    "RS": {"epsilon": 64, "radix_bits": 10},
    "PGM": {"epsilon": 64},
    "BTree": {"gap": 2},
    "FAST": {"gap": 2},
}


@pytest.mark.parametrize("bits", [64, 32])
@pytest.mark.parametrize("index_name", sorted(CONFIGS))
def test_keysize_lookup_loop(benchmark, bits, index_name):
    ds = make_dataset("amzn", 15_000, seed=8, key_bits=bits)
    wl = make_workload(ds, 300, seed=9)
    built = build_index(ds, index_name, CONFIGS[index_name])
    checksum = benchmark(lookup_loop, built, wl.keys_py)
    assert checksum == sum(wl.positions_py)
