"""Keep the documentation honest: files, ids and names it references exist."""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO / "README.md").read_text()

    def test_examples_listed_exist(self, readme):
        for match in re.findall(r"`examples/(\w+\.py)`", readme):
            assert (REPO / "examples" / match).exists(), match

    def test_docs_listed_exist(self, readme):
        for match in re.findall(r"`docs/(\w+\.md)`", readme):
            assert (REPO / "docs" / match).exists(), match

    def test_experiment_ids_valid(self, readme):
        from repro.bench.experiments import EXPERIMENTS

        block = re.search(r"Ids: `([^`]+)`", readme)
        assert block is not None
        for exp_id in block.group(1).split():
            assert exp_id in EXPERIMENTS, exp_id

    def test_quickstart_snippet_runs(self, readme):
        """The README's first code block must actually execute."""
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks
        snippet = blocks[0].replace("100_000", "5_000").replace("12_345", "1_234")
        namespace = {}
        exec(snippet, namespace)  # noqa: S102 - executing our own docs
        assert namespace["position"] == 1_234


class TestDesignDoc:
    @pytest.fixture(scope="class")
    def design(self):
        return (REPO / "DESIGN.md").read_text()

    def test_modules_in_inventory_exist(self, design):
        for match in re.findall(r"`repro/([\w/]+\.py)`", design):
            assert (REPO / "src" / "repro" / match).exists(), match

    def test_experiment_index_ids_exist(self, design):
        from repro.bench.experiments import EXPERIMENTS

        for exp_id in re.findall(r"\| `((?:fig|table|sec|ext)[\w.]+)` \|", design):
            assert exp_id in EXPERIMENTS, exp_id

    def test_bench_targets_exist(self, design):
        for match in re.findall(r"`benchmarks/(test_bench_\w+\.py)`", design):
            assert (REPO / "benchmarks" / match).exists(), match

    def test_paper_confirmation_present(self, design):
        assert "Benchmarking Learned" in design
        assert "Marcus" in design


class TestExperimentsDoc:
    def test_every_paper_artifact_has_a_section(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in (
            "Table 1", "Table 2", "Figure 6", "Figure 7", "Figure 8",
            "Figure 9", "Figure 10", "Figure 11", "Figure 12", "Figure 13",
            "Figure 14", "Figure 15", "Figure 16", "Figure 17", "Section 4.3",
        ):
            assert artifact in text, artifact

    def test_deviations_are_marked(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "🔶" in text  # honest deviations recorded
