"""FAST (SIMD-blocked tree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.traditional.fast import FASTIndex
from repro.memsim import PerfTracer

from conftest import build


class TestFASTValidity:
    @pytest.mark.parametrize("gap", [1, 4, 32])
    def test_valid_on_all_datasets(self, all_datasets_small, gap):
        for name, ds in all_datasets_small.items():
            idx = build("FAST", ds, gap=gap)
            probes = list(ds.keys[::39]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, name

    def test_extreme_probes(self, amzn_small, extreme_probe_keys):
        idx = build("FAST", amzn_small, gap=2)
        assert validate_index(idx, extreme_probe_keys) is None

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=200, unique=True),
        st.integers(0, 2**64 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_validity_property(self, keys, probe):
        keys.sort()
        idx = FASTIndex(gap=2).build(np.array(keys, dtype=np.uint64))
        assert validate_index(idx, [probe]) is None


class TestFASTProfile:
    def test_branch_free(self, amzn_small):
        """FAST's defining property: no data-dependent branches."""
        idx = build("FAST", amzn_small, gap=1)
        t = PerfTracer()
        for key in amzn_small.keys[::53]:
            idx.lookup(int(key), t)
        assert t.counters.branches == 0
        assert t.counters.branch_misses == 0

    def test_32bit_keys_use_fewer_simd_ops(self, amzn_small):
        keys64 = amzn_small.keys
        keys32 = (keys64 >> np.uint64(32)).astype(np.uint32)
        keys32 = np.unique(keys32)
        idx64 = FASTIndex(gap=1).build(keys64)
        idx32 = FASTIndex(gap=1).build(keys32)
        assert idx32._simd_ops_per_node < idx64._simd_ops_per_node

    def test_32bit_keys_halve_size(self, amzn_small):
        keys64 = amzn_small.keys
        keys32 = keys64.astype(np.uint32)  # test helper; values truncated
        idx64 = FASTIndex(gap=1).build(keys64)
        idx32 = FASTIndex(gap=1).build(np.unique(keys32))
        assert idx32.size_bytes() < idx64.size_bytes()

    def test_fewer_reads_than_btree(self, amzn_small):
        """Blocked SIMD nodes read whole nodes, not per-key probes."""
        from repro.traditional.btree import BTreeIndex

        fast = build("FAST", amzn_small, gap=1)
        btree = build("BTree", amzn_small, gap=1)
        tf, tb = PerfTracer(), PerfTracer()
        for key in amzn_small.keys[::53]:
            fast.lookup(int(key), tf)
            btree.lookup(int(key), tb)
        assert tf.counters.reads < tb.counters.reads
