"""Adaptive ART sampling (the paper's suggested structure-specific tuning)."""

import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.traditional.art import ARTIndex

from conftest import build


class TestAdaptiveValidity:
    @pytest.mark.parametrize("gap", [2, 8, 64])
    def test_valid_on_all_datasets(self, all_datasets_small, gap):
        for name, ds in all_datasets_small.items():
            idx = build("ART", ds, gap=gap, sampling="adaptive")
            probes = list(ds.keys[::43]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, name

    def test_valid_on_absent_keys(self, amzn_small, amzn_workload):
        idx = build("ART", amzn_small, gap=4, sampling="adaptive")
        assert validate_index(idx, amzn_workload.keys_py) is None

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=250, unique=True),
        st.integers(0, 2**64 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_validity_property(self, keys, probe):
        keys.sort()
        idx = ARTIndex(gap=4, sampling="adaptive").build(
            np.array(keys, dtype=np.uint64)
        )
        bound = idx.lookup(probe)
        assert bound.contains(bisect.bisect_left(keys, probe))


class TestAdaptiveStructure:
    def test_sample_count_near_target(self, amzn_small):
        gap = 8
        idx = build("ART", amzn_small, gap=gap, sampling="adaptive")
        target = amzn_small.n // gap
        assert idx._n_samples >= target
        assert idx._n_samples <= amzn_small.n

    def test_smaller_trie_than_uniform_on_clustered_keys(self, osm_small):
        """Prefix-aligned retention flattens the trie on clustered data."""
        uniform = build("ART", osm_small, gap=8, sampling="uniform")
        adaptive = build("ART", osm_small, gap=8, sampling="adaptive")
        per_sample_u = uniform.size_bytes() / uniform._n_samples
        per_sample_a = adaptive.size_bytes() / adaptive._n_samples
        assert per_sample_a < per_sample_u

    def test_gap1_falls_back_to_full(self, amzn_small):
        idx = build("ART", amzn_small, gap=1, sampling="adaptive")
        assert idx._n_samples == amzn_small.n

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ARTIndex(sampling="magic")

    def test_bounds_follow_density(self, amzn_small):
        """Adaptive bounds vary with local key density."""
        idx = build("ART", amzn_small, gap=16, sampling="adaptive")
        widths = {len(idx.lookup(int(k))) for k in amzn_small.keys[::101]}
        assert len(widths) > 3  # not a constant gap
