"""Property-based tests for the selector's pure decision rules.

Drives :func:`repro.serve.selector.selection_from_candidates` (and its
cluster twin) with synthetic candidates -- no simulation -- so hypothesis
can explore ties, boundary values, empty budgets, and permutations.

Invariants pinned:

* the chosen candidate is always eligible;
* ``chosen is None`` iff no candidate is eligible;
* the choice is invariant under any permutation of the candidate list;
* boundary semantics are inclusive (p99 == SLO and size == budget are
  both eligible).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.metrics import LatencySummary
from repro.serve.selector import (
    Candidate,
    ClusterCandidate,
    cluster_selection_from_candidates,
    selection_from_candidates,
)


def summary(p99: float) -> LatencySummary:
    return LatencySummary(
        n=100,
        mean_ns=p99 / 2.0,
        p50_ns=p99 / 2.0,
        p95_ns=p99 * 0.9,
        p99_ns=p99,
        p999_ns=p99 * 1.1,
        max_ns=p99 * 1.2,
        throughput_per_sec=1e6,
    )


# Small value pools on purpose: collisions (ties) are the interesting
# cases, and tiny pools make hypothesis hit them constantly.
sizes = st.integers(min_value=0, max_value=8).map(lambda k: k * 100)
p99s = st.sampled_from([50.0, 100.0, 200.0, 400.0])
names = st.sampled_from(["RMI", "PGM", "BTree", "ART"])
availabilities = st.sampled_from([0.5, 0.9, 0.99, 1.0])

candidates_st = st.lists(
    st.builds(
        Candidate,
        index=names,
        config=st.dictionaries(
            st.sampled_from(["a", "b"]), st.integers(0, 3), max_size=2
        ),
        size_bytes=sizes,
        saturation_per_sec=st.just(1e6),
        summary=p99s.map(summary),
    ),
    max_size=8,
)

cluster_candidates_st = st.lists(
    st.builds(
        ClusterCandidate,
        index=names,
        per_shard_size_bytes=st.lists(
            sizes, min_size=1, max_size=4
        ).map(tuple),
        summary=st.one_of(st.none(), p99s.map(summary)),
        availability=availabilities,
        total_retries=st.integers(0, 5),
        total_hedges=st.integers(0, 5),
        max_queue_depth=st.integers(0, 10),
    ),
    max_size=8,
)

slos = p99s
budgets = st.one_of(st.none(), sizes.map(float))


class TestSelectionFromCandidates:
    @given(candidates_st, slos, budgets)
    @settings(max_examples=200)
    def test_chosen_is_eligible_or_none(self, cands, slo, budget):
        sel = selection_from_candidates(cands, 1e6, slo, budget)
        eligible = sel.eligible()
        if sel.chosen is None:
            assert eligible == []
        else:
            assert sel.chosen in eligible

    @given(candidates_st, slos, budgets)
    @settings(max_examples=200)
    def test_none_iff_no_candidate_fits(self, cands, slo, budget):
        sel = selection_from_candidates(cands, 1e6, slo, budget)
        fits = [
            c
            for c in cands
            if c.summary.p99_ns <= slo
            and (budget is None or c.size_bytes <= budget)
        ]
        assert (sel.chosen is None) == (not fits)

    @given(candidates_st, slos, budgets, st.randoms())
    @settings(max_examples=200)
    def test_invariant_under_permutation(self, cands, slo, budget, rnd):
        baseline = selection_from_candidates(cands, 1e6, slo, budget)
        shuffled = list(cands)
        rnd.shuffle(shuffled)
        permuted = selection_from_candidates(shuffled, 1e6, slo, budget)
        assert baseline.chosen == permuted.chosen

    @given(candidates_st, slos, budgets)
    @settings(max_examples=200)
    def test_chosen_minimizes_size_then_p99(self, cands, slo, budget):
        sel = selection_from_candidates(cands, 1e6, slo, budget)
        if sel.chosen is None:
            return
        for c in sel.eligible():
            assert (sel.chosen.size_bytes, sel.chosen.summary.p99_ns) <= (
                c.size_bytes,
                c.summary.p99_ns,
            )

    @given(candidates_st, slos)
    @settings(max_examples=100)
    def test_zero_memory_budget_admits_only_zero_size(self, cands, slo):
        sel = selection_from_candidates(cands, 1e6, slo, 0.0)
        assert all(c.size_bytes == 0 for c in sel.eligible())

    def test_exact_tie_resolved_deterministically(self):
        twin = dict(size_bytes=100, saturation_per_sec=1e6,
                    summary=summary(50.0))
        a = Candidate(index="B", config={}, **twin)
        b = Candidate(index="A", config={}, **twin)
        sel = selection_from_candidates([a, b], 1e6, 100.0, None)
        rev = selection_from_candidates([b, a], 1e6, 100.0, None)
        assert sel.chosen == rev.chosen
        assert sel.chosen.index == "A"  # name breaks the exact tie


class TestClusterSelectionFromCandidates:
    @given(cluster_candidates_st, slos, budgets, availabilities)
    @settings(max_examples=200)
    def test_chosen_is_eligible_or_none(self, cands, slo, budget, floor):
        sel = cluster_selection_from_candidates(
            cands, 1e6, slo, budget, floor
        )
        eligible = sel.eligible()
        if sel.chosen is None:
            assert eligible == []
        else:
            assert sel.chosen in eligible
            assert sel.chosen.summary is not None
            assert sel.chosen.summary.p99_ns <= slo
            assert sel.chosen.availability >= floor
            if budget is not None:
                assert sel.chosen.max_shard_size_bytes <= budget

    @given(cluster_candidates_st, slos, budgets, availabilities,
           st.randoms())
    @settings(max_examples=200)
    def test_invariant_under_permutation(
        self, cands, slo, budget, floor, rnd
    ):
        baseline = cluster_selection_from_candidates(
            cands, 1e6, slo, budget, floor
        )
        shuffled = list(cands)
        rnd.shuffle(shuffled)
        permuted = cluster_selection_from_candidates(
            shuffled, 1e6, slo, budget, floor
        )
        assert baseline.chosen == permuted.chosen

    @given(cluster_candidates_st, slos, budgets)
    @settings(max_examples=100)
    def test_unsimulated_candidates_never_chosen(self, cands, slo, budget):
        sel = cluster_selection_from_candidates(cands, 1e6, slo, budget, 0.0)
        assert all(c.summary is not None for c in sel.eligible())

    @given(cluster_candidates_st, slos, budgets, availabilities)
    @settings(max_examples=200)
    def test_chosen_minimizes_total_size_then_p99(
        self, cands, slo, budget, floor
    ):
        sel = cluster_selection_from_candidates(
            cands, 1e6, slo, budget, floor
        )
        if sel.chosen is None:
            return
        for c in sel.eligible():
            assert (
                sel.chosen.total_size_bytes,
                sel.chosen.summary.p99_ns,
            ) <= (c.total_size_bytes, c.summary.p99_ns)
