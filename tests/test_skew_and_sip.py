"""Zipfian workloads and SIP last-mile search (extensions)."""

import bisect
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import SearchBound
from repro.datasets import make_workload
from repro.datasets.workload import _zipf_ranks
from repro.memsim import AddressSpace, PerfTracer, TracedArray
from repro.search.last_mile import binary_search, sip_search


class TestZipfWorkload:
    def test_keys_are_present(self, amzn_small):
        wl = make_workload(amzn_small, 300, mode="zipf")
        key_set = set(amzn_small.keys.tolist())
        assert all(k in key_set for k in wl.keys_py)

    def test_skew_concentrates_mass(self, amzn_small):
        wl = make_workload(amzn_small, 3_000, mode="zipf", zipf_theta=1.2)
        counts = Counter(wl.keys_py)
        top_share = sum(c for _, c in counts.most_common(10)) / wl.n
        assert top_share > 0.15  # ten hottest keys dominate

    def test_higher_theta_more_skew(self, amzn_small):
        def top1_share(theta):
            wl = make_workload(
                amzn_small, 3_000, mode="zipf", zipf_theta=theta, seed=5
            )
            return Counter(wl.keys_py).most_common(1)[0][1] / wl.n

        assert top1_share(1.4) > top1_share(0.5)

    def test_ranks_within_range(self):
        rng = np.random.default_rng(0)
        ranks = _zipf_ranks(rng, 100, 5_000, 0.99)
        assert ranks.min() >= 0 and ranks.max() < 100

    def test_invalid_theta(self, amzn_small):
        with pytest.raises(ValueError):
            make_workload(amzn_small, 10, mode="zipf", zipf_theta=0.0)

    def test_true_positions_correct(self, amzn_small):
        wl = make_workload(amzn_small, 200, mode="zipf")
        keys = amzn_small.keys
        for k, p in zip(wl.keys_py[:50], wl.positions_py[:50]):
            assert p == int(np.searchsorted(keys, np.uint64(k)))

    def test_zipf_workload_cache_benefit(self, amzn_small):
        """The ext2 premise: skewed lookups hit caches more."""
        from repro.bench.harness import build_index, measure

        built = build_index(amzn_small, "RMI", {"branching": 256})
        uniform = make_workload(amzn_small, 600, mode="present", seed=3)
        zipf = make_workload(
            amzn_small, 600, mode="zipf", zipf_theta=1.4, seed=3
        )
        m_u = measure(built, uniform, n_lookups=300, warmup=200)
        m_z = measure(built, zipf, n_lookups=300, warmup=200)
        assert m_z.counters.llc_misses < m_u.counters.llc_misses


def traced(keys):
    space = AddressSpace()
    return TracedArray.allocate(space, np.asarray(keys, dtype=np.uint64))


class TestSipSearch:
    def test_matches_bisect(self):
        keys = list(range(0, 5_000, 3))
        data = traced(keys)
        for probe in [0, 1, 2_501, 4_998, 4_999, 5_000]:
            pos = sip_search(data, probe, SearchBound(0, len(keys) + 1))
            assert pos == bisect.bisect_left(keys, probe)

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=300, unique=True),
        st.integers(0, 2**64 - 1),
        st.integers(0, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_property(self, keys, probe, slack):
        keys.sort()
        data = traced(keys)
        truth = bisect.bisect_left(keys, probe)
        bound = SearchBound(
            max(0, truth - slack), min(truth + slack + 1, len(keys) + 1)
        )
        assert sip_search(data, probe, bound) == truth

    def test_division_free_steps_on_uniform(self):
        keys = list(range(0, 400_000, 7))
        data = traced(keys)
        t_sip, t_bin = PerfTracer(), PerfTracer()
        full = SearchBound(0, len(keys) + 1)
        sip_search(data, 210_007, full, t_sip)
        binary_search(data, 210_007, full, t_bin)
        assert t_sip.counters.reads < t_bin.counters.reads

    def test_small_bound_falls_back_to_binary(self):
        keys = [5, 10, 15]
        data = traced(keys)
        assert sip_search(data, 12, SearchBound(0, 4)) == 2
