"""Property tests for the open-loop arrival generators.

The contract every shape in :mod:`repro.serve.arrivals` honours:

* **One gap sequence per (seed, n).**  Sweeping the offered rate
  rescales a fixed unit-exponential gap sequence -- it never re-draws
  it.  Doubling the rate exactly halves every per-request gap (scaling
  by a power of two is exact in binary floating point, term by term
  through the running sum), and arbitrary rate ratios agree to
  floating-point tolerance.
* **Seed determinism.**  A generator is a pure function of its
  arguments; distinct seeds give distinct traces.
* **Horizon purity.**  The modulation of the new diurnal and
  flash-crowd shapes depends only on the request *index*, so the first
  ``k`` arrivals of an ``n``-request trace equal the ``k``-request
  trace byte for byte (the numpy Generator draw-prefix property
  supplies the gap half of this).

These are the invariants the tenancy layer's record-replay identity
and ``ext_serving``'s monotone load-latency curves rest on.
"""

from __future__ import annotations

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.arrivals import (
    _unit_gaps,
    bursty_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
)

_RATES = st.floats(min_value=1e3, max_value=1e7)
_SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
_N = st.integers(min_value=1, max_value=300)

# Every shape under test, with fixed non-default knobs so the modulation
# paths (burst window, sine period, spike window) are all exercised.
_SHAPES = [
    ("poisson", lambda r, n, s: poisson_arrivals(r, n, s)),
    (
        "bursty",
        lambda r, n, s: bursty_arrivals(
            r, n, s, burst_factor=3.0, burst_fraction=0.25, period_requests=20
        ),
    ),
    (
        "diurnal",
        lambda r, n, s: diurnal_arrivals(
            r, n, s, peak_to_trough=4.0, period_requests=30
        ),
    ),
    (
        "flash",
        lambda r, n, s: flash_crowd_arrivals(
            r,
            n,
            s,
            spike_factor=6.0,
            spike_start_request=10,
            spike_len_requests=25,
        ),
    ),
]
_SHAPE_IDS = [name for name, _ in _SHAPES]
_GENERATORS = [gen for _, gen in _SHAPES]


class TestGapSequenceReuse:
    @pytest.mark.parametrize("gen", _GENERATORS, ids=_SHAPE_IDS)
    @given(rate=_RATES, n=_N, seed=_SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_doubling_rate_exactly_halves_every_arrival(
        self, gen, rate, n, seed
    ):
        """Factor-of-two rate scaling is *bit-exact*: each term of the
        running sum is divided by 2 (exact), so the sums match exactly.
        Only possible if both traces share one gap sequence."""
        base = gen(rate, n, seed)
        double = gen(2.0 * rate, n, seed)
        assert [2.0 * t for t in double] == base

    @pytest.mark.parametrize("gen", _GENERATORS, ids=_SHAPE_IDS)
    @given(
        rate=_RATES,
        factor=st.floats(min_value=1.1, max_value=50.0),
        n=_N,
        seed=_SEEDS,
    )
    @settings(max_examples=25, deadline=None)
    def test_general_rate_ratio_rescales_not_redraws(
        self, gen, rate, factor, n, seed
    ):
        """At any rate ratio the two traces are the same sequence up to
        a scalar -- re-drawn gaps would break this immediately."""
        base = np.asarray(gen(rate, n, seed))
        scaled = np.asarray(gen(rate * factor, n, seed))
        assert np.allclose(scaled * factor, base, rtol=1e-9)

    @given(n=_N, seed=_SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_unit_gaps_depend_only_on_seed_and_n(self, n, seed):
        a = _unit_gaps(n, seed)
        b = _unit_gaps(n, seed)
        assert a.tolist() == b.tolist()
        assert (a > 0.0).all()

    @given(rate=_RATES, n=st.integers(2, 300), seed=_SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_poisson_gaps_recover_the_unit_sequence(self, rate, n, seed):
        """Differencing a Poisson trace recovers the shared unit-gap
        sequence scaled by the mean gap."""
        times = np.asarray(poisson_arrivals(rate, n, seed))
        implied = np.diff(times, prepend=0.0) * rate / 1e9
        assert np.allclose(implied, _unit_gaps(n, seed), rtol=1e-9)


class TestSeedDeterminism:
    @pytest.mark.parametrize("gen", _GENERATORS, ids=_SHAPE_IDS)
    @given(rate=_RATES, n=_N, seed=_SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_trace(self, gen, rate, n, seed):
        assert gen(rate, n, seed) == gen(rate, n, seed)

    @pytest.mark.parametrize("gen", _GENERATORS, ids=_SHAPE_IDS)
    @given(rate=_RATES, n=st.integers(4, 300), seed=_SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_distinct_seeds_distinct_traces(self, gen, rate, n, seed):
        assert gen(rate, n, seed) != gen(rate, n, seed + 1)

    @pytest.mark.parametrize("gen", _GENERATORS, ids=_SHAPE_IDS)
    @given(rate=_RATES, n=_N, seed=_SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_strictly_increasing_and_positive(self, gen, rate, n, seed):
        times = gen(rate, n, seed)
        assert times[0] > 0.0
        assert all(a < b for a, b in zip(times, times[1:]))


class TestHorizonPurity:
    @pytest.mark.parametrize("gen", _GENERATORS, ids=_SHAPE_IDS)
    @given(
        rate=_RATES,
        n=st.integers(2, 300),
        seed=_SEEDS,
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_prefix_of_long_trace_is_the_short_trace(
        self, gen, rate, n, seed, data
    ):
        """Byte-identical prefixes: extending the horizon never changes
        arrivals already generated.  This is what lets a recorded
        mixed-tenant day be truncated or extended without invalidating
        the measurement cache for the shared prefix."""
        k = data.draw(st.integers(min_value=1, max_value=n - 1))
        assert gen(rate, n, seed)[:k] == gen(rate, k, seed)


class TestModulationShapes:
    @given(
        rate=_RATES,
        seed=_SEEDS,
        peak_to_trough=st.floats(min_value=1.2, max_value=10.0),
        periods=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_diurnal_mean_rate_is_normalized_over_whole_periods(
        self, rate, seed, peak_to_trough, periods
    ):
        """The discrete correction makes the request-weighted mean gap
        over whole periods exactly the nominal mean gap: each per-request
        gap is gaps[i]/(rate * mod_i * corr) with mean(1/(mod*corr)) = 1
        over a period."""
        period = 40
        n = period * periods
        times = np.asarray(
            diurnal_arrivals(
                rate, n, seed,
                peak_to_trough=peak_to_trough, period_requests=period,
            )
        )
        dt = np.diff(times, prepend=0.0)
        unit = dt / (_unit_gaps(n, seed) * 1e9 / rate)
        assert np.isclose(np.mean(unit), 1.0, rtol=1e-9)
        # And the modulation actually swings: peak gap ratio matches.
        assert np.isclose(
            unit.max() / unit.min(), peak_to_trough, rtol=1e-6
        )

    @given(
        rate=_RATES,
        seed=_SEEDS,
        spike_factor=st.floats(min_value=1.5, max_value=20.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_flash_spike_window_runs_at_spike_rate(
        self, rate, seed, spike_factor
    ):
        """Inside the spike window every gap is exactly the baseline gap
        over spike_factor; outside it is plain Poisson."""
        start, length, n = 20, 30, 80
        times = np.asarray(
            flash_crowd_arrivals(
                rate, n, seed,
                spike_factor=spike_factor,
                spike_start_request=start,
                spike_len_requests=length,
            )
        )
        dt = np.diff(times, prepend=0.0)
        unit = dt / (_unit_gaps(n, seed) * 1e9 / rate)
        in_spike = np.zeros(n, dtype=bool)
        in_spike[start : start + length] = True
        assert np.allclose(unit[in_spike], 1.0 / spike_factor, rtol=1e-9)
        assert np.allclose(unit[~in_spike], 1.0, rtol=1e-9)

    def test_flash_spike_past_horizon_is_plain_poisson(self):
        # Equal up to summation order: poisson multiplies the cumulative
        # sum once, flash scales each gap before accumulating.
        times = flash_crowd_arrivals(
            1e5, 50, 3, spike_start_request=1000, spike_len_requests=10
        )
        assert np.allclose(times, poisson_arrivals(1e5, 50, 3), rtol=1e-12)


class TestValidation:
    def test_diurnal_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            diurnal_arrivals(0.0, 10, 0)
        with pytest.raises(ValueError):
            diurnal_arrivals(1e5, 10, 0, peak_to_trough=1.0)
        with pytest.raises(ValueError):
            diurnal_arrivals(1e5, 10, 0, period_requests=1)
        with pytest.raises(ValueError):
            diurnal_arrivals(1e5, 0, 0)

    def test_flash_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            flash_crowd_arrivals(-1.0, 10, 0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(1e5, 10, 0, spike_factor=1.0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(1e5, 10, 0, spike_start_request=-1)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(1e5, 10, 0, spike_len_requests=0)
