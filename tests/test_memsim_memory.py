"""AddressSpace and TracedArray."""

import numpy as np
import pytest

from repro.memsim.memory import AddressSpace, TracedArray
from repro.memsim.tracer import NULL_TRACER, PerfTracer


class TestAddressSpace:
    def test_alignment(self):
        s = AddressSpace()
        a = s.alloc(10)
        b = s.alloc(10)
        assert a % 64 == 0
        assert b % 64 == 0
        assert b >= a + 10

    def test_no_overlap(self):
        s = AddressSpace()
        regions = [(s.alloc(100, name=f"r{i}"), 100) for i in range(20)]
        for i, (base, size) in enumerate(regions):
            for other_base, other_size in regions[i + 1 :]:
                assert base + size <= other_base or other_base + other_size <= base

    def test_total_allocated(self):
        s = AddressSpace()
        s.alloc(100)
        s.alloc(28)
        assert s.total_allocated() == 128

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc(-1)


class TestTracedArray:
    def test_get_returns_values(self):
        s = AddressSpace()
        arr = TracedArray.allocate(s, np.array([10, 20, 30], dtype=np.uint64))
        assert arr.get(1, NULL_TRACER) == 20
        assert len(arr) == 3

    def test_get_returns_python_ints(self):
        s = AddressSpace()
        arr = TracedArray.allocate(s, np.array([2**63], dtype=np.uint64))
        v = arr.get(0, NULL_TRACER)
        assert isinstance(v, int)
        assert v == 2**63

    def test_addr_spacing_matches_itemsize(self):
        s = AddressSpace()
        arr = TracedArray.allocate(s, np.zeros(4, dtype=np.uint32))
        assert arr.addr(1) - arr.addr(0) == 4

    def test_adjacent_elements_share_cache_line(self):
        s = AddressSpace()
        arr = TracedArray.allocate(s, np.zeros(16, dtype=np.uint64))
        t = PerfTracer()
        arr.get(0, t)
        misses = t.counters.llc_misses
        arr.get(1, t)  # same line
        assert t.counters.llc_misses == misses

    def test_distant_elements_different_lines(self):
        s = AddressSpace()
        arr = TracedArray.allocate(s, np.zeros(64, dtype=np.uint64))
        t = PerfTracer()
        arr.get(0, t)
        misses = t.counters.llc_misses
        arr.get(16, t)  # 128 bytes away
        assert t.counters.llc_misses > misses

    def test_get_block_single_read(self):
        s = AddressSpace()
        arr = TracedArray.allocate(s, np.arange(10, dtype=np.float64))
        t = PerfTracer()
        block = arr.get_block(2, 3, t)
        assert block == [2.0, 3.0, 4.0]
        assert t.counters.reads == 1

    def test_nbytes(self):
        s = AddressSpace()
        arr = TracedArray.allocate(s, np.zeros(10, dtype=np.uint64))
        assert arr.nbytes == 80

    def test_rejects_2d(self):
        s = AddressSpace()
        with pytest.raises(ValueError):
            TracedArray(np.zeros((2, 2)), 0)

    def test_touch_charges_read(self):
        s = AddressSpace()
        arr = TracedArray.allocate(s, np.zeros(4, dtype=np.uint64))
        t = PerfTracer()
        arr.touch(0, t)
        assert t.counters.reads == 1
