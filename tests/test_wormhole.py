"""Wormhole."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.traditional.wormhole import WormholeIndex
from repro.memsim import PerfTracer

from conftest import build


class TestWormholeValidity:
    @pytest.mark.parametrize("gap", [1, 4, 32])
    def test_valid_on_all_datasets(self, all_datasets_small, gap):
        for name, ds in all_datasets_small.items():
            idx = build("Wormhole", ds, gap=gap)
            probes = list(ds.keys[::39]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, name

    def test_valid_on_absent_keys(self, amzn_small, amzn_workload):
        idx = build("Wormhole", amzn_small, gap=2)
        assert validate_index(idx, amzn_workload.keys_py) is None

    def test_extreme_probes(self, amzn_small, extreme_probe_keys):
        idx = build("Wormhole", amzn_small, gap=2)
        assert validate_index(idx, extreme_probe_keys) is None

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=200, unique=True),
        st.integers(0, 2**64 - 1),
        st.sampled_from([2, 8]),
    )
    @settings(max_examples=50, deadline=None)
    def test_validity_property(self, keys, probe, leaf_size):
        keys.sort()
        idx = WormholeIndex(gap=1, leaf_size=leaf_size).build(
            np.array(keys, dtype=np.uint64)
        )
        assert validate_index(idx, [probe]) is None


class TestWormholeStructure:
    def test_prefix_map_contains_all_anchor_prefixes(self, amzn_small):
        idx = build("Wormhole", amzn_small, gap=4, leaf_size=32)
        for leaf, anchor in enumerate(idx._anchors._py[:50]):
            for length in range(9):
                prefix = anchor >> (8 * (8 - length))
                lo, hi = idx._map[(length, prefix)]
                assert lo <= leaf <= hi

    def test_probe_count_logarithmic_in_key_width(self, amzn_small):
        """Wormhole's selling point: O(log key-length) hash probes."""
        idx = build("Wormhole", amzn_small, gap=1, leaf_size=64)
        t = PerfTracer()
        n_lookups = 100
        for key in amzn_small.keys[:n_lookups]:
            idx.lookup(int(key), t)
        # 8-byte keys: binary search over lengths 0..8 needs <= 4 probes,
        # 16 bytes each; total reads dominated by the in-leaf search.
        assert t.counters.reads / n_lookups < 25

    def test_leaf_size_tradeoff(self, amzn_small):
        small_leaves = build("Wormhole", amzn_small, gap=1, leaf_size=8)
        big_leaves = build("Wormhole", amzn_small, gap=1, leaf_size=256)
        assert small_leaves.size_bytes() > big_leaves.size_bytes()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            WormholeIndex(leaf_size=1)
