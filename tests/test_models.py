"""RMI submodels."""

import numpy as np
import pytest

from repro.learned.models import (
    MODEL_TYPES,
    CubicModel,
    LinearModel,
    LinearSplineModel,
    LogLinearModel,
    RadixModel,
    make_model,
)


def fit_on_line(model):
    keys = np.arange(0, 1000, 10, dtype=np.float64)
    pos = np.arange(100, dtype=np.float64)
    return model.fit(keys, pos), keys, pos


@pytest.mark.parametrize("name", sorted(MODEL_TYPES))
class TestAllModels:
    def test_fits_linear_data_well(self, name):
        if name == "loglinear":
            pytest.skip("log-space model; covered by its exponential-fit test")
        model, keys, pos = fit_on_line(make_model(name))
        pred = model.predict_batch(keys)
        assert np.max(np.abs(pred - pos)) < 5.0

    def test_scalar_matches_batch(self, name):
        model, keys, _ = fit_on_line(make_model(name))
        batch = model.predict_batch(keys[:20])
        for i in range(20):
            assert model.predict(float(keys[i])) == pytest.approx(
                batch[i], abs=1e-9
            )

    def test_monotone_on_fitted_range(self, name):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.integers(0, 2**40, 500)).astype(np.float64)
        keys = np.unique(keys)
        pos = np.arange(len(keys), dtype=np.float64)
        model = make_model(name).fit(keys, pos)
        grid = np.linspace(keys[0], keys[-1], 1000)
        pred = model.predict_batch(grid)
        assert np.all(np.diff(pred) >= -1e-6)

    def test_params_are_floats(self, name):
        model, _, _ = fit_on_line(make_model(name))
        assert all(isinstance(p, float) for p in model.params())

    def test_empty_fit_safe(self, name):
        model = make_model(name).fit(np.array([]), np.array([]))
        assert np.isfinite(model.predict(5.0))


class TestLinearModel:
    def test_exact_on_line(self):
        m = LinearModel().fit(np.array([0.0, 10.0]), np.array([0.0, 5.0]))
        assert m.slope == pytest.approx(0.5)
        assert m.predict(20.0) == pytest.approx(10.0)

    def test_single_point(self):
        m = LinearModel().fit(np.array([7.0]), np.array([3.0]))
        assert m.predict(7.0) == pytest.approx(3.0)
        assert m.slope == 0.0

    def test_negative_slope_falls_back_to_monotone(self):
        # Pathological positions (decreasing); model must stay monotone.
        keys = np.array([0.0, 1.0, 2.0, 3.0])
        pos = np.array([3.0, 2.0, 1.0, 0.0])
        m = LinearModel().fit(keys, pos)
        assert m.slope >= 0.0

    def test_identical_keys(self):
        m = LinearModel().fit(np.array([5.0, 5.0]), np.array([0.0, 1.0]))
        assert m.slope == 0.0
        assert np.isfinite(m.predict(5.0))


class TestLinearSplineModel:
    def test_passes_through_endpoints(self):
        keys = np.array([10.0, 20.0, 100.0])
        pos = np.array([0.0, 9.0, 2.0])  # noisy middle
        m = LinearSplineModel().fit(keys, pos)
        assert m.predict(10.0) == pytest.approx(0.0, abs=1e-9)


class TestCubicModel:
    def test_fits_cubic_shape_better_than_linear(self):
        t = np.linspace(0.0, 1.0, 200)
        keys = t * 1000
        pos = 100 * (3 * t**2 - 2 * t**3)  # monotone S-curve
        cubic = CubicModel().fit(keys, pos)
        linear = LinearModel().fit(keys, pos)
        cubic_err = np.max(np.abs(cubic.predict_batch(keys) - pos))
        linear_err = np.max(np.abs(linear.predict_batch(keys) - pos))
        assert cubic_err < linear_err / 2

    def test_small_input_uses_fallback(self):
        m = CubicModel().fit(np.array([1.0, 2.0]), np.array([0.0, 1.0]))
        assert m._fallback is not None

    def test_nonmonotone_fit_falls_back(self):
        # Positions chosen so an unconstrained cubic would wiggle.
        keys = np.linspace(0, 100, 50)
        pos = np.concatenate([np.linspace(0, 40, 25), np.linspace(40, 41, 25)])
        m = CubicModel().fit(keys, pos)
        grid = np.linspace(0, 100, 500)
        pred = m.predict_batch(grid)
        assert np.all(np.diff(pred) >= -1e-6)


class TestLogLinearModel:
    def test_fits_exponential_gaps(self):
        keys = np.array([2.0**i for i in range(1, 40)])
        pos = np.arange(len(keys), dtype=np.float64)
        m = LogLinearModel().fit(keys, pos)
        err = np.max(np.abs(m.predict_batch(keys) - pos))
        assert err < 1.0

    def test_below_shift_clamped(self):
        m = LogLinearModel().fit(
            np.array([100.0, 200.0]), np.array([0.0, 1.0])
        )
        assert np.isfinite(m.predict(0.0))


class TestRadixModel:
    def test_uniform_is_exact(self):
        keys = np.linspace(0, 1000, 101)
        pos = np.arange(101, dtype=np.float64)
        m = RadixModel().fit(keys, pos)
        assert np.max(np.abs(m.predict_batch(keys) - pos)) < 1e-6

    def test_clamps_out_of_range(self):
        keys = np.linspace(0, 100, 11)
        pos = np.arange(11, dtype=np.float64)
        m = RadixModel().fit(keys, pos)
        assert m.predict(-50.0) == pytest.approx(0.0)
        assert m.predict(1e9) == pytest.approx(10.0)


def test_unknown_model_rejected():
    with pytest.raises(KeyError):
        make_model("perceptron")
