"""Tests for the parallel/cached simulation sweep layer.

Pins the layer's contract from ``docs/serving_fast.md``:

* routing a selector sweep through tasks (any job count) is
  byte-identical to the inline path;
* a warm :class:`SimResultCache` replays a sweep with 100% hits and
  zero executions, and the replayed selection is byte-identical;
* cache keys are serving-engine-invariant -- a cache warmed under the
  ``event`` engine replays fully under ``fast`` (and vice versa), and
  no key field mentions the engine;
* run records round-trip losslessly (``to_record``/``from_record``)
  and mirror the live result objects' derived values exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.cache import CACHE_SCHEMA_VERSION, SimResultCache, sim_key
from repro.memsim.counters import PerfCountersF
from repro.serve.cluster import Cluster, simulate_cluster
from repro.serve.contention import MachineModel
from repro.serve.core import ServiceModel
from repro.serve.arrivals import poisson_arrivals
from repro.serve.metrics import LatencySummary
from repro.serve.router import RouterPolicy, ShardMap, request_keys
from repro.serve.scenario import TopologySpec, single_tenant_spec
from repro.serve.selector import select_cluster_under_slo, select_under_slo
from repro.serve.sweep import (
    ClusterRunStats,
    TenancyRunStats,
    clear_sim_results,
    cluster_task,
    open_loop_summary,
    open_loop_task,
    run_sim_tasks,
    SimRunnerStats,
)


def counters(instructions=300, llc_misses=2.0):
    return PerfCountersF(
        instructions=instructions,
        llc_misses=llc_misses,
        l1_hits=20.0,
        branch_misses=3.0,
    )


class FakeMeasurement:
    """Duck-typed stand-in for repro.bench.harness.Measurement."""

    def __init__(self, name="X", size_bytes=1 << 20, **counter_kwargs):
        self.index = name
        self.config = {}
        self.size_bytes = size_bytes
        self.counters = counters(**counter_kwargs)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_sim_results()
    yield
    clear_sim_results()


def fleet():
    return [
        FakeMeasurement("Slow", size_bytes=1_000, llc_misses=9.0),
        FakeMeasurement("Fast", size_bytes=1_000_000, llc_misses=0.5),
        FakeMeasurement("Mid", size_bytes=10_000, llc_misses=2.0),
    ]


SELECT_KW = dict(
    offered_per_sec=2e6,
    p99_slo_ns=50_000.0,
    n_requests=300,
    seed=3,
    n_cores=2,
)


def selection_tuple(sel):
    return [
        (c.index, c.size_bytes, c.saturation_per_sec, c.summary)
        for c in sel.candidates
    ], (None if sel.chosen is None else sel.chosen.index)


class TestSelectorTaskPath:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_byte_identical_to_inline(self, jobs, tmp_path):
        inline = select_under_slo(fleet(), **SELECT_KW)
        clear_sim_results()
        cache = SimResultCache(str(tmp_path / "serving"))
        routed = select_under_slo(
            fleet(), jobs=jobs, sim_cache=cache, **SELECT_KW
        )
        assert selection_tuple(inline) == selection_tuple(routed)
        assert cache.misses == len(fleet()) and cache.hits == 0

    def test_warm_cache_replays_with_full_hits(self, tmp_path):
        cache = SimResultCache(str(tmp_path / "serving"))
        first = select_under_slo(
            fleet(), jobs=2, sim_cache=cache, **SELECT_KW
        )
        clear_sim_results()
        cache.reset_stats()
        second = select_under_slo(
            fleet(), jobs=1, sim_cache=cache, **SELECT_KW
        )
        assert selection_tuple(first) == selection_tuple(second)
        assert cache.hits == len(fleet()) and cache.misses == 0

    def test_cluster_selector_byte_identical(self, tmp_path):
        keys = list(range(0, 10_000, 5))
        families = {
            "Small": [FakeMeasurement("Small", 2_000) for _ in range(2)],
            "Big": [
                FakeMeasurement("Big", 400_000, llc_misses=4.0)
                for _ in range(2)
            ],
        }
        shard_map = ShardMap.from_keys(np.asarray(keys, dtype=np.uint64), 2)
        kwargs = dict(
            offered_per_sec=4e6,
            p99_slo_ns=100_000.0,
            n_requests=300,
            seed=0,
            n_replicas=2,
            n_cores=2,
        )
        inline = select_cluster_under_slo(families, shard_map, keys, **kwargs)
        clear_sim_results()
        cache = SimResultCache(str(tmp_path / "serving"))
        routed = select_cluster_under_slo(
            families, shard_map, keys, jobs=2, sim_cache=cache, **kwargs
        )
        assert [
            (c.index, c.per_shard_size_bytes, c.summary, c.availability,
             c.total_retries, c.total_hedges, c.max_queue_depth)
            for c in inline.candidates
        ] == [
            (c.index, c.per_shard_size_bytes, c.summary, c.availability,
             c.total_retries, c.total_hedges, c.max_queue_depth)
            for c in routed.candidates
        ]
        assert (inline.chosen is None) == (routed.chosen is None)


class TestEngineInvariantCacheKeys:
    def task(self):
        return open_loop_task(
            FakeMeasurement(), 2e6, 200, 7, 1, MachineModel()
        )

    def test_key_fields_never_mention_the_engine(self):
        fields = self.task().key_fields()
        flat = repr(fields).lower()
        assert "engine" not in flat
        assert "kind" in fields

    def test_sim_key_stable_and_engine_free(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_ENGINE", "event")
        key_event = sim_key(self.task())
        monkeypatch.setenv("REPRO_SERVE_ENGINE", "fast")
        key_fast = sim_key(self.task())
        assert key_event == key_fast
        assert len(key_event) == 40
        assert sim_key(self.task(), schema_version=CACHE_SCHEMA_VERSION + 1) != key_event

    @pytest.mark.parametrize(
        "warm_engine,replay_engine", [("event", "fast"), ("fast", "event")]
    )
    def test_cross_engine_cache_replay(
        self, warm_engine, replay_engine, tmp_path, monkeypatch
    ):
        cache = SimResultCache(str(tmp_path / "serving"))
        monkeypatch.setenv("REPRO_SERVE_ENGINE", warm_engine)
        warm = run_sim_tasks([self.task()], cache=cache)[0]
        clear_sim_results()
        cache.reset_stats()
        monkeypatch.setenv("REPRO_SERVE_ENGINE", replay_engine)
        replayed = run_sim_tasks([self.task()], cache=cache)[0]
        assert cache.hits == 1 and cache.misses == 0
        assert replayed == warm

    def test_engines_write_identical_records(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_ENGINE", "event")
        a = run_sim_tasks([self.task()])[0]
        clear_sim_results()
        monkeypatch.setenv("REPRO_SERVE_ENGINE", "fast")
        b = run_sim_tasks([self.task()])[0]
        assert a == b
        assert open_loop_summary(a) == open_loop_summary(b)


class TestRunnerSemantics:
    def test_duplicates_execute_once(self):
        stats = SimRunnerStats()
        t = open_loop_task(FakeMeasurement(), 1e6, 100, 0, 1)
        records = run_sim_tasks([t, t, t], stats=stats)
        assert stats.total_tasks == 3
        assert stats.unique_tasks == 1
        assert stats.executed == 1
        assert records[0] == records[1] == records[2]

    def test_memo_hit_on_second_call(self):
        stats = SimRunnerStats()
        t = open_loop_task(FakeMeasurement(), 1e6, 100, 0, 1)
        run_sim_tasks([t], stats=stats)
        run_sim_tasks([t], stats=stats)
        assert stats.executed == 1 and stats.memo_hits == 1

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sim_tasks([], jobs=0)

    def test_pool_order_matches_inline(self):
        tasks = [
            open_loop_task(FakeMeasurement(llc_misses=float(k)), 1e6, 120, k, 1)
            for k in range(5)
        ]
        inline = run_sim_tasks(tasks)
        clear_sim_results()
        pooled = run_sim_tasks(tasks, jobs=4)
        assert inline == pooled


class TestRunRecords:
    def cluster_result(self):
        arrivals = poisson_arrivals(3e6, 300, seed=1)
        keys = [(13 * i) % 500 for i in range(300)]
        span = 300 / 3e6 * 1e9
        cluster = Cluster(
            shard_map=ShardMap([0, 250]),
            services=[ServiceModel(counters()), ServiceModel(counters(80))],
            n_replicas=2,
            n_cores=2,
            policy=RouterPolicy(hedge_after_ns=span / 50.0),
            faults=None,
        )
        return simulate_cluster(cluster, arrivals, keys)

    def test_cluster_stats_round_trip(self):
        stats = ClusterRunStats.from_result(self.cluster_result())
        again = ClusterRunStats.from_record(stats.to_record())
        assert again == stats
        assert again.availability == stats.availability
        assert again.max_queue_depth == stats.max_queue_depth

    def test_cluster_stats_mirror_result(self):
        result = self.cluster_result()
        stats = ClusterRunStats.from_result(result)
        assert stats.availability == result.availability
        assert stats.max_queue_depth == result.max_queue_depth
        assert stats.summary == result.summary()
        assert stats.total_retries == result.total_retries
        assert stats.total_hedges == result.total_hedges

    def test_tenancy_stats_round_trip(self):
        from repro.serve.tenancy import simulate_scenario

        raw = np.unique(
            np.random.default_rng(0).integers(
                0, 2**40, size=4000, dtype=np.uint64
            )
        )
        spec = single_tenant_spec(
            rate_per_sec=3e5,
            n_requests=200,
            seed=2,
            topology=TopologySpec(n_shards=2, n_replicas=2, n_cores=2),
        )
        result = simulate_scenario(
            spec,
            [ServiceModel(counters()) for _ in range(2)],
            raw,
            shard_map=ShardMap.from_keys(raw, 2),
        )
        stats = TenancyRunStats.from_result(result)
        again = TenancyRunStats.from_record(stats.to_record())
        assert again == stats
        assert again.summary == result.summary()
        only = again.by_name(spec.tenants[0].name)
        live = result.tenants[0]
        assert only.requests == live.requests
        assert only.completed == live.completed
        assert only.goodput == live.goodput
        assert only.summary == live.summary()
        assert only.slo_met() == live.slo_met()
        with pytest.raises(KeyError):
            again.by_name("nope")

    def test_latency_summary_dict_round_trip(self):
        s = LatencySummary(
            n=101,
            mean_ns=123.456789012345,
            p50_ns=100.1,
            p95_ns=0.1 + 0.2,  # a float with no short decimal form
            p99_ns=333.0,
            p999_ns=444.0,
            max_ns=1e308,
            throughput_per_sec=987654.321,
        )
        assert LatencySummary.from_dict(s.to_dict()) == s
        import json

        assert (
            LatencySummary.from_dict(json.loads(json.dumps(s.to_dict()))) == s
        )


class TestShapeAndFaultBranches:
    def test_bursty_task_matches_direct_simulation(self):
        from repro.serve.arrivals import bursty_arrivals
        from repro.serve.core import simulate_open_loop
        from repro.serve.metrics import summarize_result

        m = FakeMeasurement()
        task = open_loop_task(m, 1e6, 150, 3, 1, shape="bursty")
        record = run_sim_tasks([task])[0]
        direct = simulate_open_loop(
            ServiceModel.from_measurement(m),
            bursty_arrivals(1e6, 150, 3),
            n_cores=1,
        )
        assert open_loop_summary(record)[0] == summarize_result(direct)

    def test_unknown_shape_rejected(self):
        import dataclasses as dc

        bad = dc.replace(
            open_loop_task(FakeMeasurement(), 1e6, 50, 0, 1), shape="weird"
        )
        with pytest.raises(ValueError, match="unknown arrival shape"):
            bad.run()

    def test_faulted_cluster_task_round_trips_fault_config(self):
        from repro.serve.faults import FaultConfig

        per_shard = [FakeMeasurement()]
        keys = np.arange(0, 1000, 7, dtype=np.uint64)
        shard_map = ShardMap.from_keys(keys, 1)
        n_req, rate = 200, 2e6
        span = n_req / rate * 1e9
        faults = FaultConfig(
            crash_mttf_ns=span / 2.0, crash_mttr_ns=span / 10.0, seed=1
        )
        lookup_keys = request_keys(keys, n_req, 0)
        task = cluster_task(
            per_shard, shard_map, lookup_keys, rate, n_req, 0,
            2, 2, RouterPolicy(), faults, 1.5 * span, MachineModel(),
        )
        record = run_sim_tasks([task])[0]
        stats = ClusterRunStats.from_record(record)
        cluster = Cluster(
            shard_map=shard_map,
            services=[ServiceModel.from_measurement(per_shard[0])],
            n_replicas=2,
            n_cores=2,
            policy=RouterPolicy(),
            faults=faults,
        )
        direct = simulate_cluster(
            cluster,
            poisson_arrivals(rate, n_req, 0),
            lookup_keys,
            fault_horizon_ns=1.5 * span,
        )
        assert stats == ClusterRunStats.from_result(direct)
        assert stats.crashes == direct.crashes


class TestScenarioTaskParity:
    def test_task_record_equals_direct_run(self):
        from repro.datasets import make_dataset
        from repro.serve.sweep import scenario_task
        from repro.serve.tenancy import simulate_scenario

        spec = single_tenant_spec(
            rate_per_sec=4e5,
            n_requests=150,
            seed=1,
            topology=TopologySpec(n_shards=2, n_replicas=1, n_cores=2),
        )
        per_shard = [FakeMeasurement(), FakeMeasurement(llc_misses=3.0)]
        task = scenario_task(spec, "amzn", 4_000, 1, per_shard)
        record = run_sim_tasks([task])[0]
        ds = make_dataset("amzn", 4_000, seed=1)
        direct = simulate_scenario(
            spec,
            [ServiceModel.from_measurement(m) for m in per_shard],
            ds.keys,
            shard_map=ShardMap.from_keys(ds.keys, 2),
        )
        assert TenancyRunStats.from_record(record) == (
            TenancyRunStats.from_result(direct)
        )


class TestClusterTaskParity:
    def test_task_record_equals_direct_run(self):
        per_shard = [FakeMeasurement(), FakeMeasurement(llc_misses=4.0)]
        machine = MachineModel()
        keys = np.arange(0, 5000, 3, dtype=np.uint64)
        shard_map = ShardMap.from_keys(keys, 2)
        n_req, seed, rate = 250, 4, 2e6
        lookup_keys = request_keys(keys, n_req, seed)
        task = cluster_task(
            per_shard, shard_map, lookup_keys, rate, n_req, seed,
            2, 2, RouterPolicy(), None, None, machine,
        )
        record = run_sim_tasks([task])[0]
        cluster = Cluster(
            shard_map=shard_map,
            services=[
                ServiceModel.from_measurement(m, machine=machine)
                for m in per_shard
            ],
            n_replicas=2,
            n_cores=2,
            policy=RouterPolicy(),
            faults=None,
        )
        direct = simulate_cluster(
            cluster, poisson_arrivals(rate, n_req, seed), lookup_keys
        )
        assert ClusterRunStats.from_record(record) == (
            ClusterRunStats.from_result(direct)
        )


class TestObsCacheCounters:
    """run_sim_tasks publishes its resolution split as obs metrics
    (``serve.sweep.memo.hits`` and ``serve.sweep.cache.{hits,misses,
    executed}``), so metrics.json distinguishes warm from cold sweeps."""

    NAMES = (
        "serve.sweep.memo.hits",
        "serve.sweep.cache.hits",
        "serve.sweep.cache.misses",
        "serve.sweep.cache.executed",
    )

    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        from repro.obs.metrics import get_registry

        get_registry().reset()
        yield
        get_registry().reset()

    def counters_now(self):
        from repro.obs.metrics import get_registry

        snap = get_registry().snapshot()["counters"]
        return tuple(snap.get(name, 0) for name in self.NAMES)

    def tasks(self):
        return [
            open_loop_task(FakeMeasurement(), 1e6, 100, seed, 1)
            for seed in range(3)
        ]

    def test_cold_run_counts_misses_and_executions(self, tmp_path):
        cache = SimResultCache(str(tmp_path / "serving"))
        run_sim_tasks(self.tasks(), cache=cache)
        assert self.counters_now() == (0, 0, 3, 3)

    def test_second_call_counts_memo_hits(self, tmp_path):
        cache = SimResultCache(str(tmp_path / "serving"))
        run_sim_tasks(self.tasks(), cache=cache)
        run_sim_tasks(self.tasks(), cache=cache)
        assert self.counters_now() == (3, 0, 3, 3)

    def test_warm_cache_counts_cache_hits(self, tmp_path):
        cache = SimResultCache(str(tmp_path / "serving"))
        run_sim_tasks(self.tasks(), cache=cache)
        clear_sim_results()  # drop the memo, keep the persistent cache
        run_sim_tasks(self.tasks(), cache=cache)
        assert self.counters_now() == (0, 3, 3, 3)

    def test_no_cache_still_counts_executions(self):
        run_sim_tasks(self.tasks())
        # No persistent cache: no hit/miss accounting, only executions.
        assert self.counters_now() == (0, 0, 0, 3)
